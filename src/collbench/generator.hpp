// Dataset generation with on-disk caching.
//
// Generating a dataset runs the DES once per (uid, nodes, ppn, msize)
// configuration and draws the budgeted number of noisy observations per
// run. Because the full Table II grid amounts to billions of simulated
// messages, generated datasets are cached as CSV under a data directory
// and reloaded by the benches.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>

#include "collbench/dataset.hpp"
#include "collbench/specs.hpp"

namespace mpicp::bench {

/// Progress callback: (configurations done, configurations total).
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Generate the dataset from scratch (deterministic in spec.seed).
Dataset generate_dataset(const DatasetSpec& spec,
                         const ProgressFn& progress = nullptr);

/// Cache-aware entry point: load `<data_dir>/<name>.csv` when present,
/// otherwise generate and save it.
Dataset load_or_generate(const DatasetSpec& spec,
                         const std::filesystem::path& data_dir,
                         const ProgressFn& progress = nullptr);

/// The data directory used by benches/examples: $MPICP_DATA_DIR if set,
/// else "data" under the current working directory.
std::filesystem::path default_data_dir();

}  // namespace mpicp::bench
