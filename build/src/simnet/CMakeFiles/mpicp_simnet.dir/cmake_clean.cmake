file(REMOVE_RECURSE
  "CMakeFiles/mpicp_simnet.dir/machine.cpp.o"
  "CMakeFiles/mpicp_simnet.dir/machine.cpp.o.d"
  "CMakeFiles/mpicp_simnet.dir/network.cpp.o"
  "CMakeFiles/mpicp_simnet.dir/network.cpp.o.d"
  "libmpicp_simnet.a"
  "libmpicp_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
