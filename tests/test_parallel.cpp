// Tests for the parallel execution layer: pool lifecycle, parallel_for
// semantics (exception propagation, nested-use guard), and the
// bit-identical determinism contract of the parallelized model-bank
// paths (Selector::fit / select_uid / predict_all, evaluate,
// kfold_rmse) across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "collbench/dataset.hpp"
#include "collbench/defaults.hpp"
#include "ml/cv.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/evaluator.hpp"
#include "tune/selector.hpp"

namespace mpicp::support {
namespace {

TEST(ThreadPool, StartStopAndDrain) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolIsValid) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
}

TEST(ThreadPool, RejectsInvalidSize) {
  EXPECT_THROW(ThreadPool(-1), Error);
  EXPECT_THROW(ThreadPool(100000), Error);
}

TEST(Threads, ConfiguredThreadsHonorsScopedOverride) {
  {
    ScopedThreads serial(1);
    EXPECT_EQ(configured_threads(), 1);
    {
      ScopedThreads four(4);
      EXPECT_EQ(configured_threads(), 4);
      ScopedThreads hardware(0);
      EXPECT_EQ(configured_threads(), hardware_threads());
    }
    EXPECT_EQ(configured_threads(), 1);  // restored on scope exit
  }
  EXPECT_THROW(ScopedThreads(-2), Error);
}

class ParallelForThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForThreads, VisitsEveryIndexExactlyOnce) {
  ScopedThreads threads(GetParam());
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{7}, std::size_t{1000}}) {
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{2000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, chunk, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " chunk=" << chunk;
      }
    }
  }
}

TEST_P(ParallelForThreads, PropagatesBodyException) {
  ScopedThreads threads(GetParam());
  EXPECT_THROW(
      parallel_for(64, 1,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> counter{0};
  parallel_for(32, 4, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 32);
}

INSTANTIATE_TEST_SUITE_P(AtThreadCounts, ParallelForThreads,
                         ::testing::Values(1, 2, 4));

TEST(ParallelFor, NestedCallFallsBackToSerial) {
  ScopedThreads threads(4);
  EXPECT_FALSE(in_parallel_region());
  std::atomic<int> inner_total{0};
  parallel_for(8, 1, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // The nested region must complete serially instead of deadlocking
    // on the shared pool.
    parallel_for(16, 1, [&](std::size_t) {
      EXPECT_TRUE(in_parallel_region());
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

/// Synthetic crossover dataset (mirrors test_tune) exercising a
/// three-model bank with measurement noise.
bench::Dataset make_synthetic(const std::vector<int>& nodes,
                              std::uint64_t seed) {
  bench::Dataset ds("synth", sim::MpiLib::kIntelMPI,
                    sim::Collective::kAllreduce, "Hydra");
  Xoshiro256 rng(seed);
  for (const int n : nodes) {
    for (const int ppn : {1, 2, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{16}, std::uint64_t{4096}, std::uint64_t{262144},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, 0.05)});
        }
      }
    }
  }
  return ds;
}

class ParallelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelDeterminism, SelectorIsBitIdenticalAcrossThreadCounts) {
  const bench::Dataset ds = make_synthetic({2, 4, 8, 16, 32}, 11);
  const std::vector<int> train = {2, 4, 16, 32};
  const std::vector<bench::Instance> queries = {
      {3, 2, 64}, {6, 4, 4096}, {12, 8, 262144}, {24, 1, 1048576}};

  tune::Selector serial(tune::SelectorOptions{.learner = GetParam()});
  tune::Selector parallel(tune::SelectorOptions{.learner = GetParam()});
  {
    ScopedThreads one(1);
    ASSERT_FALSE(serial.fit(ds, train).degraded());
  }
  {
    ScopedThreads four(4);
    ASSERT_FALSE(parallel.fit(ds, train).degraded());
  }
  ASSERT_EQ(serial.uids(), parallel.uids());
  for (const bench::Instance& inst : queries) {
    ScopedThreads four(4);
    const auto parallel_preds = parallel.predict_all(inst);
    ScopedThreads one(1);
    const auto serial_preds = serial.predict_all(inst);
    ASSERT_EQ(serial_preds.size(), parallel_preds.size());
    for (std::size_t i = 0; i < serial_preds.size(); ++i) {
      EXPECT_EQ(serial_preds[i].uid, parallel_preds[i].uid);
      // Bit-identical, not merely close: the parallel schedule must not
      // change any floating-point result.
      EXPECT_EQ(serial_preds[i].time_us, parallel_preds[i].time_us);
    }
    EXPECT_EQ(serial.select_uid(inst), parallel.select_uid(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Learners, ParallelDeterminism,
                         ::testing::Values("xgboost", "knn", "gam", "rf",
                                           "linear"));

TEST(ParallelDeterminismSuite, EvaluationIsBitIdenticalAcrossThreadCounts) {
  const bench::Dataset ds = make_synthetic({2, 4, 8, 16}, 12);
  struct FixedDefault final : bench::DefaultLogic {
    std::string name() const override { return "fixed"; }
    int select_uid(const bench::Instance&) const override { return 1; }
  };
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 16}).degraded());

  ScopedThreads one(1);
  const tune::Evaluation a = evaluate(ds, selector, FixedDefault{}, {8});
  ScopedThreads four(4);
  const tune::Evaluation b = evaluate(ds, selector, FixedDefault{}, {8});
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].inst, b.rows[i].inst);
    EXPECT_EQ(a.rows[i].predicted_uid, b.rows[i].predicted_uid);
    EXPECT_EQ(a.rows[i].t_predicted_us, b.rows[i].t_predicted_us);
    EXPECT_EQ(a.rows[i].best_uid, b.rows[i].best_uid);
    EXPECT_EQ(a.rows[i].t_best_us, b.rows[i].t_best_us);
  }
  EXPECT_EQ(a.summary.mean_speedup, b.summary.mean_speedup);
  EXPECT_EQ(a.summary.fraction_optimal, b.summary.fraction_optimal);
}

TEST(ParallelDeterminismSuite, KfoldRmseIsBitIdenticalAcrossThreadCounts) {
  Xoshiro256 rng(21);
  ml::Matrix x(240, 3);
  std::vector<double> y(240);
  for (std::size_t i = 0; i < 240; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x(i, f) = rng.uniform(0.0, 8.0);
    y[i] = 1.0 + 2.0 * x(i, 0) + 0.5 * x(i, 1) * x(i, 2) +
           rng.normal(0.0, 0.1);
  }
  for (const char* learner : {"xgboost", "rf", "gam"}) {
    ScopedThreads one(1);
    const double serial = ml::kfold_rmse(learner, x, y, 5, 7);
    ScopedThreads four(4);
    const double parallel = ml::kfold_rmse(learner, x, y, 5, 7);
    EXPECT_EQ(serial, parallel) << learner;
  }
}

}  // namespace
}  // namespace mpicp::support
