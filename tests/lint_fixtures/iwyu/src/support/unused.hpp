// Fixture: a header nothing in the consumer names — the R11 finding.
#pragma once

namespace fix {

struct UnusedGadget {
  int spare = 0;
};

double unused_helper(double y);

}  // namespace fix
