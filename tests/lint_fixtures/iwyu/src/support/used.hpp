// Fixture: a header whose symbols the consumer genuinely names.
#pragma once

namespace fix {

struct UsedThing {
  int payload = 0;
};

int used_helper(int x);

}  // namespace fix
