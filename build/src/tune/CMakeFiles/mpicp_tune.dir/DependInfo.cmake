
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tune/config_writer.cpp" "src/tune/CMakeFiles/mpicp_tune.dir/config_writer.cpp.o" "gcc" "src/tune/CMakeFiles/mpicp_tune.dir/config_writer.cpp.o.d"
  "/root/repo/src/tune/evaluator.cpp" "src/tune/CMakeFiles/mpicp_tune.dir/evaluator.cpp.o" "gcc" "src/tune/CMakeFiles/mpicp_tune.dir/evaluator.cpp.o.d"
  "/root/repo/src/tune/online.cpp" "src/tune/CMakeFiles/mpicp_tune.dir/online.cpp.o" "gcc" "src/tune/CMakeFiles/mpicp_tune.dir/online.cpp.o.d"
  "/root/repo/src/tune/rulegen.cpp" "src/tune/CMakeFiles/mpicp_tune.dir/rulegen.cpp.o" "gcc" "src/tune/CMakeFiles/mpicp_tune.dir/rulegen.cpp.o.d"
  "/root/repo/src/tune/selector.cpp" "src/tune/CMakeFiles/mpicp_tune.dir/selector.cpp.o" "gcc" "src/tune/CMakeFiles/mpicp_tune.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collbench/CMakeFiles/mpicp_collbench.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mpicp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/mpicp_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpicp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mpicp_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
