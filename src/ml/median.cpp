#include "ml/median.hpp"

#include <cmath>
#include <vector>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace mpicp::ml {

void MedianRegressor::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  // Last-resort robustness: screen out the values no other learner would
  // even accept, rather than failing on them.
  std::vector<double> valid;
  valid.reserve(y.size());
  for (const double v : y) {
    if (std::isfinite(v)) valid.push_back(v);
  }
  MPICP_REQUIRE(!valid.empty(), "no finite targets to take the median of");
  median_ = support::median(valid);
  fitted_ = true;
}

double MedianRegressor::predict_one(std::span<const double>) const {
  MPICP_REQUIRE(fitted_, "predicting with an unfitted model");
  return median_;
}

void MedianRegressor::save(std::ostream& os) const {
  io::write_tag(os, "median");
  io::write_value(os, median_);
}

void MedianRegressor::load(std::istream& is) {
  io::expect_tag(is, "median");
  median_ = io::read_value<double>(is);
  fitted_ = true;
}

}  // namespace mpicp::ml
