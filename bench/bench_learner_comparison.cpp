// Learner comparison across the full menu, including the methods the
// paper evaluated and discarded (random forests — their earlier PMBS'18
// learner — and linear regression). Quantifies §III.C's claim that the
// framework works with any reasonable regression learner while linear
// models fall short.
#include <iostream>

#include "bench_common.hpp"
#include "ml/learner.hpp"
#include "tune/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());
  const auto default_logic = bench::make_default_for(ds);

  std::printf("Learner comparison, dataset %s (test nodes held out)\n\n",
              dataset.c_str());
  support::TextTable table({"learner", "mean speedup", "geomean speedup",
                            "mean norm. runtime", "frac. optimal"});
  for (const char* learner : ml::kLearnerNames) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    bench::fit_or_warn(selector, ds, split.train_full);
    const tune::Evaluation eval =
        tune::evaluate(ds, selector, *default_logic, split.test);
    table.add_row(
        {learner, support::format_double(eval.summary.mean_speedup, 4),
         support::format_double(eval.summary.geomean_speedup, 4),
         support::format_double(eval.summary.mean_norm_predicted, 4),
         support::format_double(eval.summary.fraction_optimal, 4)});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
