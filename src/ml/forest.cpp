#include "ml/forest.hpp"

#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mpicp::ml {

RandomForest::RandomForest(ForestParams params) : params_(params) {
  MPICP_REQUIRE(params_.num_trees >= 1, "need at least one tree");
}

void RandomForest::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  const std::size_t n = x.rows();
  const int d = static_cast<int>(x.cols());
  const FeatureBinner binner(x);
  const std::vector<std::uint8_t> codes = binner.encode(x);

  // Fitting a tree to targets t via gradient pairs (g = -t, h = 1) makes
  // every leaf the mean of its samples and every split the best variance
  // reduction — a plain CART regression tree.
  std::vector<GradPair> gh(n);
  for (std::size_t i = 0; i < n; ++i) {
    double t = y[i];
    if (params_.log_target) {
      MPICP_REQUIRE(t > 0.0, "log target needs positive values");
      t = std::log(t);
    }
    gh[i] = {-t, 1.0};
  }

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.lambda = 0.0;
  tree_params.min_child_weight = 1.0;

  support::Xoshiro256 rng(params_.seed);
  const auto sample_size = static_cast<std::size_t>(
      params_.row_fraction * static_cast<double>(n));
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.num_trees));
  std::vector<GradPair> hist_scratch;
  std::vector<int> rows;
  rows.reserve(std::max<std::size_t>(sample_size, 1));
  for (int t = 0; t < params_.num_trees; ++t) {
    rows.assign(std::max<std::size_t>(sample_size, 1), 0);
    for (auto& r : rows) {
      r = static_cast<int>(rng.uniform_int(n));  // bootstrap
    }
    RegressionTree tree;
    tree.fit(binner, codes, d, gh, rows, tree_params, hist_scratch);
    trees_.push_back(std::move(tree));
  }
}

void RandomForest::save(std::ostream& os) const {
  io::write_tag(os, "rf");
  io::write_value(os, params_.log_target ? 1 : 0);
  io::write_value(os, trees_.size());
  for (const RegressionTree& tree : trees_) tree.save(os);
}

void RandomForest::load(std::istream& is) {
  io::expect_tag(is, "rf");
  params_.log_target = io::read_value<int>(is) != 0;
  const auto count = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(count < (1u << 16), "implausible forest size");
  trees_.assign(count, RegressionTree{});
  for (RegressionTree& tree : trees_) tree.load(is);
}

double RandomForest::predict_one(std::span<const double> x) const {
  MPICP_REQUIRE(!trees_.empty(), "predicting with an unfitted model");
  double acc = 0.0;
  for (const RegressionTree& tree : trees_) acc += tree.predict_one(x);
  acc /= static_cast<double>(trees_.size());
  return params_.log_target ? std::exp(acc) : acc;
}

}  // namespace mpicp::ml
