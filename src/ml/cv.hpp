// Train/test splitting and k-fold cross-validation utilities (used by
// the overfitting checks the paper mentions monitoring during model
// generation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace mpicp::ml {

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Deterministic shuffled holdout split.
Split holdout_split(std::size_t n, double test_fraction,
                    std::uint64_t seed);

/// Deterministic shuffled k-fold partition.
std::vector<Split> kfold_splits(std::size_t n, int folds,
                                std::uint64_t seed);

/// Row-subset of a matrix / target vector.
Matrix take_rows(const Matrix& x, const std::vector<std::size_t>& rows);
std::vector<double> take(std::span<const double> y,
                         const std::vector<std::size_t>& rows);

/// Mean k-fold RMSE of a learner factory on (x, y).
[[nodiscard]] double kfold_rmse(const std::string& learner,
                                const Matrix& x, std::span<const double> y,
                                int folds, std::uint64_t seed);

}  // namespace mpicp::ml
