# Empty dependencies file for test_coll_timing.
# This may be replaced when dependencies are built.
