// Regression error metrics (§V mentions MAE/RMSE as the standard ML
// view; the HPC-level metric — speed-up over the default — lives in
// tune/evaluator.hpp).
#pragma once

#include <span>

namespace mpicp::ml {

double mae(std::span<const double> truth, std::span<const double> pred);
double rmse(std::span<const double> truth, std::span<const double> pred);
/// Mean absolute percentage error (truth must be nonzero).
double mape(std::span<const double> truth, std::span<const double> pred);
/// Coefficient of determination.
double r2(std::span<const double> truth, std::span<const double> pred);

}  // namespace mpicp::ml
