#include "support/cli.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace mpicp::support {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";  // bare flag
    }
  }
}

bool CliParser::has(const std::string& name) const {
  return options_.contains(name);
}

std::string CliParser::get(const std::string& name,
                           const std::string& default_value) const {
  const auto it = options_.find(name);
  return it == options_.end() ? default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t default_value) const {
  const auto it = options_.find(name);
  return it == options_.end() ? default_value : parse_int(it->second);
}

double CliParser::get_double(const std::string& name,
                             double default_value) const {
  const auto it = options_.find(name);
  return it == options_.end() ? default_value : parse_double(it->second);
}

bool CliParser::get_bool(const std::string& name, bool default_value) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return default_value;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  MPICP_RAISE_PARSE("option --" + name + " expects a boolean, got '" +
                   it->second + "'");
}

}  // namespace mpicp::support
