// Measurement noise model.
//
// The DES produces one deterministic time per configuration; real
// benchmarks observe a distribution around a machine-dependent truth.
// This model supplies both missing pieces (DESIGN.md §2):
//
//  * a *systematic field*: a deterministic multiplicative factor per
//    (machine, collective, uid, nodes, ppn) and per (uid, message size),
//    seeded by hash — the "machine quirks" that make the measured
//    landscape deviate from any analytic model and give the regression
//    learners real structure to exploit;
//  * *stochastic jitter*: log-normal multiplicative noise whose relative
//    magnitude grows for short (latency-dominated) runs, plus rare
//    straggler spikes (OS noise).
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace mpicp::bench {

struct NoiseParams {
  double sigma_base = 0.03;     ///< log-normal sigma for long runs
  double sigma_small = 0.08;    ///< extra sigma for microsecond runs
  double small_scale_us = 50.0; ///< crossover scale for the extra sigma
  double sys_sigma = 0.10;      ///< systematic per-configuration factor
  double straggler_prob = 0.01; ///< probability of an OS-noise spike
  double straggler_mult = 2.0;  ///< mean spike multiplier
};

class NoiseModel {
 public:
  NoiseModel(std::uint64_t machine_seed, NoiseParams params = {})
      : seed_(machine_seed), params_(params) {}

  /// Deterministic systematic factor for one configuration.
  double systematic_factor(std::uint64_t coll_key, int uid, int nodes,
                           int ppn, std::uint64_t msize) const;

  /// The "true" (median) time of a configuration: DES time times the
  /// systematic factor.
  double true_time_us(double des_time_us, std::uint64_t coll_key, int uid,
                      int nodes, int ppn, std::uint64_t msize) const;

  /// Draw one noisy observation around a true time.
  double observe_us(double true_time_us, support::Xoshiro256& rng) const;

  const NoiseParams& params() const { return params_; }

 private:
  std::uint64_t seed_;
  NoiseParams params_;
};

}  // namespace mpicp::bench
