// Fixture: the consumer's own header (its include in consumer.cpp is
// exempt regardless of symbol use).
#pragma once

namespace fix {

inline constexpr int kConsumerVersion = 3;

}  // namespace fix
