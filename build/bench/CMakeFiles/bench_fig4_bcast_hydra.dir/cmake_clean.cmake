file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bcast_hydra.dir/bench_fig4_bcast_hydra.cpp.o"
  "CMakeFiles/bench_fig4_bcast_hydra.dir/bench_fig4_bcast_hydra.cpp.o.d"
  "bench_fig4_bcast_hydra"
  "bench_fig4_bcast_hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bcast_hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
