file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_splits.dir/bench_table3_splits.cpp.o"
  "CMakeFiles/bench_table3_splits.dir/bench_table3_splits.cpp.o.d"
  "bench_table3_splits"
  "bench_table3_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
