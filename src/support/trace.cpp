#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "support/table.hpp"
#include "support/thread_safety.hpp"

namespace mpicp::support::trace {

namespace {

// -1 = not yet resolved from the environment; 0 = off; 1 = on.
std::atomic<int> g_enabled{-1};

int resolve_enabled_from_env() {
  const char* env = std::getenv("MPICP_TRACE");
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
       std::strcmp(env, "false") == 0)) {
    return 0;
  }
  return 1;
}

std::uint64_t now_ns() {
  // A process-wide epoch keeps timestamps small and lets Chrome trace
  // viewers align spans from different threads.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Per-thread span sink. Appends take the buffer's own mutex, which is
/// uncontended except while records()/reset() walks all buffers.
struct ThreadBuffer {
  Mutex mu;
  std::vector<SpanRecord> spans MPICP_GUARDED_BY(mu);
  // Written once at registration, before the buffer is published into
  // Buffers::all; immutable afterwards.
  int thread_id = 0;  // mpicp-lint: allow(lock-discipline)
};

struct Buffers {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> all MPICP_GUARDED_BY(mu);
  int next_thread_id MPICP_GUARDED_BY(mu) = 0;
};

Buffers& buffers() {
  static Buffers* b = new Buffers;  // leaked: outlives pool threads
  return *b;
}

struct ThreadState {
  std::shared_ptr<ThreadBuffer> buffer;  // lazily registered
  std::vector<std::string> stack;        // active span paths, innermost last
  std::string ambient;                   // parent inherited via ScopedParent
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

ThreadBuffer& thread_buffer() {
  ThreadState& state = thread_state();
  if (!state.buffer) {
    state.buffer = std::make_shared<ThreadBuffer>();
    Buffers& b = buffers();
    const MutexLock lock(b.mu);
    state.buffer->thread_id = b.next_thread_id++;
    b.all.push_back(state.buffer);
  }
  return *state.buffer;
}

}  // namespace

bool enabled() {
  // order: an on/off flag publishing no other data; a racing resolve
  // writes the same env-derived value.
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_enabled_from_env();
    // order: idempotent env-derived flag (see above).
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_enabled(bool on) {
  // order: an on/off flag publishing no other data.
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

ScopedEnabled::ScopedEnabled(bool on) : previous_(enabled()) {
  set_enabled(on);
}

ScopedEnabled::~ScopedEnabled() { set_enabled(previous_); }

Span::Span(const char* name) {
  if (!enabled()) return;
  ThreadState& state = thread_state();
  const std::string& parent =
      state.stack.empty() ? state.ambient : state.stack.back();
  path_ = parent.empty() ? std::string(name) : parent + "/" + name;
  depth_ = static_cast<int>(state.stack.size());
  state.stack.push_back(path_);
  start_ns_ = now_ns();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  ThreadState& state = thread_state();
  // The stack is strictly LIFO per thread (spans are scoped locals).
  state.stack.pop_back();
  ThreadBuffer& buf = thread_buffer();
  const MutexLock lock(buf.mu);
  buf.spans.push_back(
      {std::move(path_), start_ns_, dur, buf.thread_id, depth_});
}

std::string current_path() {
  const ThreadState& state = thread_state();
  return state.stack.empty() ? state.ambient : state.stack.back();
}

ScopedParent::ScopedParent(std::string path) {
  ThreadState& state = thread_state();
  previous_ = std::move(state.ambient);
  state.ambient = std::move(path);
}

ScopedParent::~ScopedParent() {
  thread_state().ambient = std::move(previous_);
}

std::vector<SpanRecord> records() {
  Buffers& b = buffers();
  std::vector<std::shared_ptr<ThreadBuffer>> all;
  {
    const MutexLock lock(b.mu);
    all = b.all;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : all) {
    ThreadBuffer& tb = *buf;
    const MutexLock lock(tb.mu);
    out.insert(out.end(), tb.spans.begin(), tb.spans.end());
  }
  return out;
}

std::vector<ProfileEntry> profile() {
  std::map<std::string, ProfileEntry> agg;
  for (SpanRecord& rec : records()) {
    ProfileEntry& e = agg[rec.path];
    if (e.count == 0) {
      e.path = std::move(rec.path);
      e.min_ns = rec.dur_ns;
      e.max_ns = rec.dur_ns;
    } else {
      e.min_ns = std::min(e.min_ns, rec.dur_ns);
      e.max_ns = std::max(e.max_ns, rec.dur_ns);
    }
    ++e.count;
    e.total_ns += rec.dur_ns;
  }
  std::vector<ProfileEntry> out;
  out.reserve(agg.size());
  for (auto& [path, e] : agg) out.push_back(std::move(e));
  return out;
}

void reset() {
  Buffers& b = buffers();
  const MutexLock lock(b.mu);
  for (const auto& buf : b.all) {
    ThreadBuffer& tb = *buf;
    const MutexLock buf_lock(tb.mu);
    tb.spans.clear();
  }
}

namespace {

std::string fmt_us(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

void print_profile(std::ostream& os) {
  TextTable table(
      {"span", "count", "total [us]", "mean [us]", "min [us]", "max [us]"});
  for (const ProfileEntry& e : profile()) {
    table.add_row({e.path, std::to_string(e.count), fmt_us(e.total_ns),
                   fmt_us(e.total_ns / std::max<std::uint64_t>(e.count, 1)),
                   fmt_us(e.min_ns), fmt_us(e.max_ns)});
  }
  table.print(os);
}

void write_chrome_trace(std::ostream& os) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& rec : records()) {
    os << (first ? "\n" : ",\n");
    first = false;
    char buf[64];
    os << "{\"name\": \"" << rec.path
       << "\", \"cat\": \"mpicp\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(rec.start_ns) / 1e3);
    os << buf << ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(rec.dur_ns) / 1e3);
    os << buf << ", \"pid\": 1, \"tid\": " << rec.thread << "}";
  }
  os << "\n]}\n";
}

}  // namespace mpicp::support::trace
