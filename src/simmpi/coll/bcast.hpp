// Broadcast algorithm builders.
//
// The Open-MPI-like suite mirrors coll_tuned's broadcast algorithms
// 1..9 (linear, chain, pipeline, split-binary, binary, binomial,
// knomial, scatter-allgather, scatter-ring-allgather); the hierarchical
// builder provides the topology-aware variants of the Intel-MPI-like
// suite (leader tree across nodes + local tree within each node).
//
// All builders take the *total* broadcast payload in bytes and a root
// rank. Segmented variants accept seg_bytes == 0 for "unsegmented".
#pragma once

#include <cstddef>

#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

BuiltCollective bcast_linear(const Comm& comm, std::size_t bytes, int root);

BuiltCollective bcast_chain(const Comm& comm, std::size_t bytes,
                            std::size_t seg_bytes, int nchains, int root);

BuiltCollective bcast_pipeline(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, int root);

BuiltCollective bcast_binary(const Comm& comm, std::size_t bytes,
                             std::size_t seg_bytes, int root);

BuiltCollective bcast_split_binary(const Comm& comm, std::size_t bytes,
                                   std::size_t seg_bytes, int root);

BuiltCollective bcast_binomial(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, int root);

BuiltCollective bcast_knomial(const Comm& comm, std::size_t bytes,
                              std::size_t seg_bytes, int radix, int root);

/// Van-de-Geijn: binomial scatter + recursive-doubling allgather.
BuiltCollective bcast_scatter_allgather(const Comm& comm, std::size_t bytes,
                                        int root);

/// Binomial scatter + ring allgather.
BuiltCollective bcast_scatter_ring_allgather(const Comm& comm,
                                             std::size_t bytes, int root);

/// Inter-node phase of a hierarchical (topology-aware) broadcast.
enum class HierBcastInter {
  kBinomial,
  kPipeline,          ///< pipelined chain across leaders (uses seg_bytes)
  kScatterAllgather,  ///< scatter + recursive doubling across leaders
};

/// Intra-node fan-out of a hierarchical broadcast.
enum class HierBcastIntra { kBinomial, kFlat };

/// Two-level broadcast: leader tree across nodes, then a local tree on
/// every node. Requires root == 0 (a node leader), which is how the
/// paper's benchmarks invoke rooted collectives.
BuiltCollective bcast_hierarchical(const Comm& comm, std::size_t bytes,
                                   std::size_t seg_bytes,
                                   HierBcastInter inter,
                                   HierBcastIntra intra, int root);

}  // namespace mpicp::sim
