file(REMOVE_RECURSE
  "CMakeFiles/bench_rules_codegen.dir/bench_rules_codegen.cpp.o"
  "CMakeFiles/bench_rules_codegen.dir/bench_rules_codegen.cpp.o.d"
  "bench_rules_codegen"
  "bench_rules_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rules_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
