#include "simmpi/coll/trees.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

void fill_subtree_sizes(Tree& tree) {
  // Children always have larger vranks than their parent in our
  // constructions, so a reverse sweep accumulates subtree sizes.
  for (int v = static_cast<int>(tree.size()) - 1; v >= 0; --v) {
    for (const int c : tree[v].children) {
      tree[v].subtree_size += tree[c].subtree_size;
    }
  }
}

}  // namespace

Tree binomial_tree(int p) {
  MPICP_SPAN("sim.trees.binomial");
  MPICP_REQUIRE(p >= 1, "tree needs at least one vrank");
  Tree tree(p);
  for (int v = 0; v < p; ++v) {
    if (v != 0) tree[v].parent = v & (v - 1);
    // Children of v: v + m for every power of two m below v's lowest set
    // bit (all of them for the root). Largest subtree first.
    int top = 1;
    while (top < p) top <<= 1;
    for (int m = top >> 1; m >= 1; m >>= 1) {
      if (v != 0 && m >= (v & -v)) continue;  // above v's lowest set bit
      const int c = v + m;
      if (c < p) tree[v].children.push_back(c);
    }
  }
  fill_subtree_sizes(tree);
  return tree;
}

Tree knomial_tree(int p, int radix) {
  MPICP_REQUIRE(p >= 1, "tree needs at least one vrank");
  MPICP_REQUIRE(radix >= 2, "knomial radix must be at least 2");
  Tree tree(p);
  for (int v = 0; v < p; ++v) {
    // Parent: clear the lowest nonzero base-`radix` digit.
    if (v != 0) {
      long long m = 1;
      while ((v / m) % radix == 0) m *= radix;
      tree[v].parent = static_cast<int>(v - ((v / m) % radix) * m);
    }
    // Children: for every level m where all of v's digits at and below m
    // are zero, the vranks v + j*m (j = 1..radix-1).
    std::vector<int> kids;
    long long m = 1;
    while (m < p && (v == 0 || v % (m * radix) == 0)) {
      for (int j = 1; j < radix; ++j) {
        const long long c = v + j * m;
        if (c < p) kids.push_back(static_cast<int>(c));
      }
      m *= radix;
    }
    // Largest subtree (highest level, lowest j) first.
    std::sort(kids.begin(), kids.end(), std::greater<int>());
    tree[v].children = std::move(kids);
  }
  fill_subtree_sizes(tree);
  return tree;
}

Tree binary_tree(int p) {
  MPICP_REQUIRE(p >= 1, "tree needs at least one vrank");
  Tree tree(p);
  for (int v = 0; v < p; ++v) {
    if (v != 0) tree[v].parent = (v - 1) / 2;
    if (2 * v + 1 < p) tree[v].children.push_back(2 * v + 1);
    if (2 * v + 2 < p) tree[v].children.push_back(2 * v + 2);
  }
  fill_subtree_sizes(tree);
  return tree;
}

Tree chain_tree(int p, int nchains) {
  MPICP_REQUIRE(p >= 1, "tree needs at least one vrank");
  MPICP_REQUIRE(nchains >= 1, "need at least one chain");
  Tree tree(p);
  const int members = p - 1;
  const int chains = std::min(nchains, std::max(members, 1));
  // Contiguous split of vranks 1..p-1 into `chains` chains; the first
  // (members % chains) chains get one extra member.
  int next = 1;
  for (int c = 0; c < chains && next <= members; ++c) {
    const int len = members / chains + (c < members % chains ? 1 : 0);
    if (len == 0) continue;
    tree[0].children.push_back(next);
    tree[next].parent = 0;
    for (int i = 1; i < len; ++i) {
      tree[next + i].parent = next + i - 1;
      tree[next + i - 1].children.push_back(next + i);
    }
    next += len;
  }
  fill_subtree_sizes(tree);
  return tree;
}

Tree flat_tree(int p) {
  MPICP_REQUIRE(p >= 1, "tree needs at least one vrank");
  Tree tree(p);
  for (int v = 1; v < p; ++v) {
    tree[v].parent = 0;
    tree[0].children.push_back(v);
  }
  fill_subtree_sizes(tree);
  return tree;
}

bool is_valid_tree(const Tree& tree) {
  const int p = static_cast<int>(tree.size());
  if (p == 0 || tree[0].parent != -1) return false;
  std::vector<int> depth(p, -1);
  depth[0] = 0;
  // Parent links must reach the root without cycles; child lists must
  // mirror parent links exactly.
  for (int v = 1; v < p; ++v) {
    int cur = v;
    int steps = 0;
    while (cur != 0) {
      const int par = tree[cur].parent;
      if (par < 0 || par >= p || ++steps > p) return false;
      if (std::find(tree[par].children.begin(), tree[par].children.end(),
                    cur) == tree[par].children.end()) {
        return false;
      }
      cur = par;
    }
  }
  int child_links = 0;
  for (const auto& node : tree) {
    child_links += static_cast<int>(node.children.size());
  }
  if (child_links != p - 1) return false;
  if (tree[0].subtree_size != p) return false;
  return true;
}

}  // namespace mpicp::sim
