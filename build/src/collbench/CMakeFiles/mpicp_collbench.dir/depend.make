# Empty dependencies file for mpicp_collbench.
# This may be replaced when dependencies are built.
