// Measurement datasets (the Table II artifacts).
//
// A Dataset holds the raw benchmark observations of one (collective, MPI
// library, machine) triple over the full grid of algorithm configuration
// uids × nodes × ppn × message sizes, plus aggregation (median per
// configuration) and the exhaustive-search "best" lookup that the
// paper's evaluation uses as its reference point.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/types.hpp"

namespace mpicp::bench {

/// One benchmark observation.
struct Record {
  int uid = 0;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msize = 0;
  double time_us = 0.0;
};

/// A communication problem instance (the paper's I = (F, m, n, N); the
/// collective F is carried by the owning Dataset).
struct Instance {
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msize = 0;

  bool operator==(const Instance&) const = default;
};

class Dataset {
 public:
  Dataset(std::string name, sim::MpiLib lib, sim::Collective coll,
          std::string machine);

  const std::string& name() const { return name_; }
  sim::MpiLib lib() const { return lib_; }
  sim::Collective collective() const { return coll_; }
  const std::string& machine() const { return machine_; }

  void add(const Record& rec);
  std::size_t num_records() const { return records_.size(); }
  const std::vector<Record>& records() const { return records_; }

  /// All uids / node counts / ppns / message sizes present (sorted).
  std::vector<int> uids() const;
  std::vector<int> node_counts() const;
  std::vector<int> ppns() const;
  std::vector<std::uint64_t> msizes() const;

  bool has(int uid, const Instance& inst) const;

  /// Median measured time of one configuration; throws if absent.
  double time_us(int uid, const Instance& inst) const;

  /// Empirically best configuration for an instance (argmin of median
  /// time over all uids measured there).
  struct Best {
    int uid = 0;
    double time_us = 0.0;
  };
  Best best(const Instance& inst) const;

  /// All instances (n, ppn, m) present in the dataset.
  std::vector<Instance> instances() const;

  // ---- persistence ----------------------------------------------------
  void save_csv(const std::filesystem::path& path) const;
  static Dataset load_csv(const std::filesystem::path& path,
                          std::string name, sim::MpiLib lib,
                          sim::Collective coll, std::string machine);

 private:
  static std::uint64_t key(int uid, const Instance& inst);

  std::string name_;
  sim::MpiLib lib_;
  sim::Collective coll_;
  std::string machine_;
  std::vector<Record> records_;
  // key -> observations; medians are cached lazily. The cache is the
  // only mutable state behind the const query API, so it carries its own
  // lock: time_us()/best() are called concurrently from the parallel
  // evaluator and selector paths. Heap-allocated so Dataset stays
  // movable (copies share the lock, which is harmless).
  std::unordered_map<std::uint64_t, std::vector<double>> samples_;
  mutable std::unordered_map<std::uint64_t, double> median_cache_;
  std::shared_ptr<std::mutex> median_mu_ = std::make_shared<std::mutex>();
};

}  // namespace mpicp::bench
