file(REMOVE_RECURSE
  "CMakeFiles/test_collbench.dir/test_collbench.cpp.o"
  "CMakeFiles/test_collbench.dir/test_collbench.cpp.o.d"
  "test_collbench"
  "test_collbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
