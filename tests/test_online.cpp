// Tests for the STAR-MPI-style online selector extension.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "tune/online.hpp"

namespace mpicp::tune {
namespace {

const bench::Instance kInst{8, 4, 1024};
const bench::Instance kOther{16, 4, 1024};

TEST(Online, ExploresEveryCandidateBeforeCommitting) {
  OnlineSelector sel({.candidate_uids = {1, 2, 3},
                      .probes_per_algorithm = 2});
  std::map<int, int> seen;
  for (int call = 0; call < 6; ++call) {
    EXPECT_FALSE(sel.converged(kInst));
    const int uid = sel.next_uid(kInst);
    ++seen[uid];
    sel.record(kInst, uid, 10.0 + uid);
  }
  EXPECT_TRUE(sel.converged(kInst));
  for (const int uid : {1, 2, 3}) EXPECT_EQ(seen[uid], 2);
}

TEST(Online, CommitsToEmpiricallyBest) {
  OnlineSelector sel({.candidate_uids = {1, 2, 3},
                      .probes_per_algorithm = 3});
  support::Xoshiro256 rng(5);
  for (int call = 0; call < 9; ++call) {
    const int uid = sel.next_uid(kInst);
    const double base = uid == 2 ? 5.0 : 20.0;  // uid 2 is best
    sel.record(kInst, uid, rng.lognormal_median(base, 0.05));
  }
  EXPECT_EQ(sel.next_uid(kInst), 2);
  EXPECT_EQ(sel.current_best(kInst), 2);
  // After convergence the choice stays fixed.
  for (int call = 0; call < 20; ++call) {
    EXPECT_EQ(sel.next_uid(kInst), 2);
  }
}

TEST(Online, InstancesAreIndependent) {
  OnlineSelector sel({.candidate_uids = {1, 2},
                      .probes_per_algorithm = 1});
  sel.record(kInst, 1, 1.0);
  sel.record(kInst, 2, 2.0);
  EXPECT_TRUE(sel.converged(kInst));
  EXPECT_FALSE(sel.converged(kOther));
  sel.record(kOther, 1, 9.0);
  sel.record(kOther, 2, 3.0);
  EXPECT_EQ(sel.current_best(kInst), 1);
  EXPECT_EQ(sel.current_best(kOther), 2);
}

TEST(Online, RejectsBadInput) {
  EXPECT_THROW(OnlineSelector({.candidate_uids = {}}), Error);
  OnlineSelector sel({.candidate_uids = {1}});
  EXPECT_THROW(sel.record(kInst, 1, -1.0), Error);
  EXPECT_THROW(sel.current_best(kOther), Error);
}

TEST(Online, EvictionBoundsRetainedObservations) {
  OnlineSelector sel({.candidate_uids = {1, 2},
                      .probes_per_algorithm = 3,
                      .max_observations_per_uid = 5});
  // A long-running stream of measurements: retained observations stay
  // capped per (instance, uid) and only the freshest survive.
  for (int i = 0; i < 40; ++i) {
    sel.record(kInst, 1, 100.0 - i);  // newest measurements are fastest
    sel.record(kInst, 2, 50.0);
  }
  EXPECT_EQ(sel.observation_count(), 10u);  // 5 per uid, 2 uids
  // The freshest five uid-1 times (61..65 us) still lose to uid 2's
  // steady 50 us...
  EXPECT_EQ(sel.current_best(kInst), 2);
  // ...but a burst of fast uid-1 measurements flips the decision even
  // though 40 slow ones came first: stale evidence was evicted.
  for (int i = 0; i < 5; ++i) {
    sel.record(kInst, 1, 10.0);
  }
  EXPECT_EQ(sel.observation_count(), 10u);
  EXPECT_EQ(sel.current_best(kInst), 1);
  // The cap must cover the probe budget.
  EXPECT_THROW(OnlineSelector({.candidate_uids = {1},
                               .probes_per_algorithm = 3,
                               .max_observations_per_uid = 2}),
               Error);
}

TEST(Online, MedianCommitIsRobustToOneStraggler) {
  OnlineSelector sel({.candidate_uids = {1, 2},
                      .probes_per_algorithm = 3});
  // uid 1 is truly faster but one probe hits a 100x straggler; the
  // median commit must still pick it.
  const double times1[] = {10.0, 1000.0, 10.0};
  const double times2[] = {20.0, 20.0, 20.0};
  int i1 = 0;
  int i2 = 0;
  while (!sel.converged(kInst)) {
    const int uid = sel.next_uid(kInst);
    sel.record(kInst, uid, uid == 1 ? times1[i1++] : times2[i2++]);
  }
  EXPECT_EQ(sel.next_uid(kInst), 1);
}

}  // namespace
}  // namespace mpicp::tune
