// Unit and property tests for the tree topologies and segmentation.
#include <gtest/gtest.h>

#include "simmpi/coll/pipeline.hpp"
#include "simmpi/coll/trees.hpp"
#include "simmpi/coll/types.hpp"

namespace mpicp::sim {
namespace {

class TreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(TreeSizes, AllConstructionsAreValidTrees) {
  const int p = GetParam();
  EXPECT_TRUE(is_valid_tree(binomial_tree(p))) << "binomial p=" << p;
  EXPECT_TRUE(is_valid_tree(binary_tree(p))) << "binary p=" << p;
  EXPECT_TRUE(is_valid_tree(flat_tree(p))) << "flat p=" << p;
  for (const int radix : {2, 3, 4, 8}) {
    EXPECT_TRUE(is_valid_tree(knomial_tree(p, radix)))
        << "knomial r=" << radix << " p=" << p;
  }
  for (const int chains : {1, 2, 3, 4, 8, 16}) {
    EXPECT_TRUE(is_valid_tree(chain_tree(p, chains)))
        << "chain c=" << chains << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 17,
                                           31, 32, 33, 64, 100, 255, 1024));

TEST(Trees, BinomialSubtreesAreContiguous) {
  // emit_binomial_scatter relies on subtree(v) == vranks [v, v+size).
  for (const int p : {2, 5, 8, 13, 33, 100}) {
    const Tree t = binomial_tree(p);
    for (int v = 0; v < p; ++v) {
      for (const int c : t[v].children) {
        // Child subtree must fit inside the parent's range.
        EXPECT_GE(c, v);
        EXPECT_LE(c + t[c].subtree_size, v + t[v].subtree_size);
      }
    }
  }
}

TEST(Trees, KnomialRadix2MatchesBinomial) {
  for (const int p : {1, 2, 7, 16, 33}) {
    const Tree a = binomial_tree(p);
    const Tree b = knomial_tree(p, 2);
    for (int v = 0; v < p; ++v) {
      EXPECT_EQ(a[v].parent, b[v].parent) << "p=" << p << " v=" << v;
      EXPECT_EQ(a[v].subtree_size, b[v].subtree_size);
    }
  }
}

TEST(Trees, BinomialDepthIsLogarithmic) {
  const Tree t = binomial_tree(1024);
  for (int v = 0; v < 1024; ++v) {
    int depth = 0;
    for (int cur = v; cur != 0; cur = t[cur].parent) ++depth;
    EXPECT_LE(depth, 10);
  }
}

TEST(Trees, ChainHasRequestedChains) {
  const Tree t = chain_tree(17, 4);
  EXPECT_EQ(t[0].children.size(), 4u);
  // Chain members have at most one child each.
  for (int v = 1; v < 17; ++v) EXPECT_LE(t[v].children.size(), 1u);
}

TEST(Trees, ChainClampsToAvailableMembers) {
  const Tree t = chain_tree(3, 16);
  EXPECT_EQ(t[0].children.size(), 2u);
  EXPECT_TRUE(is_valid_tree(t));
}

TEST(Trees, FlatTreeDepthOne) {
  const Tree t = flat_tree(9);
  EXPECT_EQ(t[0].children.size(), 8u);
  for (int v = 1; v < 9; ++v) EXPECT_EQ(t[v].parent, 0);
}

TEST(Segmentation, Unsegmented) {
  const Segmentation s = make_segmentation(1000, 0);
  EXPECT_EQ(s.nseg, 1u);
  EXPECT_EQ(s.bytes_of(0), 1000u);
  const Segmentation t = make_segmentation(1000, 4096);
  EXPECT_EQ(t.nseg, 1u);
}

TEST(Segmentation, ExactAndRaggedSplit) {
  const Segmentation s = make_segmentation(4096, 1024);
  EXPECT_EQ(s.nseg, 4u);
  EXPECT_EQ(s.bytes_of(3), 1024u);
  const Segmentation r = make_segmentation(4100, 1024);
  EXPECT_EQ(r.nseg, 5u);
  EXPECT_EQ(r.bytes_of(4), 4u);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < r.nseg; ++i) total += r.bytes_of(i);
  EXPECT_EQ(total, 4100u);
}

TEST(Segmentation, CapGrowsSegment) {
  const Segmentation s = make_segmentation(64ULL << 20, 1024);  // 64 Mi / 1 Ki
  EXPECT_LE(s.nseg, kMaxSegments);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < s.nseg; ++i) total += s.bytes_of(i);
  EXPECT_EQ(total, 64ULL << 20);
}

TEST(Chunks, EvenChunksSumAndBalance) {
  const auto c = even_chunks(103, 10);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(chunk_range_bytes(c, 0, 10), 103u);
  EXPECT_EQ(c[0], 11u);
  EXPECT_EQ(c[9], 10u);
  const auto z = even_chunks(3, 8);  // more chunks than bytes
  EXPECT_EQ(chunk_range_bytes(z, 0, 8), 3u);
}

TEST(Chunks, Pow2Helpers) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(2), 2);
  EXPECT_EQ(floor_pow2(3), 2);
  EXPECT_EQ(floor_pow2(1000), 512);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(1000), 10);
}

}  // namespace
}  // namespace mpicp::sim
