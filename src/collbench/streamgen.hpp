// Simulated measurement stream for the continuous retraining pipeline
// (DESIGN.md §13).
//
// A real cluster emits benchmark rows one at a time, from a machine
// whose regime occasionally shifts (contention patterns, node swaps,
// fabric reconfiguration), through collection tooling that sometimes
// corrupts rows. This generator manufactures exactly that, seeded and
// deterministic:
//
//  * the per-configuration "truth" is an analytic cost surface times the
//    NoiseModel systematic field of the *currently active* machine seed
//    — a RegimeShift swaps that seed at a known row offset, which moves
//    every algorithm's cost landscape the way a machine-preset swap
//    does;
//  * observations get the NoiseModel's log-normal jitter and straggler
//    spikes;
//  * a seeded fraction of rows is corrupted through the same six
//    faultinject row-fault kinds (and the same rotation) as
//    corrupt_csv, so downstream quarantine accounting can be checked
//    against the generator's own fault log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "collbench/noise.hpp"
#include "simmpi/coll/types.hpp"
#include "support/rng.hpp"

namespace mpicp::bench {

/// One scheduled machine-regime change: rows at index >= at_row are
/// produced under the new systematic-field seed.
struct RegimeShift {
  std::size_t at_row = 0;
  std::uint64_t machine_seed = 0;
};

struct StreamSpec {
  sim::Collective coll = sim::Collective::kBcast;
  std::vector<int> uids = {1, 2, 3, 4};
  std::vector<int> nodes = {2, 4, 8, 16};
  std::vector<int> ppns = {1, 4};
  std::vector<std::uint64_t> msizes = {64, 4096, 65536, 1048576};
  /// Systematic-field seed of the initial regime.
  std::uint64_t machine_seed = 1;
  /// Scheduled regime changes, ascending by at_row.
  std::vector<RegimeShift> shifts;
  /// A strong systematic field by default: a regime swap should move
  /// per-algorithm costs enough for drift detection to have signal.
  NoiseParams noise{.sigma_base = 0.03, .sigma_small = 0.08,
                    .small_scale_us = 50.0, .sys_sigma = 0.30,
                    .straggler_prob = 0.01, .straggler_mult = 2.0};
  double fault_rate = 0.0;  ///< fraction of rows corrupted
  std::uint64_t seed = 1;   ///< drives sampling, jitter and fault choice
};

class MeasurementStream {
 public:
  explicit MeasurementStream(StreamSpec spec);

  /// One produced measurement row.
  struct Row {
    /// "uid,nodes,ppn,msize,time_us" — possibly corrupted; empty when
    /// the row was dropped entirely (kDroppedRow).
    std::string text;
    std::size_t index = 0;  ///< 0-based production index
    bool faulted = false;
    bool dropped = false;
  };

  [[nodiscard]] Row next();

  std::size_t rows_produced() const { return cursor_; }
  std::size_t rows_faulted() const { return faulted_; }
  std::size_t rows_dropped() const { return dropped_; }

  /// The machine seed of the regime active at production index `row`.
  std::uint64_t regime_seed_at(std::size_t row) const;

  /// Deterministic analytic base cost of a configuration (regime-free).
  double base_time_us(int uid, const Instance& inst) const;

  /// The "true" (median) time of a configuration under the regime
  /// active at `row` — the oracle tests and benches validate against.
  double true_time_us(std::size_t row, int uid, const Instance& inst) const;

  const StreamSpec& spec() const { return spec_; }

 private:
  StreamSpec spec_;
  support::Xoshiro256 rng_;
  std::size_t cursor_ = 0;
  std::size_t faulted_ = 0;
  std::size_t dropped_ = 0;
  std::size_t kind_cursor_ = 0;
};

}  // namespace mpicp::bench
