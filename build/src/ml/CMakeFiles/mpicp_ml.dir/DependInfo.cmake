
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cv.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/cv.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/cv.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/gam.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/gam.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/gam.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/learner.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/learner.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/learner.cpp.o.d"
  "/root/repo/src/ml/linreg.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/linreg.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/linreg.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/spline.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/spline.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/spline.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/mpicp_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/mpicp_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mpicp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
