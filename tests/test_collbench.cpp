// Tests for the benchmarking layer: noise model, budgeted runner,
// dataset container, dataset specs and default-logic baselines.
#include <gtest/gtest.h>

#include <filesystem>

#include "collbench/dataset.hpp"
#include "collbench/defaults.hpp"
#include "collbench/generator.hpp"
#include "collbench/noise.hpp"
#include "collbench/runner.hpp"
#include "collbench/specs.hpp"
#include "simmpi/coll/decision.hpp"
#include "simnet/machine.hpp"
#include "support/error.hpp"

namespace mpicp::bench {
namespace {

TEST(Noise, SystematicFactorIsDeterministic) {
  const NoiseModel a(42);
  const NoiseModel b(42);
  const double fa = a.systematic_factor(1, 3, 16, 8, 1024);
  EXPECT_DOUBLE_EQ(fa, b.systematic_factor(1, 3, 16, 8, 1024));
  EXPECT_NE(fa, a.systematic_factor(1, 4, 16, 8, 1024));
  EXPECT_GT(fa, 0.0);
}

TEST(Noise, SystematicFactorNearOne) {
  const NoiseModel model(7);
  for (int uid = 1; uid <= 50; ++uid) {
    const double f = model.systematic_factor(0, uid, 8, 4, 4096);
    EXPECT_GT(f, 0.5);
    EXPECT_LT(f, 2.0);
  }
}

TEST(Noise, ObservationsCenterOnTruth) {
  const NoiseModel model(11);
  support::Xoshiro256 rng(1);
  std::vector<double> obs(4001);
  for (auto& o : obs) o = model.observe_us(1000.0, rng);
  std::sort(obs.begin(), obs.end());
  EXPECT_NEAR(obs[obs.size() / 2], 1000.0, 30.0);  // median ~ truth
  for (const double o : obs) EXPECT_GT(o, 0.0);
}

TEST(Noise, SmallRunsAreNoisier) {
  const NoiseModel model(13);
  support::Xoshiro256 rng1(2);
  support::Xoshiro256 rng2(2);
  double spread_small = 0.0;
  double spread_large = 0.0;
  for (int i = 0; i < 2000; ++i) {
    spread_small += std::abs(model.observe_us(5.0, rng1) / 5.0 - 1.0);
    spread_large +=
        std::abs(model.observe_us(1e6, rng2) / 1e6 - 1.0);
  }
  EXPECT_GT(spread_small, 1.5 * spread_large);
}

TEST(Runner, RespectsRepCap) {
  sim::Network net(sim::hydra_machine(), 4, 2);
  const NoiseModel noise(1);
  support::Xoshiro256 rng(1);
  const auto& cfg =
      sim::algorithm_configs(sim::MpiLib::kOpenMPI, sim::Collective::kBcast)
          .front();
  const RunnerResult res =
      run_benchmark(net, sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                    cfg, 1024, noise, {.max_reps = 7, .budget_us = 1e9},
                    rng);
  EXPECT_EQ(res.observations_us.size(), 7u);
  EXPECT_GT(res.des_time_us, 0.0);
  EXPECT_GT(res.true_time_us, 0.0);
}

TEST(Runner, BudgetTruncatesExpensiveRuns) {
  sim::Network net(sim::hydra_machine(), 16, 8);
  const NoiseModel noise(1);
  support::Xoshiro256 rng(1);
  // The linear broadcast of 4 MiB takes several milliseconds; a 1 ms
  // budget must stop after the first observation.
  const auto& cfg =
      sim::algorithm_configs(sim::MpiLib::kOpenMPI, sim::Collective::kBcast)
          .front();
  ASSERT_EQ(cfg.name, "linear");
  const RunnerResult res = run_benchmark(
      net, sim::MpiLib::kOpenMPI, sim::Collective::kBcast, cfg, 4u << 20,
      noise, {.max_reps = 500, .budget_us = 1000.0}, rng);
  EXPECT_EQ(res.observations_us.size(), 1u);
}

TEST(Dataset, MedianAggregationAndBest) {
  Dataset ds("t", sim::MpiLib::kOpenMPI, sim::Collective::kBcast, "Hydra");
  for (const double t : {10.0, 30.0, 20.0}) {
    ds.add({1, 4, 2, 64, t});
  }
  ds.add({2, 4, 2, 64, 15.0});
  const Instance inst{4, 2, 64};
  EXPECT_DOUBLE_EQ(ds.time_us(1, inst), 20.0);
  EXPECT_DOUBLE_EQ(ds.time_us(2, inst), 15.0);
  const auto best = ds.best(inst);
  EXPECT_EQ(best.uid, 2);
  EXPECT_DOUBLE_EQ(best.time_us, 15.0);
  EXPECT_FALSE(ds.has(3, inst));
  EXPECT_THROW(ds.time_us(3, inst), InvalidArgument);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset ds("t", sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce,
             "Hydra");
  ds.add({1, 4, 2, 64, 12.5});
  ds.add({2, 8, 4, 1024, 99.25});
  const auto path =
      std::filesystem::temp_directory_path() / "mpicp_ds_test.csv";
  ds.save_csv(path);
  const Dataset loaded = Dataset::load_csv(
      path, "t", sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce,
      "Hydra");
  EXPECT_EQ(loaded.num_records(), 2u);
  EXPECT_DOUBLE_EQ(loaded.time_us(2, {8, 4, 1024}), 99.25);
  std::filesystem::remove(path);
}

TEST(Specs, TableIIShape) {
  const auto& specs = all_dataset_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "d1");
  EXPECT_EQ(specs[0].coll, sim::Collective::kBcast);
  EXPECT_EQ(specs[4].lib, sim::MpiLib::kIntelMPI);
  EXPECT_EQ(specs[7].machine, "SuperMUC-NG");
  EXPECT_EQ(specs[5].msizes.size(), 8u);  // alltoall: 8 sizes
  EXPECT_EQ(specs[0].msizes.size(), 10u);
  EXPECT_THROW(dataset_spec("d9"), InvalidArgument);
}

TEST(Specs, SplitsAreSubsetsOfGrids) {
  for (const auto& spec : all_dataset_specs()) {
    const NodeSplit split = node_split(spec.machine);
    for (const int n : split.train_full) {
      EXPECT_NE(std::find(spec.nodes.begin(), spec.nodes.end(), n),
                spec.nodes.end())
          << spec.name << " train node " << n;
    }
    for (const int n : split.test) {
      EXPECT_NE(std::find(spec.nodes.begin(), spec.nodes.end(), n),
                spec.nodes.end())
          << spec.name << " test node " << n;
    }
    // Train and test node sets must be disjoint.
    for (const int n : split.test) {
      EXPECT_EQ(std::find(split.train_full.begin(), split.train_full.end(),
                          n),
                split.train_full.end());
    }
  }
}

TEST(Generator, SmallSpecProducesFullGrid) {
  DatasetSpec spec = dataset_spec("d2");
  spec.name = "tiny";
  spec.nodes = {2, 3};
  spec.ppns = {1, 2};
  spec.msizes = {16, 1024};
  spec.budget = {.max_reps = 2, .budget_us = 1e9};
  const Dataset ds = generate_dataset(spec);
  const auto& configs =
      sim::algorithm_configs(spec.lib, spec.coll);
  EXPECT_EQ(ds.num_records(), configs.size() * 2 * 2 * 2 * 2);
  // Every instance has a best.
  for (const Instance& inst : ds.instances()) {
    EXPECT_GT(ds.best(inst).time_us, 0.0);
  }
}

TEST(Generator, DeterministicInSeed) {
  DatasetSpec spec = dataset_spec("d2");
  spec.nodes = {2};
  spec.ppns = {2};
  spec.msizes = {256};
  spec.budget = {.max_reps = 2, .budget_us = 1e9};
  const Dataset a = generate_dataset(spec);
  const Dataset b = generate_dataset(spec);
  ASSERT_EQ(a.num_records(), b.num_records());
  for (std::size_t i = 0; i < a.num_records(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].time_us, b.records()[i].time_us);
  }
}

TEST(Defaults, OpenMpiFixedRulesAreStable) {
  const auto logic = make_openmpi_default(sim::Collective::kBcast);
  EXPECT_EQ(logic->name(), "openmpi-fixed");
  const int small = logic->select_uid({8, 4, 64});
  const int large = logic->select_uid({8, 4, 4u << 20});
  EXPECT_NE(small, large);
  // Small messages: binomial family (alg 6 in the registry).
  const auto& cfg = sim::config_by_uid(sim::MpiLib::kOpenMPI,
                                       sim::Collective::kBcast, small);
  EXPECT_EQ(cfg.alg_id, 6);
}

TEST(Defaults, OpenMpiDecisionCoversAllCollectives) {
  for (const auto coll : {sim::Collective::kBcast,
                          sim::Collective::kAllreduce,
                          sim::Collective::kAlltoall}) {
    for (const std::uint64_t m : standard_msizes()) {
      for (const int p : {2, 16, 256, 1024}) {
        const int uid = sim::openmpi_default_uid(coll, p, m);
        EXPECT_NO_THROW(
            sim::config_by_uid(sim::MpiLib::kOpenMPI, coll, uid));
      }
    }
  }
}

TEST(Defaults, IntelTunedTablePicksGridBest) {
  Dataset ds("t", sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce,
             "Hydra");
  // Two uids; uid 2 faster at (4, 2, 64), uid 1 faster at (4, 2, 1024).
  ds.add({1, 4, 2, 64, 20.0});
  ds.add({2, 4, 2, 64, 10.0});
  ds.add({1, 4, 2, 1024, 30.0});
  ds.add({2, 4, 2, 1024, 60.0});
  const auto logic = make_intel_default(ds, {4});
  EXPECT_EQ(logic->select_uid({4, 2, 64}), 2);
  EXPECT_EQ(logic->select_uid({4, 2, 1024}), 1);
  // Off-grid instances snap to the nearest grid point.
  EXPECT_EQ(logic->select_uid({5, 2, 100}), 2);
  EXPECT_EQ(logic->select_uid({7, 2, 2000}), 1);
}

}  // namespace
}  // namespace mpicp::bench
