// A >=15-line function in span scope (.cpp under src/tune, src/simmpi)
// with no MPICP_SPAN anywhere in the file: exactly one finding,
// anchored at the first long function, even when more follow.
namespace mpicp::tune {

int short_helper(int v) { return v + 1; }

int accumulate_grid(int nodes, int ppn) {
  int total = 0;
  total += nodes;
  total += ppn;
  total += nodes * ppn;
  total -= nodes / 2;
  total += ppn / 2;
  total *= 2;
  total -= nodes;
  total += 3;
  total -= 4;
  total += 5;
  total -= 6;
  total += 7;
  return total;
}

int second_long_function(int a) {
  int r = a;
  r += 1;
  r += 2;
  r += 3;
  r += 4;
  r += 5;
  r += 6;
  r += 7;
  r += 8;
  r += 9;
  r += 10;
  r += 11;
  r += 12;
  return r;
}

}  // namespace mpicp::tune
