// Histogram-based regression trees (the shared engine of the gradient
// boosting and random forest learners).
//
// Features are pre-binned into at most `max_bins` quantile bins; split
// finding then scans bin histograms of (gradient, hessian) sums — the
// same approach XGBoost's `hist` method and LightGBM use. With the
// paper's feature space (message size, nodes, ppn — each with ~10
// distinct values) the binning is lossless, so splits are exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace mpicp::ml {

struct GradPair {
  double g = 0.0;
  double h = 0.0;
};

/// Per-feature quantile binner.
class FeatureBinner {
 public:
  FeatureBinner(const Matrix& x, int max_bins = 32);

  int num_features() const { return static_cast<int>(edges_.size()); }
  int num_bins(int f) const {
    return static_cast<int>(edges_[f].size()) + 1;
  }
  /// Split threshold between bin b and b+1 of feature f.
  double edge(int f, int b) const { return edges_[f][b]; }

  std::uint8_t bin_of(int f, double value) const;

  /// Bin codes for every (row, feature) of x, row-major.
  std::vector<std::uint8_t> encode(const Matrix& x) const;

 private:
  std::vector<std::vector<double>> edges_;  // ascending upper edges
};

struct TreeParams {
  int max_depth = 6;
  double lambda = 1.0;            ///< L2 regularization on leaf weights
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
  double min_gain = 0.0;
  double learning_rate = 1.0;     ///< scales leaf weights
};

/// One fitted regression tree. Leaf values are the XGBoost weights
/// -G / (H + lambda), scaled by the learning rate.
class RegressionTree {
 public:
  struct Node {
    int feature = -1;  ///< -1: leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
    double gain = 0.0;  ///< split gain (internal nodes)
  };

  /// Fit on binned rows. `rows` selects the training subset (with
  /// repetitions allowed, for bagging).
  void fit(const FeatureBinner& binner,
           std::span<const std::uint8_t> codes, int num_features,
           std::span<const GradPair> gh, std::vector<int> rows,
           const TreeParams& params);

  /// As above, but reuses `hist_scratch` for the split-search histogram
  /// so ensemble fits allocate it once instead of once per tree.
  void fit(const FeatureBinner& binner,
           std::span<const std::uint8_t> codes, int num_features,
           std::span<const GradPair> gh, std::vector<int> rows,
           const TreeParams& params, std::vector<GradPair>& hist_scratch);

  double predict_one(std::span<const double> x) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

  /// Accumulate per-feature split gains into `gains` (size = number of
  /// features) — the standard "gain" feature-importance measure.
  void accumulate_gains(std::span<double> gains) const;

  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Preorder node pool (index 0 is the root) — the compiled bank lowers
  /// from this representation.
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  int build(const FeatureBinner& binner,
            std::span<const std::uint8_t> codes, int num_features,
            std::span<const GradPair> gh, std::vector<int> rows, int depth,
            const TreeParams& params, std::vector<GradPair>& hist);

  std::vector<Node> nodes_;
};

}  // namespace mpicp::ml
