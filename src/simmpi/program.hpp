// Per-rank communication programs.
//
// A collective algorithm is expressed as one sequential program per rank,
// built from MPI-like operations (send/recv, their nonblocking variants,
// waitall, local compute). The discrete-event executor (executor.hpp)
// runs all rank programs against a simnet::Network and reports the
// completion time — this mirrors how LogGOPSim-class simulators replay
// communication traces.
//
// Programs are *data-independent*: the communication pattern of the MPI
// collectives we model depends only on (rank, p, message size,
// parameters), never on buffer contents, so a static per-rank op list is
// a faithful representation.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace mpicp::sim {

enum class OpKind : std::uint8_t {
  kSend,     ///< blocking send
  kRecv,     ///< blocking receive
  kISend,    ///< nonblocking send (completed by kWaitAll)
  kIRecv,    ///< nonblocking receive (completed by kWaitAll)
  kWaitAll,  ///< wait for all outstanding nonblocking operations
  kWaitOne,  ///< wait for the oldest outstanding nonblocking *receive*
  kCompute,  ///< local computation (reduction arithmetic)
  kCopy,     ///< local buffer copy/pack (memcpy through the memory system)
};

/// Flags on receive operations controlling data tracking semantics.
enum OpFlags : std::uint8_t {
  kNone = 0,
  /// Receiver combines (ORs) the payload into its blocks instead of
  /// overwriting them — used for reduction steps.
  kCombine = 1,
};

/// One operation of a rank program. Kept small on purpose: large runs
/// materialize tens of millions of ops.
struct Op {
  OpKind kind = OpKind::kCompute;
  std::uint8_t flags = kNone;
  std::uint16_t tag = 0;       ///< match tag (phase identifier)
  std::int32_t peer = -1;      ///< peer rank for send/recv
  std::uint32_t bytes = 0;     ///< message size, or compute size in bytes
  std::uint32_t block_begin = 0;  ///< data-tracking region start
  std::uint32_t block_count = 0;  ///< data-tracking region length
};
static_assert(sizeof(Op) <= 24, "Op must stay small");

/// The programs of all ranks of one collective invocation.
using ProgramSet = std::vector<std::vector<Op>>;

/// Convenience emitter for one rank's program.
class RankProg {
 public:
  explicit RankProg(std::vector<Op>& ops, int self, int num_ranks)
      : ops_(ops), self_(self), p_(num_ranks) {}

  int self() const { return self_; }
  int num_ranks() const { return p_; }

  void send(int peer, std::uint16_t tag, std::uint64_t bytes,
            std::uint32_t block_begin = 0, std::uint32_t block_count = 0) {
    push(OpKind::kSend, peer, tag, bytes, block_begin, block_count, kNone);
  }
  void recv(int peer, std::uint16_t tag, std::uint64_t bytes,
            std::uint32_t block_begin = 0, std::uint32_t block_count = 0,
            std::uint8_t flags = kNone) {
    push(OpKind::kRecv, peer, tag, bytes, block_begin, block_count, flags);
  }
  void isend(int peer, std::uint16_t tag, std::uint64_t bytes,
             std::uint32_t block_begin = 0, std::uint32_t block_count = 0) {
    push(OpKind::kISend, peer, tag, bytes, block_begin, block_count, kNone);
  }
  void irecv(int peer, std::uint16_t tag, std::uint64_t bytes,
             std::uint32_t block_begin = 0, std::uint32_t block_count = 0,
             std::uint8_t flags = kNone) {
    push(OpKind::kIRecv, peer, tag, bytes, block_begin, block_count, flags);
  }
  void waitall() { push(OpKind::kWaitAll, -1, 0, 0, 0, 0, kNone); }
  /// Wait for the oldest still-outstanding irecv (double-buffered
  /// pipelines consume segments in posting order with this).
  void waitone() { push(OpKind::kWaitOne, -1, 0, 0, 0, 0, kNone); }
  /// Local reduction arithmetic over `bytes` bytes.
  void compute(std::uint64_t bytes) {
    push(OpKind::kCompute, -1, 0, bytes, 0, 0, kNone);
  }
  /// Local pack/unpack copy of `bytes` bytes. For data tracking the
  /// blocks [src_block, src_block+count) are copied to
  /// [dst_block, dst_block+count); the destination start is carried in
  /// the op's `peer` field (documented overload — copies have no peer).
  void copy(std::uint64_t bytes, std::uint32_t src_block,
            std::uint32_t dst_block, std::uint32_t count,
            std::uint8_t flags = kNone) {
    MPICP_ASSERT(dst_block <= 0x7fffffffu, "copy destination block range");
    Op op;
    op.kind = OpKind::kCopy;
    op.flags = flags;
    op.peer = static_cast<std::int32_t>(dst_block);
    op.bytes = static_cast<std::uint32_t>(bytes);
    op.block_begin = src_block;
    op.block_count = count;
    ops_.push_back(op);
  }

 private:
  void push(OpKind kind, int peer, std::uint16_t tag, std::uint64_t bytes,
            std::uint32_t block_begin, std::uint32_t block_count,
            std::uint8_t flags) {
    MPICP_ASSERT(peer >= -1 && peer < p_, "op peer out of range");
    MPICP_ASSERT(bytes <= 0xffffffffULL, "message larger than 4 GiB");
    Op op;
    op.kind = kind;
    op.flags = flags;
    op.tag = tag;
    op.peer = peer;
    op.bytes = static_cast<std::uint32_t>(bytes);
    op.block_begin = block_begin;
    op.block_count = block_count;
    ops_.push_back(op);
  }

  std::vector<Op>& ops_;
  int self_;
  int p_;
};

}  // namespace mpicp::sim
