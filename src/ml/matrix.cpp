#include "ml/matrix.hpp"

#include <cmath>

#include "support/error.hpp"

namespace mpicp::ml {

Matrix Matrix::gram(std::span<const double> weights) const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const auto r = row(i);
    for (std::size_t a = 0; a < cols_; ++a) {
      const double wa = w * r[a];
      // Exact zero skip: a sparsity shortcut, not a tolerance test.
      // mpicp-lint: allow(no-float-eq)
      if (wa == 0.0) continue;
      for (std::size_t b = a; b < cols_; ++b) g(a, b) += wa * r[b];
    }
  }
  for (std::size_t a = 0; a < cols_; ++a) {
    for (std::size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  }
  return g;
}

std::vector<double> Matrix::transpose_times(
    std::span<const double> v, std::span<const double> weights) const {
  MPICP_REQUIRE(v.size() == rows_, "dimension mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double w = (weights.empty() ? 1.0 : weights[i]) * v[i];
    // mpicp-lint: allow(no-float-eq) — exact-zero sparsity shortcut
    if (w == 0.0) continue;
    const auto r = row(i);
    for (std::size_t a = 0; a < cols_; ++a) out[a] += w * r[a];
  }
  return out;
}

std::vector<double> Matrix::times(std::span<const double> beta) const {
  MPICP_REQUIRE(beta.size() == cols_, "dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    double acc = 0.0;
    for (std::size_t a = 0; a < cols_; ++a) acc += r[a] * beta[a];
    out[i] = acc;
  }
  return out;
}

std::vector<double> cholesky_solve(Matrix a, std::vector<double> b,
                                   double jitter) {
  const std::size_t n = a.rows();
  MPICP_REQUIRE(a.cols() == n && b.size() == n,
                "cholesky_solve needs square A and matching b");
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix l = a;
    for (std::size_t i = 0; i < n; ++i) l(i, i) += jitter;
    bool ok = true;
    // In-place Cholesky (lower triangle).
    for (std::size_t j = 0; j < n && ok; ++j) {
      double d = l(j, j);
      for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
      if (d <= 0.0 || !std::isfinite(d)) {
        ok = false;
        break;
      }
      const double diag = std::sqrt(d);
      l(j, j) = diag;
      for (std::size_t i = j + 1; i < n; ++i) {
        double s = l(i, j);
        for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
        l(i, j) = s / diag;
      }
    }
    if (!ok) {
      // mpicp-lint: allow(no-float-eq) — jitter starts at literal 0.0
      jitter = jitter == 0.0 ? 1e-10 : jitter * 100.0;
      continue;
    }
    // Forward/back substitution.
    std::vector<double> x = b;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < i; ++k) x[i] -= l(i, k) * x[k];
      x[i] /= l(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= l(k, ii) * x[k];
      x[ii] /= l(ii, ii);
    }
    return x;
  }
  MPICP_RAISE_INTERNAL("cholesky_solve: matrix not positive definite");
}

}  // namespace mpicp::ml
