// Self-test for tools/mpicp_lint: runs the real binary over checked-in
// fixture trees (tests/lint_fixtures/*) and asserts exact rule-id/line
// diagnostics, suppression behaviour, baseline handling — and that the
// repository itself is lint-clean against the checked-in baseline.
//
// The binary path and the fixture/source directories are injected by
// CMake (MPICP_LINT_BIN, MPICP_LINT_FIXTURES, MPICP_SOURCE_DIR).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout only (diagnostics)
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(MPICP_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun run;
  if (!pipe) return run;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture_root(const std::string& name) {
  return std::string(MPICP_LINT_FIXTURES) + "/" + name;
}

/// One parsed `file:line: [rule-id]` diagnostic triple.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;

  bool operator==(const Finding&) const = default;
  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule) < std::tie(o.file, o.line, o.rule);
  }
};

std::vector<Finding> parse_findings(const std::string& output) {
  std::vector<Finding> out;
  static const std::regex diag(R"(^([^:\s]+):(\d+): \[([a-z\-]+)\] )");
  std::stringstream ss(output);
  std::string line;
  while (std::getline(ss, line)) {
    std::smatch m;
    if (std::regex_search(line, m, diag)) {
      out.push_back({m[1].str(), std::stoi(m[2].str()), m[3].str()});
    }
  }
  return out;
}

TEST(Lint, ListsAllFourteenRules) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"no-raw-rand", "no-raw-thread", "no-wall-clock", "no-stdout",
        "no-bare-throw", "no-float-eq", "header-hygiene",
        "nodiscard-report", "no-alloc-in-loop", "span-coverage",
        "include-what-you-use-lite", "layer-dag", "lock-discipline",
        "atomic-order-audit"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(Lint, CleanFixtureTreePasses) {
  const LintRun run = run_lint("--root " + fixture_root("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(parse_findings(run.output).empty()) << run.output;
}

TEST(Lint, DirtyFixtureTreeReportsExactDiagnostics) {
  const LintRun run = run_lint("--root " + fixture_root("dirty"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/bad_clock.cpp", 6, "no-wall-clock"},
      {"src/bad_clock.cpp", 7, "no-wall-clock"},
      {"src/bad_floateq.cpp", 3, "no-float-eq"},
      {"src/bad_header.hpp", 1, "header-hygiene"},
      {"src/bad_header.hpp", 3, "header-hygiene"},
      {"src/bad_header.hpp", 5, "header-hygiene"},
      {"src/bad_nodiscard.hpp", 6, "nodiscard-report"},
      {"src/bad_rand.cpp", 6, "no-raw-rand"},
      {"src/bad_rand.cpp", 7, "no-raw-rand"},
      {"src/bad_rand.cpp", 8, "no-raw-rand"},
      {"src/bad_stdout.cpp", 6, "no-stdout"},
      {"src/bad_stdout.cpp", 7, "no-stdout"},
      {"src/bad_thread.cpp", 5, "no-raw-thread"},
      {"src/bad_thread.cpp", 6, "no-raw-thread"},
      {"src/bad_throw.cpp", 5, "no-bare-throw"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, AllocFixtureTreeReportsExactDiagnostics) {
  // R9 fires only under src/ml and src/tune; reserved receivers,
  // capacity-reusing assign(), default construction, unresolvable
  // receivers and inline allow() all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("alloc"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/ml/bad_alloc.cpp", 9, "no-alloc-in-loop"},
      {"src/ml/bad_alloc.cpp", 10, "no-alloc-in-loop"},
      {"src/ml/bad_alloc.cpp", 11, "no-alloc-in-loop"},
      {"src/ml/bad_alloc.cpp", 12, "no-alloc-in-loop"},
      {"src/ml/bad_alloc.cpp", 15, "no-alloc-in-loop"},
      {"src/ml/bad_alloc.cpp", 18, "no-alloc-in-loop"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, SpanFixtureTreeReportsExactDiagnostics) {
  // R10 fires once per uncovered file, anchored at the first >=15-line
  // function; a file-level MPICP_SPAN, short-only files, and files
  // outside src/tune + src/simmpi all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("spans"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/tune/needs_span.cpp", 8, "span-coverage"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, IwyuFixtureTreeReportsExactDiagnostics) {
  // R11 flags exactly the resolvable-but-unused project include; the
  // own header, a used header, an unresolvable path, and an allow()ed
  // include all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("iwyu"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/tune/consumer.cpp", 7, "include-what-you-use-lite"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, LayerFixtureTreeReportsExactDiagnostics) {
  // R12 flags the upward ml -> tune include and the simmpi <->
  // collbench cycle (anchored at the edge that closes it in sorted DFS
  // order); the allow(layer-dag)ed upward edge, downward includes and
  // same-rank sibling includes all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("layers"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/ml/bad_up.cpp", 4, "layer-dag"},
      {"src/simmpi/cycle_a.hpp", 4, "layer-dag"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, LockFixtureTreeReportsExactDiagnostics) {
  // R13 flags unannotated members of mutex-declaring classes;
  // MPICP_GUARDED_BY, allow(lock-discipline), sync primitives,
  // references, static/constexpr/const members, methods and mutex-free
  // classes all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("locks"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/support/bad_lock.hpp", 9, "lock-discipline"},
      {"src/support/bad_lock.hpp", 19, "lock-discipline"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, AtomicOrderFixtureTreeReportsExactDiagnostics) {
  // R14 flags explicitly weakened memory orders without an adjacent
  // `// order:` justification; same-line tags, comment-block tags,
  // continuation-line walks, seq_cst, the allow() escape hatch and
  // files outside src/ all stay silent.
  const LintRun run = run_lint("--root " + fixture_root("atomics"));
  EXPECT_EQ(run.exit_code, 1);

  const std::vector<Finding> expected = {
      {"src/support/bad_order.cpp", 8, "atomic-order-audit"},
      {"src/support/bad_order.cpp", 12, "atomic-order-audit"},
  };
  std::vector<Finding> got = parse_findings(run.output);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << run.output;
}

TEST(Lint, SelfTestPasses) {
  // The embedded fixture expectations and the binary agree — this is
  // the same gate CI runs before the libraries compile.
  const LintRun run = run_lint("--root " MPICP_SOURCE_DIR " --self-test");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("mpicp_lint --self-test: PASS"),
            std::string::npos)
      << run.output;
}

TEST(Lint, GraphCacheKeepsFindingsIdentical) {
  // A cold run writes the include-graph cache; a warm run reuses it and
  // must report byte-identical diagnostics.
  namespace fs = std::filesystem;
  const fs::path cache =
      fs::temp_directory_path() / "mpicp_lint_test_graph.cache";
  fs::remove(cache);
  const std::string args = "--root " + fixture_root("layers") +
                           " --graph-cache " + cache.string();
  const LintRun cold = run_lint(args);
  EXPECT_EQ(cold.exit_code, 1);
  ASSERT_TRUE(fs::exists(cache));
  const LintRun warm = run_lint(args);
  EXPECT_EQ(warm.exit_code, 1);
  EXPECT_EQ(cold.output, warm.output);
  fs::remove(cache);
}

TEST(Lint, SuppressionsSilenceEveryForm) {
  // Same-line allow, own-line allow, and allow(all) — all must hold.
  const LintRun run = run_lint("--root " + fixture_root("suppressed"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Lint, UnknownRuleInsideAllowIsItselfAFinding) {
  const LintRun run = run_lint("--root " + fixture_root("unknown"));
  EXPECT_EQ(run.exit_code, 1);
  const std::vector<Finding> got = parse_findings(run.output);
  ASSERT_EQ(got.size(), 1u) << run.output;
  EXPECT_EQ(got[0], (Finding{"src/unknown.cpp", 3, "header-hygiene"}));
}

TEST(Lint, BaselineGrandfathersFindings) {
  namespace fs = std::filesystem;
  const fs::path baseline =
      fs::temp_directory_path() / "mpicp_lint_test_baseline.txt";

  // --write-baseline captures the dirty tree's findings...
  const LintRun wrote = run_lint("--root " + fixture_root("dirty") +
                                 " --write-baseline " + baseline.string());
  EXPECT_EQ(wrote.exit_code, 0);
  std::ifstream in(baseline);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("src/bad_rand.cpp: [no-raw-rand]"),
            std::string::npos)
      << text;

  // ...and a rerun against that baseline is clean.
  const LintRun rerun = run_lint("--root " + fixture_root("dirty") +
                                 " --baseline " + baseline.string());
  EXPECT_EQ(rerun.exit_code, 0) << rerun.output;
  fs::remove(baseline);
}

TEST(Lint, MissingBaselineFileIsAUsageError) {
  const LintRun run = run_lint("--root " + fixture_root("clean") +
                               " --baseline /nonexistent/baseline.txt");
  EXPECT_EQ(run.exit_code, 2);
}

// The gate itself: the repository must be lint-clean against the
// checked-in (empty) baseline. This is what keeps the determinism
// conventions machine-enforced from `ctest` onward.
TEST(Lint, RepositoryIsClean) {
  const LintRun run =
      run_lint("--root " MPICP_SOURCE_DIR " --baseline " MPICP_SOURCE_DIR
               "/tools/lint_baseline.txt");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
