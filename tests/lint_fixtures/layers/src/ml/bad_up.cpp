// Upward include: ml (layer 1) must not depend on tune (layer 3).
// The same edge with an inline allow() lives in allowed_up.cpp.

#include "tune/top.hpp"

namespace mpicp::ml {

int probe_size(const tune::TopThing& thing) {
  return thing.base.value;
}

}  // namespace mpicp::ml
