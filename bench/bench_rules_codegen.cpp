// Extension bench — decision-rule code generation: compress the fitted
// selector's decisions into a decision tree and emit it as C source,
// regenerating an Open-MPI-style fixed decision function from the
// learned models (the quadtree-encoding pipeline of the paper's ref
// [8], driven by ML instead of raw benchmark winners).
#include <iostream>

#include "bench_common.hpp"
#include "tune/rulegen.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());

  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  bench::fit_or_warn(selector, ds, split.train_full);

  // Label the full instance grid with the selector's picks.
  std::vector<tune::LabeledInstance> points;
  for (const bench::Instance& inst : ds.instances()) {
    points.push_back({inst, selector.select_uid(inst)});
  }

  std::printf("Decision-rule encoding of the %s selector (%zu labeled "
              "instances)\n\n",
              dataset.c_str(), points.size());
  support::TextTable table(
      {"max depth", "leaves", "agreement with selector"});
  for (const int depth : {3, 5, 8, 12}) {
    const tune::DecisionRules rules =
        tune::DecisionRules::fit(points, {.max_depth = depth});
    table.add_row({std::to_string(depth),
                   std::to_string(rules.num_leaves()),
                   support::format_double(rules.agreement(points), 4)});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  const tune::DecisionRules rules =
      tune::DecisionRules::fit(points, {.max_depth = 4});
  std::printf("\ndepth-4 tree rendered as C (what a library maintainer "
              "would hard-code):\n\n%s",
              rules.to_c_code("mpicp_select_" + dataset).c_str());
  return 0;
}
