// Continuous-retraining soak: the StreamPipeline production shape end
// to end (DESIGN.md §13). One producer lane pumps a corrupted drifting
// measurement stream — several mid-stream machine-regime shifts plus
// seeded row corruption — through a StreamPipeline against a live
// BankRegistry, while every other lane serves selections continuously.
//
// The gate is serving continuity: across bootstrap, drift detections,
// window discards, refits and hot swaps, not a single selection may
// fail. The run also reports detection latency per shift (rows from
// the shift offset to the alarm), swap/quarantine accounting from the
// pipeline's deterministic stats, and sampled per-selection latency
// percentiles into BENCH_stream.json (bench_json.hpp):
//
//   --smoke            shorter stream — the CI mode
//   --json-out=PATH    default BENCH_stream.json
//   --rows=N           override the stream length
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "collbench/dataset.hpp"
#include "collbench/streamgen.hpp"
#include "support/parallel.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"
#include "tune/registry.hpp"
#include "tune/stream.hpp"

namespace {

using namespace mpicp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The drifting campaign: the test_stream constants (compact grid so
/// the windowed KNN refits see several rows per configuration), scaled
/// to `rows` with a regime shift at 25%, 50% and 75% of the stream.
bench::StreamSpec soak_spec(std::size_t rows) {
  bench::StreamSpec spec;
  spec.uids = {1, 2, 3, 4};
  spec.nodes = {2, 8, 16};
  spec.ppns = {4};
  spec.msizes = {64, 1048576};
  spec.machine_seed = 101;
  spec.shifts = {{rows / 4, 202}, {rows / 2, 303}, {3 * rows / 4, 404}};
  spec.fault_rate = 0.08;
  spec.seed = 7;
  return spec;
}

tune::StreamOptions soak_options() {
  tune::StreamOptions opts;
  // KNN memorizes the stream's per-configuration systematic factors, so
  // stationary serving error is pure jitter and each regime shift is a
  // crisp step for the detector (see tests/test_stream.cpp).
  opts.selector.learner = "knn";
  opts.window_capacity = 512;
  opts.min_refit_rows = 160;
  opts.holdout_every = 4;
  opts.refit_cooldown = 32;
  opts.backoff_initial = 64;
  opts.accept_tolerance = 1.05;
  return opts;
}

int run_soak(std::size_t rows, int sample_every,
             const std::string& json_path) {
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  const bench::StreamSpec spec = soak_spec(rows);
  bench::MeasurementStream stream(spec);
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, soak_options());

  // Bootstrap on the pump lane alone so every serving lane finds a bank
  // from its very first query.
  std::printf("bootstrapping on the first regime...\n");
  std::size_t pumped = 0;
  while (registry.version(key) == 0 && pumped < rows / 4) {
    (void)pipeline.push_row(key, stream.next().text);
    ++pumped;
  }
  if (registry.version(key) == 0) {
    std::printf("FAIL: no bootstrap bank within the first %zu rows\n",
                pumped);
    return 1;
  }
  std::printf("bootstrap bank live after %zu rows; pumping %zu more "
              "across %zu regime shifts...\n",
              pumped, rows - pumped, spec.shifts.size());

  // Lane 0 pumps the remaining stream (drift detections, discards,
  // refits and hot swaps all happen there); the other lanes serve a
  // deterministic mixed query load, sampling every Kth latency. Spans
  // off: per-row records would dominate at soak scale.
  const int lanes = std::max(2, support::configured_threads());
  const std::size_t serves_per_lane = rows;
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::vector<double>> lane_samples(
      static_cast<std::size_t>(lanes));
  support::trace::ScopedEnabled spans_off(false);

  const auto start = Clock::now();
  support::parallel_for(
      static_cast<std::size_t>(lanes), 1, [&](std::size_t lane) {
        if (lane == 0) {
          while (pumped < rows) {
            (void)pipeline.push_row(key, stream.next().text);
            ++pumped;
          }
          return;
        }
        std::vector<double>& samples = lane_samples[lane];
        samples.reserve(serves_per_lane /
                            static_cast<std::size_t>(sample_every) +
                        1);
        for (std::size_t i = 0; i < serves_per_lane; ++i) {
          const bench::Instance inst{
              spec.nodes[i % spec.nodes.size()], spec.ppns[0],
              spec.msizes[(i / 3) % spec.msizes.size()]};
          int uid = 0;
          if (i % static_cast<std::size_t>(sample_every) == 0) {
            const auto q0 = Clock::now();
            uid = registry.select_uid_or_default(key, inst,
                                                 sim::MpiLib::kOpenMPI);
            samples.push_back(seconds_since(q0) * 1e6);
          } else {
            uid = registry.select_uid_or_default(key, inst,
                                                 sim::MpiLib::kOpenMPI);
          }
          if (uid <= 0) failed.fetch_add(1, std::memory_order_relaxed);
          served.fetch_add(1, std::memory_order_relaxed);
        }
      });
  const double elapsed_s = seconds_since(start);

  const tune::StreamPipeline::Stats& stats = pipeline.stats();

  // Detection latency per shift: rows from the shift offset to the
  // first alarm at or after it (detection_rows counts rows_seen).
  std::vector<double> latencies;
  for (const bench::RegimeShift& shift : spec.shifts) {
    for (const std::uint64_t det : stats.detection_rows) {
      if (det >= shift.at_row) {
        latencies.push_back(static_cast<double>(det - shift.at_row));
        break;
      }
    }
  }
  double latency_mean = 0.0, latency_max = 0.0;
  for (const double l : latencies) {
    latency_mean += l;
    latency_max = std::max(latency_max, l);
  }
  if (!latencies.empty()) {
    latency_mean /= static_cast<double>(latencies.size());
  }

  std::vector<double> samples;
  for (const std::vector<double>& lane : lane_samples) {
    samples.insert(samples.end(), lane.begin(), lane.end());
  }
  std::sort(samples.begin(), samples.end());
  const auto pct = [&](double p) {
    if (samples.empty()) return 0.0;
    const std::size_t idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(samples.size())));
    return samples[idx];
  };
  const double p50 = pct(0.50);
  const double p99 = pct(0.99);

  const std::uint64_t swaps = stats.refits_published > 0
                                  ? stats.refits_published - 1
                                  : 0;  // minus the bootstrap publish
  support::TextTable table({"metric", "value"});
  table.add_row({"rows pumped", std::to_string(rows)});
  table.add_row({"rows quarantined",
                 std::to_string(stats.rows_quarantined)});
  table.add_row({"regime shifts", std::to_string(spec.shifts.size())});
  table.add_row({"drift detections",
                 std::to_string(stats.drift_detections)});
  table.add_row({"hot swaps (post-bootstrap)", std::to_string(swaps)});
  table.add_row({"refits rejected",
                 std::to_string(stats.refits_rejected)});
  table.add_row({"detection latency mean [rows]",
                 support::format_double(latency_mean, 4)});
  table.add_row({"detection latency max [rows]",
                 support::format_double(latency_max, 4)});
  table.add_row({"selections served", std::to_string(served.load())});
  table.add_row({"selections failed", std::to_string(failed.load())});
  table.add_row({"serve p50 [us]", support::format_double(p50, 3)});
  table.add_row({"serve p99 [us]", support::format_double(p99, 3)});
  table.add_row({"elapsed [s]", support::format_double(elapsed_s, 3)});
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  bench::JsonMetrics metrics;
  metrics.emplace_back("rows", static_cast<double>(rows));
  metrics.emplace_back("rows_quarantined",
                       static_cast<double>(stats.rows_quarantined));
  metrics.emplace_back("shifts",
                       static_cast<double>(spec.shifts.size()));
  metrics.emplace_back("detections",
                       static_cast<double>(stats.drift_detections));
  metrics.emplace_back("hot_swaps", static_cast<double>(swaps));
  metrics.emplace_back("refits_rejected",
                       static_cast<double>(stats.refits_rejected));
  metrics.emplace_back("detection_latency_mean_rows", latency_mean);
  metrics.emplace_back("detection_latency_max_rows", latency_max);
  metrics.emplace_back("selections_served",
                       static_cast<double>(served.load()));
  metrics.emplace_back("selections_failed",
                       static_cast<double>(failed.load()));
  metrics.emplace_back("p50_us", p50);
  metrics.emplace_back("p99_us", p99);
  metrics.emplace_back("elapsed_s", elapsed_s);
  bench::json_report(json_path, "stream_soak", metrics);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (failed.load() != 0) {
    std::printf("FAIL: %llu selections failed during the soak\n",
                static_cast<unsigned long long>(failed.load()));
    return 1;
  }
  if (swaps == 0) {
    std::printf("FAIL: no hot swap happened across %zu regime shifts\n",
                spec.shifts.size());
    return 1;
  }
  std::printf("serving stayed continuous through %zu shifts: yes\n",
              spec.shifts.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_stream.json";
  std::size_t rows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = static_cast<std::size_t>(
          std::strtoull(argv[i] + 7, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (rows == 0) rows = smoke ? 4000 : 20000;
  return run_soak(rows, /*sample_every=*/16, json_path);
}
