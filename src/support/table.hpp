// Aligned plain-text table rendering for bench/example output.
//
// The bench harnesses print the rows/series the paper's tables and figures
// report; this keeps that output readable in a terminal and diffable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mpicp::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpicp::support
