#include "ml/cv.hpp"

#include "ml/learner.hpp"
#include "ml/metrics.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace mpicp::ml {

Split holdout_split(std::size_t n, double test_fraction,
                    std::uint64_t seed) {
  MPICP_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
                "test fraction must be in (0, 1)");
  support::Xoshiro256 rng(seed);
  const auto perm = rng.permutation(n);
  const auto ntest = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction * static_cast<double>(n)));
  Split split;
  for (std::size_t i = 0; i < n; ++i) {
    (i < ntest ? split.test : split.train).push_back(perm[i]);
  }
  return split;
}

std::vector<Split> kfold_splits(std::size_t n, int folds,
                                std::uint64_t seed) {
  MPICP_REQUIRE(folds >= 2 && static_cast<std::size_t>(folds) <= n,
                "invalid fold count");
  support::Xoshiro256 rng(seed);
  const auto perm = rng.permutation(n);
  std::vector<Split> splits(folds);
  for (std::size_t i = 0; i < n; ++i) {
    const int fold = static_cast<int>(i % folds);
    for (int f = 0; f < folds; ++f) {
      (f == fold ? splits[f].test : splits[f].train).push_back(perm[i]);
    }
  }
  return splits;
}

Matrix take_rows(const Matrix& x, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t f = 0; f < x.cols(); ++f) out(i, f) = x(rows[i], f);
  }
  return out;
}

std::vector<double> take(std::span<const double> y,
                         const std::vector<std::size_t>& rows) {
  std::vector<double> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = y[rows[i]];
  return out;
}

double kfold_rmse(const std::string& learner, const Matrix& x,
                  std::span<const double> y, int folds,
                  std::uint64_t seed) {
  // The fold partition is fixed up front; each fold then fits its own
  // learner instance into a preallocated slot, and the per-fold errors
  // are reduced in fold order — the result is bit-identical to the
  // serial loop at any thread count.
  MPICP_SPAN("cv.kfold_rmse");
  support::metrics::counter("cv.runs").inc();
  support::metrics::counter("cv.folds").inc(static_cast<std::size_t>(folds));
  const std::vector<Split> splits = kfold_splits(x.rows(), folds, seed);
  std::vector<double> fold_rmse(splits.size(), 0.0);
  support::parallel_for(splits.size(), 1, [&](std::size_t f) {
    MPICP_SPAN("cv.fold");
    const Split& split = splits[f];
    auto model = make_regressor(learner);
    model->fit(take_rows(x, split.train), take(y, split.train));
    const auto pred = model->predict(take_rows(x, split.test));
    fold_rmse[f] = rmse(take(y, split.test), pred);
    support::metrics::histogram("cv.fold_rmse").observe(fold_rmse[f]);
  });
  double acc = 0.0;
  for (const double r : fold_rmse) acc += r;
  return acc / folds;
}

}  // namespace mpicp::ml
