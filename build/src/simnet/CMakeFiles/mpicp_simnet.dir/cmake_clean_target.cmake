file(REMOVE_RECURSE
  "libmpicp_simnet.a"
)
