#include "tune/ruletable.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"
#include "tune/compiled_bank.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

RuleTable RuleTable::lower(const DecisionRules& rules) {
  MPICP_SPAN("tune.ruletable.lower");
  const std::vector<DecisionRules::Node>& nodes = rules.nodes();
  MPICP_REQUIRE(!nodes.empty(), "lowering an unfitted rule tree");
  RuleTable table;
  const std::size_t n = nodes.size();
  table.feature_.resize(n);
  table.threshold_.resize(n);
  table.left_.resize(n);
  table.right_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DecisionRules::Node& node = nodes[i];
    if (node.feature < 0) {
      table.feature_[i] = -1;
      table.threshold_[i] = 0.0;
      table.left_[i] = node.uid;
      table.right_[i] = -1;
    } else {
      MPICP_REQUIRE(node.feature < 3, "bad rule feature index");
      MPICP_REQUIRE(node.left >= 0 && node.left < static_cast<int>(n) &&
                        node.right >= 0 && node.right < static_cast<int>(n),
                    "rule tree child index out of range");
      table.feature_[i] = static_cast<std::int8_t>(node.feature);
      table.threshold_[i] = node.threshold;
      table.left_[i] = node.left;
      table.right_[i] = node.right;
    }
  }
  metrics::counter("ruletable.lowered").inc();
  return table;
}

int RuleTable::num_leaves() const {
  int leaves = 0;
  for (const std::int8_t f : feature_) leaves += f < 0 ? 1 : 0;
  return leaves;
}

int RuleTable::uid_for(const bench::Instance& inst) const {
  MPICP_ASSERT(!feature_.empty(), "dispatch on an empty rule table");
  // Same arithmetic as DecisionRules::feature_of, evaluated once: the
  // table promises a bit-identical walk, and log2 is the only feature
  // that costs anything.
  double feat[3];
  feat[0] = std::log2(
      static_cast<double>(std::max<std::uint64_t>(inst.msize, 1)));
  feat[1] = static_cast<double>(inst.nodes);
  feat[2] = static_cast<double>(inst.ppn);
  std::int32_t cur = 0;
  std::int8_t f = feature_[0];
  while (f >= 0) {
    cur = feat[f] < threshold_[cur] ? left_[cur] : right_[cur];
    f = feature_[cur];
  }
  return left_[cur];
}

void RuleTable::select_grid_into(std::span<const bench::Instance> grid,
                                 std::span<int> out) const {
  MPICP_SPAN("tune.ruletable.select_grid");
  MPICP_REQUIRE(!feature_.empty(), "dispatch on an empty rule table");
  MPICP_REQUIRE(out.size() == grid.size(),
                "rule table output buffer size mismatch");
  metrics::counter("ruletable.grid_requests").inc();
  metrics::counter("ruletable.grid_instances").inc(grid.size());
  // A single dispatch is a few ns; large chunks keep the pool dispatch
  // amortized and small grids serial.
  support::parallel_for(grid.size(), 1024, [&](std::size_t i) {
    out[i] = uid_for(grid[i]);
  });
}

std::vector<int> RuleTable::select_grid(
    std::span<const bench::Instance> grid) const {
  std::vector<int> out(grid.size(), -1);
  select_grid_into(grid, out);
  return out;
}

void RuleTable::save(const std::filesystem::path& path) const {
  MPICP_SPAN("tune.ruletable.save");
  MPICP_REQUIRE(!feature_.empty(), "saving an empty rule table");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  // Envelope discipline of the model files: serialize the payload to a
  // buffer first so the header carries its exact byte count and FNV-1a
  // checksum.
  std::ostringstream payload;
  ml::io::write_value(payload, agreement_);
  std::vector<int> features(feature_.begin(), feature_.end());
  ml::io::write_vector(payload, features);
  ml::io::write_vector(payload, threshold_);
  std::vector<int> left(left_.begin(), left_.end());
  std::vector<int> right(right_.begin(), right_.end());
  ml::io::write_vector(payload, left);
  ml::io::write_vector(payload, right);
  const std::string body = payload.str();

  std::ofstream os(path);
  if (!os) {
    MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  }
  os << "mpicp-ruletable 1 " << body.size() << ' ' << std::hex
     << ml::io::fnv1a64(body) << std::dec << '\n'
     << body;
  if (!os) {
    MPICP_RAISE_ERROR("failed writing rule table to " + path.string());
  }
}

RuleTable RuleTable::load(const std::filesystem::path& path) {
  MPICP_SPAN("tune.ruletable.load");
  std::ifstream is(path);
  if (!is) {
    MPICP_RAISE_PARSE("cannot open rule table file " + path.string());
  }
  ml::io::expect_tag(is, "mpicp-ruletable");
  const int version = ml::io::read_value<int>(is);
  MPICP_CHECK_PARSE(version == 1, "unsupported rule table version");
  const auto bytes = ml::io::read_value<std::size_t>(is);
  MPICP_CHECK_PARSE(bytes < (1u << 28), "implausible rule table size");
  std::string checksum_hex;
  if (!(is >> checksum_hex)) {
    MPICP_RAISE_PARSE("rule table: truncated header");
  }
  is.ignore(1);  // the newline terminating the header
  std::string body(bytes, '\0');
  is.read(body.data(), static_cast<std::streamsize>(bytes));
  MPICP_CHECK_PARSE(static_cast<std::size_t>(is.gcount()) == bytes,
                    "rule table: truncated payload");
  std::uint64_t expected = 0;
  try {
    expected = std::stoull(checksum_hex, nullptr, 16);
  } catch (const std::exception&) {
    MPICP_RAISE_PARSE("rule table: malformed checksum '" + checksum_hex +
                      "'");
  }
  MPICP_CHECK_PARSE(ml::io::fnv1a64(body) == expected,
                    "rule table: checksum mismatch (corrupt file)");

  std::istringstream ps(body);
  RuleTable table;
  table.agreement_ = ml::io::read_value<double>(ps);
  const std::vector<int> features = ml::io::read_vector<int>(ps);
  table.threshold_ = ml::io::read_vector<double>(ps);
  const std::vector<int> left = ml::io::read_vector<int>(ps);
  const std::vector<int> right = ml::io::read_vector<int>(ps);
  const std::size_t n = features.size();
  MPICP_CHECK_PARSE(n >= 1, "empty rule table file");
  MPICP_CHECK_PARSE(table.threshold_.size() == n && left.size() == n &&
                        right.size() == n,
                    "rule table array length mismatch");
  table.feature_.resize(n);
  table.left_.resize(n);
  table.right_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    MPICP_CHECK_PARSE(features[i] >= -1 && features[i] < 3,
                      "rule table: bad feature index");
    table.feature_[i] = static_cast<std::int8_t>(features[i]);
    table.left_[i] = left[i];
    table.right_[i] = right[i];
    if (features[i] >= 0) {
      const bool in_range =
          left[i] >= 0 && left[i] < static_cast<int>(n) && right[i] >= 0 &&
          right[i] < static_cast<int>(n);
      MPICP_CHECK_PARSE(in_range, "rule table: child index out of range");
    }
  }
  return table;
}

RuleDistillation distill(const CompiledBank& bank,
                         std::span<const bench::Instance> grid,
                         RuleParams params) {
  MPICP_SPAN("tune.distill");
  MPICP_REQUIRE(!grid.empty(), "cannot distill over an empty grid");
  // Label the grid with the bank's own batched argmin — the picks the
  // rules must reproduce.
  const std::vector<int> labels = bank.select_grid(grid);
  std::vector<LabeledInstance> points;
  points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    points.push_back({grid[i], labels[i]});
  }
  RuleDistillation out;
  out.grid_points = grid.size();
  out.rules = DecisionRules::fit(points, params);
  out.table = RuleTable::lower(out.rules);
  // Recount the agreement empirically through the *table* (not the
  // tree): the number the serving gate trusts is measured on the
  // artifact that will serve.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    hits += out.table.uid_for(grid[i]) == labels[i] ? 1 : 0;
  }
  out.agreement =
      static_cast<double>(hits) / static_cast<double>(grid.size());
  out.table.set_agreement(out.agreement);
  metrics::counter("ruletable.distilled").inc();
  return out;
}

}  // namespace mpicp::tune
