// ReproMPI-style budgeted benchmark runner.
//
// The paper's key benchmarking requirement (§III.A) is a *predictable
// training time*: each configuration is measured until either a maximum
// repetition count or a time budget is exhausted, whichever comes first.
// This runner reproduces that scheme on top of the simulator: the DES
// provides the deterministic base time, the noise model the observation
// distribution, and the budget logic decides how many observations a
// configuration receives.
#pragma once

#include <cstdint>
#include <vector>

#include "collbench/noise.hpp"
#include "simmpi/coll/registry.hpp"
#include "simnet/network.hpp"

namespace mpicp::bench {

struct RunnerBudget {
  int max_reps = 5;          ///< cap on repetitions per configuration
  double budget_us = 1.0e6;  ///< wall-clock budget per configuration
};

struct RunnerResult {
  double des_time_us = 0.0;   ///< deterministic simulated time
  double true_time_us = 0.0;  ///< with the systematic machine factor
  std::vector<double> observations_us;
};

/// Benchmark one algorithm configuration on an existing network
/// allocation. `rng` supplies the observation noise; the uid's
/// systematic factor comes from `noise`.
[[nodiscard]] RunnerResult run_benchmark(
    sim::Network& net, sim::MpiLib lib, sim::Collective coll,
    const sim::AlgoConfig& cfg, std::uint64_t msize,
    const NoiseModel& noise, const RunnerBudget& budget,
    support::Xoshiro256& rng);

}  // namespace mpicp::bench
