#include "tune/online.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

OnlineSelector::OnlineSelector(Options options)
    : options_(std::move(options)) {
  MPICP_REQUIRE(!options_.candidate_uids.empty(),
                "online selector needs candidates");
  MPICP_REQUIRE(options_.probes_per_algorithm >= 1,
                "need at least one probe per algorithm");
  MPICP_REQUIRE(options_.max_observations_per_uid >=
                    static_cast<std::size_t>(options_.probes_per_algorithm),
                "max_observations_per_uid must cover the probe budget");
}

std::uint64_t OnlineSelector::key(const bench::Instance& inst) {
  return (static_cast<std::uint64_t>(inst.nodes) << 48) ^
         (static_cast<std::uint64_t>(inst.ppn) << 36) ^
         static_cast<std::uint64_t>(inst.msize);
}

OnlineSelector::Cell& OnlineSelector::cell(const bench::Instance& inst) {
  Cell& c = cells_[key(inst)];
  // The hash key is not invertible; keep the instance so the cells can
  // be re-exported as measurement rows (observations_dataset).
  c.inst = inst;
  return c;
}

int OnlineSelector::next_uid(const bench::Instance& inst) {
  const support::MutexLock lock(mu_);
  Cell& c = cell(inst);
  if (c.committed_uid >= 0) return c.committed_uid;
  // Round-robin over candidates that still need probes.
  const auto probes = static_cast<std::size_t>(
      options_.probes_per_algorithm);
  int least_uid = -1;
  std::size_t least = probes;
  for (const int uid : options_.candidate_uids) {
    const auto it = c.observations.find(uid);
    const std::size_t seen =
        it == c.observations.end() ? 0 : it->second.size();
    if (seen < least) {
      least = seen;
      least_uid = uid;
    }
  }
  if (least_uid >= 0) return least_uid;
  // Everything probed: commit to the best median.
  double best_time = 0.0;
  for (const auto& [uid, times] : c.observations) {
    const double med = support::median(times);
    if (c.committed_uid < 0 || med < best_time) {
      c.committed_uid = uid;
      best_time = med;
    }
  }
  return c.committed_uid;
}

void OnlineSelector::record(const bench::Instance& inst, int uid,
                            double time_us) {
  MPICP_REQUIRE(time_us > 0.0, "non-positive measurement");
  const support::MutexLock lock(mu_);
  std::vector<double>& times = cell(inst).observations[uid];
  times.push_back(time_us);
  // Bounded memory: keep only the freshest max_observations_per_uid
  // measurements (a long-running stream would otherwise grow without
  // bound per instance).
  if (times.size() > options_.max_observations_per_uid) {
    times.erase(times.begin(),
                times.begin() +
                    static_cast<std::ptrdiff_t>(
                        times.size() - options_.max_observations_per_uid));
  }
}

std::size_t OnlineSelector::observation_count() const {
  const support::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [cell_key, cell] : cells_) {
    for (const auto& [uid, times] : cell.observations) {
      total += times.size();
    }
  }
  return total;
}

bool OnlineSelector::converged(const bench::Instance& inst) const {
  const support::MutexLock lock(mu_);
  const auto it = cells_.find(key(inst));
  if (it == cells_.end()) return false;
  if (it->second.committed_uid >= 0) return true;
  for (const int uid : options_.candidate_uids) {
    const auto obs = it->second.observations.find(uid);
    const std::size_t seen =
        obs == it->second.observations.end() ? 0 : obs->second.size();
    if (seen < static_cast<std::size_t>(options_.probes_per_algorithm)) {
      return false;
    }
  }
  return true;
}

int OnlineSelector::current_best(const bench::Instance& inst) const {
  const support::MutexLock lock(mu_);
  const auto it = cells_.find(key(inst));
  MPICP_REQUIRE(it != cells_.end() && !it->second.observations.empty(),
                "no observations for instance");
  if (it->second.committed_uid >= 0) return it->second.committed_uid;
  int best_uid = -1;
  double best_time = 0.0;
  for (const auto& [uid, times] : it->second.observations) {
    const double med = support::median(times);
    if (best_uid < 0 || med < best_time) {
      best_uid = uid;
      best_time = med;
    }
  }
  return best_uid;
}

bench::Dataset OnlineSelector::observations_dataset(
    std::string name, sim::MpiLib lib, sim::Collective coll,
    std::string machine) const {
  MPICP_SPAN("online.export_dataset");
  bench::Dataset ds(std::move(name), lib, coll, std::move(machine));
  const support::MutexLock lock(mu_);
  for (const auto& [cell_key, cell] : cells_) {
    for (const auto& [uid, times] : cell.observations) {
      for (const double time_us : times) {
        ds.add({uid, cell.inst.nodes, cell.inst.ppn, cell.inst.msize,
                time_us});
      }
    }
  }
  return ds;
}

BankRegistry::RefitOutcome OnlineSelector::refit_into(
    BankRegistry& registry, const BankKey& key, sim::MpiLib lib,
    const SelectorOptions& options) const {
  MPICP_SPAN("online.refit_into");
  const bench::Dataset ds = observations_dataset(
      "online-" + to_string(key), lib, key.collective, key.machine);
  return registry.refit_and_publish(key, ds, ds.node_counts(), options);
}

}  // namespace mpicp::tune
