// Self-test for tools/bench_check: runs the real binary over generated
// bench reports / baselines and asserts the gate semantics — green
// within threshold, exit 1 only on a blocking p99 regression, advisory
// (but green) on any other directional drift, and a --write-baseline
// round-trip that compares clean against itself.
//
// The binary path is injected by CMake (MPICP_BENCH_CHECK_BIN).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct GateRun {
  int exit_code = -1;
  std::string output;  // stdout only
};

GateRun run_gate(const std::string& args) {
  const std::string cmd =
      std::string(MPICP_BENCH_CHECK_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  GateRun run;
  if (!pipe) return run;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Temp directory per test; files written here feed the binary.
class BenchCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mpicp_bench_check_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream os(path);
    os << text;
    EXPECT_TRUE(os.good()) << path;
    return path.string();
  }

  fs::path dir_;
};

std::string bench_report(double p50, double p99, double qps) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"serving_load\",\n  \"schema\": 1,\n"
                "  \"metrics\": {\n    \"queries\": 200000,\n"
                "    \"p50_us\": %g,\n    \"p99_us\": %g,\n"
                "    \"throughput_qps\": %g\n  }\n}\n",
                p50, p99, qps);
  return buf;
}

std::string baseline(double p50, double p99, double qps) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"schema\": 1,\n  \"benches\": {\n"
                "    \"serving_load\": {\n      \"queries\": 200000,\n"
                "      \"p50_us\": %g,\n      \"p99_us\": %g,\n"
                "      \"throughput_qps\": %g\n    }\n  }\n}\n",
                p50, p99, qps);
  return buf;
}

TEST_F(BenchCheckTest, WithinThresholdPasses) {
  const std::string base = write("baseline.json", baseline(0.2, 0.3, 5e6));
  // p99 10% worse: inside the 25% gate.
  const std::string cur =
      write("current.json", bench_report(0.21, 0.33, 4.8e6));
  const GateRun run =
      run_gate("--baseline " + base + " --current " + cur);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("PASS"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("BLOCKING"), std::string::npos) << run.output;
}

TEST_F(BenchCheckTest, InflatedP99IsABlockingFailure) {
  const std::string base = write("baseline.json", baseline(0.2, 0.3, 5e6));
  // p99 60% worse: past any reasonable threshold.
  const std::string cur =
      write("current.json", bench_report(0.2, 0.48, 5e6));
  const std::string report = (dir_ / "compare.txt").string();
  const GateRun run = run_gate("--baseline " + base + " --current " + cur +
                               " --report " + report);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("BLOCKING"), std::string::npos) << run.output;
  // The comparison artifact mirrors stdout.
  std::ifstream in(report);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("BLOCKING"), std::string::npos) << text;
}

TEST_F(BenchCheckTest, NonP99RegressionIsAdvisoryOnly) {
  const std::string base = write("baseline.json", baseline(0.2, 0.3, 5e6));
  // p50 doubled and throughput halved — ugly, but not the p99 gate.
  const std::string cur =
      write("current.json", bench_report(0.4, 0.3, 2.5e6));
  const GateRun run =
      run_gate("--baseline " + base + " --current " + cur);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("ADVISORY"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("PASS"), std::string::npos) << run.output;
}

TEST_F(BenchCheckTest, ThresholdIsTunable) {
  const std::string base = write("baseline.json", baseline(0.2, 0.3, 5e6));
  // 10% worse p99 passes at the default 25% but fails at 5%.
  const std::string cur =
      write("current.json", bench_report(0.2, 0.33, 5e6));
  EXPECT_EQ(run_gate("--baseline " + base + " --current " + cur).exit_code,
            0);
  EXPECT_EQ(run_gate("--baseline " + base + " --current " + cur +
                     " --threshold 0.05")
                .exit_code,
            1);
}

TEST_F(BenchCheckTest, WriteBaselineRoundTripsClean) {
  const std::string cur =
      write("current.json", bench_report(0.2, 0.3, 5e6));
  const std::string base = (dir_ / "baseline.json").string();
  EXPECT_EQ(run_gate("--write-baseline " + base + " --current " + cur)
                .exit_code,
            0);
  const GateRun rerun =
      run_gate("--baseline " + base + " --current " + cur);
  EXPECT_EQ(rerun.exit_code, 0) << rerun.output;
  EXPECT_NE(rerun.output.find("PASS"), std::string::npos) << rerun.output;
}

TEST_F(BenchCheckTest, UnknownBenchIsInformationalNotFatal) {
  // A brand-new bench with no baseline entry must not block merges.
  const std::string base = write(
      "baseline.json",
      "{\n  \"schema\": 1,\n  \"benches\": {\n    \"other\": {\n"
      "      \"p99_us\": 1\n    }\n  }\n}\n");
  const std::string cur =
      write("current.json", bench_report(0.2, 0.3, 5e6));
  const GateRun run =
      run_gate("--baseline " + base + " --current " + cur);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("no baseline bench"), std::string::npos)
      << run.output;
}

TEST_F(BenchCheckTest, MissingOrMalformedInputsAreUsageErrors) {
  const std::string cur =
      write("current.json", bench_report(0.2, 0.3, 5e6));
  EXPECT_EQ(run_gate("--baseline /nonexistent.json --current " + cur)
                .exit_code,
            2);
  const std::string bad = write("bad.json", "{\"not\": [\"a\", \"bench\"]}");
  const std::string base = write("baseline.json", baseline(0.2, 0.3, 5e6));
  EXPECT_EQ(run_gate("--baseline " + base + " --current " + bad).exit_code,
            2);
  EXPECT_EQ(run_gate("--baseline " + base).exit_code, 2);
}

}  // namespace
