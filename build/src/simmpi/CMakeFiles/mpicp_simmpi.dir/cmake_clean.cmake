file(REMOVE_RECURSE
  "CMakeFiles/mpicp_simmpi.dir/coll/allreduce.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/allreduce.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/alltoall.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/alltoall.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/bcast.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/bcast.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/datainit.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/datainit.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/decision.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/decision.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/pipeline.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/pipeline.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/registry.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/registry.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/smallcoll.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/smallcoll.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/trees.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/trees.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/coll/types.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/coll/types.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/datacheck.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/datacheck.cpp.o.d"
  "CMakeFiles/mpicp_simmpi.dir/executor.cpp.o"
  "CMakeFiles/mpicp_simmpi.dir/executor.cpp.o.d"
  "libmpicp_simmpi.a"
  "libmpicp_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
