// Drift detection for the continuous retraining pipeline (DESIGN.md
// §13).
//
// A served bank encodes one machine regime; when the machine drifts
// (contention patterns shift, a preset swap mid-stream in the simulated
// campaigns), the signed relative prediction error of the live bank
// stops hovering around zero. Two complementary detectors watch it:
//
//  * per-uid EWMA of the *signed* relative error — catches a sustained
//    bias on any single algorithm's model, which is what a systematic
//    regime factor change looks like;
//  * a Page–Hinkley cumulative test on the *absolute* relative error —
//    catches a broad accuracy collapse even when per-uid biases cancel.
//
// Both are deterministic: the thresholds are fixed options and the
// statistics are pure functions of the observation sequence, so a
// seeded stream always alarms at the same observation. The alarm is
// sticky until reset() — the pipeline resets after a successful swap,
// giving the refit bank a fresh baseline.
#pragma once

#include <cstddef>
#include <map>

namespace mpicp::tune {

struct DriftOptions {
  double ewma_alpha = 0.1;       ///< EWMA smoothing factor
  double ewma_threshold = 0.45;  ///< alarm when any |per-uid EWMA| exceeds
  /// No alarm before this many total observations (warm-up: the first
  /// errors after a refit reflect holdout noise, not drift).
  std::size_t min_samples = 48;
  /// A uid's EWMA only participates once it has this many observations
  /// (a zero-initialized EWMA needs ~2/alpha samples to reach level).
  std::size_t min_uid_samples = 16;
  double ph_delta = 0.05;   ///< Page–Hinkley drift allowance
  double ph_lambda = 12.0;  ///< Page–Hinkley alarm threshold
  /// Winsorize |rel_error| at this value before feeding either
  /// statistic: a single straggler spike (2-3x the true time) must not
  /// dominate an EWMA or dump a huge Page–Hinkley increment.
  double clamp = 3.0;
};

/// Which statistic crossed its threshold on an observation.
enum class DriftSignal {
  kNone,
  kEwma,         ///< a per-uid signed-error EWMA left its band
  kPageHinkley,  ///< the cumulative absolute-error test alarmed
};

const char* to_string(DriftSignal signal);

class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options = {});

  /// Feed one signed relative prediction error — (measured - predicted)
  /// / predicted — for the algorithm `uid`. Returns the signal that
  /// first crossed its threshold on this observation (kNone while the
  /// stream looks stationary). Once alarmed the detector stays alarmed
  /// (drifted() == true) until reset().
  DriftSignal observe(int uid, double rel_error);

  bool drifted() const { return drifted_; }

  /// Fresh baseline (after a successful refit-and-swap): clears the
  /// alarm, every EWMA and the Page–Hinkley accumulators.
  void reset();

  std::size_t samples() const { return samples_; }
  /// Largest |EWMA| among warmed-up uids (0 when none) — exposed for
  /// stats and the stationarity property test.
  double max_abs_ewma() const;
  /// Current Page–Hinkley statistic m_t - min(m_t).
  double ph_statistic() const { return ph_cum_ - ph_min_; }

 private:
  struct Ewma {
    double value = 0.0;
    std::size_t count = 0;
  };

  DriftOptions options_;
  std::map<int, Ewma> per_uid_;
  std::size_t samples_ = 0;
  // Page–Hinkley on |rel_error|: running mean, cumulative deviation and
  // its minimum.
  double ph_mean_ = 0.0;
  double ph_cum_ = 0.0;
  double ph_min_ = 0.0;
  bool drifted_ = false;
};

}  // namespace mpicp::tune
