file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_allreduce_jupiter.dir/bench_fig7_allreduce_jupiter.cpp.o"
  "CMakeFiles/bench_fig7_allreduce_jupiter.dir/bench_fig7_allreduce_jupiter.cpp.o.d"
  "bench_fig7_allreduce_jupiter"
  "bench_fig7_allreduce_jupiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_allreduce_jupiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
