
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/coll/allreduce.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/allreduce.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/allreduce.cpp.o.d"
  "/root/repo/src/simmpi/coll/alltoall.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/alltoall.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/alltoall.cpp.o.d"
  "/root/repo/src/simmpi/coll/bcast.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/bcast.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/bcast.cpp.o.d"
  "/root/repo/src/simmpi/coll/datainit.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/datainit.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/datainit.cpp.o.d"
  "/root/repo/src/simmpi/coll/decision.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/decision.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/decision.cpp.o.d"
  "/root/repo/src/simmpi/coll/pipeline.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/pipeline.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/pipeline.cpp.o.d"
  "/root/repo/src/simmpi/coll/registry.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/registry.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/registry.cpp.o.d"
  "/root/repo/src/simmpi/coll/smallcoll.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/smallcoll.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/smallcoll.cpp.o.d"
  "/root/repo/src/simmpi/coll/trees.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/trees.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/trees.cpp.o.d"
  "/root/repo/src/simmpi/coll/types.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/types.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/coll/types.cpp.o.d"
  "/root/repo/src/simmpi/datacheck.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/datacheck.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/datacheck.cpp.o.d"
  "/root/repo/src/simmpi/executor.cpp" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/executor.cpp.o" "gcc" "src/simmpi/CMakeFiles/mpicp_simmpi.dir/executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/mpicp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpicp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
