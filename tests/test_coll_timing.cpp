// Timing-model sanity properties of the simulated collectives: the
// qualitative effects the paper's algorithm-selection problem lives on
// must be present (monotonicity, tree-vs-linear crossover, segmentation
// payoff for large messages, hierarchy sensitivity).
#include <gtest/gtest.h>

#include "simmpi/coll/bcast.hpp"
#include "simmpi/coll/smallcoll.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"

namespace mpicp::sim {
namespace {

double run_uid(MpiLib lib, Collective coll, int uid, int nodes, int ppn,
               std::size_t bytes) {
  const Comm comm(nodes, ppn);
  MachineDesc desc = hydra_machine();
  Network net(desc, nodes, ppn);
  Executor exec(net);
  const AlgoConfig& cfg = config_by_uid(lib, coll, uid);
  BuiltCollective built = build_algorithm(lib, coll, cfg, comm, bytes, 0,
                                          /*tracking=*/false);
  return exec.run(built.programs).makespan_us;
}

double run_built(BuiltCollective built, int nodes, int ppn) {
  MachineDesc desc = hydra_machine();
  Network net(desc, nodes, ppn);
  Executor exec(net);
  return exec.run(built.programs).makespan_us;
}

int uid_of(MpiLib lib, Collective coll, const std::string& name,
           std::size_t seg, int param) {
  for (const auto& cfg : algorithm_configs(lib, coll)) {
    if (cfg.name == name && cfg.seg_bytes == seg && cfg.param == param) {
      return cfg.uid;
    }
  }
  throw std::runtime_error("no such config in test: " + name);
}

TEST(Timing, RuntimeIncreasesWithMessageSize) {
  for (const auto& cfg :
       algorithm_configs(MpiLib::kOpenMPI, Collective::kBcast)) {
    double prev = 0.0;
    for (const std::size_t m : {256u, 4096u, 65536u, 1048576u}) {
      const double t = run_uid(MpiLib::kOpenMPI, Collective::kBcast,
                               cfg.uid, 8, 4, m);
      EXPECT_GT(t, prev * 0.999) << cfg.label() << " m=" << m;
      prev = t;
    }
  }
}

TEST(Timing, RuntimeIncreasesWithScaleForTrees) {
  const int uid = uid_of(MpiLib::kOpenMPI, Collective::kBcast, "binomial",
                         0, 0);
  const double t8 =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, uid, 8, 4, 4096);
  const double t32 =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, uid, 32, 4, 4096);
  EXPECT_GT(t32, t8);
}

TEST(Timing, BinomialBeatsLinearAtScaleForSmallMessages) {
  const int lin =
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "linear", 0, 0);
  const int bin =
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "binomial", 0, 0);
  const double t_lin =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, lin, 32, 8, 256);
  const double t_bin =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, bin, 32, 8, 256);
  EXPECT_GT(t_lin, 3.0 * t_bin);  // root NIC serialization must bite
}

TEST(Timing, SegmentationHelpsLargeBroadcasts) {
  // The Figure 2 effect: a segmented chain beats the linear broadcast by
  // a large factor at 4 MiB, and an unsegmented pipeline is worse than a
  // segmented one.
  const std::size_t m = 4u << 20;
  const double t_linear = run_uid(
      MpiLib::kOpenMPI, Collective::kBcast,
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "linear", 0, 0), 16, 4,
      m);
  const double t_chain = run_uid(
      MpiLib::kOpenMPI, Collective::kBcast,
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "chain", 16384, 4), 16,
      4, m);
  EXPECT_GT(t_linear, 5.0 * t_chain);

  const double t_pipe_unseg = run_uid(
      MpiLib::kOpenMPI, Collective::kBcast,
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "pipeline", 0, 0), 16, 4,
      m);
  const double t_pipe_seg = run_uid(
      MpiLib::kOpenMPI, Collective::kBcast,
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "pipeline", 65536, 0),
      16, 4, m);
  EXPECT_GT(t_pipe_unseg, 2.0 * t_pipe_seg);
}

TEST(Timing, RingAllreduceWinsForLargeMessages) {
  const int ring =
      uid_of(MpiLib::kOpenMPI, Collective::kAllreduce, "ring", 0, 0);
  const int lin = uid_of(MpiLib::kOpenMPI, Collective::kAllreduce,
                         "basic_linear", 0, 0);
  const std::size_t m = 4u << 20;
  const double t_ring =
      run_uid(MpiLib::kOpenMPI, Collective::kAllreduce, ring, 16, 4, m);
  const double t_lin =
      run_uid(MpiLib::kOpenMPI, Collective::kAllreduce, lin, 16, 4, m);
  EXPECT_GT(t_lin, 3.0 * t_ring);
}

TEST(Timing, RecursiveDoublingWinsForSmallAllreduce) {
  const int rd = uid_of(MpiLib::kOpenMPI, Collective::kAllreduce,
                        "recursive_doubling", 0, 0);
  const int ring =
      uid_of(MpiLib::kOpenMPI, Collective::kAllreduce, "ring", 0, 0);
  const double t_rd =
      run_uid(MpiLib::kOpenMPI, Collective::kAllreduce, rd, 32, 4, 64);
  const double t_ring =
      run_uid(MpiLib::kOpenMPI, Collective::kAllreduce, ring, 32, 4, 64);
  EXPECT_GT(t_ring, 2.0 * t_rd);  // p-1 latency steps vs log2 p
}

TEST(Timing, BruckBeatsLinearForTinyAlltoall) {
  const int bruck = uid_of(MpiLib::kIntelMPI, Collective::kAlltoall,
                           "bruck", 0, 2);
  const int pair = uid_of(MpiLib::kIntelMPI, Collective::kAlltoall,
                          "pairwise", 0, 0);
  const double t_bruck =
      run_uid(MpiLib::kIntelMPI, Collective::kAlltoall, bruck, 16, 4, 8);
  const double t_pair =
      run_uid(MpiLib::kIntelMPI, Collective::kAlltoall, pair, 16, 4, 8);
  EXPECT_LT(t_bruck, t_pair);
}

TEST(Timing, PairwiseBeatsBruckForLargeAlltoall) {
  const int bruck = uid_of(MpiLib::kIntelMPI, Collective::kAlltoall,
                           "bruck", 0, 2);
  const int pair = uid_of(MpiLib::kIntelMPI, Collective::kAlltoall,
                          "pairwise", 0, 0);
  const double t_bruck = run_uid(MpiLib::kIntelMPI, Collective::kAlltoall,
                                 bruck, 8, 4, 65536);
  const double t_pair = run_uid(MpiLib::kIntelMPI, Collective::kAlltoall,
                                pair, 8, 4, 65536);
  EXPECT_LT(t_pair, t_bruck);  // Bruck ships each byte log p times
}

TEST(Timing, HierarchicalBcastHelpsAtHighPpn) {
  // With many ranks per node, a topology-aware chain crosses the fabric
  // once per node instead of once per rank. (The binomial tree under
  // block placement is naturally hierarchy-friendly, so the effect is
  // starkest for the chain/pipeline family.)
  const std::size_t m = 65536;
  const double t_flat = run_uid(
      MpiLib::kIntelMPI, Collective::kBcast,
      uid_of(MpiLib::kIntelMPI, Collective::kBcast, "pipeline", 65536, 0),
      7, 24, m);
  const double t_hier = run_uid(
      MpiLib::kIntelMPI, Collective::kBcast,
      uid_of(MpiLib::kIntelMPI, Collective::kBcast, "topo_pipeline", 65536,
             0),
      7, 24, m);
  EXPECT_LT(t_hier, 0.5 * t_flat);
}

TEST(Timing, SingleRankCollectivesAreCheap) {
  const double t = run_uid(
      MpiLib::kOpenMPI, Collective::kBcast,
      uid_of(MpiLib::kOpenMPI, Collective::kBcast, "binomial", 0, 0), 1, 1,
      1 << 20);
  EXPECT_LT(t, 1.0);
}

TEST(Timing, DeterministicAcrossRuns) {
  const int uid = uid_of(MpiLib::kOpenMPI, Collective::kBcast, "chain",
                         16384, 8);
  const double a =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, uid, 16, 8, 1 << 20);
  const double b =
      run_uid(MpiLib::kOpenMPI, Collective::kBcast, uid, 16, 8, 1 << 20);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Timing, RecursiveDoublingScanBeatsLinearChainAtScale) {
  const Comm comm(16, 4);
  const double t_lin = run_built(scan_linear(comm, 4096), 16, 4);
  const double t_rd =
      run_built(scan_recursive_doubling(comm, 4096), 16, 4);
  EXPECT_GT(t_lin, 3.0 * t_rd);  // O(p) chain vs O(log p) rounds
}

TEST(Timing, ReduceScatterMovesLessThanAllreduce) {
  // Reduce-scatter is strictly a prefix of the ring allreduce, so it
  // must be faster for the same payload.
  const Comm comm(8, 4);
  const std::size_t m = 1u << 20;
  const double t_rs = run_built(reduce_scatter_ring(comm, m), 8, 4);
  const double t_ar = run_uid(
      MpiLib::kOpenMPI, Collective::kAllreduce,
      uid_of(MpiLib::kOpenMPI, Collective::kAllreduce, "ring", 0, 0), 8, 4,
      m);
  EXPECT_LT(t_rs, t_ar);
}

TEST(Timing, RootRotationKeepsCostSimilar) {
  const Comm comm(8, 4);
  const double t0 =
      run_built(bcast_binomial(comm, 4096, 0, /*root=*/0), 8, 4);
  const double t5 =
      run_built(bcast_binomial(comm, 4096, 0, /*root=*/5), 8, 4);
  EXPECT_NEAR(t0, t5, t0 * 0.8);
}

}  // namespace
}  // namespace mpicp::sim
