#include "tune/drift.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

const char* to_string(DriftSignal signal) {
  switch (signal) {
    case DriftSignal::kNone: return "none";
    case DriftSignal::kEwma: return "ewma";
    case DriftSignal::kPageHinkley: return "page-hinkley";
  }
  return "unknown";
}

DriftDetector::DriftDetector(DriftOptions options)
    : options_(options) {
  MPICP_REQUIRE(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1]");
  MPICP_REQUIRE(options_.ewma_threshold > 0.0,
                "ewma_threshold must be positive");
  MPICP_REQUIRE(options_.ph_lambda > 0.0, "ph_lambda must be positive");
  MPICP_REQUIRE(options_.clamp > 0.0, "clamp must be positive");
}

DriftSignal DriftDetector::observe(int uid, double rel_error) {
  MPICP_SPAN("drift.observe");
  if (!std::isfinite(rel_error)) return DriftSignal::kNone;
  rel_error = std::clamp(rel_error, -options_.clamp, options_.clamp);
  ++samples_;

  // Per-uid EWMA of the signed error. Zero-initialized and always
  // blended: early observations pull the statistic toward level
  // gradually, so one outlier among the first samples cannot start the
  // EWMA above threshold.
  Ewma& e = per_uid_[uid];
  ++e.count;
  e.value = options_.ewma_alpha * rel_error +
            (1.0 - options_.ewma_alpha) * e.value;

  // Page–Hinkley on the absolute error: track the cumulative deviation
  // of |x_t| from its running mean (minus the drift allowance delta) and
  // alarm when it climbs ph_lambda above its own minimum.
  const double x = std::abs(rel_error);
  ph_mean_ += (x - ph_mean_) / static_cast<double>(samples_);
  ph_cum_ += x - ph_mean_ - options_.ph_delta;
  if (ph_cum_ < ph_min_) ph_min_ = ph_cum_;

  if (samples_ < options_.min_samples) return DriftSignal::kNone;

  const bool was_drifted = drifted_;
  if (e.count >= options_.min_uid_samples &&
      std::abs(e.value) > options_.ewma_threshold) {
    drifted_ = true;
    return was_drifted ? DriftSignal::kNone : DriftSignal::kEwma;
  }
  if (ph_statistic() > options_.ph_lambda) {
    drifted_ = true;
    return was_drifted ? DriftSignal::kNone : DriftSignal::kPageHinkley;
  }
  return DriftSignal::kNone;
}

void DriftDetector::reset() {
  per_uid_.clear();
  samples_ = 0;
  ph_mean_ = 0.0;
  ph_cum_ = 0.0;
  ph_min_ = 0.0;
  drifted_ = false;
}

double DriftDetector::max_abs_ewma() const {
  double best = 0.0;
  for (const auto& [uid, e] : per_uid_) {
    if (e.count < options_.min_uid_samples) continue;
    best = std::max(best, std::abs(e.value));
  }
  return best;
}

}  // namespace mpicp::tune
