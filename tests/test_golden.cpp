// Golden regression test of the full ingest -> fit -> select pipeline.
//
// One fixed-seed Bcast campaign (synthetic data, 10% injected CSV
// corruption, one forced fit fallback) runs end to end; its observable
// outcome — ingest accounting, fit report, every selection over a fixed
// instance grid, and the metrics-registry counters — is rendered as
// canonical JSON and compared *byte for byte* against the committed
// snapshot in tests/golden/. Any behavioural drift in ingest screening,
// the fallback chain, feature encoding, a learner, or the argmin shows
// up as a diff against a reviewable artifact.
//
// Refresh path: MPICP_UPDATE_GOLDEN=1 ctest -R test_golden rewrites the
// snapshot in the source tree; commit the diff deliberately.
//
// Timing metrics (span durations, fit-time histograms) are excluded —
// only deterministic counters are snapshotted, so the comparison holds
// at any MPICP_THREADS and on any machine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "collbench/dataset.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"
#include "tune/selector.hpp"

#ifndef MPICP_GOLDEN_DIR
#error "build must define MPICP_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace mpicp {
namespace {

namespace fi = support::faultinject;
namespace metrics = support::metrics;

/// Same three-algorithm Bcast shape the fault tests train on; fully
/// determined by the seed.
bench::Dataset make_synthetic(std::uint64_t seed = 1) {
  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(seed);
  for (const int n : {2, 4, 8, 16, 32}) {
    for (const int ppn : {1, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{4096}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, 0.05)});
        }
      }
    }
  }
  return ds;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

struct PipelineRun {
  bench::IngestReport ingest;
  tune::FitReport fit;
  std::string json;  ///< canonical rendering of the whole outcome
  metrics::Snapshot snapshot;
};

/// The one fixed-seed campaign this test snapshots. Resets the metrics
/// registry first, so the counters in the rendering cover exactly this
/// run.
PipelineRun run_pipeline() {
  metrics::Registry::instance().reset();
  support::trace::reset();
  PipelineRun run;

  // Ingest: save a pristine campaign, corrupt 10% of the rows with the
  // seeded injector, re-load through the tolerant path.
  const bench::Dataset pristine = make_synthetic(1);
  const auto path = std::filesystem::temp_directory_path() /
                    "mpicp_golden_bcast.csv";
  pristine.save_csv(path);
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  const std::string corrupted = fi::corrupt_csv(
      text, {.fault_rate = 0.1, .value_column = 4, .seed = 2026}, nullptr);
  {
    std::ofstream out(path);
    out << corrupted;
  }
  const bench::Dataset ds = bench::Dataset::load_csv_tolerant(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &run.ingest);
  std::filesystem::remove(path);

  // Fit: gam bank with uid 2's configured fit forced to fail once, so
  // the snapshot pins the fallback chain's behaviour too.
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  {
    fi::ScopedFaults faults({.fit_failures = {{2, 1}}});
    run.fit = selector.fit(ds, {2, 4, 8, 16, 32});
  }

  // Select over a fixed grid of unseen instances.
  std::ostringstream sel;
  bool first = true;
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const int uid = selector.select_uid_or_default(
            {n, ppn, m}, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
        sel << (first ? "" : ",") << "\n    {\"nodes\": " << n
            << ", \"ppn\": " << ppn << ", \"msize\": " << m
            << ", \"uid\": " << uid << "}";
        first = false;
      }
    }
  }

  run.snapshot = metrics::Registry::instance().snapshot();

  std::ostringstream os;
  os << "{\n";
  os << "  \"ingest\": {\n";
  os << "    \"rows_seen\": " << run.ingest.rows_seen << ",\n";
  os << "    \"rows_ingested\": " << run.ingest.rows_ingested << ",\n";
  os << "    \"rows_quarantined\": " << run.ingest.rows_quarantined
     << ",\n";
  os << "    \"reasons\": {";
  first = true;
  for (const auto& [reason, count] : run.ingest.reasons) {
    os << (first ? "" : ",") << "\n      \"" << json_escape(reason)
       << "\": " << count;
    first = false;
  }
  os << "\n    }\n  },\n";
  os << "  \"fit\": {\n";
  os << "    \"uids_total\": " << run.fit.uids_total() << ",\n";
  os << "    \"uids_clean\": " << run.fit.uids_clean() << ",\n";
  os << "    \"uids_fallback\": " << run.fit.uids_fallback() << ",\n";
  os << "    \"uids_unusable\": " << run.fit.uids_unusable() << ",\n";
  os << "    \"rows_dropped\": " << run.fit.rows_dropped() << ",\n";
  os << "    \"outcomes\": [";
  first = true;
  for (const auto& o : run.fit.outcomes) {
    os << (first ? "" : ",") << "\n      {\"uid\": " << o.uid
       << ", \"learner\": \"" << json_escape(o.learner)
       << "\", \"fallback_depth\": " << o.fallback_depth
       << ", \"rows_total\": " << o.rows_total
       << ", \"rows_dropped\": " << o.rows_dropped << "}";
    first = false;
  }
  os << "\n    ]\n  },\n";
  os << "  \"selections\": [" << sel.str() << "\n  ],\n";
  // Deterministic counters only (prefix-filtered, nonzero): histograms
  // and span timings vary run to run and are deliberately left out.
  os << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : run.snapshot.counters) {
    const bool pipeline_counter =
        name.starts_with("ingest.") || name.starts_with("fit.") ||
        name.starts_with("predict.") || name.starts_with("select.");
    if (!pipeline_counter || value == 0) continue;
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  }\n}\n";
  run.json = os.str();
  return run;
}

std::filesystem::path golden_path() {
  return std::filesystem::path(MPICP_GOLDEN_DIR) / "bcast_pipeline.json";
}

std::uint64_t counter_or_zero(const metrics::Snapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// The acceptance reconciliation: the process-wide counters must mirror
// the per-call health reports *exactly* — same totals, same per-reason
// quarantine split — or the observability layer is lying about the run.
TEST(Golden, CountersReconcileWithReports) {
  const PipelineRun run = run_pipeline();
  const metrics::Snapshot& snap = run.snapshot;

  EXPECT_EQ(counter_or_zero(snap, "ingest.files"), 1u);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_seen"),
            run.ingest.rows_seen);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_ingested"),
            run.ingest.rows_ingested);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_quarantined"),
            run.ingest.rows_quarantined);
  for (const auto& [reason, count] : run.ingest.reasons) {
    EXPECT_EQ(counter_or_zero(snap, "ingest.quarantine." + reason), count)
        << reason;
  }

  EXPECT_EQ(counter_or_zero(snap, "fit.calls"), 1u);
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_total"),
            run.fit.uids_total());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_clean"),
            run.fit.uids_clean());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_fallback"),
            run.fit.uids_fallback());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_unusable"),
            run.fit.uids_unusable());
  EXPECT_EQ(counter_or_zero(snap, "fit.rows_dropped"),
            run.fit.rows_dropped());

  // 4 node counts x 3 ppns x 3 msizes selections, each fanning out over
  // the whole (usable) bank.
  EXPECT_EQ(counter_or_zero(snap, "select.requests"), 36u);
  EXPECT_EQ(counter_or_zero(snap, "select.default_fallbacks"), 0u);
  EXPECT_EQ(counter_or_zero(snap, "predict.calls"), 36u);
  EXPECT_EQ(counter_or_zero(snap, "predict.predictions_served"),
            36u * run.fit.uids_total());
}

// Two back-to-back runs must render byte-identically — the pipeline and
// its accounting are deterministic in the seeds alone. A failure here
// means the golden comparison below would flake; fix that first.
TEST(Golden, PipelineRenderingIsDeterministic) {
  const std::string a = run_pipeline().json;
  const std::string b = run_pipeline().json;
  EXPECT_EQ(a, b);
}

TEST(Golden, MatchesCommittedSnapshot) {
  const PipelineRun run = run_pipeline();
  const auto path = golden_path();

  const char* update = std::getenv("MPICP_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << run.json;
    GTEST_SKIP() << "golden snapshot rewritten at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << path
      << " — generate it with MPICP_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(run.json, want.str())
      << "pipeline outcome drifted from the committed snapshot; if the "
         "change is intentional, refresh with MPICP_UPDATE_GOLDEN=1 and "
         "commit the diff";
}

}  // namespace
}  // namespace mpicp
