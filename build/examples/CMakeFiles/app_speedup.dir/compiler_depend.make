# Empty compiler generated dependencies file for app_speedup.
# This may be replaced when dependencies are built.
