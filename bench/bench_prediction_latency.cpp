// Prediction-latency harness: the operational costs the paper discusses
// in §II (offline selection must answer in seconds, online selection
// would need microseconds), now measured as interpreted-vs-compiled
// serving comparison plus the original google-benchmark microbenches.
//
// The comparison harness runs first: for each learner it fits a
// selector, compiles the bank, and times single-query argmin and
// whole-grid selection on both paths at one thread (the speedup is the
// engine's, not the pool's), verifying that every pick is identical.
// Results land in a BENCH_prediction.json report (bench_json.hpp).
//
//   --smoke            comparison only (gam + knn, fewer reps), skip the
//                      google-benchmark microbenches — the CI mode
//   --json-out=PATH    where to write the JSON report
//                      (default BENCH_prediction.json)
// Remaining arguments are passed through to google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "collbench/dataset.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/selector.hpp"

namespace {

using namespace mpicp;

/// Synthetic dataset shaped like d2 (13 uids, Hydra-like grid) so the
/// microbenchmarks run without the cached CSVs.
bench::Dataset make_training_data() {
  bench::Dataset ds("synthetic", sim::MpiLib::kOpenMPI,
                    sim::Collective::kAllreduce, "Hydra");
  support::Xoshiro256 rng(99);
  const std::vector<int> nodes = {4, 8, 16, 20, 24, 32, 36};
  const std::vector<int> ppns = {1, 4, 8, 16, 32};
  const std::vector<std::uint64_t> msizes = {16,    1024,   16384,
                                             65536, 524288, 4194304};
  for (int uid = 1; uid <= 13; ++uid) {
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = n * ppn;
          const double t = 5.0 + 0.2 * uid * std::log2(p) +
                           (0.001 + 0.0002 * uid) *
                               static_cast<double>(m) / std::sqrt(p);
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.05)});
          }
        }
      }
    }
  }
  return ds;
}

const bench::Dataset& training_data() {
  static const bench::Dataset ds = make_training_data();
  return ds;
}

void BM_SelectorFit(benchmark::State& state, const char* learner) {
  const bench::Dataset& ds = training_data();
  for (auto _ : state) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    benchmark::DoNotOptimize(selector.fit(ds, ds.node_counts()));
    benchmark::DoNotOptimize(selector.uids());
  }
}
BENCHMARK_CAPTURE(BM_SelectorFit, knn, "knn")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectorFit, gam, "gam")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectorFit, xgboost, "xgboost")
    ->Unit(benchmark::kMillisecond);

void BM_SelectUid(benchmark::State& state, const char* learner) {
  const bench::Dataset& ds = training_data();
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  if (selector.fit(ds, ds.node_counts()).degraded()) {
    state.SkipWithError("selector fit degraded on synthetic data");
    return;
  }
  std::uint64_t m = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select_uid({13, 16, m}));
    m = m < (1u << 22) ? m * 2 : 1;
  }
}
BENCHMARK_CAPTURE(BM_SelectUid, knn, "knn")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SelectUid, gam, "gam")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SelectUid, xgboost, "xgboost")
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatorBcastBinomial(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const sim::MachineDesc machine = sim::hydra_machine();
  const sim::Comm comm(nodes, 16);
  sim::Network net(machine, nodes, 16);
  sim::Executor exec(net);
  const auto& cfg = sim::algorithm_configs(sim::MpiLib::kOpenMPI,
                                           sim::Collective::kBcast)
                        .at(20 + 5);  // a segmented binomial config
  std::uint64_t messages = 0;
  for (auto _ : state) {
    auto built =
        sim::build_algorithm(sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                             cfg, comm, 1u << 20, 0, false);
    messages += exec.run(built.programs).num_messages;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorBcastBinomial)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorAlltoallPairwise(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const sim::MachineDesc machine = sim::hydra_machine();
  const sim::Comm comm(nodes, 8);
  sim::Network net(machine, nodes, 8);
  sim::Executor exec(net);
  const auto& configs = sim::algorithm_configs(sim::MpiLib::kIntelMPI,
                                               sim::Collective::kAlltoall);
  const auto& cfg = configs.at(2);  // pairwise
  std::uint64_t messages = 0;
  for (auto _ : state) {
    auto built = sim::build_algorithm(sim::MpiLib::kIntelMPI,
                                      sim::Collective::kAlltoall, cfg, comm,
                                      4096, 0, false);
    messages += exec.run(built.programs).num_messages;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorAlltoallPairwise)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Interpreted vs compiled serving comparison (the perf trajectory).
// ---------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Query instances: the training grid plus extrapolated node counts —
/// the shape a SLURM-prolog tuning sweep asks for.
std::vector<bench::Instance> make_query_grid() {
  std::vector<bench::Instance> grid;
  const std::vector<int> nodes = {4, 8, 16, 20, 24, 32, 36, 40, 64};
  const std::vector<int> ppns = {1, 4, 8, 16, 32};
  const std::vector<std::uint64_t> msizes = {16,    1024,   16384,
                                             65536, 524288, 4194304};
  grid.reserve(nodes.size() * ppns.size() * msizes.size());
  for (const int n : nodes) {
    for (const int ppn : ppns) {
      for (const std::uint64_t m : msizes) {
        grid.push_back({n, ppn, m});
      }
    }
  }
  return grid;
}

struct ComparisonRow {
  std::string learner;
  double single_us_interpreted = 0.0;
  double single_us_compiled = 0.0;
  double grid_us_interpreted = 0.0;  // per instance
  double grid_us_compiled = 0.0;     // per instance
  bool picks_identical = true;

  double speedup_single() const {
    return single_us_interpreted / single_us_compiled;
  }
  double speedup_grid() const {
    return grid_us_interpreted / grid_us_compiled;
  }
};

ComparisonRow compare_serving(const std::string& learner, int repeats) {
  const bench::Dataset& ds = training_data();
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  (void)selector.fit(ds, ds.node_counts());
  const tune::CompiledBank bank = selector.compile();
  const std::vector<bench::Instance> grid = make_query_grid();

  // One thread: what is measured is the engine, not the pool.
  support::ScopedThreads scoped(1);
  ComparisonRow row;
  row.learner = learner;
  row.single_us_interpreted = 1e300;
  row.single_us_compiled = 1e300;
  row.grid_us_interpreted = 1e300;
  row.grid_us_compiled = 1e300;

  std::vector<int> interpreted_picks(grid.size());
  std::vector<int> compiled_picks;
  for (int rep = 0; rep < repeats; ++rep) {
    auto start = Clock::now();
    for (std::size_t i = 0; i < grid.size(); ++i) {
      interpreted_picks[i] = selector.select_uid(grid[i]);
    }
    row.grid_us_interpreted =
        std::min(row.grid_us_interpreted,
                 seconds_since(start) * 1e6 / grid.size());

    start = Clock::now();
    compiled_picks = bank.select_grid(grid);
    row.grid_us_compiled = std::min(
        row.grid_us_compiled, seconds_since(start) * 1e6 / grid.size());
    if (compiled_picks != interpreted_picks) row.picks_identical = false;

    // Single-query latency over a cycling instance, amortized.
    constexpr int kSingleIters = 64;
    start = Clock::now();
    for (int i = 0; i < kSingleIters; ++i) {
      (void)selector.select_uid(grid[i % grid.size()]);
    }
    row.single_us_interpreted =
        std::min(row.single_us_interpreted,
                 seconds_since(start) * 1e6 / kSingleIters);

    start = Clock::now();
    for (int i = 0; i < kSingleIters; ++i) {
      if (bank.select_uid(grid[i % grid.size()]) !=
          interpreted_picks[i % grid.size()]) {
        row.picks_identical = false;
      }
    }
    row.single_us_compiled =
        std::min(row.single_us_compiled,
                 seconds_since(start) * 1e6 / kSingleIters);
  }
  return row;
}

/// Per-layout grid-argmin comparison for the tree-ensemble learners
/// (DESIGN.md §16): the PR 8 per-instance pointer-free argmin
/// (select_grid_legacy) against the blocked batched kernel
/// (select_grid_into), p50/p99 per instance over repeated full-grid
/// passes at one thread.
struct LayoutRow {
  std::string learner;
  double legacy_p50_us = 0.0;
  double legacy_p99_us = 0.0;
  double batched_p50_us = 0.0;
  double batched_p99_us = 0.0;
  bool picks_identical = true;

  double speedup() const { return legacy_p50_us / batched_p50_us; }
};

double percentile_of(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

LayoutRow compare_layouts(const std::string& learner, int reps) {
  const bench::Dataset& ds = training_data();
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  (void)selector.fit(ds, ds.node_counts());
  const tune::CompiledBank bank = selector.compile();
  const std::vector<bench::Instance> grid = make_query_grid();

  support::ScopedThreads scoped(1);
  LayoutRow row;
  row.learner = learner;
  std::vector<double> legacy_us(reps, 0.0);
  std::vector<double> batched_us(reps, 0.0);
  std::vector<int> legacy_picks;
  std::vector<int> batched_picks(grid.size(), -1);
  for (int rep = 0; rep < reps; ++rep) {
    auto start = Clock::now();
    legacy_picks = bank.select_grid_legacy(grid);
    legacy_us[rep] = seconds_since(start) * 1e6 / grid.size();

    start = Clock::now();
    bank.select_grid_into(grid, batched_picks);
    batched_us[rep] = seconds_since(start) * 1e6 / grid.size();
    if (batched_picks != legacy_picks) row.picks_identical = false;
  }
  row.legacy_p50_us = percentile_of(legacy_us, 0.50);
  row.legacy_p99_us = percentile_of(legacy_us, 0.99);
  row.batched_p50_us = percentile_of(batched_us, 0.50);
  row.batched_p99_us = percentile_of(batched_us, 0.99);
  return row;
}

int run_comparison(bool smoke, const std::string& json_path) {
  const std::vector<std::string> learners =
      smoke ? std::vector<std::string>{"gam", "knn"}
            : std::vector<std::string>{"gam",    "knn", "linear",
                                       "median", "rf",  "xgboost"};
  const int repeats = smoke ? 2 : 3;

  std::printf("interpreted vs compiled serving (1 thread, best of %d, "
              "%zu-instance grid)\n\n",
              repeats, make_query_grid().size());
  support::TextTable table({"learner", "single interp [us]",
                            "single compiled [us]", "speedup",
                            "grid/inst interp [us]",
                            "grid/inst compiled [us]", "speedup",
                            "picks identical"});
  bench::JsonMetrics metrics;
  bool all_identical = true;
  std::vector<ComparisonRow> rows;
  rows.reserve(learners.size());
  for (const std::string& learner : learners) {
    rows.push_back(compare_serving(learner, repeats));
    const ComparisonRow& row = rows.back();
    all_identical = all_identical && row.picks_identical;
    table.add_row(
        {row.learner, support::format_double(row.single_us_interpreted, 2),
         support::format_double(row.single_us_compiled, 2),
         support::format_double(row.speedup_single(), 2),
         support::format_double(row.grid_us_interpreted, 2),
         support::format_double(row.grid_us_compiled, 2),
         support::format_double(row.speedup_grid(), 2),
         row.picks_identical ? "yes" : "NO"});
    metrics.emplace_back(row.learner + ".single_us_interpreted",
                         row.single_us_interpreted);
    metrics.emplace_back(row.learner + ".single_us_compiled",
                         row.single_us_compiled);
    metrics.emplace_back(row.learner + ".speedup_single",
                         row.speedup_single());
    metrics.emplace_back(row.learner + ".grid_us_per_instance_interpreted",
                         row.grid_us_interpreted);
    metrics.emplace_back(row.learner + ".grid_us_per_instance_compiled",
                         row.grid_us_compiled);
    metrics.emplace_back(row.learner + ".speedup_grid",
                         row.speedup_grid());
  }
  // Headline trajectory keys: the default serving learner.
  for (const ComparisonRow& row : rows) {
    if (row.learner == "gam") {
      metrics.emplace_back("speedup_single", row.speedup_single());
      metrics.emplace_back("speedup_grid", row.speedup_grid());
    }
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  // Blocked-layout trajectory for the tree ensembles: legacy
  // per-instance argmin vs the batched kernel, both layouts must pick
  // identically and the batched kernel must clear 1.5x at p50.
  const int layout_reps = smoke ? 24 : 64;
  std::printf("\nGBT/RF grid argmin per layout (1 thread, %d full-grid "
              "passes)\n\n",
              layout_reps);
  support::TextTable layout_table(
      {"learner", "legacy p50 [us/inst]", "legacy p99 [us/inst]",
       "batched p50 [us/inst]", "batched p99 [us/inst]", "p50 speedup",
       "picks identical"});
  bool layouts_identical = true;
  double min_layout_speedup = 1e300;
  for (const std::string& learner : {"xgboost", "rf"}) {
    const LayoutRow row = compare_layouts(learner, layout_reps);
    layouts_identical = layouts_identical && row.picks_identical;
    min_layout_speedup = std::min(min_layout_speedup, row.speedup());
    layout_table.add_row(
        {row.learner, support::format_double(row.legacy_p50_us, 3),
         support::format_double(row.legacy_p99_us, 3),
         support::format_double(row.batched_p50_us, 3),
         support::format_double(row.batched_p99_us, 3),
         support::format_double(row.speedup(), 2),
         row.picks_identical ? "yes" : "NO"});
    metrics.emplace_back(row.learner + ".grid_legacy_p50_us",
                         row.legacy_p50_us);
    metrics.emplace_back(row.learner + ".grid_legacy_p99_us",
                         row.legacy_p99_us);
    metrics.emplace_back(row.learner + ".grid_batched_p50_us",
                         row.batched_p50_us);
    metrics.emplace_back(row.learner + ".grid_batched_p99_us",
                         row.batched_p99_us);
    metrics.emplace_back(row.learner + ".layout_speedup_p50",
                         row.speedup());
  }
  metrics.emplace_back("layout_speedup_min", min_layout_speedup);
  std::ostringstream os_layout;
  layout_table.print(os_layout);
  std::fputs(os_layout.str().c_str(), stdout);

  bench::json_report(json_path, "prediction_latency", metrics);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!all_identical) {
    std::printf("\nFAIL: compiled picks differ from the interpreted "
                "selector\n");
    return 1;
  }
  std::printf("compiled picks bit-identical to interpreted: yes\n");
  if (!layouts_identical) {
    std::printf("FAIL: batched layout picks differ from the legacy "
                "layout\n");
    return 1;
  }
  std::printf("batched layout picks bit-identical to legacy: yes\n");
  if (min_layout_speedup < 1.5) {
    std::printf("FAIL: batched grid argmin speedup %.2fx below the 1.5x "
                "gate\n",
                min_layout_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the harness flags; everything else goes to google-benchmark.
  bool smoke = false;
  std::string json_path = "BENCH_prediction.json";
  std::vector<char*> bench_args;
  bench_args.reserve(static_cast<std::size_t>(argc));
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  const int rc = run_comparison(smoke, json_path);
  if (rc != 0 || smoke) return rc;

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
