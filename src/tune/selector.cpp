#include "tune/selector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace mpicp::tune {

std::vector<double> instance_features(const bench::Instance& inst,
                                      const FeatureOptions& opts) {
  std::vector<double> x = {
      std::log2(static_cast<double>(std::max<std::uint64_t>(inst.msize, 1))),
      static_cast<double>(inst.nodes), static_cast<double>(inst.ppn)};
  if (opts.include_total_processes) {
    x.push_back(static_cast<double>(inst.nodes) * inst.ppn);
  }
  return x;
}

Selector::Selector(SelectorOptions options) : options_(std::move(options)) {}

void Selector::fit(const bench::Dataset& ds,
                   const std::vector<int>& train_nodes) {
  MPICP_REQUIRE(!train_nodes.empty(), "empty training node set");
  models_.clear();

  // Bucket the raw observations per uid.
  std::map<int, std::vector<const bench::Record*>> rows;
  for (const bench::Record& rec : ds.records()) {
    if (std::find(train_nodes.begin(), train_nodes.end(), rec.nodes) ==
        train_nodes.end()) {
      continue;
    }
    rows[rec.uid].push_back(&rec);
  }
  MPICP_REQUIRE(!rows.empty(), "no training rows for the given node set");

  // One independent fit per uid — the embarrassingly parallel half of
  // the paper's design. Each task owns its learner instance and writes
  // into a preallocated slot, so the resulting bank is bit-identical
  // regardless of the thread count.
  std::vector<std::pair<int, const std::vector<const bench::Record*>*>>
      tasks;
  tasks.reserve(rows.size());
  for (const auto& [uid, recs] : rows) tasks.emplace_back(uid, &recs);

  const std::size_t dim =
      instance_features({1, 1, 1}, options_.features).size();
  std::vector<std::unique_ptr<ml::Regressor>> fitted(tasks.size());
  support::parallel_for(tasks.size(), 1, [&](std::size_t t) {
    const auto& recs = *tasks[t].second;
    ml::Matrix x(recs.size(), dim);
    std::vector<double> y(recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const auto feat = instance_features(
          {recs[i]->nodes, recs[i]->ppn, recs[i]->msize},
          options_.features);
      std::copy(feat.begin(), feat.end(), x.row(i).begin());
      y[i] = recs[i]->time_us;
    }
    auto model = ml::make_regressor(options_.learner);
    model->fit(x, y);
    fitted[t] = std::move(model);
  });
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    models_.emplace(tasks[t].first, std::move(fitted[t]));
  }
}

double Selector::predicted_time_us(int uid,
                                   const bench::Instance& inst) const {
  const auto it = models_.find(uid);
  MPICP_REQUIRE(it != models_.end(),
                "no model for uid " + std::to_string(uid));
  return it->second->predict_one(
      instance_features(inst, options_.features));
}

std::vector<Selector::Prediction> Selector::predict_all(
    const bench::Instance& inst) const {
  MPICP_REQUIRE(!models_.empty(), "selector has not been fitted");
  const auto feat = instance_features(inst, options_.features);
  std::vector<Prediction> out;
  std::vector<const ml::Regressor*> bank;
  out.reserve(models_.size());
  bank.reserve(models_.size());
  for (const auto& [uid, model] : models_) {
    out.push_back({uid, 0.0});
    bank.push_back(model.get());
  }
  // Single predictions are cheap; chunk so the pool is only engaged for
  // banks large enough to amortize the dispatch.
  support::parallel_for(bank.size(), 16, [&](std::size_t i) {
    out[i].time_us = bank[i]->predict_one(feat);
  });
  return out;
}

int Selector::select_uid(const bench::Instance& inst) const {
  const auto predictions = predict_all(inst);
  int best_uid = -1;
  double best_time = 0.0;
  // Scan in ascending uid order so ties break identically at every
  // thread count.
  for (const Prediction& p : predictions) {
    if (best_uid < 0 || p.time_us < best_time) {
      best_uid = p.uid;
      best_time = p.time_us;
    }
  }
  return best_uid;
}

void Selector::save(const std::filesystem::path& path) const {
  MPICP_REQUIRE(!models_.empty(), "saving an unfitted selector");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) throw Error("cannot open " + path.string() + " for writing");
  os << "mpicp-selector 1\n";
  os << options_.learner << '\n';
  os << (options_.features.include_total_processes ? 1 : 0) << '\n';
  os << models_.size() << '\n';
  for (const auto& [uid, model] : models_) {
    os << uid << '\n';
    ml::save_regressor(os, *model);
  }
  if (!os) throw Error("failed writing selector to " + path.string());
}

Selector Selector::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) throw ParseError("cannot open selector file " + path.string());
  ml::io::expect_tag(is, "mpicp-selector");
  const int version = ml::io::read_value<int>(is);
  MPICP_REQUIRE(version == 1, "unsupported selector file version");
  SelectorOptions options;
  is >> options.learner;
  options.features.include_total_processes =
      ml::io::read_value<int>(is) != 0;
  Selector selector(options);
  const auto count = ml::io::read_value<std::size_t>(is);
  MPICP_REQUIRE(count >= 1 && count < 100000,
                "implausible selector model count");
  for (std::size_t i = 0; i < count; ++i) {
    const int uid = ml::io::read_value<int>(is);
    selector.models_.emplace(uid, ml::load_regressor(is));
  }
  return selector;
}

std::vector<int> Selector::uids() const {
  std::vector<int> out;
  out.reserve(models_.size());
  for (const auto& [uid, model] : models_) out.push_back(uid);
  return out;
}

}  // namespace mpicp::tune
