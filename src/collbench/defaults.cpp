#include "collbench/defaults.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "simmpi/coll/decision.hpp"
#include "support/error.hpp"

namespace mpicp::bench {

namespace {

class OpenMpiDefault final : public DefaultLogic {
 public:
  explicit OpenMpiDefault(sim::Collective coll) : coll_(coll) {}

  std::string name() const override { return "openmpi-fixed"; }

  int select_uid(const Instance& inst) const override {
    return sim::openmpi_default_uid(coll_, inst.nodes * inst.ppn,
                                    inst.msize);
  }

 private:
  sim::Collective coll_;
};

int nearest(const std::vector<int>& grid, int value) {
  MPICP_REQUIRE(!grid.empty(), "empty grid");
  int best = grid.front();
  for (const int g : grid) {
    if (std::abs(g - value) < std::abs(best - value)) best = g;
  }
  return best;
}

std::uint64_t nearest_log(const std::vector<std::uint64_t>& grid,
                          std::uint64_t value) {
  MPICP_REQUIRE(!grid.empty(), "empty grid");
  const double lv = std::log2(static_cast<double>(std::max<std::uint64_t>(
      value, 1)));
  std::uint64_t best = grid.front();
  double best_d = 1e300;
  for (const std::uint64_t g : grid) {
    const double d = std::abs(
        std::log2(static_cast<double>(std::max<std::uint64_t>(g, 1))) - lv);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

class IntelTunedTable final : public DefaultLogic {
 public:
  IntelTunedTable(const Dataset& ds, std::vector<int> factory_nodes)
      : factory_nodes_(std::move(factory_nodes)),
        ppns_(ds.ppns()),
        msizes_(ds.msizes()) {
    MPICP_REQUIRE(!factory_nodes_.empty(), "tuned table needs grid nodes");
    for (const int n : factory_nodes_) {
      for (const int ppn : ppns_) {
        for (const std::uint64_t m : msizes_) {
          const Instance inst{n, ppn, m};
          table_[{n, ppn, m}] = ds.best(inst).uid;
        }
      }
    }
  }

  std::string name() const override { return "intel-tuned-table"; }

  int select_uid(const Instance& inst) const override {
    const int n = nearest(factory_nodes_, inst.nodes);
    const int ppn = nearest(ppns_, inst.ppn);
    const std::uint64_t m = nearest_log(msizes_, inst.msize);
    const auto it = table_.find({n, ppn, m});
    MPICP_ASSERT(it != table_.end(), "tuned table lookup failed");
    return it->second;
  }

 private:
  std::vector<int> factory_nodes_;
  std::vector<int> ppns_;
  std::vector<std::uint64_t> msizes_;
  std::map<std::tuple<int, int, std::uint64_t>, int> table_;
};

}  // namespace

std::unique_ptr<DefaultLogic> make_openmpi_default(sim::Collective coll) {
  return std::make_unique<OpenMpiDefault>(coll);
}

std::unique_ptr<DefaultLogic> make_intel_default(
    const Dataset& ds, const std::vector<int>& factory_nodes) {
  return std::make_unique<IntelTunedTable>(ds, factory_nodes);
}

std::unique_ptr<DefaultLogic> make_default_for(const Dataset& ds) {
  if (ds.lib() == sim::MpiLib::kOpenMPI) {
    return make_openmpi_default(ds.collective());
  }
  // Factory grid: a few commonly used node counts of the machine.
  const std::vector<int> all = ds.node_counts();
  std::vector<int> grid;
  for (const int n : {4, 16, 36, 20, 48}) {
    if (std::find(all.begin(), all.end(), n) != all.end()) {
      grid.push_back(n);
    }
    if (grid.size() == 3) break;
  }
  if (grid.empty()) grid = {all.front(), all.back()};
  return make_intel_default(ds, grid);
}

}  // namespace mpicp::bench
