// Deterministic, seedable random number generation.
//
// All stochastic behaviour in mpicp (measurement noise, learner
// randomization, shuffles) flows through these generators so that every
// experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace mpicp::support {

/// SplitMix64 — used to expand a single 64-bit seed into generator state
/// and to build deterministic hash "fields" (e.g. per-configuration
/// systematic noise offsets).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the main PRNG. Fast, high quality, tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *median* of the distribution is `median`
  /// and the underlying normal has standard deviation `sigma`.
  double lognormal_median(double median, double sigma);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Deterministic 64-bit mix of an arbitrary list of integers. Used to
/// derive stable per-configuration sub-seeds: same inputs, same output,
/// independent of evaluation order.
std::uint64_t hash_combine(std::initializer_list<std::uint64_t> values);

}  // namespace mpicp::support
