// Unannotated members in mutex-declaring classes (two findings).
#pragma once

#include <mutex>

namespace mpicp::support {

struct BadCounters {
  int hits = 0;
  std::mutex mu;
};

class BadQueue {
 public:
  void push(int v);

 private:
  std::mutex mu_;
  int depth_ = 0;
};

}  // namespace mpicp::support
