// The paper's algorithm selection strategy (Fig. 3): one regression
// model per algorithm configuration uid, each predicting the running
// time from the instance features (m, n, N); selection evaluates every
// model on an unseen instance and returns the argmin.
//
// Robustness layer (see README "Fault tolerance & degradation"): fitting
// degrades per uid through a configurable learner chain instead of
// aborting the whole bank, every fit is accounted for in a FitReport,
// and selection excludes non-finite/negative predictions from the
// argmin — falling back to the library's own default decision when no
// model is usable at all.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "ml/learner.hpp"
#include "simmpi/coll/registry.hpp"
#include "tune/rulegen.hpp"

namespace mpicp::tune {

class CompiledBank;
struct RuleDistillation;

/// Instance feature encoding. The paper's features are message size,
/// number of nodes and processes per node; we use log2(m) for the
/// message size (it spans seven decades) and optionally append the
/// derived total process count p = n * ppn (ablation: bench_ablation).
struct FeatureOptions {
  bool include_total_processes = true;
};

/// Upper bound on feature_dim() across all FeatureOptions — lets the
/// compiled serving path keep the feature vector on the stack.
inline constexpr std::size_t kMaxInstanceFeatures = 4;

std::size_t feature_dim(const FeatureOptions& opts);

std::vector<double> instance_features(const bench::Instance& inst,
                                      const FeatureOptions& opts);

/// Allocation-free variant: writes exactly feature_dim(opts) values
/// into `out` (same values, same arithmetic as instance_features).
void instance_features_into(const bench::Instance& inst,
                            const FeatureOptions& opts,
                            std::span<double> out);

struct SelectorOptions {
  std::string learner = "gam";  ///< ml::make_regressor name
  FeatureOptions features;
  /// Learners tried, in order, for a uid whose configured-learner fit
  /// failed. The default chain mirrors the degradation ladder: a
  /// structurally different learner first (knn has no normal equations
  /// to go singular), then the constant median predictor, which fits
  /// whenever at least one finite observation exists.
  std::vector<std::string> fallback_learners = {"knn", "median"};
};

/// Per-uid account of one Selector::fit — which learner ended up in the
/// bank, how far down the fallback chain it sits, and why.
struct FitOutcome {
  int uid = 0;
  std::size_t rows_total = 0;    ///< training rows bucketed for the uid
  std::size_t rows_dropped = 0;  ///< screened out (non-finite/≤0 timing)
  std::string learner;           ///< learner fitted ("" if unusable)
  int fallback_depth = 0;        ///< 0 = configured, 1 = first fallback…
  std::string error;             ///< first failure message ("" if clean)

  bool usable() const { return !learner.empty(); }
  bool clean() const { return error.empty() && rows_dropped == 0; }
};

struct FitReport {
  std::vector<FitOutcome> outcomes;  ///< ascending uid order

  std::size_t uids_total() const { return outcomes.size(); }
  std::size_t uids_clean() const;
  std::size_t uids_fallback() const;  ///< usable via a fallback learner
  std::size_t uids_unusable() const;  ///< whole chain failed
  std::size_t rows_dropped() const;
  /// True when anything deviated from a clean full-bank fit.
  bool degraded() const;
};

/// Render a fit health report (summary plus one row per non-clean uid).
void print_fit_report(std::ostream& os, const FitReport& report);

class Selector {
 public:
  explicit Selector(SelectorOptions options = {});

  /// Fit one model per uid on the dataset rows whose node count is in
  /// `train_nodes` (raw observations, not aggregates — the models see
  /// the measurement noise, as in the paper). Rows with non-finite or
  /// non-positive timings are screened out per uid; a uid whose fit
  /// fails degrades through options().fallback_learners, and a uid with
  /// no usable model is left out of the bank. Every deviation is
  /// recorded in the returned FitReport (also retained and queryable via
  /// fit_report()). Throws only when *no* uid is fittable. The report is
  /// [[nodiscard]] deliberately: silently dropping it hides degraded
  /// fits — callers that expect a clean bank should assert
  /// !report.degraded().
  [[nodiscard]] const FitReport& fit(const bench::Dataset& ds,
                                     const std::vector<int>& train_nodes);

  /// Health account of the last fit() on this selector (empty if the
  /// bank was loaded from disk instead).
  [[nodiscard]] const FitReport& fit_report() const { return report_; }

  /// Predicted running time of one configuration on an instance.
  double predicted_time_us(int uid, const bench::Instance& inst) const;

  /// One model-bank query result.
  struct Prediction {
    int uid = 0;
    double time_us = 0.0;
    /// False when the model produced a non-finite or negative time —
    /// such predictions are excluded from the argmin.
    bool usable = true;
  };

  /// Batched inference: the predicted running time of *every* modeled
  /// configuration on an instance, in ascending uid order. This is the
  /// fan-out half of the paper's argmin selection; the per-uid models
  /// are evaluated in parallel (see support/parallel.hpp).
  [[nodiscard]] std::vector<Prediction> predict_all(
      const bench::Instance& inst) const;

  /// The argmin over all modeled configurations whose prediction is
  /// usable (the algorithm ID the framework would load into the MPI
  /// library). Ties resolve to the lowest uid regardless of thread
  /// count. Throws if no prediction is usable — callers with a library
  /// context should prefer select_uid_or_default.
  [[nodiscard]] int select_uid(const bench::Instance& inst) const;

  /// Degradation-aware selection: the argmin when at least one model
  /// prediction is usable, else the library's own default decision
  /// (sim::library_default_uid) — the behaviour an untuned run would
  /// get. Never throws on a fitted or even empty bank.
  [[nodiscard]] int select_uid_or_default(const bench::Instance& inst,
                                          sim::MpiLib lib,
                                          sim::Collective coll) const;

  std::vector<int> uids() const;
  const SelectorOptions& options() const { return options_; }

  /// Lower the fitted bank into its compiled (flattened, allocation-free)
  /// serving form — see tune/compiled_bank.hpp and DESIGN.md §11. The
  /// compiled bank is an immutable snapshot: refit, then recompile.
  /// Predictions are bit-identical to this selector's.
  [[nodiscard]] CompiledBank compile() const;

  /// Distill the bank all the way down to decision rules (the third
  /// serving tier, DESIGN.md §14): compile, label `grid` with the
  /// compiled argmin, fit a DecisionRules tree, lower it to a RuleTable
  /// and report the table's empirical agreement with the bank's picks.
  /// Convenience over tune::distill(compile(), grid, params).
  [[nodiscard]] RuleDistillation distill(
      std::span<const bench::Instance> grid, RuleParams params = {}) const;

  /// Persist the fitted model bank (train offline once, load in the job
  /// prolog — the paper's deployment split between the tuning step and
  /// application start).
  void save(const std::filesystem::path& path) const;
  static Selector load(const std::filesystem::path& path);

 private:
  SelectorOptions options_;
  std::map<int, std::unique_ptr<ml::Regressor>> models_;
  FitReport report_;
};

}  // namespace mpicp::tune
