// Unit tests for the machine model and the resource-tracking network.
#include <gtest/gtest.h>

#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "support/error.hpp"

namespace mpicp::sim {
namespace {

TEST(Machine, PresetsExist) {
  for (const char* name : {"Hydra", "Jupiter", "SuperMUC-NG"}) {
    const MachineDesc m = machine_by_name(name);
    EXPECT_EQ(m.name, name);
    EXPECT_GE(m.max_nodes, 1);
    EXPECT_GE(m.max_ppn, 1);
    EXPECT_GT(m.inter.gap_per_byte_us, 0.0);
  }
  EXPECT_THROW(machine_by_name("nope"), InvalidArgument);
}

TEST(Machine, HydraFasterFabricThanJupiter) {
  // Table I: Hydra (dual-rail OmniPath) has about twice Jupiter's
  // bandwidth (and more, per rail count).
  const MachineDesc h = hydra_machine();
  const MachineDesc j = jupiter_machine();
  EXPECT_LT(h.inter.gap_per_byte_us / h.rails,
            j.inter.gap_per_byte_us / j.rails);
  EXPECT_LT(h.inter.latency_us, j.inter.latency_us);
}

TEST(Network, PlacementIsBlockOrder) {
  Network net(hydra_machine(), 4, 8);
  EXPECT_EQ(net.num_ranks(), 32);
  EXPECT_EQ(net.node_of(0), 0);
  EXPECT_EQ(net.node_of(7), 0);
  EXPECT_EQ(net.node_of(8), 1);
  EXPECT_TRUE(net.same_node(16, 23));
  EXPECT_FALSE(net.same_node(7, 8));
}

TEST(Network, IntraFasterThanInterForSmallMessages) {
  Network net(hydra_machine(), 2, 2);
  const Transfer intra = net.schedule_transfer(0, 1, 64, 0.0);
  net.reset();
  const Transfer inter = net.schedule_transfer(0, 2, 64, 0.0);
  EXPECT_LT(intra.arrival_us, inter.arrival_us);
}

TEST(Network, TransferRespectsReadyTime) {
  Network net(hydra_machine(), 2, 1);
  const Transfer t = net.schedule_transfer(0, 1, 1024, 5.0);
  EXPECT_GE(t.start_us, 5.0);
  EXPECT_GT(t.arrival_us, t.start_us);
}

TEST(Network, NicSerializesConcurrentTransfers) {
  // Many simultaneous sends out of one node must queue on its rails:
  // the k-th transfer starts no earlier than (k / rails) occupancies in.
  const MachineDesc desc = hydra_machine();
  Network net(desc, 9, 1);
  const std::size_t bytes = 65536;
  std::vector<double> starts;
  for (int dst = 1; dst <= 8; ++dst) {
    starts.push_back(net.schedule_transfer(0, dst, bytes, 0.0).start_us);
  }
  const double occ = desc.inter.occupancy_us(bytes);
  // With 2 rails, transfers 0 and 1 start immediately, 2 and 3 after one
  // occupancy, etc.
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_NEAR(starts[2], occ, 1e-9);
  EXPECT_NEAR(starts[7], 3 * occ, 1e-9);
}

TEST(Network, ByteCostScalesLinearly) {
  Network net(jupiter_machine(), 2, 1);
  const Transfer small = net.schedule_transfer(0, 1, 1000, 0.0);
  net.reset();
  const Transfer big = net.schedule_transfer(0, 1, 1001000, 0.0);
  const double dur_small = small.arrival_us - small.start_us;
  const double dur_big = big.arrival_us - big.start_us;
  EXPECT_NEAR(dur_big - dur_small,
              1e6 * jupiter_machine().inter.gap_per_byte_us, 1e-6);
}

TEST(Network, ResetClearsResourceState) {
  Network net(hydra_machine(), 2, 1);
  for (int i = 0; i < 10; ++i) net.schedule_transfer(0, 1, 1 << 20, 0.0);
  net.reset();
  const Transfer t = net.schedule_transfer(0, 1, 64, 0.0);
  EXPECT_DOUBLE_EQ(t.start_us, 0.0);
}

TEST(Network, SelfTransferHasNoContention) {
  Network net(hydra_machine(), 1, 2);
  const Transfer a = net.schedule_transfer(0, 0, 4096, 0.0);
  const Transfer b = net.schedule_transfer(0, 0, 4096, 0.0);
  EXPECT_DOUBLE_EQ(a.start_us, b.start_us);
}

TEST(Network, RejectsOversizedAllocations) {
  EXPECT_THROW(Network(jupiter_machine(), 99, 1), InvalidArgument);
  EXPECT_THROW(Network(jupiter_machine(), 1, 99), InvalidArgument);
}

}  // namespace
}  // namespace mpicp::sim
