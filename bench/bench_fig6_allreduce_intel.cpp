// Figure 6 — comparison of the algorithm selection strategies for
// MPI_Allreduce; Intel MPI (modeled), Hydra; GAM predictor.
//
// Paper shape: the Intel default (a factory-tuned table) is already
// near-optimal; the prediction matches it rather than beating it.
#include "bench_common.hpp"

int main() {
  std::printf("Figure 6: MPI_Allreduce, Intel MPI (modeled), Hydra (d5)\n");
  mpicp::benchharness::print_strategy_comparison("d5", "gam", {27, 35},
                                                 {1, 16, 32});
  return 0;
}
