// Reduce, allgather, gather, scatter and barrier builders.
//
// These are substrate collectives: the paper's evaluation targets Bcast,
// Allreduce and Alltoall, but several of their algorithms are built from
// these pieces, and a downstream user of the library expects them as
// public API.
#pragma once

#include <cstddef>

#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

BuiltCollective reduce_linear(const Comm& comm, std::size_t bytes, int root);
BuiltCollective reduce_binomial(const Comm& comm, std::size_t bytes,
                                std::size_t seg_bytes, int root);
BuiltCollective reduce_binary(const Comm& comm, std::size_t bytes,
                              std::size_t seg_bytes, int root);
BuiltCollective reduce_pipeline(const Comm& comm, std::size_t bytes,
                                std::size_t seg_bytes, int root);

/// Allgather of `bytes` per rank; block j holds rank j's contribution.
BuiltCollective allgather_ring(const Comm& comm, std::size_t bytes);
BuiltCollective allgather_recursive_doubling(const Comm& comm,
                                             std::size_t bytes);
/// Gather to rank 0 followed by a binomial broadcast of the result.
BuiltCollective allgather_gather_bcast(const Comm& comm, std::size_t bytes);

/// Gather of `bytes` per rank to `root`; block j holds the contribution
/// of vrank j = rank (root + j) mod p.
BuiltCollective gather_linear(const Comm& comm, std::size_t bytes, int root);
BuiltCollective gather_binomial(const Comm& comm, std::size_t bytes,
                                int root);

/// Scatter of `bytes` per rank from `root` (same vrank block layout).
BuiltCollective scatter_linear(const Comm& comm, std::size_t bytes,
                               int root);
BuiltCollective scatter_binomial(const Comm& comm, std::size_t bytes,
                                 int root);

BuiltCollective barrier_dissemination(const Comm& comm);
BuiltCollective barrier_tree(const Comm& comm);

/// Inclusive scan of `bytes` per rank.
BuiltCollective scan_linear(const Comm& comm, std::size_t bytes);
/// Hillis-Steele recursive doubling scan (ceil(log2 p) rounds).
BuiltCollective scan_recursive_doubling(const Comm& comm,
                                        std::size_t bytes);

/// Reduce-scatter of a `bytes`-sized vector into p equal chunks; rank j
/// ends with the fully reduced chunk j (block j).
BuiltCollective reduce_scatter_ring(const Comm& comm, std::size_t bytes);
/// Recursive halving (power-of-two rank counts; other counts fall back
/// to the ring algorithm, as common implementations do).
BuiltCollective reduce_scatter_halving(const Comm& comm,
                                       std::size_t bytes);

}  // namespace mpicp::sim
