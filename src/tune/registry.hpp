// Tuning-as-a-service: a sharded, hot-reloadable bank registry
// (DESIGN.md §12).
//
// The compiled bank (tune/compiled_bank.hpp) answers single-bank
// queries allocation-free; `BankRegistry` is the long-running serving
// layer above it — a concurrent map from (machine preset, collective)
// to an immutable `CompiledBank`, sharded by key hash so unrelated
// banks never contend. Reads are RCU-style: each shard publishes an
// immutable snapshot map behind one atomic shared_ptr, so a lookup is
// an atomic load plus a map find — no reader ever takes a lock, and a
// `publish()` (the hot-swap of a freshly refit bank) never blocks an
// in-flight selection: writers clone the shard map, install the new
// bank under a fresh process-unique version, and swap the snapshot
// pointer; readers finish on whichever snapshot they loaded.
//
// A per-shard memo cache short-circuits repeated selections. Entries
// are keyed by (bank version, m, n, N), so a hot swap naturally
// invalidates them — a memoized answer always equals the selection of
// the exact bank version it was computed from, which is what the
// swap-under-load linearizability property in tests/test_registry.cpp
// and tests/test_properties.cpp pins.
//
// On top of the bank sits an optional third serving tier (DESIGN.md
// §14): a distilled `RuleTable` attached per key via
// distill_and_publish(). When a table is attached, selections walk it
// in a few ns and skip both the bank argmin and the memo; a publish of
// a fresh bank version drops the table automatically (the rules
// described the old bank), and a distillation whose agreement is below
// Options::rule_agreement_floor is rejected — the bank keeps serving.
//
// Every path is observable: MPICP_SPAN("registry.lookup"/"registry.swap"/
// "registry.serve"/"registry.refit") spans plus process metrics
// ("registry.*", and per-shard "registry.shard<i>.*" hit counters).
// The shard count comes from Options::shards, else the MPICP_SHARDS
// environment variable, else a default of 8.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/metrics.hpp"
#include "support/thread_safety.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/ruletable.hpp"
#include "tune/selector.hpp"

namespace mpicp::tune {

/// Identity of one serving bank: which machine preset's measurements it
/// was fitted on, and which collective it selects algorithms for.
struct BankKey {
  std::string machine;  ///< simnet machine preset name ("Hydra", ...)
  sim::Collective collective = sim::Collective::kBcast;

  friend bool operator==(const BankKey&, const BankKey&) = default;
  bool operator<(const BankKey& o) const {
    return std::tie(machine, collective) < std::tie(o.machine, o.collective);
  }
};

/// "Hydra/bcast" — for diagnostics and error messages.
std::string to_string(const BankKey& key);

/// Which serving artifact answers selections for a key right now.
enum class ServingTier {
  kNone = 0,  ///< no bank published for the key
  kCompiled,  ///< compiled-bank argmin (µs-scale)
  kRules,     ///< distilled rule-table fast path (ns-scale)
};

const char* to_string(ServingTier tier);

class BankRegistry {
 public:
  struct Options {
    /// Shard count; <= 0 resolves $MPICP_SHARDS, else 8. Clamped to
    /// [1, 64].
    int shards = 0;
    /// Per-shard (bank version, m, n, N) selection memo.
    bool memo_cache = true;
    /// Minimum distillation agreement (table picks == bank picks on the
    /// distillation grid) for distill_and_publish to attach the rule
    /// table; below it the compiled bank keeps serving alone.
    double rule_agreement_floor = 0.98;
  };

  BankRegistry() : BankRegistry(Options{}) {}
  explicit BankRegistry(Options options);

  int shards() const;
  std::size_t num_banks() const;

  /// Hot-swap (or first install) of the bank serving `key`. Clones the
  /// shard's snapshot map, installs `bank` under a fresh process-unique
  /// version and atomically publishes the new snapshot; in-flight
  /// selections finish on the snapshot they already loaded. Returns the
  /// new version (monotonic; never 0).
  std::uint64_t publish(const BankKey& key,
                        std::shared_ptr<const CompiledBank> bank);

  /// The bank currently serving `key` (nullptr when absent). Lock-free:
  /// one atomic snapshot load plus a map find.
  [[nodiscard]] std::shared_ptr<const CompiledBank> lookup(
      const BankKey& key) const;

  /// Version of the bank currently serving `key`; 0 when absent.
  [[nodiscard]] std::uint64_t version(const BankKey& key) const;

  /// Argmin selection against the bank serving `key`; throws when no
  /// bank is registered or no prediction is usable (same contract as
  /// CompiledBank::select_uid).
  [[nodiscard]] int select_uid(const BankKey& key,
                               const bench::Instance& inst) const;

  /// Graceful selection: the bank's argmin when available and usable,
  /// else the library's own default decision — the behaviour an untuned
  /// job launch would get. Never throws.
  [[nodiscard]] int select_uid_or_default(const BankKey& key,
                                          const bench::Instance& inst,
                                          sim::MpiLib lib) const;

  /// Batched selection over a whole instance grid against one bank
  /// (parallel over instances, like CompiledBank::select_grid, but each
  /// instance goes through the registry's memo and counters).
  [[nodiscard]] std::vector<int> select_grid(
      const BankKey& key, std::span<const bench::Instance> grid) const;

  /// One request of a mixed serving stream.
  struct Query {
    BankKey key;
    bench::Instance inst;
  };

  /// Concurrent request loop: drain a mixed (machine, collective, m, n,
  /// N) query stream on the support/parallel pool, one selection per
  /// query, results slotted by index (bit-identical at any
  /// MPICP_THREADS). Publishes may run concurrently — each query is
  /// answered by some published bank version.
  [[nodiscard]] std::vector<int> serve(std::span<const Query> queries) const;

  /// Account of one refit_and_publish call.
  struct RefitOutcome {
    bool published = false;    ///< a new bank version is now serving
    /// True when the candidate fit cleanly but the validator declined
    /// it (worse than the incumbent); the incumbent keeps serving.
    bool rejected = false;
    std::uint64_t version = 0; ///< version serving after the call (0: none)
    std::string error;         ///< why the refit was rejected ("" if clean)
    FitReport fit_report;      ///< per-uid fit health (empty on throw)
  };

  /// Pre-publish gate for refit_and_publish: given the freshly compiled
  /// candidate and the incumbent bank (nullptr when the key is not yet
  /// served), return "" to accept or a rejection reason. A rejected
  /// candidate is discarded — the incumbent keeps serving untouched.
  using RefitValidator = std::function<std::string(
      const CompiledBank& candidate,
      const std::shared_ptr<const CompiledBank>& incumbent)>;

  /// Fit a fresh selector on `ds`, compile it and hot-publish it under
  /// `key`. When the refit fails (every uid unusable, fault-injected
  /// fit failures, compile errors) or `validator` declines the
  /// candidate, the last good bank keeps serving untouched and the
  /// outcome carries the error instead — training never takes serving
  /// down.
  [[nodiscard]] RefitOutcome refit_and_publish(
      const BankKey& key, const bench::Dataset& ds,
      const std::vector<int>& train_nodes,
      const SelectorOptions& options = {},
      const RefitValidator& validator = {});

  /// Attach a distilled rule table as the fast serving path of the bank
  /// currently serving `key`. The table keeps the bank's version — it
  /// is a view of that bank, and any later publish() of a fresh bank
  /// drops it automatically. When `expected_version` is non-zero the
  /// attach is refused if the bank's version no longer matches (the
  /// bank was swapped while the table was being distilled). Returns the
  /// version the table now serves, or 0 when refused (no bank, or
  /// version mismatch). This is the unconditional primitive; the
  /// agreement floor lives in distill_and_publish.
  std::uint64_t publish_rules(const BankKey& key,
                              std::shared_ptr<const RuleTable> rules,
                              std::uint64_t expected_version = 0);

  /// The rule table currently fast-pathing `key` (nullptr when the key
  /// serves from the bank alone or is absent).
  [[nodiscard]] std::shared_ptr<const RuleTable> lookup_rules(
      const BankKey& key) const;

  /// The tier that answers a selection for `key` right now.
  [[nodiscard]] ServingTier tier(const BankKey& key) const;

  /// Account of one distill_and_publish call.
  struct DistillOutcome {
    bool published = false;  ///< rule table now serving as the fast path
    /// True when the distillation succeeded but its agreement was below
    /// Options::rule_agreement_floor; the bank keeps serving alone.
    bool rejected = false;
    double agreement = 0.0;    ///< table picks == bank picks, fraction
    int leaves = 0;            ///< fitted tree leaf count
    std::uint64_t version = 0; ///< bank version the table serves (0: none)
    std::string error;         ///< why nothing was attached ("" if clean)
  };

  /// Distill the bank serving `key` into a rule table over `grid` and
  /// attach it as the fast path when the agreement clears
  /// Options::rule_agreement_floor. A concurrent publish between the
  /// labeling and the attach is detected by version and reported as an
  /// error — a rule table never serves for a bank it does not describe.
  /// Never throws; failures land in the outcome.
  [[nodiscard]] DistillOutcome distill_and_publish(
      const BankKey& key, std::span<const bench::Instance> grid,
      RuleParams params = {});

  /// Point-in-time per-shard accounting (mirrored into the process
  /// metrics registry as "registry.shard<i>.*").
  struct ShardStats {
    std::uint64_t lookups = 0;     ///< snapshot loads on the select path
    std::uint64_t hits = 0;        ///< lookups that found a bank
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t rule_selections = 0;  ///< answered by a rule table
    std::uint64_t swaps = 0;       ///< publishes routed to this shard
    std::size_t banks = 0;         ///< keys currently served
  };
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledBank> bank;
    /// Distilled fast path for this exact bank; nullptr serves from the
    /// bank. publish() installs a fresh Entry, so a hot swap drops the
    /// rules of the outgoing bank automatically.
    std::shared_ptr<const RuleTable> rules;
    std::uint64_t version = 0;
  };
  using BankMap = std::map<BankKey, Entry>;

  /// (bank version, msize, nodes, ppn) -> selected uid. Versions are
  /// process-unique, so memoized answers can never alias across swaps.
  using MemoKey = std::tuple<std::uint64_t, std::uint64_t, int, int>;

  /// Cached "registry.shard<i>.*" instruments (stable for the process
  /// lifetime; resolved once at construction, off the hot path).
  struct ShardInstruments {
    support::metrics::Counter* lookups = nullptr;
    support::metrics::Counter* hits = nullptr;
    support::metrics::Counter* memo_hits = nullptr;
    support::metrics::Counter* memo_misses = nullptr;
    support::metrics::Counter* rule_selections = nullptr;
    support::metrics::Counter* swaps = nullptr;
  };

  struct Shard {
    /// RCU snapshot: readers atomically load, writers clone-and-swap
    /// under write_mu.
    std::atomic<std::shared_ptr<const BankMap>> snapshot;
    support::Mutex write_mu;

    support::Mutex memo_mu;
    std::map<MemoKey, int> memo MPICP_GUARDED_BY(memo_mu);

    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> memo_hits{0};
    std::atomic<std::uint64_t> memo_misses{0};
    std::atomic<std::uint64_t> rule_selections{0};
    std::atomic<std::uint64_t> swaps{0};

    /// Written once at construction, before the registry is visible to
    /// any other thread; immutable afterwards.
    ShardInstruments c;  // mpicp-lint: allow(lock-discipline)
  };

  Shard& shard_of(const BankKey& key) const;
  /// Lock-free entry fetch with per-shard accounting; empty Entry when
  /// the key has no bank.
  Entry find_entry(const BankKey& key) const;
  /// Selection through the shard memo; -1 when no prediction is usable.
  int select_in_entry(Shard& shard, const Entry& entry,
                      const bench::Instance& inst) const;

  bool memo_enabled_ = true;
  double rule_agreement_floor_ = 0.98;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mpicp::tune
