// A long function is fine when the file traces an entry point: a
// single MPICP_SPAN token anywhere clears span-coverage for the file.
namespace mpicp::tune {

int traced_accumulate(int nodes, int ppn) {
  MPICP_SPAN("tune.fixture.accumulate");
  int total = 0;
  total += nodes;
  total += ppn;
  total += nodes * ppn;
  total -= nodes / 2;
  total += ppn / 2;
  total *= 2;
  total -= nodes;
  total += 3;
  total -= 4;
  total += 5;
  total -= 6;
  return total;
}

}  // namespace mpicp::tune
