// Every satisfying shape: same-line tag, comment-block tag, a tag
// above a multi-line call, and the allow() escape hatch.

#include <atomic>

namespace mpicp::support {

void publish(std::atomic<int>& flag, std::atomic<long>& total) {
  flag.store(1, std::memory_order_release);  // order: publishes total
  // order: independent statistic; readers only need eventual totals,
  // and the comment block above the statement satisfies the audit.
  total.fetch_add(1, std::memory_order_relaxed);
  // order: the continuation walk follows multi-line argument lists.
  total.store(0,
              std::memory_order_relaxed);
  // mpicp-lint: allow(atomic-order-audit)
  total.fetch_add(2, std::memory_order_relaxed);
}

}  // namespace mpicp::support
