#include "simmpi/coll/allreduce.hpp"

#include <algorithm>
#include <vector>

#include "simmpi/coll/pipeline.hpp"
#include "simmpi/coll/trees.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::uint16_t kTagReduce = 20;
constexpr std::uint16_t kTagBcast = 21;
constexpr std::uint16_t kTagFold = 22;    // uses kTagFold(+1)
constexpr std::uint16_t kTagRounds = 24;
constexpr std::uint16_t kTagRs = 25;
constexpr std::uint16_t kTagAg = 26;
constexpr std::uint16_t kTagIntraRed = 27;
constexpr std::uint16_t kTagIntraBc = 28;

/// Whole-buffer tree reduce toward vrank 0: one message per edge
/// covering blocks [0, block_count).
void emit_tree_reduce_whole(ProgramSet& progs, const VrankMap& map,
                            const Tree& tree, std::size_t bytes,
                            std::uint16_t tag, std::uint32_t block_count) {
  for (int v = 0; v < static_cast<int>(tree.size()); ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    for (const int c : tree[v].children) {
      prog.recv(map.rank_of(c), tag, bytes, 0, block_count, kCombine);
      prog.compute(bytes);
    }
    if (tree[v].parent >= 0) {
      prog.send(map.rank_of(tree[v].parent), tag, bytes, 0, block_count);
    }
  }
}

/// Whole-buffer tree broadcast from vrank 0.
void emit_tree_bcast_whole(ProgramSet& progs, const VrankMap& map,
                           const Tree& tree, std::size_t bytes,
                           std::uint16_t tag, std::uint32_t block_count) {
  for (int v = 0; v < static_cast<int>(tree.size()); ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    if (tree[v].parent >= 0) {
      prog.recv(map.rank_of(tree[v].parent), tag, bytes, 0, block_count);
    }
    bool sent = false;
    for (const int c : tree[v].children) {
      prog.isend(map.rank_of(c), tag, bytes, 0, block_count);
      sent = true;
    }
    if (sent) prog.waitall();
  }
}

/// Recursive-doubling allreduce over the group described by `map`,
/// operating on blocks [0, block_count).
void emit_recdbl_allreduce(ProgramSet& progs, const VrankMap& map,
                           std::size_t bytes, std::uint32_t block_count) {
  const int p = map.p;
  if (p == 1) return;
  const int p2 = floor_pow2(p);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    if (v >= p2) {
      const int partner = map.rank_of(v - p2);
      prog.send(partner, kTagFold, bytes, 0, block_count);
      prog.recv(partner, kTagFold + 1, bytes, 0, block_count);
      continue;
    }
    if (v + p2 < p) {
      prog.recv(map.rank_of(v + p2), kTagFold, bytes, 0, block_count,
                kCombine);
      prog.compute(bytes);
    }
    for (int d = 1; d < p2; d <<= 1) {
      const int partner = map.rank_of(v ^ d);
      prog.irecv(partner, kTagRounds, bytes, 0, block_count, kCombine);
      prog.isend(partner, kTagRounds, bytes, 0, block_count);
      prog.waitall();
      prog.compute(bytes);
    }
    if (v + p2 < p) {
      prog.send(map.rank_of(v + p2), kTagFold + 1, bytes, 0, block_count);
    }
  }
}

/// Rabenseifner allreduce over the group described by `map`. Chunk
/// granularity is floor_pow2(p); chunk c occupies block block_base + c.
void emit_rabenseifner(ProgramSet& progs, const VrankMap& map,
                       std::size_t bytes, std::uint32_t block_base) {
  const int p = map.p;
  if (p == 1) return;
  const int p2 = floor_pow2(p);
  const auto chunks = even_chunks(bytes, p2);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    if (v >= p2) {
      const int partner = map.rank_of(v - p2);
      prog.send(partner, kTagFold, bytes, block_base, p2);
      prog.recv(partner, kTagFold + 1, bytes, block_base, p2);
      continue;
    }
    if (v + p2 < p) {
      prog.recv(map.rank_of(v + p2), kTagFold, bytes, block_base, p2,
                kCombine);
      prog.compute(bytes);
    }
    // Reduce-scatter by recursive halving: the owned chunk range halves
    // every round and converges to chunk v.
    int lo = 0, hi = p2;
    for (int d = p2 / 2; d >= 1; d /= 2) {
      const int partner = map.rank_of(v ^ d);
      const int mid = lo + (hi - lo) / 2;
      const bool upper = (v & d) != 0;
      const int my_lo = upper ? mid : lo;
      const int my_hi = upper ? hi : mid;
      const int pr_lo = upper ? lo : mid;
      const int pr_hi = upper ? mid : hi;
      prog.irecv(partner, kTagRs, chunk_range_bytes(chunks, my_lo, my_hi),
                 block_base + static_cast<std::uint32_t>(my_lo),
                 static_cast<std::uint32_t>(my_hi - my_lo), kCombine);
      prog.isend(partner, kTagRs, chunk_range_bytes(chunks, pr_lo, pr_hi),
                 block_base + static_cast<std::uint32_t>(pr_lo),
                 static_cast<std::uint32_t>(pr_hi - pr_lo));
      prog.waitall();
      prog.compute(chunk_range_bytes(chunks, my_lo, my_hi));
      lo = my_lo;
      hi = my_hi;
    }
    // Allgather by recursive doubling over the reduced chunks.
    for (int d = 1; d < p2; d <<= 1) {
      const int pv = v ^ d;
      const int partner = map.rank_of(pv);
      const int a = v & ~(d - 1);
      const int b = pv & ~(d - 1);
      prog.irecv(partner, kTagAg, chunk_range_bytes(chunks, b, b + d),
                 block_base + static_cast<std::uint32_t>(b),
                 static_cast<std::uint32_t>(d));
      prog.isend(partner, kTagAg, chunk_range_bytes(chunks, a, a + d),
                 block_base + static_cast<std::uint32_t>(a),
                 static_cast<std::uint32_t>(d));
      prog.waitall();
    }
    if (v + p2 < p) {
      prog.send(map.rank_of(v + p2), kTagFold + 1, bytes, block_base, p2);
    }
  }
}

/// Ring allreduce (reduce-scatter + allgather) over `map`; chunk c
/// occupies block block_base + c. After the reduce-scatter vrank v owns
/// chunk (v+1) mod p, so the allgather runs with a shifted vrank map.
void emit_ring_allreduce(ProgramSet& progs, const VrankMap& map,
                         std::size_t bytes, std::uint32_t block_base) {
  const int p = map.p;
  if (p == 1) return;
  const auto chunks = even_chunks(bytes, p);
  emit_ring_reduce_scatter(progs, map, chunks, kTagRs, block_base);
  emit_ring_allgather(progs, map.rotated(map.p - 1), chunks, kTagAg,
                      block_base);
}

/// Segmented ring allreduce: each of the p chunks is pipelined in
/// sub-segments of at most seg_bytes. Block (c, s) = c * sc + s.
void emit_segmented_ring_allreduce(ProgramSet& progs, const VrankMap& map,
                                   std::size_t bytes, std::size_t seg_bytes,
                                   std::uint32_t* blocks_out) {
  const int p = map.p;
  const auto chunks = even_chunks(bytes, p);
  const Segmentation seg0 = make_segmentation(std::max<std::size_t>(
                                                  chunks[0], 1),
                                              seg_bytes);
  const std::uint32_t sc = seg0.nseg;
  *blocks_out = static_cast<std::uint32_t>(p) * sc;
  if (p == 1) return;
  // Per-chunk sub-segment byte counts.
  std::vector<std::vector<std::uint32_t>> sub(p);
  for (int c = 0; c < p; ++c) {
    sub[c] = even_chunks(chunks[c], static_cast<int>(sc));
  }
  const auto emit_phase = [&](std::uint16_t tag, bool combine) {
    for (int v = 0; v < p; ++v) {
      // The allgather phase starts from the reduce-scatter's final
      // ownership (chunk (v+1) mod p), which the index arithmetic below
      // already handles because both phases send chunk (v - k) mod p
      // counting k across the whole 2(p-1)-step schedule.
      const int rank = map.rank_of(v);
      RankProg prog(progs[rank], rank, map.world);
      const int next = map.rank_of((v + 1) % p);
      const int prev = map.rank_of((v - 1 + p) % p);
      const int shift = combine ? 0 : p - 1;
      for (int k = 0; k < p - 1; ++k) {
        const int scid = (v - k - shift + 2 * p) % p;
        const int rcid = (v - k - 1 - shift + 2 * p) % p;
        for (std::uint32_t s = 0; s < sc; ++s) {
          prog.isend(next, tag, sub[scid][s],
                     static_cast<std::uint32_t>(scid) * sc + s, 1);
          prog.irecv(prev, tag, sub[rcid][s],
                     static_cast<std::uint32_t>(rcid) * sc + s, 1,
                     combine ? kCombine : kNone);
        }
        prog.waitall();
        if (combine) prog.compute(chunks[rcid]);
      }
    }
  };
  emit_phase(kTagRs, /*combine=*/true);
  emit_phase(kTagAg, /*combine=*/false);
}

BuiltCollective reduce_then_bcast(const Comm& comm, std::size_t bytes,
                                  std::size_t seg_bytes, const Tree& tree) {
  MPICP_SPAN("sim.allreduce.reduce_then_bcast");
  const Segmentation seg = make_segmentation(bytes, seg_bytes);
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = static_cast<int>(seg.nseg);
  const VrankMap map = VrankMap::rotation(0, comm.size());
  emit_tree_reduce(out.programs, map, tree, seg, kTagReduce);
  emit_tree_bcast(out.programs, map, tree, seg, kTagBcast);
  return out;
}

}  // namespace

BuiltCollective allreduce_linear(const Comm& comm, std::size_t bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = 1;
  const VrankMap map = VrankMap::rotation(0, comm.size());
  const Tree tree = flat_tree(comm.size());
  emit_tree_reduce_whole(out.programs, map, tree, bytes, kTagReduce, 1);
  emit_tree_bcast_whole(out.programs, map, tree, bytes, kTagBcast, 1);
  return out;
}

BuiltCollective allreduce_nonoverlapping(const Comm& comm,
                                         std::size_t bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = 1;
  const VrankMap map = VrankMap::rotation(0, comm.size());
  const Tree tree = binomial_tree(comm.size());
  emit_tree_reduce_whole(out.programs, map, tree, bytes, kTagReduce, 1);
  emit_tree_bcast_whole(out.programs, map, tree, bytes, kTagBcast, 1);
  return out;
}

BuiltCollective allreduce_recursive_doubling(const Comm& comm,
                                             std::size_t bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = 1;
  emit_recdbl_allreduce(out.programs, VrankMap::rotation(0, comm.size()),
                        bytes, 1);
  return out;
}

BuiltCollective allreduce_ring(const Comm& comm, std::size_t bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = std::max(comm.size(), 1);
  emit_ring_allreduce(out.programs, VrankMap::rotation(0, comm.size()),
                      bytes, 0);
  return out;
}

BuiltCollective allreduce_segmented_ring(const Comm& comm, std::size_t bytes,
                                         std::size_t seg_bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  std::uint32_t nblocks = 1;
  emit_segmented_ring_allreduce(out.programs,
                                VrankMap::rotation(0, comm.size()), bytes,
                                seg_bytes, &nblocks);
  out.blocks_per_rank = static_cast<int>(std::max<std::uint32_t>(nblocks, 1));
  return out;
}

BuiltCollective allreduce_rabenseifner(const Comm& comm, std::size_t bytes) {
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = floor_pow2(comm.size());
  emit_rabenseifner(out.programs, VrankMap::rotation(0, comm.size()), bytes,
                    0);
  return out;
}

BuiltCollective allreduce_tree(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, AllreduceTreeKind kind,
                               int radix) {
  switch (kind) {
    case AllreduceTreeKind::kBinomial:
      return reduce_then_bcast(comm, bytes, seg_bytes,
                               binomial_tree(comm.size()));
    case AllreduceTreeKind::kBinary:
      return reduce_then_bcast(comm, bytes, seg_bytes,
                               binary_tree(comm.size()));
    case AllreduceTreeKind::kKnomial:
      return reduce_then_bcast(comm, bytes, seg_bytes,
                               knomial_tree(comm.size(), radix));
  }
  MPICP_RAISE_INTERNAL("unhandled AllreduceTreeKind");
}

BuiltCollective allreduce_reduce_scatter_allgather(const Comm& comm,
                                                   std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = std::max(p, 1);
  if (p == 1) return out;
  const auto chunks = even_chunks(bytes, p);
  const VrankMap map = VrankMap::rotation(0, p);
  emit_ring_reduce_scatter(out.programs, map, chunks, kTagRs, 0);
  // After the ring reduce-scatter, vrank v owns chunk (v+1) mod p; run
  // the recursive-doubling allgather with a shifted map so its "vrank w
  // owns chunk w" precondition holds.
  emit_recdbl_allgather(out.programs, map.rotated(map.p - 1), chunks,
                        kTagAg, 0);
  return out;
}

BuiltCollective allreduce_hierarchical(const Comm& comm, std::size_t bytes,
                                       std::size_t seg_bytes,
                                       HierAllreduceInter inter,
                                       bool flat_intra) {
  const int nodes = comm.nodes();
  const int ppn = comm.ppn();
  BuiltCollective out;
  out.programs.resize(comm.size());

  // Determine the block layout of the leader-level phase first.
  std::uint32_t nblocks = 1;
  switch (inter) {
    case HierAllreduceInter::kRecursiveDoubling:
    case HierAllreduceInter::kReduceBcast:
      nblocks = 1;
      break;
    case HierAllreduceInter::kRabenseifner:
      nblocks = static_cast<std::uint32_t>(floor_pow2(nodes));
      break;
    case HierAllreduceInter::kRing:
      nblocks = static_cast<std::uint32_t>(nodes);
      break;
    case HierAllreduceInter::kSegmentedRing: {
      const auto chunks = even_chunks(bytes, nodes);
      nblocks = static_cast<std::uint32_t>(nodes) *
                make_segmentation(std::max<std::size_t>(chunks[0], 1),
                                  seg_bytes)
                    .nseg;
      break;
    }
  }
  out.blocks_per_rank = static_cast<int>(nblocks);

  // Phase 1: local reduce to each node leader (covers all blocks).
  const Tree ltree = flat_intra ? flat_tree(ppn) : binomial_tree(ppn);
  for (int node = 0; node < nodes; ++node) {
    const VrankMap nmap = VrankMap::node_local(comm, node);
    emit_tree_reduce_whole(out.programs, nmap, ltree, bytes, kTagIntraRed,
                           nblocks);
  }

  // Phase 2: allreduce across node leaders.
  const VrankMap lmap = VrankMap::leaders(comm);
  switch (inter) {
    case HierAllreduceInter::kRecursiveDoubling:
      emit_recdbl_allreduce(out.programs, lmap, bytes, nblocks);
      break;
    case HierAllreduceInter::kRabenseifner:
      emit_rabenseifner(out.programs, lmap, bytes, 0);
      break;
    case HierAllreduceInter::kRing:
      emit_ring_allreduce(out.programs, lmap, bytes, 0);
      break;
    case HierAllreduceInter::kSegmentedRing: {
      std::uint32_t check = 0;
      emit_segmented_ring_allreduce(out.programs, lmap, bytes, seg_bytes,
                                    &check);
      MPICP_ASSERT(check == nblocks || nodes == 1,
                   "segmented ring block layout mismatch");
      break;
    }
    case HierAllreduceInter::kReduceBcast: {
      const Tree itree = binomial_tree(nodes);
      emit_tree_reduce_whole(out.programs, lmap, itree, bytes, kTagReduce,
                             nblocks);
      emit_tree_bcast_whole(out.programs, lmap, itree, bytes, kTagBcast,
                            nblocks);
      break;
    }
  }

  // Phase 3: local broadcast from each node leader.
  for (int node = 0; node < nodes; ++node) {
    const VrankMap nmap = VrankMap::node_local(comm, node);
    emit_tree_bcast_whole(out.programs, nmap, ltree, bytes, kTagIntraBc,
                          nblocks);
  }
  return out;
}

}  // namespace mpicp::sim
