// Flattened (compiled) model bank — the treelite/XGBoost-style lowering
// of the heterogeneous per-uid `Regressor` objects into contiguous
// structure-of-arrays pools:
//
//   - every GBT/RF tree of every model lives in one node array with
//     per-tree root offsets (pointer-free, cache-friendly traversal),
//   - KNN points/targets/kd-nodes are packed row-major with the
//     standard scaler folded into per-model coefficient strips,
//   - GAM / linear / median models reduce to packed coefficient blocks,
//     with bitwise-identical spline bases deduplicated into shared
//     "evaluation slots" so each distinct basis is evaluated once per
//     query instead of once per model.
//
// Serving is allocation-free: all per-query state lives in a
// caller-owned `FlatScratch` that only grows on first use. Predictions
// are bit-identical to the interpreted `Regressor::predict_one` — the
// lowering reorders memory, never arithmetic.
//
// Tree ensembles additionally carry a *blocked* branch-free layout
// (DESIGN.md §16): the first K levels of every tree are packed
// level-order into a cache-line-aligned complete-binary-tree block, so
// the hot traversal is predicated index arithmetic
// (`slot = 2*slot + 1 + !(x[f] < thr)`) with no data-dependent
// branches; subtrees deeper than K spill into the legacy node pool and
// finish with the original walk. `predict_tree_batch` walks up to
// kTreeBatch independent instances per tree level, so the comparisons
// of a whole batch pipeline and auto-vectorize. On top of the block,
// models whose distinct-threshold structure is small enough carry a
// *rank-cell table*: the exact prediction precomputed for every cell
// of the model's threshold-rank grid, collapsing batched dispatch to a
// few small binary searches plus one load per model. Both forms are
// derived data — rebuilt from the canonical pools on add() and load()
// — and reproduce the legacy traversal bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <utility>
#include <vector>

#include "ml/learner.hpp"
#include "ml/spline.hpp"
#include "support/aligned.hpp"

namespace mpicp::ml {

class RegressionTree;
class KnnRegressor;
class GamRegressor;

struct FlatTreeNode {
  int feature = -1;  ///< -1: leaf
  double threshold = 0.0;
  int left = -1;   ///< global node index
  int right = -1;  ///< global node index
  double value = 0.0;
};

struct FlatKdNode {
  int axis = -1;  ///< -1: leaf
  double split = 0.0;
  int left = -1;   ///< global kd index
  int right = -1;  ///< global kd index
  int begin = 0;   ///< leaf: range into the model's order strip
  int end = 0;
};

/// One deduplicated (basis, feature-index) evaluation unit shared by
/// every GAM whose smoother for that feature is bitwise identical.
struct FlatBasisSlot {
  int basis = 0;    ///< index into the basis pool
  int feature = 0;  ///< which query feature it consumes
};

enum class FlatKind : int {
  kTreeEnsemble = 0,
  kKnn = 1,
  kGam = 2,
  kLinear = 3,
  kConstant = 4,
};

/// Per-model metadata: offsets into the shared pools.
struct FlatModel {
  FlatKind kind = FlatKind::kConstant;
  bool exp_link = false;  ///< apply exp() to the raw score
  // Tree ensembles.
  int tree_begin = 0;  ///< range into the tree-root pool
  int tree_end = 0;
  double base_score = 0.0;
  bool mean_over_trees = false;  ///< RF averages, GBT sums
  // KNN.
  int k = 0;
  int points_begin = 0;   ///< element offset into the point pool
  int num_points = 0;
  int point_dim = 0;
  int targets_begin = 0;  ///< row offset into the target pool
  int order_begin = 0;    ///< offset into the kd leaf permutation pool
  int kd_root = -1;       ///< global kd index; -1: brute force
  int scaler_begin = -1;  ///< offset into the scaler pools; -1: unscaled
  // GAM.
  int slot_begin = 0;  ///< range into the per-model slot-index pool
  int num_bases = 0;   ///< one smoother per feature
  int basis_size = 0;
  // Coefficient block (GAM beta / linear beta / constant).
  int coef_begin = 0;
  int coef_len = 0;
};

/// Reusable per-query scratch. Owned by the caller (typically
/// thread_local); every buffer grows to the bank's dimensions on first
/// use and is never reallocated afterwards.
struct FlatScratch {
  std::vector<double> slot_values;  ///< slot-major basis values
  std::vector<std::uint64_t> slot_stamp;
  std::uint64_t query_stamp = 0;
  std::vector<double> scaled;  ///< z-scaled query for KNN models
  std::vector<std::pair<double, int>> heap;
};

class FlatBank {
 public:
  /// Instances walked per tree level by predict_tree_batch: enough
  /// independent comparison chains to hide the gather latency, small
  /// enough that slots and accumulators stay in registers.
  static constexpr std::size_t kTreeBatch = 16;

  /// Blocked levels per tree (capped by that tree's own depth, so
  /// shallow trees never walk padding levels): at the cap, 2^8-1 = 255
  /// inner slots ≈ 3 KB per tree — deep enough that the default GBT
  /// (depth 6) fits entirely and fully-grown RF trees keep most of
  /// their walk inside the block.
  static constexpr int kDefaultBlockDepthCap = 8;

  /// Lower one fitted regressor into the pools; returns its model index.
  /// Raises kInvalidArgument for regressor types it cannot compile.
  int add(const Regressor& model);

  std::size_t size() const { return models_.size(); }
  const FlatModel& model(std::size_t i) const { return models_[i]; }
  std::size_t num_basis_slots() const { return slots_.size(); }

  /// Start a new query: bumps the slot memoization stamp and grows the
  /// scratch buffers if needed. Must be called once per query vector
  /// before any predict_one() on it.
  void begin_query(FlatScratch& scratch) const;

  /// Predict with model `i` on the feature vector `x`. Bit-identical to
  /// the interpreted regressor's predict_one. Allocation-free once
  /// `scratch` has warmed up. Tree ensembles go through the blocked
  /// branch-free layout; everything else is the PR 5 path.
  double predict_one(std::size_t i, std::span<const double> x,
                     FlatScratch& scratch) const;

  /// The PR 5 pointer-free traversal, kept as the differential
  /// reference for the blocked layout (tests and the layout-comparison
  /// benches). Identical to predict_one for non-tree models.
  double predict_one_legacy(std::size_t i, std::span<const double> x,
                            FlatScratch& scratch) const;

  /// Batched tree-ensemble scoring: `xs` points at `count` feature
  /// vectors of `x_stride` doubles each (count <= kTreeBatch); writes
  /// the prediction for instance b to out[b * out_stride]. All trees
  /// are walked level-by-level across the whole batch — independent
  /// comparisons pipeline instead of serializing on one branchy walk.
  /// Bit-identical to predict_one on every instance. Only valid for
  /// kTreeEnsemble models.
  void predict_tree_batch(std::size_t i, const double* xs,
                          std::size_t x_stride, std::size_t count,
                          double* out, std::size_t out_stride) const;

  /// True when model `i` is served by the blocked batched kernel.
  bool is_tree_ensemble(std::size_t i) const {
    return models_[i].kind == FlatKind::kTreeEnsemble;
  }

  int block_depth_cap() const { return block_depth_cap_; }

  /// Persist the bank. Version 2 (the default) records the blocked
  /// layout geometry; version 1 emits the PR 5 format byte-for-byte so
  /// downgrade paths and the envelope-compat tests can produce legacy
  /// files. Both versions load — v1 files re-lower their blocked form
  /// with the default geometry.
  void save(std::ostream& os) const { save(os, 2); }
  void save(std::ostream& os, int version) const;
  void load(std::istream& is);

 private:
  void lower_trees(const std::vector<RegressionTree>& trees, FlatModel& m);
  /// Rebuild the derived blocked layout for every tree ensemble from
  /// the canonical node pool (add() and load() both end here).
  void build_blocked();
  /// Rebuild the derived rank-cell tables (called by build_blocked).
  void build_rank_tables();
  void lower_knn(const KnnRegressor& knn, FlatModel& m);
  void lower_gam(const GamRegressor& gam, FlatModel& m);
  int intern_basis(const BSplineBasis& basis);
  int intern_slot(int basis, int feature);
  std::span<const double> point_row(const FlatModel& m, int p) const {
    return {points_.data() +
                static_cast<std::size_t>(m.points_begin) +
                static_cast<std::size_t>(p) * m.point_dim,
            static_cast<std::size_t>(m.point_dim)};
  }
  void search_kd(const FlatModel& m, int node, std::span<const double> q,
                 std::vector<std::pair<double, int>>& heap) const;

  std::vector<FlatModel> models_;
  std::vector<FlatTreeNode> nodes_;
  std::vector<int> tree_roots_;
  std::vector<double> points_;
  std::vector<double> targets_;
  std::vector<int> order_;
  std::vector<FlatKdNode> kd_;
  std::vector<double> scaler_mean_;
  std::vector<double> scaler_inv_std_;
  std::vector<BSplineBasis> bases_;
  std::vector<FlatBasisSlot> slots_;
  std::vector<int> gam_slots_;  ///< per model-feature: slot index
  std::vector<double> coef_;
  int max_basis_size_ = 0;
  int max_point_dim_ = 0;
  int max_k_ = 0;

  // Blocked branch-free layout (derived, never serialized as data —
  // only its geometry travels in the v2 envelope). Per tree: its own
  // blocked level count (min of the cap and the tree's depth), the
  // offsets of its inner-slot block and exit rows, and whether any
  // exit spills. Exit slots hold indices into the canonical `nodes_`
  // pool — a leaf for paths that terminate inside the block, or the
  // root of a spill subtree deeper than the block — and, for
  // spill-free trees, the leaf *values* directly (blk_leaf_), so the
  // hot walk never touches the node pool at all.
  int block_depth_cap_ = kDefaultBlockDepthCap;
  std::vector<std::int32_t> blk_tree_levels_;  ///< per tree
  std::vector<std::uint8_t> blk_spill_;        ///< per tree: any deep exit?
  std::vector<std::int32_t> blk_base_;       ///< per tree: inner-slot offset
  std::vector<std::int32_t> blk_exit_base_;  ///< per tree: exit-row offset
  support::AlignedVec<double> blk_thr_;
  support::AlignedVec<std::int32_t> blk_feat_;
  support::AlignedVec<std::int32_t> blk_exit_;
  support::AlignedVec<double> blk_leaf_;  ///< exit-row leaf values

  // Rank-cell tables (derived, never serialized): every comparison of
  // a tree-ensemble model tests x[f] against one of the model's few
  // distinct thresholds, so the instance's per-feature threshold ranks
  // fix the outcome of every comparison — and the model's whole
  // prediction is constant on each rank cell. build_blocked()
  // enumerates the cells and stores the exact prediction (computed by
  // the canonical tree-order walk), turning batched dispatch into a
  // handful of small binary searches plus one load. Models whose cell
  // count exceeds kMaxRankCells (continuous features) skip the table
  // and serve through the blocked walk.
  static constexpr int kMaxRankFeatures = 8;
  static constexpr std::size_t kMaxRankCells = std::size_t{1} << 14;
  struct RankTable {
    bool built = false;
    int dim = 0;  ///< features the model's trees reference
    std::array<std::int32_t, kMaxRankFeatures> thr_begin{};
    std::array<std::int32_t, kMaxRankFeatures> thr_len{};
    std::array<std::int32_t, kMaxRankFeatures> stride{};
    std::int64_t cells_begin = 0;
  };
  std::vector<RankTable> rank_tables_;  ///< per model
  support::AlignedVec<double> rank_thr_;  ///< sorted distinct thresholds
  support::AlignedVec<double> cell_val_;  ///< final per-cell predictions
};

}  // namespace mpicp::ml
