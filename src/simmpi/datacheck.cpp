#include "simmpi/datacheck.hpp"

#include "support/error.hpp"

namespace mpicp::sim {

Block contribution_of(int rank) {
  MPICP_REQUIRE(rank >= 0, "negative rank");
  Block b(static_cast<std::size_t>(rank) / 64 + 1, 0);
  b[static_cast<std::size_t>(rank) / 64] = 1ULL << (rank % 64);
  return b;
}

bool has_all_contributions(const Block& b, int p) {
  const std::size_t full_words = static_cast<std::size_t>(p) / 64;
  if (b.size() < (static_cast<std::size_t>(p) + 63) / 64) return false;
  for (std::size_t w = 0; w < full_words; ++w) {
    if (b[w] != ~std::uint64_t{0}) return false;
  }
  const int rem = p % 64;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    if ((b[full_words] & mask) != mask) return false;
  }
  return true;
}

bool is_exactly_contribution(const Block& b, int rank) {
  const Block expect = contribution_of(rank);
  if (b.size() < expect.size()) return false;
  for (std::size_t w = 0; w < b.size(); ++w) {
    const std::uint64_t want = w < expect.size() ? expect[w] : 0;
    if (b[w] != want) return false;
  }
  return true;
}

void combine_into(Block& dst, const Block& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t w = 0; w < src.size(); ++w) dst[w] |= src[w];
}

DataStore::DataStore(int num_ranks, int blocks_per_rank)
    : num_ranks_(num_ranks), blocks_per_rank_(blocks_per_rank) {
  MPICP_REQUIRE(num_ranks >= 1 && blocks_per_rank >= 1,
                "empty data store");
  blocks_.resize(static_cast<std::size_t>(num_ranks) * blocks_per_rank);
}

Block& DataStore::at(int rank, std::uint32_t block) {
  MPICP_ASSERT(rank >= 0 && rank < num_ranks_ &&
                   block < static_cast<std::uint32_t>(blocks_per_rank_),
               "data store access out of range");
  return blocks_[static_cast<std::size_t>(rank) * blocks_per_rank_ + block];
}

const Block& DataStore::at(int rank, std::uint32_t block) const {
  return const_cast<DataStore*>(this)->at(rank, block);
}

std::vector<Block> DataStore::snapshot(int rank, std::uint32_t begin,
                                       std::uint32_t count) const {
  std::vector<Block> out;
  out.reserve(count);
  for (std::uint32_t b = 0; b < count; ++b) {
    out.push_back(at(rank, begin + b));
  }
  return out;
}

void DataStore::apply(int rank, std::uint32_t begin,
                      const std::vector<Block>& payload, bool combine) {
  for (std::uint32_t b = 0; b < payload.size(); ++b) {
    Block& dst = at(rank, begin + b);
    if (combine) {
      combine_into(dst, payload[b]);
    } else {
      dst = payload[b];
    }
  }
}

}  // namespace mpicp::sim
