// Ablation — rank placement: how much of the algorithm ranking is a
// function of SLURM's block vs. cyclic process placement? The paper
// fixes block placement ("the typical default setting for most batch
// schedulers"); this harness shows why that matters: the best algorithm
// per message size changes with the placement.
#include <algorithm>
#include <iostream>
#include <vector>

#include "collbench/specs.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 16;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 16;
  const sim::MachineDesc machine = sim::hydra_machine();

  std::printf("Ablation: block vs cyclic placement, MPI_Bcast (modeled "
              "Open MPI), %dx%d, Hydra\n\n",
              nodes, ppn);
  support::TextTable table({"msize [B]", "best (block)", "t [us]",
                            "best (cyclic)", "t [us]", "same?",
                            "cyclic/block best-time"});
  const auto& configs =
      sim::algorithm_configs(sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
  int changed = 0;
  int total = 0;
  for (const std::uint64_t m : bench::standard_msizes()) {
    struct Best {
      double t = 0.0;
      const sim::AlgoConfig* cfg = nullptr;
    };
    Best best[2];
    for (const sim::Placement pl :
         {sim::Placement::kBlock, sim::Placement::kCyclic}) {
      const int idx = pl == sim::Placement::kBlock ? 0 : 1;
      sim::Network net(machine, nodes, ppn, pl);
      sim::Executor exec(net);
      const sim::Comm comm(nodes, ppn, pl);
      for (const sim::AlgoConfig& cfg : configs) {
        auto built =
            sim::build_algorithm(sim::MpiLib::kOpenMPI,
                                 sim::Collective::kBcast, cfg, comm, m, 0,
                                 false);
        const double t = exec.run(built.programs).makespan_us;
        if (best[idx].cfg == nullptr || t < best[idx].t) {
          best[idx] = {t, &cfg};
        }
      }
    }
    const bool same = best[0].cfg->uid == best[1].cfg->uid;
    changed += same ? 0 : 1;
    ++total;
    table.add_row({std::to_string(m), best[0].cfg->label(),
                   support::format_double(best[0].t, 5),
                   best[1].cfg->label(),
                   support::format_double(best[1].t, 5),
                   same ? "yes" : "NO",
                   support::format_double(best[1].t / best[0].t, 4)});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nbest algorithm changed with placement for %d of %d "
              "message sizes.\n",
              changed, total);
  return 0;
}
