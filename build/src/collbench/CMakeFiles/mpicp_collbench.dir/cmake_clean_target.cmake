file(REMOVE_RECURSE
  "libmpicp_collbench.a"
)
