// The "Default" strategies the evaluation compares against.
//
// Open MPI's default is the hard-coded fixed decision logic
// (simmpi/coll/decision.hpp). Intel MPI's default is modeled as a
// factory-tuned lookup table: the vendor benchmarks the library on the
// target fabric over a coarse grid and ships the per-(msize, ppn,
// node-bucket) winners (mpitune). That is why the paper finds Intel's
// default nearly optimal on Hydra while Open MPI's portable thresholds
// are far off — this module reproduces both behaviours.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"

namespace mpicp::bench {

class DefaultLogic {
 public:
  virtual ~DefaultLogic() = default;
  virtual std::string name() const = 0;
  /// uid the library would pick for an instance without user overrides.
  virtual int select_uid(const Instance& inst) const = 0;
};

/// Open MPI: fixed message-size/communicator-size threshold rules.
std::unique_ptr<DefaultLogic> make_openmpi_default(sim::Collective coll);

/// Intel MPI: tuned-table lookup built from measurements on a coarse
/// factory grid (`factory_nodes` must be node counts present in `ds`).
/// The table snaps an instance to the nearest grid point (nodes, ppn,
/// log-msize) and returns the best measured uid there.
std::unique_ptr<DefaultLogic> make_intel_default(
    const Dataset& ds, const std::vector<int>& factory_nodes);

/// The appropriate default for a dataset (dispatches on its library).
std::unique_ptr<DefaultLogic> make_default_for(const Dataset& ds);

}  // namespace mpicp::bench
