// Serving-at-scale load generator: the registry counterpart of
// bench_prediction_latency. It stands up a BankRegistry with several
// (machine, collective) banks, then drains millions of mixed
// (machine, collective, m, n, N) selections on the support/parallel
// pool while hot-publishing refit bank variants mid-run — the
// production shape of "which algorithm?" answered at job-launch time
// for a whole cluster, with training rolling underneath it.
//
// Before the timed run, a swap-free pre-pass pins correctness: the
// registry's answers (its own parallel loop and `serve`) must be
// bit-identical to direct CompiledBank serving. The timed run then
// reports per-query latency percentiles (sampled every Kth query) and
// aggregate throughput into BENCH_serving.json (bench_json.hpp):
//
//   --smoke            fewer queries / swaps — the CI mode
//   --json-out=PATH    default BENCH_serving.json
//   --queries=N        override the stream length
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "collbench/dataset.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"
#include "tune/registry.hpp"
#include "tune/selector.hpp"

namespace {

using namespace mpicp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const std::vector<int>& grid_nodes() {
  static const std::vector<int> v = {4, 8, 16, 20, 24, 32, 36};
  return v;
}
const std::vector<int>& grid_ppns() {
  static const std::vector<int> v = {1, 4, 8, 16, 32};
  return v;
}
const std::vector<std::uint64_t>& grid_msizes() {
  static const std::vector<std::uint64_t> v = {16,    1024,   16384,
                                               65536, 524288, 4194304};
  return v;
}

/// Synthetic measurements in the d2 shape; the seed perturbs the
/// per-uid cost surface so refit variants of the same bank select
/// differently — a hot swap is observable, not a no-op.
bench::Dataset make_dataset(const std::string& machine,
                            sim::Collective coll, sim::MpiLib lib,
                            std::uint64_t seed) {
  bench::Dataset ds("serving-" + machine, lib, coll, machine);
  support::Xoshiro256 rng(seed);
  for (int uid = 1; uid <= 13; ++uid) {
    const double log_w = 0.15 + 0.05 * ((uid + seed) % 7);
    const double band_w = 0.0008 + 0.0003 * ((uid * 3 + seed) % 5);
    for (const int n : grid_nodes()) {
      for (const int ppn : grid_ppns()) {
        for (const std::uint64_t m : grid_msizes()) {
          const double p = n * ppn;
          const double t = 5.0 + log_w * uid * std::log2(p) +
                           band_w * static_cast<double>(m) / std::sqrt(p);
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.05)});
          }
        }
      }
    }
  }
  return ds;
}

std::shared_ptr<const tune::CompiledBank> fit_bank(
    const bench::Dataset& ds) {
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  (void)selector.fit(ds, ds.node_counts());
  return std::make_shared<const tune::CompiledBank>(selector.compile());
}

/// One serving bank plus the pre-compiled refit variants the run
/// hot-swaps through (publish cost stays a pointer swap, not a fit).
struct BankSetup {
  tune::BankKey key;
  std::vector<std::shared_ptr<const tune::CompiledBank>> variants;
};

std::vector<BankSetup> make_banks() {
  const std::vector<std::pair<std::string, sim::Collective>> keys = {
      {"Hydra", sim::Collective::kAllreduce},
      {"Hydra", sim::Collective::kBcast},
      {"Jupiter", sim::Collective::kAllreduce},
      {"SuperMUC", sim::Collective::kAlltoall},
  };
  std::vector<BankSetup> banks;
  banks.reserve(keys.size());
  std::uint64_t seed = 17;
  for (const auto& [machine, coll] : keys) {
    BankSetup setup;
    setup.key = {machine, coll};
    for (int variant = 0; variant < 2; ++variant) {
      setup.variants.push_back(fit_bank(
          make_dataset(machine, coll, sim::MpiLib::kOpenMPI, seed++)));
    }
    banks.push_back(std::move(setup));
  }
  return banks;
}

/// Deterministic mixed query stream over every bank and the full
/// (m, n, N) grid (plus extrapolated node counts).
std::vector<tune::BankRegistry::Query> make_stream(
    const std::vector<BankSetup>& banks, std::size_t total) {
  std::vector<int> nodes = grid_nodes();
  nodes.push_back(40);
  nodes.push_back(64);
  support::Xoshiro256 rng(4242);
  std::vector<tune::BankRegistry::Query> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const BankSetup& bank = banks[rng.uniform_int(banks.size())];
    stream.push_back(
        {bank.key,
         {nodes[rng.uniform_int(nodes.size())],
          grid_ppns()[rng.uniform_int(grid_ppns().size())],
          grid_msizes()[rng.uniform_int(grid_msizes().size())]}});
  }
  return stream;
}

/// Swap-free correctness pre-pass: registry loop == serve() == direct
/// CompiledBank on the same stream slice.
bool verify_identity(const tune::BankRegistry& registry,
                     const std::vector<BankSetup>& banks,
                     std::span<const tune::BankRegistry::Query> slice) {
  std::vector<int> direct(slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i) {
    for (const BankSetup& bank : banks) {
      if (bank.key == slice[i].key) {
        direct[i] = bank.variants[0]->select_uid(slice[i].inst);
      }
    }
  }
  const std::vector<int> served = registry.serve(slice);
  std::vector<int> looped(slice.size());
  support::parallel_for(slice.size(), 64, [&](std::size_t i) {
    looped[i] = registry.select_uid(slice[i].key, slice[i].inst);
  });
  return served == direct && looped == direct;
}

int run_load(std::size_t total_queries, int num_swaps, int sample_every,
             const std::string& json_path) {
  std::printf("fitting bank variants (4 keys x 2 refits)...\n");
  const std::vector<BankSetup> banks = make_banks();
  tune::BankRegistry registry;
  for (const BankSetup& bank : banks) {
    registry.publish(bank.key, bank.variants[0]);
  }
  std::printf("generating %zu-query mixed stream over %zu banks...\n",
              total_queries, banks.size());
  const std::vector<tune::BankRegistry::Query> stream =
      make_stream(banks, total_queries);

  const std::size_t verify_n = std::min<std::size_t>(4096, stream.size());
  if (!verify_identity(registry, banks,
                       {stream.data(), verify_n})) {
    std::printf("FAIL: registry picks differ from direct CompiledBank "
                "serving\n");
    return 1;
  }
  std::printf("registry picks bit-identical to direct serving on a "
              "%zu-query pre-pass: yes\n\n",
              verify_n);

  // The timed drain. Spans off: at millions of queries the per-span
  // records would dominate memory; the span overhead itself is what
  // bench_observability_overhead measures.
  const std::size_t swap_every =
      num_swaps > 0 ? total_queries / (static_cast<std::size_t>(num_swaps) + 1)
                    : total_queries + 1;
  const std::size_t num_samples =
      (total_queries + static_cast<std::size_t>(sample_every) - 1) /
      static_cast<std::size_t>(sample_every);
  std::vector<double> sample_us(num_samples, 0.0);
  support::trace::ScopedEnabled spans_off(false);

  const auto start = Clock::now();
  support::parallel_for(total_queries, 256, [&](std::size_t i) {
    if (i > 0 && i % swap_every == 0) {
      // A hot swap in the middle of the drain: in-flight selections on
      // other workers keep their snapshot; later ones see the variant.
      const std::size_t round = i / swap_every;
      const BankSetup& bank = banks[round % banks.size()];
      registry.publish(bank.key,
                       bank.variants[round % bank.variants.size()]);
    }
    if (i % static_cast<std::size_t>(sample_every) == 0) {
      const auto q0 = Clock::now();
      (void)registry.select_uid(stream[i].key, stream[i].inst);
      sample_us[i / static_cast<std::size_t>(sample_every)] =
          seconds_since(q0) * 1e6;
    } else {
      (void)registry.select_uid(stream[i].key, stream[i].inst);
    }
  });
  const double elapsed_s = seconds_since(start);

  std::sort(sample_us.begin(), sample_us.end());
  const auto pct = [&](double p) {
    const std::size_t idx = std::min(
        sample_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(sample_us.size())));
    return sample_us[idx];
  };
  const double p50 = pct(0.50);
  const double p99 = pct(0.99);
  const double qps = static_cast<double>(total_queries) / elapsed_s;

  std::uint64_t swaps = 0, memo_hits = 0, memo_misses = 0;
  for (const auto& shard : registry.shard_stats()) {
    swaps += shard.swaps;
    memo_hits += shard.memo_hits;
    memo_misses += shard.memo_misses;
  }

  support::TextTable table({"metric", "value"});
  table.add_row({"queries", std::to_string(total_queries)});
  table.add_row({"hot swaps", std::to_string(swaps - banks.size())});
  table.add_row({"elapsed [s]", support::format_double(elapsed_s, 3)});
  table.add_row({"throughput [q/s]", support::format_double(qps, 0)});
  table.add_row({"p50 latency [us]", support::format_double(p50, 3)});
  table.add_row({"p99 latency [us]", support::format_double(p99, 3)});
  table.add_row({"memo hits", std::to_string(memo_hits)});
  table.add_row({"memo misses", std::to_string(memo_misses)});
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  bench::JsonMetrics metrics;
  metrics.emplace_back("queries", static_cast<double>(total_queries));
  metrics.emplace_back("banks", static_cast<double>(banks.size()));
  metrics.emplace_back("hot_swaps",
                       static_cast<double>(swaps - banks.size()));
  metrics.emplace_back("elapsed_s", elapsed_s);
  metrics.emplace_back("throughput_qps", qps);
  metrics.emplace_back("p50_us", p50);
  metrics.emplace_back("p99_us", p99);
  metrics.emplace_back("memo_hits", static_cast<double>(memo_hits));
  metrics.emplace_back("memo_misses", static_cast<double>(memo_misses));
  bench::json_report(json_path, "serving_load", metrics);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_serving.json";
  std::size_t queries = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = static_cast<std::size_t>(
          std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (queries == 0) queries = smoke ? 200000 : 2000000;
  const int num_swaps = smoke ? 3 : 12;
  return run_load(queries, num_swaps, /*sample_every=*/64, json_path);
}
