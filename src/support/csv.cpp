#include "support/csv.hpp"

#include <fstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace mpicp::support {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MPICP_REQUIRE(!header_.empty(), "CSV header must not be empty");
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  MPICP_RAISE_PARSE("CSV column '" + name + "' not found");
}

void CsvTable::add_row(std::vector<std::string> row) {
  MPICP_REQUIRE(row.size() == header_.size(),
                "CSV row width does not match header");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  MPICP_REQUIRE(i < rows_.size(), "CSV row index out of range");
  return rows_[i];
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  MPICP_REQUIRE(row < rows_.size() && col < header_.size(),
                "CSV cell out of range");
  return rows_[row][col];
}

double CsvTable::cell_double(std::size_t row, std::size_t col) const {
  return parse_double(cell(row, col));
}

std::int64_t CsvTable::cell_int(std::size_t row, std::size_t col) const {
  return parse_int(cell(row, col));
}

namespace {

/// Shared reader core: strict mode throws on the first structurally bad
/// row, lenient mode logs and skips it.
CsvReadResult read_csv_impl(const std::filesystem::path& path,
                            bool lenient) {
  std::ifstream in(path);
  if (!in) MPICP_RAISE_PARSE("cannot open CSV file " + path.string());
  std::string line;
  if (!std::getline(in, line)) {
    MPICP_RAISE_PARSE("CSV file " + path.string() + " is empty");
  }
  CsvReadResult result;
  result.table = CsvTable(split(trim(line), ','));
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    auto cells = split(trimmed, ',');
    if (cells.size() != result.table.header().size()) {
      if (!lenient) {
        MPICP_RAISE_PARSE(path.string() + ":" + std::to_string(lineno) +
                         ": row width mismatch");
      }
      result.errors.push_back({lineno, "row width mismatch"});
      continue;
    }
    result.table.add_row(std::move(cells));
    result.linenos.push_back(lineno);
  }
  return result;
}

}  // namespace

CsvTable read_csv(const std::filesystem::path& path) {
  return read_csv_impl(path, /*lenient=*/false).table;
}

CsvReadResult read_csv_lenient(const std::filesystem::path& path) {
  return read_csv_impl(path, /*lenient=*/true);
}

void write_csv(const std::filesystem::path& path, const CsvTable& table) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  out << join(table.header(), ",") << '\n';
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    out << join(table.row(i), ",") << '\n';
  }
  if (!out) MPICP_RAISE_ERROR("failed writing CSV file " + path.string());
}

}  // namespace mpicp::support
