// Ablation — prediction target: absolute running time (this paper) vs.
// relative speed-up over the default strategy (the authors' earlier
// PMBS'18 approach, §III.A "Avoid Bias in Training Data").
//
// The ratio target inherits the default strategy's discontinuities (the
// default is a *strategy*, not one algorithm, so the denominator jumps
// at its decision thresholds), which the paper argues hurts the model.
// This harness quantifies that on a dataset.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"

#include "support/stats.hpp"
#include "ml/knn.hpp"
#include "ml/learner.hpp"
#include "tune/evaluator.hpp"

namespace {

using namespace mpicp;

/// PMBS'18-style selector: per uid, fit a model of the ratio
/// t_default / t_uid and pick the uid with the largest predicted ratio.
class RatioSelector {
 public:
  RatioSelector(const bench::Dataset& ds,
                const bench::DefaultLogic& default_logic,
                const std::vector<int>& train_nodes,
                const std::string& learner) {
    std::map<int, std::vector<const bench::Record*>> rows;
    for (const bench::Record& rec : ds.records()) {
      if (std::find(train_nodes.begin(), train_nodes.end(), rec.nodes) ==
          train_nodes.end()) {
        continue;
      }
      rows[rec.uid].push_back(&rec);
    }
    const tune::FeatureOptions fopts;
    for (const auto& [uid, recs] : rows) {
      ml::Matrix x(recs.size(), 4);
      std::vector<double> y(recs.size());
      for (std::size_t i = 0; i < recs.size(); ++i) {
        const bench::Instance inst{recs[i]->nodes, recs[i]->ppn,
                                   recs[i]->msize};
        const auto feat = tune::instance_features(inst, fopts);
        std::copy(feat.begin(), feat.end(), x.row(i).begin());
        const double t_def =
            ds.time_us(default_logic.select_uid(inst), inst);
        y[i] = t_def / recs[i]->time_us;  // speed-up vs default
      }
      auto model = ml::make_regressor(learner);
      model->fit(x, y);
      models_.emplace(uid, std::move(model));
    }
  }

  int select_uid(const bench::Instance& inst) const {
    const auto feat = tune::instance_features(inst, {});
    int best_uid = -1;
    double best_ratio = 0.0;
    for (const auto& [uid, model] : models_) {
      const double r = model->predict_one(feat);
      if (best_uid < 0 || r > best_ratio) {
        best_uid = uid;
        best_ratio = r;
      }
    }
    return best_uid;
  }

 private:
  std::map<int, std::unique_ptr<ml::Regressor>> models_;
};

/// The other approach §III.A rejects: classify the best uid directly
/// (labels are heavily imbalanced toward the few frequently-winning
/// algorithms). A plain k-nearest-neighbor majority vote over the
/// training instances' best-uid labels.
class DirectClassifier {
 public:
  DirectClassifier(const bench::Dataset& ds,
                   const std::vector<int>& train_nodes, int k)
      : k_(k) {
    std::vector<std::vector<double>> feats;
    for (const bench::Instance& inst : ds.instances()) {
      if (std::find(train_nodes.begin(), train_nodes.end(), inst.nodes) ==
          train_nodes.end()) {
        continue;
      }
      feats.push_back(tune::instance_features(inst, {}));
      labels_.push_back(ds.best(inst).uid);
    }
    x_ = ml::Matrix(feats.size(), 4);
    for (std::size_t i = 0; i < feats.size(); ++i) {
      std::copy(feats[i].begin(), feats[i].end(), x_.row(i).begin());
    }
    scaler_.fit(x_);
    for (std::size_t i = 0; i < x_.rows(); ++i) {
      const auto scaled = scaler_.transform(x_.row(i));
      std::copy(scaled.begin(), scaled.end(), x_.row(i).begin());
    }
  }

  int select_uid(const bench::Instance& inst) const {
    const auto q = scaler_.transform(tune::instance_features(inst, {}));
    // k nearest neighbors by brute force, then majority label.
    std::vector<std::pair<double, int>> dist;
    for (std::size_t i = 0; i < x_.rows(); ++i) {
      double d = 0.0;
      for (std::size_t f = 0; f < q.size(); ++f) {
        d += (q[f] - x_(i, f)) * (q[f] - x_(i, f));
      }
      dist.emplace_back(d, labels_[i]);
    }
    std::partial_sort(dist.begin(),
                      dist.begin() + std::min<std::size_t>(k_, dist.size()),
                      dist.end());
    std::map<int, int> votes;
    for (int i = 0; i < k_ && i < static_cast<int>(dist.size()); ++i) {
      ++votes[dist[i].second];
    }
    int best = 0;
    int best_votes = 0;
    for (const auto& [uid, v] : votes) {
      if (v > best_votes) {
        best = uid;
        best_votes = v;
      }
    }
    return best;
  }

 private:
  int k_;
  ml::Matrix x_;
  ml::StandardScaler scaler_;
  std::vector<int> labels_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());
  const auto default_logic = bench::make_default_for(ds);

  std::printf("Ablation: prediction target, dataset %s, learner GAM\n\n",
              dataset.c_str());
  support::TextTable table({"target", "mean speedup", "geomean speedup",
                            "mean norm. runtime", "frac. optimal"});

  // (a) runtime target — the paper's approach.
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  bench::fit_or_warn(selector, ds, split.train_full);
  const tune::Evaluation runtime_eval =
      tune::evaluate(ds, selector, *default_logic, split.test);
  table.add_row(
      {"runtime (paper)",
       support::format_double(runtime_eval.summary.mean_speedup, 4),
       support::format_double(runtime_eval.summary.geomean_speedup, 4),
       support::format_double(runtime_eval.summary.mean_norm_predicted, 4),
       support::format_double(runtime_eval.summary.fraction_optimal, 4)});

  // (b) ratio target — the PMBS'18 approach, evaluated identically.
  const RatioSelector ratio(ds, *default_logic, split.train_full, "gam");
  std::vector<double> speedups;
  std::vector<double> norms;
  std::size_t optimal = 0;
  std::size_t count = 0;
  for (const bench::Instance& inst : ds.instances()) {
    if (std::find(split.test.begin(), split.test.end(), inst.nodes) ==
        split.test.end()) {
      continue;
    }
    const auto best = ds.best(inst);
    const double t_def = ds.time_us(default_logic->select_uid(inst), inst);
    const int uid = ratio.select_uid(inst);
    const double t_pred = ds.time_us(uid, inst);
    speedups.push_back(t_def / t_pred);
    norms.push_back(t_pred / best.time_us);
    optimal += uid == best.uid ? 1 : 0;
    ++count;
  }
  table.add_row(
      {"speed-up ratio (PMBS'18)",
       support::format_double(support::mean(speedups), 4),
       support::format_double(support::geomean(speedups), 4),
       support::format_double(support::mean(norms), 4),
       support::format_double(
           static_cast<double>(optimal) / static_cast<double>(count), 4)});

  // (c) direct classification of the best uid — the label-imbalance
  // formulation the paper rejects.
  const DirectClassifier classifier(ds, split.train_full, 5);
  speedups.clear();
  norms.clear();
  optimal = 0;
  count = 0;
  for (const bench::Instance& inst : ds.instances()) {
    if (std::find(split.test.begin(), split.test.end(), inst.nodes) ==
        split.test.end()) {
      continue;
    }
    const auto best = ds.best(inst);
    const double t_def = ds.time_us(default_logic->select_uid(inst), inst);
    const int uid = classifier.select_uid(inst);
    const double t_pred = ds.time_us(uid, inst);
    speedups.push_back(t_def / t_pred);
    norms.push_back(t_pred / best.time_us);
    optimal += uid == best.uid ? 1 : 0;
    ++count;
  }
  table.add_row(
      {"direct classification",
       support::format_double(support::mean(speedups), 4),
       support::format_double(support::geomean(speedups), 4),
       support::format_double(support::mean(norms), 4),
       support::format_double(
           static_cast<double>(optimal) / static_cast<double>(count), 4)});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
