// Serialization round-trip tests: every learner and the full selector
// must predict identically after save/load.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "ml/learner.hpp"
#include "support/rng.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

struct Synth {
  ml::Matrix x;
  std::vector<double> y;
};

Synth make_synth(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  Synth s;
  s.x = ml::Matrix(n, 3);
  s.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.x(i, 0) = rng.uniform(0.0, 22.0);
    s.x(i, 1) = rng.uniform(1.0, 36.0);
    s.x(i, 2) = rng.uniform(1.0, 32.0);
    s.y[i] = std::exp(0.1 * s.x(i, 0) + 0.02 * s.x(i, 1) +
                      0.5 * std::sin(s.x(i, 2)));
  }
  return s;
}

class LearnerRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(LearnerRoundTrip, PredictionsIdenticalAfterSaveLoad) {
  const Synth train = make_synth(300, 1);
  const Synth probe = make_synth(50, 2);
  auto model = ml::make_regressor(GetParam());
  model->fit(train.x, train.y);
  EXPECT_EQ(model->name(), GetParam());

  std::stringstream stream;
  ml::save_regressor(stream, *model);
  const auto restored = ml::load_regressor(stream);
  EXPECT_EQ(restored->name(), model->name());
  for (std::size_t i = 0; i < probe.x.rows(); ++i) {
    EXPECT_DOUBLE_EQ(model->predict_one(probe.x.row(i)),
                     restored->predict_one(probe.x.row(i)))
        << GetParam() << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLearners, LearnerRoundTrip,
                         ::testing::ValuesIn(ml::kLearnerNames));

TEST(SerializationErrors, CorruptHeaderRejected) {
  std::stringstream stream("regresso knn\n");
  EXPECT_THROW(ml::load_regressor(stream), Error);
  std::stringstream unknown("regressor warp9\n");
  EXPECT_THROW(ml::load_regressor(unknown), Error);
}

TEST(SelectorRoundTrip, DecisionsIdenticalAfterSaveLoad) {
  // Small synthetic dataset with two crossing algorithms.
  bench::Dataset ds("t", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                    "Hydra");
  support::Xoshiro256 rng(7);
  for (const int n : {2, 4, 8, 16}) {
    for (const int ppn : {1, 4}) {
      for (const std::uint64_t m : {64u, 4096u, 262144u}) {
        const double t1 = 5.0 * n + 0.001 * static_cast<double>(m);
        const double t2 = 20.0 + 0.0004 * static_cast<double>(m) * ppn;
        for (int rep = 0; rep < 2; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
        }
      }
    }
  }
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 8, 16}).degraded());

  const auto path = std::filesystem::temp_directory_path() /
                    "mpicp_selector_roundtrip.model";
  selector.save(path);
  const tune::Selector restored = tune::Selector::load(path);
  EXPECT_EQ(restored.options().learner, "gam");
  EXPECT_EQ(restored.uids(), selector.uids());
  for (const int n : {3, 6, 12}) {
    for (const std::uint64_t m : {128u, 65536u}) {
      const bench::Instance inst{n, 2, m};
      EXPECT_EQ(restored.select_uid(inst), selector.select_uid(inst));
      for (const int uid : selector.uids()) {
        EXPECT_DOUBLE_EQ(restored.predicted_time_us(uid, inst),
                         selector.predicted_time_us(uid, inst));
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(SelectorRoundTrip, SavingUnfittedSelectorThrows) {
  tune::Selector selector;
  EXPECT_THROW(selector.save("/tmp/never_written.model"), Error);
}

}  // namespace
}  // namespace mpicp
