file(REMOVE_RECURSE
  "libmpicp_support.a"
)
