# Empty dependencies file for bench_fig2_chain_speedup.
# This may be replaced when dependencies are built.
