// Resource-tracking network model.
//
// Maps ranks onto (node, core) slots and schedules point-to-point
// transfers against finite per-node resources: NIC rails for inter-node
// traffic, memory copy channels for intra-node traffic. Resource
// occupancy is tracked as next-available times, so concurrent transfers
// through the same node serialize — this is what makes, e.g., the linear
// broadcast collapse at scale while tree algorithms keep all NICs busy.
#pragma once

#include <cstddef>
#include <vector>

#include "simnet/machine.hpp"

namespace mpicp::sim {

/// One scheduled point-to-point transfer.
struct Transfer {
  double start_us = 0.0;    ///< when the wire/channel transfer begins
  double arrival_us = 0.0;  ///< when the last byte reaches the receiver
};

/// Rank-to-node placement policy (SLURM's -m block / -m cyclic).
enum class Placement {
  kBlock,   ///< rank r on node r / ppn (the default; the paper's setup)
  kCyclic,  ///< rank r on node r mod nodes (round-robin)
};

/// Process-to-node placement plus transfer scheduling for one job
/// allocation (`nodes` compute nodes, `ppn` processes per node).
class Network {
 public:
  Network(const MachineDesc& desc, int nodes, int ppn,
          Placement placement = Placement::kBlock);

  const MachineDesc& machine() const { return desc_; }
  int num_nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  int num_ranks() const { return nodes_ * ppn_; }

  Placement placement() const { return placement_; }

  int node_of(int rank) const {
    return placement_ == Placement::kBlock ? rank / ppn_ : rank % nodes_;
  }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Channel parameters that apply between two ranks.
  const LinkParams& link(int src, int dst) const {
    return same_node(src, dst) ? desc_.intra : desc_.inter;
  }

  /// Reserve resources for a transfer of `bytes` bytes from rank `src`
  /// to rank `dst` that is ready to start at `ready_us`. Mutates the
  /// per-node resource availability times.
  Transfer schedule_transfer(int src, int dst, std::size_t bytes,
                             double ready_us);

  /// Reset all resource availability to time zero (start of a new run).
  void reset();

 private:
  double& pick_earliest(std::vector<double>& pool, int node);

  MachineDesc desc_;
  int nodes_;
  int ppn_;
  Placement placement_;
  // Flattened [node][rail] and [node][channel] next-available times.
  std::vector<double> rail_avail_;
  std::vector<double> mem_avail_;
};

}  // namespace mpicp::sim
