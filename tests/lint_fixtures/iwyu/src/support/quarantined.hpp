// Fixture: an unused header whose include carries an inline allow()
// suppression — stays silent.
#pragma once

namespace fix {

struct QuarantinedWidget {
  int idle = 0;
};

}  // namespace fix
