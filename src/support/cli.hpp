// Tiny command-line option parser for the examples and bench harnesses.
//
// Supports --name=value and --name value forms plus boolean flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpicp::support {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name,
                  const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace mpicp::support
