// Figure 2 — speed-up of the chain broadcast configurations (algorithm
// 2) over the basic linear broadcast (algorithm 1) on 32x32 processes.
//
// One output block per segment size; rows are message sizes, columns the
// chain counts. The paper's shape: speed-ups grow with the message size,
// reaching ~10-50x at 4 MiB depending on (segment size, chain count);
// tiny segments underperform at large sizes because of per-message
// overheads.
#include <iostream>
#include <map>

#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace mpicp;
  using sim::Collective;
  using sim::MpiLib;

  const int nodes = 32;
  const int ppn = 32;
  const sim::MachineDesc machine = sim::hydra_machine();
  const std::vector<std::uint64_t> msizes = {
      1,     16,    256,    1024,    4096,
      16384, 65536, 524288, 1048576, 4194304};

  std::cout << "Figure 2: speed-up of chain broadcast configurations over "
               "the linear broadcast;\n32x32 processes, Open MPI "
               "(modeled), Hydra\n\n";

  const auto& configs = algorithm_configs(MpiLib::kOpenMPI,
                                          Collective::kBcast);
  const sim::Comm comm(nodes, ppn);
  sim::Network net(machine, nodes, ppn);
  sim::Executor exec(net);

  const auto run_uid = [&](const sim::AlgoConfig& cfg, std::uint64_t m) {
    auto built = build_algorithm(MpiLib::kOpenMPI, Collective::kBcast, cfg,
                                 comm, m, 0, false);
    return exec.run(built.programs).makespan_us;
  };

  // Baseline: algorithm 1 (linear) per message size.
  const sim::AlgoConfig* linear = nullptr;
  std::vector<const sim::AlgoConfig*> chains;
  for (const auto& cfg : configs) {
    if (cfg.alg_id == 1) linear = &cfg;
    if (cfg.alg_id == 2) chains.push_back(&cfg);
  }
  std::map<std::uint64_t, double> t_linear;
  for (const std::uint64_t m : msizes) t_linear[m] = run_uid(*linear, m);

  std::map<std::size_t, std::vector<const sim::AlgoConfig*>> by_seg;
  for (const auto* cfg : chains) by_seg[cfg->seg_bytes].push_back(cfg);

  for (const auto& [seg, cfgs] : by_seg) {
    std::cout << "segment size " << support::format_bytes(seg) << "B:\n";
    std::vector<std::string> header = {"msize [B]"};
    for (const auto* cfg : cfgs) {
      header.push_back("chains=" + std::to_string(cfg->param));
    }
    support::TextTable table(std::move(header));
    for (const std::uint64_t m : msizes) {
      std::vector<std::string> row = {std::to_string(m)};
      for (const auto* cfg : cfgs) {
        const double speedup = t_linear[m] / run_uid(*cfg, m);
        row.push_back(support::format_double(speedup, 3));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
