// Dependency-free parallel execution layer.
//
// The paper's selection strategy is embarrassingly parallel: one
// regression model per algorithm configuration uid, fitted and queried
// independently (Fig. 3). This module provides the fixed-size thread
// pool and the parallel_for helper that the model-bank hot paths
// (Selector::fit, Selector::predict_all, tune::evaluate, ml::kfold_rmse)
// fan out on. Design constraints:
//
//  * Determinism: parallel_for hands out index ranges; callers write
//    results into preallocated slots keyed by index, so results are
//    bit-identical regardless of thread count.
//  * Exception safety: the first exception thrown by the body is
//    captured, remaining chunks are cancelled best-effort, and the
//    exception is rethrown on the calling thread.
//  * Nested use: a parallel_for issued from inside a parallel region
//    runs serially on the calling thread (no deadlock, no
//    oversubscription).
//
// The degree of parallelism is resolved per call: a ScopedThreads
// override (tests/benches) beats the MPICP_THREADS environment variable
// beats the hardware concurrency. The value 0 means "hardware
// concurrency"; 1 selects the serial fallback.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_safety.hpp"

namespace mpicp::support {

/// Hardware concurrency, never less than 1.
int hardware_threads();

/// The degree of parallelism parallel_for uses right now: the innermost
/// ScopedThreads override if active, else $MPICP_THREADS if set to a
/// valid value, else the hardware concurrency. 0 (in either source)
/// resolves to hardware_threads(); the result is always >= 1.
int configured_threads();

/// RAII override of configured_threads() — used by tests and benches to
/// pin the thread count regardless of the environment. Overrides nest;
/// the destructor restores the previous value. Not thread-safe against
/// concurrent construction from different threads (intended for
/// top-level harness code).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

/// A fixed-size pool of worker threads draining one shared task queue.
/// Public for the tests; library code goes through parallel_for, which
/// uses a lazily grown process-wide shared pool.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const;

  /// Enqueue one task. Tasks must not block waiting for other queued
  /// tasks (parallel_for's runners never do).
  void submit(std::function<void()> task);

  /// The process-wide pool, grown on demand so it can serve the largest
  /// thread count requested so far (workers are only ever added, never
  /// removed — the pool stays fixed-size between growth requests).
  static ThreadPool& shared(int min_workers);

 private:
  void spawn_locked(int count) MPICP_REQUIRES(mu_);
  void worker_loop();

  mutable Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ MPICP_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ MPICP_GUARDED_BY(mu_);
  bool stop_ MPICP_GUARDED_BY(mu_) = false;
};

/// True while the calling thread is executing a parallel_for body.
bool in_parallel_region();

/// Run fn(i) for every i in [0, n), distributing contiguous chunks of
/// `chunk` indices over configured_threads() threads (the calling thread
/// participates). Serial fallback when the effective thread count is 1,
/// when there is at most one chunk, or when called from inside another
/// parallel region. Rethrows the first exception thrown by fn on the
/// calling thread after all in-flight chunks have finished.
void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mpicp::support
