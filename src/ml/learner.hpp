// Common regressor interface and factory.
//
// The paper's framework is learner-agnostic by design (§III, "Achieving
// Robustness and Applicability"): any regression method that predicts a
// positive running time from (m, n, N) plugs in. All learners here run
// with fixed default hyper-parameters — the paper deliberately performs
// no hyper-parameter tuning.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace mpicp::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on features X (one row per sample) and positive targets y.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predict the target for one feature row.
  virtual double predict_one(std::span<const double> x) const = 0;

  /// The factory name of this learner ("xgboost", "knn", ...).
  virtual std::string name() const = 0;

  /// Serialize the fitted model / restore it. The text format is
  /// self-describing per learner; use save_regressor/load_regressor for
  /// the polymorphic envelope.
  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;

  std::vector<double> predict(const Matrix& x) const;
};

/// Write a learner with a name header so load_regressor can rebuild it.
void save_regressor(std::ostream& os, const Regressor& model);
std::unique_ptr<Regressor> load_regressor(std::istream& is);

/// Learner names accepted by make_regressor (paper's three main learners
/// first, then the ones it evaluated and discarded, then the constant
/// median predictor — the selector's last-resort fit fallback).
inline constexpr const char* kLearnerNames[] = {"xgboost", "knn", "gam",
                                                "rf", "linear", "median"};

std::unique_ptr<Regressor> make_regressor(const std::string& name);

}  // namespace mpicp::ml
