// Table III — training and test datasets by machine and node count.
#include <iostream>

#include "collbench/specs.hpp"
#include "support/str.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

std::string join_ints(const std::vector<int>& values) {
  std::vector<std::string> strs;
  strs.reserve(values.size());
  for (const int v : values) strs.push_back(std::to_string(v));
  return mpicp::support::join(strs, ", ");
}

}  // namespace

int main() {
  using namespace mpicp;
  std::cout << "Table III: training and test datasets by machine and "
               "number of compute nodes (n)\n\n";
  support::TextTable table({"Machine", "Full training dataset (n)",
                            "Small training dataset (n)",
                            "Test dataset (n)"});
  for (const char* machine : {"Hydra", "Jupiter", "SuperMUC-NG"}) {
    const bench::NodeSplit split = bench::node_split(machine);
    table.add_row({machine, join_ints(split.train_full),
                   join_ints(split.train_small), join_ints(split.test)});
  }
  table.print(std::cout);
  return 0;
}
