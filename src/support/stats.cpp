#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace mpicp::support {

double mean(std::span<const double> xs) {
  MPICP_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  MPICP_REQUIRE(xs.size() >= 2, "variance needs at least two samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  MPICP_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  MPICP_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  MPICP_REQUIRE(!xs.empty(), "quantile of empty range");
  MPICP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order outside [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double geomean(std::span<const double> xs) {
  MPICP_REQUIRE(!xs.empty(), "geomean of empty range");
  double acc = 0.0;
  for (double x : xs) {
    MPICP_REQUIRE(x > 0.0, "geomean needs positive inputs");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.median = median(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.q25 = quantile(xs, 0.25);
  s.q75 = quantile(xs, 0.75);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  return s;
}

}  // namespace mpicp::support
