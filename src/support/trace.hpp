// Lightweight RAII tracing spans with a hierarchical wall-clock profile.
//
// Usage: MPICP_SPAN("fit.uid"); times the enclosing scope. Spans nest —
// a span opened while another is active on the same thread records the
// path "outer/inner" — and aggregate into a per-path profile (count,
// total, min, max). Span records land in per-thread buffers (registered
// once per thread, appended under a per-buffer mutex that is only ever
// contended by an explicit profile()/records() collection), so tracing
// composes with the support/parallel thread pool; parallel_for
// propagates the caller's span path into its runners (ScopedParent), so
// work executed on pool threads merges under the logical stage that
// spawned it rather than appearing as disconnected roots.
//
// Tracing is on by default and controlled by the MPICP_TRACE
// environment variable ("0" disables) or programmatically via
// set_enabled / ScopedEnabled. When disabled, a span is a single
// relaxed atomic load — nothing is allocated or recorded
// (bench/bench_observability_overhead asserts this stays negligible).
//
// Exporters: print_profile renders the aggregated profile as a table;
// write_chrome_trace dumps every span in Chrome trace format (load via
// chrome://tracing or https://ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mpicp::support::trace {

/// Is span recording currently on? One relaxed atomic load.
bool enabled();

/// Programmatic override of the MPICP_TRACE environment variable.
void set_enabled(bool on);

/// RAII enable/disable for tests and benches; restores on destruction.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on);
  ~ScopedEnabled();

  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool previous_;
};

/// One completed span as recorded in a thread buffer.
struct SpanRecord {
  std::string path;        ///< "selector.fit/fit.uid"
  std::uint64_t start_ns;  ///< since the process trace epoch
  std::uint64_t dur_ns;
  int thread = 0;          ///< stable small per-thread id
  int depth = 0;           ///< nesting depth on its thread (root = 0)
};

/// The timing scope behind MPICP_SPAN. `name` must outlive the span
/// (string literals in practice).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string path_;            // empty when tracing was disabled at entry
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool active_ = false;
};

/// The innermost active span path on this thread (the ambient parent if
/// no span is open); "" at top level or when tracing is disabled.
std::string current_path();

/// Ambient parent for spans opened on this thread while no local span
/// is active — how parallel_for runners inherit the caller's stage.
class ScopedParent {
 public:
  explicit ScopedParent(std::string path);
  ~ScopedParent();

  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  std::string previous_;
};

/// Aggregated wall-clock statistics of one span path.
struct ProfileEntry {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Merged copy of every completed span across all thread buffers, in
/// (thread, completion) order.
std::vector<SpanRecord> records();

/// records() aggregated by path, sorted by path (the hierarchy reads
/// top-down because a child path extends its parent's).
std::vector<ProfileEntry> profile();

/// Drop all recorded spans (buffers stay registered).
void reset();

/// Render profile() as an aligned table.
void print_profile(std::ostream& os);

/// Dump records() in Chrome trace format ("X" complete events; ts/dur
/// in microseconds; tid is the stable per-thread id).
void write_chrome_trace(std::ostream& os);

}  // namespace mpicp::support::trace

#define MPICP_SPAN_CONCAT2(a, b) a##b
#define MPICP_SPAN_CONCAT(a, b) MPICP_SPAN_CONCAT2(a, b)
/// Time the enclosing scope under `name` (see support/trace.hpp).
#define MPICP_SPAN(name)                     \
  ::mpicp::support::trace::Span MPICP_SPAN_CONCAT( \
      mpicp_span_, __LINE__)(name)
