#include "support/table.hpp"

#include <algorithm>
#include <iomanip>

#include "support/error.hpp"

namespace mpicp::support {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MPICP_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  MPICP_REQUIRE(row.size() == header_.size(),
                "table row width does not match header");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (looks_numeric(row[c])) {
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mpicp::support
