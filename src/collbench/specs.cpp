#include "collbench/specs.hpp"

#include "support/error.hpp"

namespace mpicp::bench {

namespace {

using sim::Collective;
using sim::MpiLib;

// Table II grids, extended by node count 20 which Table III's training
// split uses (the paper lists it only there).
const std::vector<int> kHydraNodes = {4,  7,  8,  13, 16, 19,
                                      20, 24, 27, 32, 35, 36};
const std::vector<int> kHydraPpns = {1, 4, 8, 10, 16, 17, 20, 24, 28, 32};
const std::vector<int> kJupiterNodes = {4,  7,  8,  13, 16,
                                        19, 20, 24, 27, 32, 35};
const std::vector<int> kJupiterPpns = {1, 2, 4, 8, 10, 12, 16};
const std::vector<int> kSupermucNodes = {20, 27, 32, 35, 48};
const std::vector<int> kSupermucPpns = {1, 8, 16, 24, 48};

std::vector<std::uint64_t> first_n(const std::vector<std::uint64_t>& v,
                                   std::size_t n) {
  return {v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n)};
}

std::vector<DatasetSpec> make_specs() {
  const auto& m10 = standard_msizes();
  const auto m8 = first_n(m10, 8);
  // Budgets mirror §V: up to R repetitions or ~1 s (0.5 s on
  // SuperMUC-NG) per configuration, whichever is hit first. The rep caps
  // are sized so the per-dataset sample counts land near Table II.
  const RunnerBudget rep5{.max_reps = 5, .budget_us = 1.0e6};
  const RunnerBudget rep3{.max_reps = 3, .budget_us = 1.0e6};
  const RunnerBudget rep4{.max_reps = 4, .budget_us = 1.0e6};
  const RunnerBudget rep3s{.max_reps = 3, .budget_us = 0.5e6};

  std::vector<DatasetSpec> specs;
  specs.push_back({"d1", Collective::kBcast, MpiLib::kOpenMPI, "4.0.2",
                   "Hydra", kHydraNodes, kHydraPpns, m10, rep5, 101});
  specs.push_back({"d2", Collective::kAllreduce, MpiLib::kOpenMPI, "4.0.2",
                   "Hydra", kHydraNodes, kHydraPpns, m10, rep3, 102});
  specs.push_back({"d3", Collective::kBcast, MpiLib::kOpenMPI, "4.0.2",
                   "Jupiter", kJupiterNodes, kJupiterPpns, m10, rep5, 103});
  specs.push_back({"d4", Collective::kAllreduce, MpiLib::kOpenMPI, "4.0.2",
                   "Jupiter", kJupiterNodes, kJupiterPpns, m10, rep3, 104});
  specs.push_back({"d5", Collective::kAllreduce, MpiLib::kIntelMPI, "2019",
                   "Hydra", kHydraNodes, kHydraPpns, m10, rep4, 105});
  specs.push_back({"d6", Collective::kAlltoall, MpiLib::kIntelMPI, "2019",
                   "Hydra", kHydraNodes, kHydraPpns, m8, rep4, 106});
  specs.push_back({"d7", Collective::kBcast, MpiLib::kIntelMPI, "2019",
                   "Hydra", kHydraNodes, kHydraPpns, m10, rep4, 107});
  specs.push_back({"d8", Collective::kBcast, MpiLib::kOpenMPI, "4.0.2",
                   "SuperMUC-NG", kSupermucNodes, kSupermucPpns, m8, rep3s,
                   108});
  return specs;
}

}  // namespace

const std::vector<std::uint64_t>& standard_msizes() {
  static const std::vector<std::uint64_t> sizes = {
      1,     16,    256,    1024,    4096,
      16384, 65536, 524288, 1048576, 4194304};
  return sizes;
}

const std::vector<DatasetSpec>& all_dataset_specs() {
  static const std::vector<DatasetSpec> specs = make_specs();
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const DatasetSpec& spec : all_dataset_specs()) {
    if (spec.name == name) return spec;
  }
  MPICP_RAISE_ARG("unknown dataset '" + name + "'");
}

NodeSplit node_split(const std::string& machine) {
  if (machine == "Hydra") {
    return {{4, 8, 16, 20, 24, 32, 36},
            {4, 16, 36},
            {7, 13, 19, 27, 35}};
  }
  if (machine == "Jupiter") {
    return {{4, 8, 16, 20, 24, 32}, {4, 16, 32}, {7, 13, 19, 27}};
  }
  if (machine == "SuperMUC-NG") {
    return {{20, 32, 48}, {20, 32, 48}, {27, 35}};
  }
  MPICP_RAISE_ARG("no node split for machine '" + machine + "'");
}

}  // namespace mpicp::bench
