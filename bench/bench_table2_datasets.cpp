// Table II — overview of the benchmark datasets d1..d8.
//
// Loads (or generates) every dataset and prints the grid dimensions and
// sample counts, mirroring the paper's table columns.
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace mpicp;
  std::cout << "Table II: overview of datasets\n\n";
  support::TextTable table({"Dataset", "MPI routine", "MPI", "Version",
                            "Machine", "#algorithms", "#uids", "#nodes",
                            "#ppn", "#msg.sizes", "#samples"});
  for (const bench::DatasetSpec& spec : bench::all_dataset_specs()) {
    const bench::Dataset ds = bench::load_dataset_cached(spec.name);
    table.add_row(
        {spec.name, "MPI_" + to_string(spec.coll), to_string(spec.lib),
         spec.lib_version, spec.machine,
         std::to_string(sim::num_library_algorithms(spec.lib, spec.coll)),
         std::to_string(ds.uids().size()),
         std::to_string(ds.node_counts().size()),
         std::to_string(ds.ppns().size()),
         std::to_string(ds.msizes().size()),
         std::to_string(ds.num_records())});
  }
  table.print(std::cout);
  std::cout << "\n(#algorithms: library algorithm families; #uids: "
               "algorithm x parameter configurations u_{j,l}.)\n";
  return 0;
}
