// Fixture: violates nodiscard-report (R8).
#pragma once

struct FitReport {};

FitReport fixture_fit();
