#include "ml/learner.hpp"

#include "ml/forest.hpp"
#include "ml/gam.hpp"
#include "ml/gbt.hpp"
#include "ml/io.hpp"
#include "ml/knn.hpp"
#include "ml/linreg.hpp"
#include "ml/median.hpp"
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace mpicp::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_one(x.row(i));
  }
  return out;
}

void save_regressor(std::ostream& os, const Regressor& model) {
  // v2 envelope: the payload is serialized to a buffer first so the
  // header can carry its exact byte count and FNV-1a checksum. A
  // truncated or bit-flipped model file then fails loudly at load time
  // instead of deserializing into a silently wrong model.
  std::ostringstream payload;
  model.save(payload);
  const std::string body = payload.str();
  os << "regressor-v2 " << model.name() << ' ' << body.size() << ' '
     << std::hex << io::fnv1a64(body) << std::dec << '\n'
     << body;
}

std::unique_ptr<Regressor> load_regressor(std::istream& is) {
  std::string tag;
  if (!(is >> tag)) {
    MPICP_RAISE_PARSE("model stream: missing regressor header");
  }
  if (tag == "regressor") {
    // Legacy v1 envelope (no checksum): still loadable so pre-existing
    // model banks survive the format bump.
    std::string name;
    if (!(is >> name)) {
      MPICP_RAISE_PARSE("model stream: missing regressor name");
    }
    auto model = make_regressor(name);
    model->load(is);
    return model;
  }
  MPICP_CHECK_PARSE(tag == "regressor-v2",
                    "model stream: missing regressor header (got '" + tag +
                        "')");
  std::string name;
  std::size_t bytes = 0;
  std::string checksum_hex;
  if (!(is >> name >> bytes >> checksum_hex)) {
    MPICP_RAISE_PARSE("model stream: truncated regressor-v2 header");
  }
  MPICP_CHECK_PARSE(bytes < (1u << 30),
                    "model stream: implausible payload size");
  is.get();  // the newline terminating the header
  std::string body(bytes, '\0');
  is.read(body.data(), static_cast<std::streamsize>(bytes));
  const auto got = static_cast<std::size_t>(is.gcount());
  if (got != bytes) {
    MPICP_RAISE_PARSE("model stream: truncated payload for '" + name +
                     "' — expected " + std::to_string(bytes) +
                     " bytes, got " + std::to_string(got));
  }
  std::uint64_t expected = 0;
  try {
    expected = std::stoull(checksum_hex, nullptr, 16);
  } catch (const std::exception&) {
    MPICP_RAISE_PARSE("model stream: malformed checksum '" + checksum_hex +
                     "'");
  }
  const std::uint64_t actual = io::fnv1a64(body);
  if (actual != expected) {
    std::ostringstream os;
    os << "model stream: checksum mismatch for '" << name << "' — header "
       << std::hex << expected << ", payload " << actual;
    MPICP_RAISE_PARSE(os.str());
  }
  std::istringstream payload(body);
  auto model = make_regressor(name);
  model->load(payload);
  return model;
}

std::unique_ptr<Regressor> make_regressor(const std::string& name) {
  if (name == "xgboost") return std::make_unique<GradientBoostedTrees>();
  if (name == "knn") return std::make_unique<KnnRegressor>();
  if (name == "gam") return std::make_unique<GamRegressor>();
  if (name == "rf") return std::make_unique<RandomForest>();
  if (name == "linear") return std::make_unique<LinearRegressor>();
  if (name == "median") return std::make_unique<MedianRegressor>();
  MPICP_RAISE_ARG("unknown learner '" + name + "'");
}

}  // namespace mpicp::ml
