// Error handling primitives shared by all mpicp libraries.
//
// Follows C++ Core Guidelines E.2/E.3: throw exceptions to signal that a
// function cannot perform its task; use them only for error handling.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mpicp {

/// Base class for all errors raised by the mpicp libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised on malformed external input (files, CLI).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is broken (a bug in mpicp itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const std::string& msg,
                              const std::source_location& loc) {
  std::ostringstream os;
  os << kind << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  os << " [" << loc.file_name() << ':' << loc.line() << ']';
  if (kind == std::string("precondition violated")) {
    throw InvalidArgument(os.str());
  }
  throw InternalError(os.str());
}

}  // namespace detail

}  // namespace mpicp

/// Check a caller-facing precondition; throws mpicp::InvalidArgument.
#define MPICP_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mpicp::detail::fail("precondition violated", #expr, (msg),        \
                            std::source_location::current());             \
    }                                                                     \
  } while (0)

/// Check an internal invariant; throws mpicp::InternalError.
#define MPICP_ASSERT(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mpicp::detail::fail("internal invariant violated", #expr, (msg),  \
                            std::source_location::current());             \
    }                                                                     \
  } while (0)
