// Generic, reusable program emitters: segmented tree broadcast/reduce
// pipelines, binomial scatter, ring and recursive-doubling allgather
// phases. The concrete algorithm builders (bcast.cpp, allreduce.cpp, ...)
// compose collectives from these pieces.
//
// All emitters work in *virtual rank* space (vrank 0 = operation root)
// and translate vranks to real ranks through a VrankMap, which covers
// root rotations, node-leader groups and node-local groups under both
// placement policies.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/coll/trees.hpp"
#include "simmpi/coll/types.hpp"
#include "simmpi/program.hpp"

namespace mpicp::sim {

/// Vrank -> rank mapping over a process group: a rotation *within the
/// group* followed by an affine projection into the communicator,
///
///   rank_of(v) = (base + ((offset + v) mod p) * stride) mod world.
///
/// Covers every group shape the algorithms need: a root rotation of the
/// whole communicator (offset = root, stride = 1), the node-leader group
/// of a hierarchical algorithm (stride = ppn for block placement, 1 for
/// cyclic), one node's local ranks, and rotated variants of any of these
/// (ring phases that start at a shifted vrank).
struct VrankMap {
  int base = 0;    ///< rank of group member 0
  int stride = 1;  ///< rank distance between consecutive group members
  int offset = 0;  ///< group-space rotation: vrank 0 = member `offset`
  int world = 1;   ///< communicator size
  int p = 1;       ///< group size (number of vranks)

  int rank_of(int v) const {
    return (base + ((offset + v) % p) * stride) % world;
  }

  /// This map with vrank 0 moved to member (offset + shift) mod p.
  VrankMap rotated(int shift) const {
    VrankMap out = *this;
    out.offset = (offset + shift % p + p) % p;
    return out;
  }

  static VrankMap rotation(int root, int p) {
    return {.base = 0, .stride = 1, .offset = root, .world = p, .p = p};
  }
  /// The node-leader group of `comm` (vrank v = leader of node v).
  static VrankMap leaders(const Comm& comm) {
    return {.base = 0,
            .stride = comm.placement() == Placement::kBlock ? comm.ppn()
                                                            : 1,
            .world = comm.size(),
            .p = comm.nodes()};
  }
  /// The local ranks of one node of `comm` (vrank v = local index v).
  static VrankMap node_local(const Comm& comm, int node) {
    return {.base = comm.leader_of_node(node),
            .stride = comm.placement() == Placement::kBlock ? 1
                                                            : comm.nodes(),
            .world = comm.size(),
            .p = comm.ppn()};
  }
};

/// Segmented pipelined broadcast down `tree`. Blocks are segment indices
/// [block_base, block_base + seg.nseg). Each non-root rank receives every
/// segment from its parent (blocking) and forwards it to its children
/// (nonblocking), which yields the classic pipeline overlap.
void emit_tree_bcast(ProgramSet& progs, const VrankMap& map,
                     const Tree& tree, const Segmentation& seg,
                     std::uint16_t tag, std::uint32_t block_base = 0);

/// Segmented pipelined reduction up `tree` toward vrank 0. Receives from
/// children carry the kCombine flag and are followed by reduction
/// compute; partial results are forwarded to the parent per segment.
void emit_tree_reduce(ProgramSet& progs, const VrankMap& map,
                      const Tree& tree, const Segmentation& seg,
                      std::uint16_t tag, std::uint32_t block_base = 0);

/// Binomial scatter of per-vrank chunks: after the phase, vrank v holds
/// chunks [v, v + subtree(v)) — its own and its subtree's. Requires a
/// tree whose subtrees are contiguous vrank ranges (binomial_tree is).
/// Chunk c occupies block block_base + c and has chunk_bytes[c] bytes.
void emit_binomial_scatter(ProgramSet& progs, const VrankMap& map,
                           const Tree& tree,
                           const std::vector<std::uint32_t>& chunk_bytes,
                           std::uint16_t tag, std::uint32_t block_base = 0);

/// Ring allgather of per-vrank chunks: vrank v starts owning chunk v and
/// after p-1 steps owns all chunks. When `combine` is set the received
/// chunks are OR-combined and followed by reduction compute (this variant
/// implements the reduce-scatter phase of the ring allreduce when run
/// with shrinking ownership; see emit_ring_reduce_scatter).
void emit_ring_allgather(ProgramSet& progs, const VrankMap& map,
                         const std::vector<std::uint32_t>& chunk_bytes,
                         std::uint16_t tag, std::uint32_t block_base = 0);

/// Ring reduce-scatter: after p-1 steps, vrank v holds the fully reduced
/// chunk (v+1) mod p. Receives combine and pay reduction compute.
void emit_ring_reduce_scatter(ProgramSet& progs, const VrankMap& map,
                              const std::vector<std::uint32_t>& chunk_bytes,
                              std::uint16_t tag,
                              std::uint32_t block_base = 0);

/// Recursive-doubling allgather with non-power-of-two fold-in: excess
/// vranks (v >= P2) first ship their chunk to v - P2 and receive the full
/// result afterwards. Used by the scatter-allgather broadcasts.
void emit_recdbl_allgather(ProgramSet& progs, const VrankMap& map,
                           const std::vector<std::uint32_t>& chunk_bytes,
                           std::uint16_t tag, std::uint32_t block_base = 0);

/// Even chunking of `total` bytes into `nchunks` chunks (first chunks one
/// byte larger when it does not divide evenly).
std::vector<std::uint32_t> even_chunks(std::size_t total, int nchunks);

/// Sum of a chunk-byte subrange [begin, end).
std::uint64_t chunk_range_bytes(const std::vector<std::uint32_t>& chunks,
                                int begin, int end);

/// Largest power of two <= p.
int floor_pow2(int p);

/// ceil(log2(p)) for p >= 1.
int ceil_log2(int p);

}  // namespace mpicp::sim
