// R14 is scoped to src/ — naked orders outside it stay silent.

#include <atomic>

void spin_up(std::atomic<bool>& flag) {
  flag.store(true, std::memory_order_relaxed);
}
