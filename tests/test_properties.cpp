// Property-based tests of the train -> select pipeline: seeded random
// generators drive many shapes of dataset / corruption / learner, and
// each test asserts an invariant that must hold for *every* draw —
// argmin optimality of the selection, exact monotone ingest accounting,
// and serialization round-trip identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "collbench/dataset.hpp"
#include "ml/learner.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/registry.hpp"
#include "tune/rulegen.hpp"
#include "tune/ruletable.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

namespace fi = support::faultinject;

/// Random plausible benchmark dataset: 2-5 algorithms with distinct
/// random cost models over a random node/ppn/msize grid, plus noise.
/// Every draw is fully determined by the seed.
bench::Dataset random_dataset(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  bench::Dataset ds("prop", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  const int num_uids = 2 + static_cast<int>(rng.uniform_int(4));
  const int num_nodes = 3 + static_cast<int>(rng.uniform_int(3));
  std::vector<int> nodes;
  for (int i = 0; i < num_nodes; ++i) nodes.push_back(2 << i);
  const std::vector<int> ppns = {1, 1 + static_cast<int>(rng.uniform_int(8))};
  const std::vector<std::uint64_t> msizes = {
      std::uint64_t{1} << rng.uniform_int(8),
      std::uint64_t{1} << (8 + rng.uniform_int(8)),
      std::uint64_t{1} << (16 + rng.uniform_int(6))};
  for (int uid = 1; uid <= num_uids; ++uid) {
    // Random mix of latency, per-process and bandwidth terms so
    // different uids win in different regions.
    const double a = rng.uniform(1.0, 50.0);
    const double b = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(1e-4, 1e-2);
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = static_cast<double>(n) * ppn;
          const double t = a * std::log2(p + 1) + b * p +
                           c * static_cast<double>(m) + 1.0;
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.08)});
          }
        }
      }
    }
  }
  return ds;
}

std::string learner_for_seed(std::uint64_t seed) {
  constexpr const char* kChain[] = {"gam", "knn", "linear", "rf",
                                    "xgboost"};
  return kChain[seed % std::size(kChain)];
}

// ---- argmin invariance ----------------------------------------------------

class ArgminInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArgminInvariance, SelectedUidMinimizesUsablePredictions) {
  const std::uint64_t seed = GetParam();
  const bench::Dataset ds = random_dataset(seed);
  tune::Selector selector(
      tune::SelectorOptions{.learner = learner_for_seed(seed)});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);

  support::Xoshiro256 rng(seed ^ 0xfeedbeef);
  for (int trial = 0; trial < 20; ++trial) {
    // Instances beyond the training grid too — the invariant is about
    // the argmin, not about interpolation quality.
    const bench::Instance inst{
        1 + static_cast<int>(rng.uniform_int(64)),
        1 + static_cast<int>(rng.uniform_int(16)),
        std::uint64_t{1} << rng.uniform_int(22)};
    const auto predictions = selector.predict_all(inst);
    const int chosen = selector.select_uid_or_default(
        inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);

    const auto chosen_it = std::find_if(
        predictions.begin(), predictions.end(),
        [&](const auto& p) { return p.uid == chosen; });
    if (chosen_it == predictions.end() || !chosen_it->usable) {
      // Only legal when *no* prediction was usable (library default).
      for (const auto& p : predictions) EXPECT_FALSE(p.usable);
      continue;
    }
    for (const auto& p : predictions) {
      if (!p.usable) continue;
      // No usable prediction beats the selection, and ties must have
      // resolved to the lowest uid.
      EXPECT_LE(chosen_it->time_us, p.time_us)
          << "seed " << seed << " trial " << trial << " uid " << p.uid;
      if (p.time_us == chosen_it->time_us) {
        EXPECT_LE(chosen, p.uid);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArgminInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- monotone ingest accounting -------------------------------------------

struct AccountingCase {
  double fault_rate;
  std::uint64_t seed;
};

class MonotoneAccounting
    : public ::testing::TestWithParam<AccountingCase> {};

TEST_P(MonotoneAccounting, RowsSeenEqualsIngestedPlusQuarantined) {
  const auto [fault_rate, seed] = GetParam();
  const bench::Dataset ds = random_dataset(seed);
  const auto path = std::filesystem::temp_directory_path() /
                    ("mpicp_props_accounting_" + std::to_string(seed) +
                     ".csv");
  ds.save_csv(path);
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  fi::CsvFaultLog log;
  const std::string corrupted = fi::corrupt_csv(
      text, {.fault_rate = fault_rate, .value_column = 4, .seed = seed},
      &log);
  {
    std::ofstream out(path);
    out << corrupted;
  }
  bench::IngestReport report;
  const bench::Dataset loaded = bench::Dataset::load_csv_tolerant(
      path, "prop", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &report);
  std::filesystem::remove(path);

  // The accounting identity holds at any corruption rate: every data
  // line is either ingested or quarantined, nothing is lost or counted
  // twice, and the per-reason counts sum to the quarantine total.
  EXPECT_EQ(report.rows_seen,
            report.rows_ingested + report.rows_quarantined);
  EXPECT_EQ(report.rows_seen, log.rows_total - log.rows_dropped);
  EXPECT_EQ(loaded.num_records(), report.rows_ingested);
  std::size_t by_reason = 0;
  for (const auto& [reason, count] : report.reasons) by_reason += count;
  EXPECT_EQ(by_reason, report.rows_quarantined);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSeeds, MonotoneAccounting,
    ::testing::Values(AccountingCase{0.0, 11}, AccountingCase{0.05, 12},
                      AccountingCase{0.25, 13}, AccountingCase{0.6, 14},
                      AccountingCase{1.0, 15}, AccountingCase{0.25, 16},
                      AccountingCase{0.6, 17}));

// ---- serialization round-trip ---------------------------------------------

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, LearnerPredictionsIdenticalAfterSaveLoad) {
  support::Xoshiro256 rng(0x5eed ^ std::hash<std::string>{}(GetParam()));
  ml::Matrix x(150, 4);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.uniform(0.0, 22.0);
    x(i, 1) = rng.uniform(1.0, 64.0);
    x(i, 2) = rng.uniform(1.0, 16.0);
    x(i, 3) = x(i, 1) * x(i, 2);
    y[i] = std::exp(0.08 * x(i, 0)) + 0.4 * x(i, 1) + 0.1 * x(i, 3) + 1.0;
  }
  auto model = ml::make_regressor(GetParam());
  model->fit(x, y);

  std::stringstream stream;
  ml::save_regressor(stream, *model);
  const auto restored = ml::load_regressor(stream);
  ASSERT_EQ(restored->name(), model->name());

  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> probe = {
        rng.uniform(0.0, 25.0), rng.uniform(1.0, 80.0),
        rng.uniform(1.0, 20.0), rng.uniform(1.0, 1600.0)};
    // Bit-identical, not approximately equal: the text format persists
    // doubles at max_digits10.
    EXPECT_DOUBLE_EQ(restored->predict_one(probe),
                     model->predict_one(probe))
        << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLearners, RoundTrip,
                         ::testing::ValuesIn(ml::kLearnerNames));

class BankRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BankRoundTrip, SelectorBankSelectsIdenticallyAfterSaveLoad) {
  const std::uint64_t seed = GetParam();
  const bench::Dataset ds = random_dataset(seed);
  tune::Selector selector(
      tune::SelectorOptions{.learner = learner_for_seed(seed)});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);

  const auto path = std::filesystem::temp_directory_path() /
                    ("mpicp_props_bank_" + std::to_string(seed) +
                     ".models");
  selector.save(path);
  const tune::Selector restored = tune::Selector::load(path);
  std::filesystem::remove(path);

  ASSERT_EQ(restored.uids(), selector.uids());
  support::Xoshiro256 rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 10; ++trial) {
    const bench::Instance inst{
        1 + static_cast<int>(rng.uniform_int(48)),
        1 + static_cast<int>(rng.uniform_int(12)),
        std::uint64_t{1} << rng.uniform_int(20)};
    for (const int uid : selector.uids()) {
      EXPECT_DOUBLE_EQ(restored.predicted_time_us(uid, inst),
                       selector.predicted_time_us(uid, inst));
    }
    EXPECT_EQ(restored.select_uid(inst), selector.select_uid(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankRoundTrip,
                         ::testing::Values(21, 22, 23, 24));

// ---- registry linearizability ---------------------------------------------

class RegistryLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryLinearizability,
       EveryAnswerEqualsTheSelectionOfSomePublishedVersion) {
  const std::uint64_t seed = GetParam();
  // A chain of bank versions compiled from different random datasets,
  // published at seed-chosen points of a concurrent lookup drain. The
  // invariant: no matter how lookups and publishes interleave, every
  // returned selection equals the selection of *some* published version
  // — an answer outside that set would mean a torn read.
  constexpr int kVersions = 3;
  std::vector<std::shared_ptr<const tune::CompiledBank>> versions;
  for (int v = 0; v < kVersions; ++v) {
    const bench::Dataset ds = random_dataset(seed * 17 + v);
    tune::Selector selector(
        tune::SelectorOptions{.learner = learner_for_seed(seed + v)});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
    versions.push_back(
        std::make_shared<const tune::CompiledBank>(selector.compile()));
  }

  support::Xoshiro256 rng(seed ^ 0x12e6157a);
  std::vector<bench::Instance> instances;
  instances.reserve(300);
  for (int i = 0; i < 300; ++i) {
    instances.push_back({1 + static_cast<int>(rng.uniform_int(64)),
                         1 + static_cast<int>(rng.uniform_int(16)),
                         std::uint64_t{1} << rng.uniform_int(22)});
  }
  std::vector<std::vector<int>> allowed(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const auto& bank : versions) {
      allowed[i].push_back(bank->select_uid(instances[i]));
    }
  }

  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  const std::size_t swap_at_1 = 1 + rng.uniform_int(instances.size() - 2);
  const std::size_t swap_at_2 = 1 + rng.uniform_int(instances.size() - 2);
  tune::BankRegistry registry(
      tune::BankRegistry::Options{.shards = 1 + static_cast<int>(seed % 4)});
  registry.publish(key, versions[0]);

  support::ScopedThreads scoped(4);
  std::vector<int> picked(instances.size(), -1);
  support::parallel_for(instances.size(), 8, [&](std::size_t i) {
    if (i == swap_at_1) registry.publish(key, versions[1]);
    if (i == swap_at_2) registry.publish(key, versions[2]);
    picked[i] = registry.select_uid(key, instances[i]);
  });

  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_NE(std::find(allowed[i].begin(), allowed[i].end(), picked[i]),
              allowed[i].end())
        << "seed " << seed << " instance " << i << ": uid " << picked[i]
        << " matches no published version's selection";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryLinearizability,
                         ::testing::Values(31, 32, 33, 34, 35));

// ---- decision-rule distillation invariants --------------------------------

/// Random labeled set over a lattice; duplicate instances (with
/// possibly conflicting labels) allowed when `distinct` is false.
std::vector<tune::LabeledInstance> random_labeled(std::uint64_t seed,
                                                  bool distinct) {
  support::Xoshiro256 rng(seed);
  std::vector<tune::LabeledInstance> points;
  for (int n = 2; n <= 32; n *= 2) {
    for (const int ppn : {1, 4, 8}) {
      for (int shift = 4; shift <= 20; shift += 4) {
        if (rng.uniform_int(3) == 0) continue;  // random subset
        const bench::Instance inst{n, ppn, std::uint64_t{1} << shift};
        const int uid = 1 + static_cast<int>(rng.uniform_int(5));
        points.push_back({inst, uid});
        if (!distinct && rng.uniform_int(4) == 0) {
          // A duplicate instance with an independently drawn label —
          // the conflicting-label case agreement must account exactly.
          points.push_back(
              {inst, 1 + static_cast<int>(rng.uniform_int(5))});
        }
      }
    }
  }
  if (points.empty()) points.push_back({{2, 1, 16}, 1});
  return points;
}

class RuleInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuleInvariants, AgreementEqualsRecountAndLeavesBounded) {
  const std::uint64_t seed = GetParam();
  const auto points = random_labeled(seed, /*distinct=*/false);
  for (const int depth : {1, 3, 8, 32}) {
    const tune::DecisionRules rules =
        tune::DecisionRules::fit(points, {.max_depth = depth});
    // agreement() is exactly the empirical recount, no more, no less.
    std::size_t hits = 0;
    for (const auto& p : points) {
      hits += rules.uid_for(p.inst) == p.uid ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(rules.agreement(points),
                     static_cast<double>(hits) /
                         static_cast<double>(points.size()))
        << "seed " << seed << " depth " << depth;
    // A leaf never represents zero points.
    EXPECT_LE(static_cast<std::size_t>(rules.num_leaves()), points.size())
        << "seed " << seed << " depth " << depth;
    // The flat lowering is the same classifier.
    const tune::RuleTable table = tune::RuleTable::lower(rules);
    EXPECT_EQ(table.num_leaves(), rules.num_leaves());
    for (const auto& p : points) {
      ASSERT_EQ(table.uid_for(p.inst), rules.uid_for(p.inst))
          << "seed " << seed << " depth " << depth;
    }
  }
}

TEST_P(RuleInvariants, UncappedTreeOnDistinctPointsIsExact) {
  const std::uint64_t seed = GetParam();
  const auto points = random_labeled(seed, /*distinct=*/true);
  const tune::DecisionRules rules = tune::DecisionRules::fit(
      points, {.max_depth = std::numeric_limits<int>::max(),
               .min_points_per_leaf = 1});
  // Distinct points are always separable, and tie-splits guarantee the
  // greedy fit keeps separating until every leaf is pure.
  EXPECT_DOUBLE_EQ(rules.agreement(points), 1.0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleInvariants,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

}  // namespace
}  // namespace mpicp
