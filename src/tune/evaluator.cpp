#include "tune/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "collbench/specs.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "tune/compiled_bank.hpp"

namespace mpicp::tune {

Evaluation evaluate(const bench::Dataset& ds, const Selector& selector,
                    const bench::DefaultLogic& default_logic,
                    const std::vector<int>& test_nodes) {
  MPICP_SPAN("evaluate");
  std::vector<int> sorted_nodes(test_nodes);
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  std::vector<bench::Instance> instances;
  instances.reserve(ds.instances().size());
  for (const bench::Instance& inst : ds.instances()) {
    if (std::binary_search(sorted_nodes.begin(), sorted_nodes.end(),
                           inst.nodes)) {
      instances.push_back(inst);
    }
  }
  MPICP_REQUIRE(!instances.empty(), "no test instances found");
  support::metrics::counter("evaluate.calls").inc();
  support::metrics::counter("evaluate.instances").inc(instances.size());

  // Selection runs on the compiled bank: one lowering pays for the whole
  // grid, and the batched argmin parallelizes over instances instead of
  // over the uids of each query. Predictions (and thus every EvalRow)
  // are bit-identical to the interpreted selector.
  const CompiledBank bank = selector.compile();
  const std::vector<int> picked = bank.select_grid(instances);

  // Each instance is scored independently against the three strategies;
  // rows are preallocated so the parallel fill is order-independent.
  Evaluation eval;
  eval.rows.resize(instances.size());
  support::parallel_for(instances.size(), 1, [&](std::size_t i) {
    MPICP_SPAN("evaluate.instance");
    const bench::Instance& inst = instances[i];
    EvalRow row;
    row.inst = inst;
    const bench::Dataset::Best best = ds.best(inst);
    row.best_uid = best.uid;
    row.t_best_us = best.time_us;
    row.default_uid = default_logic.select_uid(inst);
    row.t_default_us = ds.time_us(row.default_uid, inst);
    row.predicted_uid = picked[i];
    row.t_predicted_us = ds.time_us(row.predicted_uid, inst);
    eval.rows[i] = row;
  });

  std::vector<double> speedups;
  std::vector<double> norm_def;
  std::vector<double> norm_pred;
  speedups.reserve(eval.rows.size());
  norm_def.reserve(eval.rows.size());
  norm_pred.reserve(eval.rows.size());
  std::size_t optimal = 0;
  for (const EvalRow& row : eval.rows) {
    speedups.push_back(row.speedup());
    norm_def.push_back(row.norm_default());
    norm_pred.push_back(row.norm_predicted());
    optimal += row.predicted_uid == row.best_uid ? 1 : 0;
  }
  eval.summary.num_instances = eval.rows.size();
  eval.summary.mean_speedup = support::mean(speedups);
  eval.summary.geomean_speedup = support::geomean(speedups);
  eval.summary.mean_norm_default = support::mean(norm_def);
  eval.summary.mean_norm_predicted = support::mean(norm_pred);
  eval.summary.fraction_optimal =
      static_cast<double>(optimal) / static_cast<double>(eval.rows.size());
  return eval;
}

Evaluation run_split_evaluation(const bench::Dataset& ds,
                                const std::string& learner,
                                bool small_training_set) {
  const bench::NodeSplit split = bench::node_split(ds.machine());
  Selector selector(SelectorOptions{.learner = learner});
  const FitReport& fit_report = selector.fit(
      ds, small_training_set ? split.train_small : split.train_full);
  const auto default_logic = bench::make_default_for(ds);
  Evaluation eval = evaluate(ds, selector, *default_logic, split.test);
  eval.fit_report = fit_report;
  return eval;
}

}  // namespace mpicp::tune
