#include "collbench/guidelines.hpp"

#include "simmpi/coll/decision.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/smallcoll.hpp"
#include "simmpi/executor.hpp"

namespace mpicp::bench {

namespace {

using sim::BuiltCollective;
using sim::Collective;
using sim::Comm;

double run(sim::Network& net, BuiltCollective built) {
  sim::Executor exec(net);
  return exec.run(built.programs).makespan_us;
}

/// The modeled library default for a collective covered by the fixed
/// decision rules.
double run_default(sim::Network& net, const Comm& comm, Collective coll,
                   std::uint64_t m) {
  const int uid =
      sim::openmpi_default_uid(coll, comm.size(), m);
  const auto& cfg = sim::config_by_uid(sim::MpiLib::kOpenMPI, coll, uid);
  return run(net, sim::build_algorithm(sim::MpiLib::kOpenMPI, coll, cfg,
                                       comm, m, 0, false));
}

/// Default-ish algorithms for the substrate collectives the fixed rules
/// do not cover (binomial below the eager range, pipelined beyond —
/// the shape of most MPI libraries' defaults).
double run_reduce_default(sim::Network& net, const Comm& comm,
                          std::uint64_t m) {
  if (m < 65536) return run(net, sim::reduce_binomial(comm, m, 0, 0));
  return run(net, sim::reduce_pipeline(comm, m, 65536, 0));
}

double run_allgather_default(sim::Network& net, const Comm& comm,
                             std::uint64_t m_per_rank) {
  if (m_per_rank * static_cast<std::uint64_t>(comm.size()) < 262144) {
    return run(net, sim::allgather_recursive_doubling(comm, m_per_rank));
  }
  return run(net, sim::allgather_ring(comm, m_per_rank));
}

}  // namespace

std::vector<GuidelineResult> check_guidelines(
    const sim::MachineDesc& machine, int nodes, int ppn,
    const std::vector<std::uint64_t>& msizes, double tolerance) {
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  sim::Network net(machine, nodes, ppn);
  std::vector<GuidelineResult> results;

  const auto record = [&](const std::string& name, std::uint64_t m,
                          double lhs, double rhs) {
    GuidelineResult r;
    r.guideline = name;
    r.inst = {nodes, ppn, m};
    r.lhs_us = lhs;
    r.rhs_us = rhs;
    r.factor = lhs / rhs;
    r.violated = lhs > rhs * tolerance;
    results.push_back(r);
  };

  for (const std::uint64_t m : msizes) {
    // 1. Allreduce(m) <= Reduce(m) + Bcast(m).
    {
      const double lhs = run_default(net, comm, Collective::kAllreduce, m);
      const double rhs = run_reduce_default(net, comm, m) +
                         run_default(net, comm, Collective::kBcast, m);
      record("Allreduce <= Reduce + Bcast", m, lhs, rhs);
    }
    // 2. Bcast(m) <= Scatter(m/p) + Allgather(m/p).
    {
      const std::uint64_t chunk =
          std::max<std::uint64_t>(m / static_cast<std::uint64_t>(p), 1);
      const double lhs = run_default(net, comm, Collective::kBcast, m);
      const double rhs = run(net, sim::scatter_binomial(comm, chunk, 0)) +
                         run_allgather_default(net, comm, chunk);
      record("Bcast <= Scatter + Allgather", m, lhs, rhs);
    }
    // 3. Allgather(m/p) <= Gather(m/p) + Bcast(m).
    {
      const std::uint64_t chunk =
          std::max<std::uint64_t>(m / static_cast<std::uint64_t>(p), 1);
      const double lhs = run_allgather_default(net, comm, chunk);
      const double rhs = run(net, sim::gather_binomial(comm, chunk, 0)) +
                         run_default(net, comm, Collective::kBcast, m);
      record("Allgather <= Gather + Bcast", m, lhs, rhs);
    }
    // 4. Reduce(m) <= Allreduce(m).
    {
      const double lhs = run_reduce_default(net, comm, m);
      const double rhs = run_default(net, comm, Collective::kAllreduce, m);
      record("Reduce <= Allreduce", m, lhs, rhs);
    }
    // 5. Gather(m/p) <= Allgather(m/p).
    {
      const std::uint64_t chunk =
          std::max<std::uint64_t>(m / static_cast<std::uint64_t>(p), 1);
      const double lhs = run(net, sim::gather_binomial(comm, chunk, 0));
      const double rhs = run_allgather_default(net, comm, chunk);
      record("Gather <= Allgather", m, lhs, rhs);
    }
  }
  return results;
}

}  // namespace mpicp::bench
