// Observability overhead guard.
//
// The tracing layer promises that a disabled span (MPICP_TRACE=0) costs
// one relaxed atomic load — nothing allocated, nothing recorded. This
// harness (a) measures the per-span cost with tracing disabled and
// enabled, (b) times the full train -> select pipeline both ways, and
// (c) *asserts* that the disabled path stays negligible, so any future
// change that sneaks work onto the disabled path fails the build's
// bench gate instead of taxing every untraced run.
//
// Exits non-zero when the disabled-span cost exceeds the (deliberately
// generous, CI-noise-proof) budget.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"
#include "tune/selector.hpp"

namespace {

using namespace mpicp;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Synthetic Bcast-shaped dataset (three crossing algorithms), the same
/// shape the fault and golden tests train on.
bench::Dataset make_synthetic(std::uint64_t seed = 1) {
  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(seed);
  for (const int n : {2, 4, 8, 16, 32}) {
    for (const int ppn : {1, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{4096}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, 0.05)});
        }
      }
    }
  }
  return ds;
}

/// ns per MPICP_SPAN in a tight loop under the current enabled state.
double span_cost_ns(std::size_t iters) {
  const double t0 = now_s();
  for (std::size_t i = 0; i < iters; ++i) {
    MPICP_SPAN("bench.overhead.noop");
  }
  return (now_s() - t0) / static_cast<double>(iters) * 1e9;
}

/// Wall-clock of one full fit + selection sweep.
double pipeline_s(const bench::Dataset& ds) {
  const double t0 = now_s();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  // Timed region: results are deliberately dropped — only the
  // wall-clock of the fit+select sweep is under test here.
  (void)selector.fit(ds, {2, 4, 8, 16, 32});
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        (void)selector.select_uid_or_default(
            {n, ppn, m}, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
      }
    }
  }
  return now_s() - t0;
}

double min_of(const std::vector<double>& v) {
  double best = v.front();
  for (const double x : v) best = std::min(best, x);
  return best;
}

}  // namespace

int main() {
  using support::trace::ScopedEnabled;
  constexpr std::size_t kSpanIters = 2'000'000;
  // Generous bound: the disabled path is one relaxed atomic load
  // (single-digit ns); 150 ns only trips when real work leaks onto it.
  constexpr double kDisabledBudgetNs = 150.0;

  double disabled_ns = 0.0;
  double enabled_ns = 0.0;
  {
    const ScopedEnabled off(false);
    span_cost_ns(kSpanIters);  // warm-up
    disabled_ns = span_cost_ns(kSpanIters);
  }
  {
    const ScopedEnabled on(true);
    enabled_ns = span_cost_ns(kSpanIters / 10);
    support::trace::reset();
  }

  const bench::Dataset ds = make_synthetic();
  std::vector<double> t_off;
  std::vector<double> t_on;
  for (int rep = 0; rep < 3; ++rep) {
    {
      const ScopedEnabled off(false);
      t_off.push_back(pipeline_s(ds));
    }
    {
      const ScopedEnabled on(true);
      t_on.push_back(pipeline_s(ds));
      support::trace::reset();
    }
  }
  support::metrics::Registry::instance().reset();

  std::printf("span cost           : disabled %.1f ns, enabled %.1f ns\n",
              disabled_ns, enabled_ns);
  std::printf("pipeline wall-clock : disabled %.3f s, enabled %.3f s "
              "(best of 3; enabled/disabled = %.3fx)\n",
              min_of(t_off), min_of(t_on), min_of(t_on) / min_of(t_off));

  if (disabled_ns > kDisabledBudgetNs) {
    std::printf("FAIL: disabled-span cost %.1f ns exceeds the %.0f ns "
                "budget — work leaked onto the MPICP_TRACE=0 path\n",
                disabled_ns, kDisabledBudgetNs);
    return 1;
  }
  std::printf("OK: disabled-tracing overhead is negligible\n");
  return 0;
}
