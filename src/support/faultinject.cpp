#include "support/faultinject.hpp"

#include <atomic>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/thread_safety.hpp"

namespace mpicp::support::faultinject {

const char* csv_fault_label(CsvFault kind) {
  switch (kind) {
    case CsvFault::kNaNValue: return "nan-value";
    case CsvFault::kNegativeValue: return "negative-value";
    case CsvFault::kOutlierValue: return "outlier-value";
    case CsvFault::kMalformedToken: return "malformed-token";
    case CsvFault::kTruncatedRow: return "truncated-row";
    case CsvFault::kDroppedRow: return "dropped-row";
  }
  return "unknown";
}

namespace {

/// The six kinds in deterministic rotation, so every kind appears once
/// the faulted-row count reaches six regardless of the seed.
constexpr CsvFault kCycle[] = {
    CsvFault::kNaNValue,      CsvFault::kNegativeValue,
    CsvFault::kOutlierValue,  CsvFault::kMalformedToken,
    CsvFault::kTruncatedRow,  CsvFault::kDroppedRow,
};

}  // namespace

CsvFault csv_fault_cycle(std::size_t i) {
  return kCycle[i % std::size(kCycle)];
}

std::optional<std::string> corrupt_csv_row(const std::string& line,
                                           CsvFault kind,
                                           std::size_t value_column) {
  auto cells = split(line, ',');
  const std::size_t col =
      value_column < cells.size() ? value_column : cells.size() - 1;
  switch (kind) {
    case CsvFault::kNaNValue:
      cells[col] = "nan";
      break;
    case CsvFault::kNegativeValue:
      cells[col] = "-" + cells[col];
      break;
    case CsvFault::kOutlierValue:
      // Past any plausible collective timing (see IngestOptions), no
      // matter how small the original value was.
      cells[col] = "1e15";
      break;
    case CsvFault::kMalformedToken:
      cells[col] = "##corrupt##";
      break;
    case CsvFault::kTruncatedRow: {
      // Cut the line at its last separator, as a killed benchmark
      // process flushing a partial write would — guaranteed to change
      // the cell count (a mid-cell cut can accidentally leave a row
      // that still parses, which would break exact fault accounting).
      const std::string joined = join(cells, ",");
      const std::size_t cut = joined.rfind(',');
      return joined.substr(0, cut == std::string::npos ? 0 : cut);
    }
    case CsvFault::kDroppedRow:
      return std::nullopt;
  }
  return join(cells, ",");
}

std::string corrupt_csv(const std::string& text, const CsvFaultPlan& plan,
                        CsvFaultLog* log) {
  MPICP_REQUIRE(plan.fault_rate >= 0.0 && plan.fault_rate <= 1.0,
                "fault rate must be in [0, 1]");
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  CsvFaultLog local;
  Xoshiro256 rng(plan.seed);
  bool header = true;
  std::size_t kind_cursor = 0;
  while (std::getline(in, line)) {
    if (header) {
      out << line << '\n';
      header = false;
      continue;
    }
    if (trim(line).empty()) continue;
    ++local.rows_total;
    if (rng.uniform() >= plan.fault_rate) {
      out << line << '\n';
      continue;
    }
    const CsvFault kind = csv_fault_cycle(kind_cursor++);
    ++local.rows_faulted;
    ++local.by_kind[csv_fault_label(kind)];
    const auto corrupted = corrupt_csv_row(line, kind, plan.value_column);
    if (!corrupted) {
      ++local.rows_dropped;
      continue;
    }
    out << *corrupted << '\n';
  }
  if (log) *log = local;
  return out.str();
}

std::string corrupt_stream(const std::string& text,
                           const StreamFaultPlan& plan) {
  std::string out = text;
  if (plan.truncate_at >= 0 &&
      static_cast<std::size_t>(plan.truncate_at) < out.size()) {
    out.resize(static_cast<std::size_t>(plan.truncate_at));
  }
  Xoshiro256 rng(plan.seed);
  for (int i = 0; i < plan.char_flips && !out.empty(); ++i) {
    const std::size_t pos = rng.uniform_int(out.size());
    // Swap a digit-ish character for a different one; replacing with an
    // arbitrary byte could produce an identical character or kill the
    // line structure, which is a different fault (truncation covers it).
    out[pos] = out[pos] == '7' ? '3' : '7';
  }
  return out;
}

// ---- process-global sabotage --------------------------------------------

namespace {

std::atomic<bool> g_active{false};
Mutex g_mu;
const Faults* g_faults MPICP_GUARDED_BY(g_mu) = nullptr;  // armed (borrowed)
std::map<int, int> g_fit_budget
    MPICP_GUARDED_BY(g_mu);  // mutable copy of fit_failures

}  // namespace

ScopedFaults::ScopedFaults(Faults faults) : faults_(std::move(faults)) {
  const MutexLock lock(g_mu);
  previous_ = g_faults;
  g_faults = &faults_;
  g_fit_budget = g_faults->fit_failures;
  // order: fast-path hint only; readers that act on it re-check the
  // armed table under g_mu.
  g_active.store(true, std::memory_order_relaxed);
}

ScopedFaults::~ScopedFaults() {
  const MutexLock lock(g_mu);
  g_faults = previous_;
  g_fit_budget =
      g_faults ? g_faults->fit_failures : std::map<int, int>{};
  // order: fast-path hint only (see ScopedFaults constructor).
  g_active.store(g_faults != nullptr, std::memory_order_relaxed);
}

bool active() {
  // order: fast-path hint only (see ScopedFaults constructor).
  return g_active.load(std::memory_order_relaxed);
}

bool consume_fit_failure(int uid) {
  if (!active()) return false;
  const MutexLock lock(g_mu);
  const auto it = g_fit_budget.find(uid);
  if (it == g_fit_budget.end() || it->second <= 0) return false;
  --it->second;
  return true;
}

std::optional<double> forced_prediction(int uid) {
  if (!active()) return std::nullopt;
  const MutexLock lock(g_mu);
  if (!g_faults) return std::nullopt;
  const auto it = g_faults->forced_predictions.find(uid);
  if (it == g_faults->forced_predictions.end()) return std::nullopt;
  return it->second;
}

}  // namespace mpicp::support::faultinject
