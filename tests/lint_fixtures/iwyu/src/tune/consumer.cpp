// Fixture: exercises every R11 include disposition — own header
// (exempt), resolvable-and-used (silent), resolvable-and-unused (the
// finding), suppressed, and unresolvable (skipped).
#include "tune/consumer.hpp"

#include "simnet/missing.hpp"
#include "support/unused.hpp"
#include "support/used.hpp"
// mpicp-lint: allow(include-what-you-use-lite)
#include "support/quarantined.hpp"

namespace fix {

int consume(int x) {
  UsedThing thing;
  thing.payload = used_helper(x) + kConsumerVersion;
  return thing.payload;
}

}  // namespace fix
