// Table I — hardware overview of the (simulated) machines.
//
// Prints the machine properties the paper tabulates plus the calibrated
// model parameters our simulator substitutes for the physical fabrics.
#include <iostream>

#include "simnet/machine.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace mpicp;
  std::cout << "Table I: Hardware overview (simulated machine models)\n\n";
  support::TextTable table(
      {"Machine", "n", "Max ppn", "Rails", "Inter L [us]",
       "Inter BW [GB/s]", "Intra BW [GB/s]", "Eager [B]", "MPI libraries"});
  for (const char* name : {"Hydra", "Jupiter", "SuperMUC-NG"}) {
    const sim::MachineDesc m = sim::machine_by_name(name);
    const double inter_bw = 1e-3 / m.inter.gap_per_byte_us;  // GB/s
    const double intra_bw = 1e-3 / m.intra.gap_per_byte_us;
    table.add_row({m.name, std::to_string(m.max_nodes),
                   std::to_string(m.max_ppn), std::to_string(m.rails),
                   support::format_double(m.inter.latency_us, 3),
                   support::format_double(inter_bw * m.rails, 3),
                   support::format_double(intra_bw, 3),
                   std::to_string(m.eager_limit_bytes),
                   std::string(name) == std::string("Jupiter")
                       ? "Open MPI 4.0.2"
                       : (std::string(name) == std::string("Hydra")
                              ? "Open MPI 4.0.2, Intel MPI 2019"
                              : "Open MPI 4.0.2")});
  }
  table.print(std::cout);
  std::cout << "\n(The paper's physical interconnects are replaced by the "
               "hierarchical LogGP model; see DESIGN.md.)\n";
  return 0;
}
