// One half of a deliberate include cycle (closed in collbench).
#pragma once

#include "collbench/cycle_b.hpp"

namespace mpicp::sim {

inline int touch_b(const bench::CycleB& b) { return b.tag; }

}  // namespace mpicp::sim
