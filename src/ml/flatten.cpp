#include "ml/flatten.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "ml/forest.hpp"
#include "ml/gam.hpp"
#include "ml/gbt.hpp"
#include "ml/io.hpp"
#include "ml/knn.hpp"
#include "ml/linreg.hpp"
#include "ml/median.hpp"
#include "support/error.hpp"

namespace mpicp::ml {

namespace {

/// Bitwise double equality — the dedup criterion for shared spline
/// bases. Two bases with bit-identical (lo, hi) and the same size
/// evaluate to bit-identical values at every x, so sharing them cannot
/// perturb predictions.
bool same_bits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return acc;
}

/// Max-heap of (distance, index) capped at k elements — identical to
/// the interpreted KNN's helper so neighbor sets and their in-heap
/// iteration order match exactly.
void heap_offer(std::vector<std::pair<double, int>>& heap, std::size_t k,
                double dist, int idx) {
  if (heap.size() < k) {
    heap.emplace_back(dist, idx);
    std::push_heap(heap.begin(), heap.end());
  } else if (dist < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {dist, idx};
    std::push_heap(heap.begin(), heap.end());
  }
}

}  // namespace

int FlatBank::add(const Regressor& model) {
  const int idx = static_cast<int>(models_.size());
  FlatModel m;
  if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
    MPICP_REQUIRE(!gbt->trees().empty(), "compiling an unfitted model");
    m.kind = FlatKind::kTreeEnsemble;
    m.exp_link = gbt->params().objective != GbtObjective::kSquared;
    m.base_score = gbt->base_score();
    m.mean_over_trees = false;
    lower_trees(gbt->trees(), m);
  } else if (const auto* rf = dynamic_cast<const RandomForest*>(&model)) {
    MPICP_REQUIRE(!rf->trees().empty(), "compiling an unfitted model");
    m.kind = FlatKind::kTreeEnsemble;
    m.exp_link = rf->params().log_target;
    m.base_score = 0.0;
    m.mean_over_trees = true;
    lower_trees(rf->trees(), m);
  } else if (const auto* knn = dynamic_cast<const KnnRegressor*>(&model)) {
    MPICP_REQUIRE(!knn->targets().empty(), "compiling an unfitted model");
    lower_knn(*knn, m);
  } else if (const auto* gam = dynamic_cast<const GamRegressor*>(&model)) {
    MPICP_REQUIRE(!gam->beta().empty(), "compiling an unfitted model");
    lower_gam(*gam, m);
  } else if (const auto* lin = dynamic_cast<const LinearRegressor*>(&model)) {
    MPICP_REQUIRE(!lin->coefficients().empty(),
                  "compiling an unfitted model");
    m.kind = FlatKind::kLinear;
    m.exp_link = lin->log_target();
    m.coef_begin = static_cast<int>(coef_.size());
    m.coef_len = static_cast<int>(lin->coefficients().size());
    coef_.insert(coef_.end(), lin->coefficients().begin(),
                 lin->coefficients().end());
  } else if (const auto* med = dynamic_cast<const MedianRegressor*>(&model)) {
    m.kind = FlatKind::kConstant;
    m.coef_begin = static_cast<int>(coef_.size());
    m.coef_len = 1;
    coef_.push_back(med->value());
  } else {
    MPICP_RAISE_ARG("cannot compile learner '" + model.name() + "'");
  }
  models_.push_back(m);
  // The canonical pools are append-only, so global node indices never
  // move — but the blocked prefixes are derived per model, so rebuild
  // them whole (add() is a cold path; serving never lowers).
  build_blocked();
  return idx;
}

void FlatBank::build_blocked() {
  blk_tree_levels_.assign(tree_roots_.size(), 0);
  blk_spill_.assign(tree_roots_.size(), 0);
  blk_base_.assign(tree_roots_.size(), 0);
  blk_exit_base_.assign(tree_roots_.size(), 0);
  blk_thr_.clear();
  blk_feat_.clear();
  blk_exit_.clear();
  blk_leaf_.clear();
  // (node, depth) DFS stack and the slot→node assignment of one block,
  // hoisted out of the per-tree loops.
  std::vector<std::pair<std::int32_t, int>> stack;
  stack.reserve(64);
  std::vector<std::int32_t> assign;
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    const FlatModel& m = models_[mi];
    if (m.kind != FlatKind::kTreeEnsemble) continue;
    for (int t = m.tree_begin; t < m.tree_end; ++t) {
      // Blocked levels for this tree: its own deepest comparison
      // level, capped — shallow trees never walk padding levels.
      int levels = 0;
      stack.clear();
      stack.push_back({tree_roots_[t], 0});
      while (!stack.empty()) {
        const auto [n, d] = stack.back();
        stack.pop_back();
        if (nodes_[n].feature < 0) continue;
        levels = std::max(levels, d + 1);
        if (levels >= block_depth_cap_) {
          levels = block_depth_cap_;
          break;
        }
        stack.push_back({nodes_[n].left, d + 1});
        stack.push_back({nodes_[n].right, d + 1});
      }
      blk_tree_levels_[t] = levels;
      const std::size_t inner = (std::size_t{1} << levels) - 1;
      const std::size_t exits = std::size_t{1} << levels;
      assign.assign(inner + exits, -1);
      blk_base_[t] = static_cast<std::int32_t>(blk_thr_.size());
      blk_exit_base_[t] = static_cast<std::int32_t>(blk_exit_.size());
      blk_thr_.resize(blk_thr_.size() + inner);
      blk_feat_.resize(blk_feat_.size() + inner);
      blk_exit_.resize(blk_exit_.size() + exits);
      blk_leaf_.resize(blk_leaf_.size() + exits);
      double* thr = blk_thr_.data() + blk_base_[t];
      std::int32_t* ft = blk_feat_.data() + blk_base_[t];
      std::int32_t* ex = blk_exit_.data() + blk_exit_base_[t];
      double* leaf = blk_leaf_.data() + blk_exit_base_[t];
      assign[0] = tree_roots_[t];
      for (std::size_t s = 0; s < inner; ++s) {
        const std::int32_t n = assign[s];
        const FlatTreeNode& node = nodes_[n];
        if (node.feature >= 0) {
          ft[s] = node.feature;
          thr[s] = node.threshold;
          assign[2 * s + 1] = node.left;
          assign[2 * s + 2] = node.right;
        } else {
          // Pass-through slot for a leaf shallower than the block: both
          // children route to the same leaf, so the predicated step can
          // take either branch (even on a NaN feature) and still land
          // on the node the legacy walk stops at.
          ft[s] = 0;
          thr[s] = std::numeric_limits<double>::infinity();
          assign[2 * s + 1] = n;
          assign[2 * s + 2] = n;
        }
      }
      bool spill = false;
      for (std::size_t e = 0; e < exits; ++e) {
        ex[e] = assign[inner + e];
        const FlatTreeNode& node = nodes_[ex[e]];
        // Spill-free exits carry the leaf value inline, so the hot
        // walk finishes with one load instead of a node-pool visit.
        leaf[e] = node.value;
        spill = spill || node.feature >= 0;
      }
      blk_spill_[t] = spill ? 1 : 0;
    }
  }
  build_rank_tables();
}

void FlatBank::build_rank_tables() {
  rank_tables_.assign(models_.size(), RankTable{});
  rank_thr_.clear();
  cell_val_.clear();
  std::vector<std::vector<double>> per_feat(kMaxRankFeatures);
  std::vector<std::int32_t> node_rank;
  std::vector<std::int32_t> ranks;
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    const FlatModel& m = models_[mi];
    if (m.kind != FlatKind::kTreeEnsemble) continue;
    // The model's nodes are one contiguous pool range (lower_trees
    // appends tree after tree), bounded by the next tree root.
    const int node_begin = tree_roots_[m.tree_begin];
    const int node_end =
        static_cast<std::size_t>(m.tree_end) < tree_roots_.size()
            ? tree_roots_[m.tree_end]
            : static_cast<int>(nodes_.size());
    // Distinct thresholds per feature, sorted; bail out on any shape
    // the table cannot represent exactly (the blocked walk serves it).
    RankTable& rt = rank_tables_[mi];
    for (auto& v : per_feat) v.clear();
    bool representable = true;
    int dim = 0;
    for (int n = node_begin; n < node_end && representable; ++n) {
      const FlatTreeNode& node = nodes_[n];
      if (node.feature < 0) continue;
      if (node.feature >= kMaxRankFeatures ||
          std::isnan(node.threshold)) {
        representable = false;
        break;
      }
      dim = std::max(dim, node.feature + 1);
      // mpicp-lint: allow(no-alloc-in-loop) cold lowering path; the
      // per-feature split is unknowable before this very scan.
      per_feat[node.feature].push_back(node.threshold);
    }
    if (!representable) continue;
    std::size_t cells = 1;
    for (int f = 0; f < dim; ++f) {
      auto& v = per_feat[f];
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      cells *= v.size() + 1;
      if (cells > kMaxRankCells) {
        representable = false;
        break;
      }
    }
    if (!representable) continue;
    rt.dim = dim;
    std::size_t stride = 1;
    for (int f = 0; f < dim; ++f) {
      rt.thr_begin[f] = static_cast<std::int32_t>(rank_thr_.size());
      rt.thr_len[f] = static_cast<std::int32_t>(per_feat[f].size());
      rt.stride[f] = static_cast<std::int32_t>(stride);
      stride *= per_feat[f].size() + 1;
      rank_thr_.insert(rank_thr_.end(), per_feat[f].begin(),
                       per_feat[f].end());
    }
    // Per-node threshold rank (index of its threshold in the feature's
    // sorted strip), so the cell walks below are pure integer compares.
    node_rank.assign(static_cast<std::size_t>(node_end - node_begin), -1);
    for (int n = node_begin; n < node_end; ++n) {
      const FlatTreeNode& node = nodes_[n];
      if (node.feature < 0) continue;
      const auto& v = per_feat[node.feature];
      node_rank[n - node_begin] = static_cast<std::int32_t>(
          std::lower_bound(v.begin(), v.end(), node.threshold) - v.begin());
    }
    // Enumerate cells in stride order. A cell's rank vector fixes the
    // outcome of every comparison (`x < T[j]` iff `rank(x) <= j`), so
    // walking each tree with those outcomes — in canonical tree order,
    // with the same accumulation and link transform as the legacy walk
    // — yields the exact double every instance in the cell would get.
    rt.cells_begin = static_cast<std::int64_t>(cell_val_.size());
    cell_val_.reserve(cell_val_.size() + cells);
    ranks.assign(static_cast<std::size_t>(std::max(dim, 1)), 0);
    const double num_trees = static_cast<double>(m.tree_end - m.tree_begin);
    for (std::size_t c = 0; c < cells; ++c) {
      double raw = m.base_score;
      for (int t = m.tree_begin; t < m.tree_end; ++t) {
        int cur = tree_roots_[t];
        while (nodes_[cur].feature >= 0) {
          cur = ranks[nodes_[cur].feature] <= node_rank[cur - node_begin]
                    ? nodes_[cur].left
                    : nodes_[cur].right;
        }
        raw += nodes_[cur].value;
      }
      if (m.mean_over_trees) raw /= num_trees;
      cell_val_.push_back(m.exp_link ? std::exp(raw) : raw);
      for (int f = 0; f < dim; ++f) {
        if (++ranks[f] <= rt.thr_len[f]) break;
        ranks[f] = 0;
      }
    }
    rt.built = true;
  }
}

void FlatBank::lower_trees(const std::vector<RegressionTree>& trees,
                           FlatModel& m) {
  m.tree_begin = static_cast<int>(tree_roots_.size());
  tree_roots_.reserve(tree_roots_.size() + trees.size());
  for (const RegressionTree& tree : trees) {
    const int base = static_cast<int>(nodes_.size());
    tree_roots_.push_back(base);
    const auto& src = tree.nodes();
    nodes_.reserve(nodes_.size() + src.size());
    for (const RegressionTree::Node& n : src) {
      FlatTreeNode fn;
      fn.feature = n.feature;
      fn.threshold = n.threshold;
      fn.left = n.left >= 0 ? n.left + base : -1;
      fn.right = n.right >= 0 ? n.right + base : -1;
      fn.value = n.value;
      nodes_.push_back(fn);
    }
  }
  m.tree_end = static_cast<int>(tree_roots_.size());
}

void FlatBank::lower_knn(const KnnRegressor& knn, FlatModel& m) {
  const Matrix& pts = knn.points();
  m.kind = FlatKind::kKnn;
  m.exp_link = false;
  m.k = knn.params().k;
  m.num_points = static_cast<int>(pts.rows());
  m.point_dim = static_cast<int>(pts.cols());
  m.points_begin = static_cast<int>(points_.size());
  points_.reserve(points_.size() + pts.rows() * pts.cols());
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const auto row = pts.row(i);
    points_.insert(points_.end(), row.begin(), row.end());
  }
  m.targets_begin = static_cast<int>(targets_.size());
  targets_.insert(targets_.end(), knn.targets().begin(),
                  knn.targets().end());
  m.order_begin = static_cast<int>(order_.size());
  order_.insert(order_.end(), knn.order().begin(), knn.order().end());
  if (knn.params().use_kdtree && !knn.kd().empty()) {
    const int kd_base = static_cast<int>(kd_.size());
    kd_.reserve(kd_.size() + knn.kd().size());
    for (const KnnRegressor::KdNode& n : knn.kd()) {
      FlatKdNode fn;
      fn.axis = n.axis;
      fn.split = n.split;
      fn.left = n.left >= 0 ? n.left + kd_base : -1;
      fn.right = n.right >= 0 ? n.right + kd_base : -1;
      fn.begin = n.begin;
      fn.end = n.end;
      kd_.push_back(fn);
    }
    m.kd_root = kd_base;
  } else {
    m.kd_root = -1;
  }
  if (knn.params().scale_inputs) {
    m.scaler_begin = static_cast<int>(scaler_mean_.size());
    scaler_mean_.insert(scaler_mean_.end(), knn.scaler().mean().begin(),
                        knn.scaler().mean().end());
    scaler_inv_std_.insert(scaler_inv_std_.end(),
                           knn.scaler().inv_std().begin(),
                           knn.scaler().inv_std().end());
  } else {
    m.scaler_begin = -1;
  }
  max_point_dim_ = std::max(max_point_dim_, m.point_dim);
  max_k_ = std::max(max_k_, m.k);
}

int FlatBank::intern_basis(const BSplineBasis& basis) {
  for (std::size_t i = 0; i < bases_.size(); ++i) {
    if (bases_[i].num_basis() == basis.num_basis() &&
        same_bits(bases_[i].lo(), basis.lo()) &&
        same_bits(bases_[i].hi(), basis.hi())) {
      return static_cast<int>(i);
    }
  }
  bases_.push_back(basis);
  return static_cast<int>(bases_.size()) - 1;
}

int FlatBank::intern_slot(int basis, int feature) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].basis == basis && slots_[i].feature == feature) {
      return static_cast<int>(i);
    }
  }
  slots_.push_back({basis, feature});
  return static_cast<int>(slots_.size()) - 1;
}

void FlatBank::lower_gam(const GamRegressor& gam, FlatModel& m) {
  m.kind = FlatKind::kGam;
  m.exp_link = true;
  m.num_bases = static_cast<int>(gam.bases().size());
  m.basis_size = gam.params().basis_per_feature;
  m.slot_begin = static_cast<int>(gam_slots_.size());
  gam_slots_.reserve(gam_slots_.size() + gam.bases().size());
  for (std::size_t f = 0; f < gam.bases().size(); ++f) {
    const int bid = intern_basis(gam.bases()[f]);
    gam_slots_.push_back(intern_slot(bid, static_cast<int>(f)));
  }
  m.coef_begin = static_cast<int>(coef_.size());
  m.coef_len = static_cast<int>(gam.beta().size());
  coef_.insert(coef_.end(), gam.beta().begin(), gam.beta().end());
  max_basis_size_ = std::max(max_basis_size_, m.basis_size);
}

void FlatBank::begin_query(FlatScratch& scratch) const {
  ++scratch.query_stamp;
  const std::size_t slot_need =
      slots_.size() * static_cast<std::size_t>(max_basis_size_);
  if (scratch.slot_values.size() < slot_need) {
    scratch.slot_values.resize(slot_need);
  }
  if (scratch.slot_stamp.size() < slots_.size()) {
    scratch.slot_stamp.resize(slots_.size(), 0);
  }
  if (scratch.scaled.size() < static_cast<std::size_t>(max_point_dim_)) {
    scratch.scaled.resize(static_cast<std::size_t>(max_point_dim_));
  }
  if (scratch.heap.capacity() < static_cast<std::size_t>(max_k_)) {
    scratch.heap.reserve(static_cast<std::size_t>(max_k_));
  }
}

void FlatBank::search_kd(const FlatModel& m, int node,
                         std::span<const double> q,
                         std::vector<std::pair<double, int>>& heap) const {
  const FlatKdNode& n = kd_[node];
  const auto k = static_cast<std::size_t>(m.k);
  if (n.axis < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      const int p = order_[m.order_begin + i];
      heap_offer(heap, k, sq_dist(q, point_row(m, p)), p);
    }
    return;
  }
  const double delta = q[n.axis] - n.split;
  const int near = delta < 0.0 ? n.left : n.right;
  const int far = delta < 0.0 ? n.right : n.left;
  search_kd(m, near, q, heap);
  if (heap.size() < k || delta * delta < heap.front().first) {
    search_kd(m, far, q, heap);
  }
}

double FlatBank::predict_one(std::size_t i, std::span<const double> x,
                             FlatScratch& s) const {
  MPICP_ASSERT(i < models_.size(), "flat model index out of range");
  const FlatModel& m = models_[i];
  switch (m.kind) {
    case FlatKind::kTreeEnsemble: {
      // Blocked branch-free walk: predicated index steps through each
      // tree's packed prefix. Spill-free trees (the common case)
      // finish with one inline leaf-value load; only spilling exits
      // fall back to the legacy node-pool walk.
      double raw = m.base_score;
      for (int t = m.tree_begin; t < m.tree_end; ++t) {
        const double* thr = blk_thr_.data() + blk_base_[t];
        const std::int32_t* ft = blk_feat_.data() + blk_base_[t];
        const int levels = blk_tree_levels_[t];
        const std::uint32_t exit_off = (1u << levels) - 1;
        std::uint32_t slot = 0;
        for (int d = 0; d < levels; ++d) {
          slot = 2 * slot + 1 +
                 static_cast<std::uint32_t>(!(x[ft[slot]] < thr[slot]));
        }
        if (!blk_spill_[t]) {
          raw += blk_leaf_[blk_exit_base_[t] + (slot - exit_off)];
          continue;
        }
        std::int32_t cur = blk_exit_[blk_exit_base_[t] + (slot - exit_off)];
        while (nodes_[cur].feature >= 0) {
          cur = x[nodes_[cur].feature] < nodes_[cur].threshold
                    ? nodes_[cur].left
                    : nodes_[cur].right;
        }
        raw += nodes_[cur].value;
      }
      if (m.mean_over_trees) {
        raw /= static_cast<double>(m.tree_end - m.tree_begin);
      }
      return m.exp_link ? std::exp(raw) : raw;
    }
    case FlatKind::kKnn: {
      const int dim = m.point_dim;
      std::span<const double> q = x;
      if (m.scaler_begin >= 0) {
        double* sc = s.scaled.data();
        const double* mean = scaler_mean_.data() + m.scaler_begin;
        const double* inv = scaler_inv_std_.data() + m.scaler_begin;
        for (int f = 0; f < dim; ++f) {
          sc[f] = (x[f] - mean[f]) * inv[f];
        }
        q = {sc, static_cast<std::size_t>(dim)};
      }
      s.heap.clear();
      if (m.kd_root >= 0) {
        search_kd(m, m.kd_root, q, s.heap);
      } else {
        const auto k = static_cast<std::size_t>(m.k);
        for (int p = 0; p < m.num_points; ++p) {
          heap_offer(s.heap, k, sq_dist(q, point_row(m, p)), p);
        }
      }
      MPICP_ASSERT(!s.heap.empty(), "knn query on empty model");
      double acc = 0.0;
      for (const auto& [dist, idx] : s.heap) {
        acc += targets_[m.targets_begin + idx];
      }
      return acc / static_cast<double>(s.heap.size());
    }
    case FlatKind::kGam: {
      const int nb = m.basis_size;
      double eta = 0.0;
      eta += 1.0 * coef_[m.coef_begin];
      for (int f = 0; f < m.num_bases; ++f) {
        const int slot = gam_slots_[m.slot_begin + f];
        double* vals =
            s.slot_values.data() +
            static_cast<std::size_t>(slot) * max_basis_size_;
        if (s.slot_stamp[slot] != s.query_stamp) {
          const FlatBasisSlot& sl = slots_[slot];
          bases_[sl.basis].evaluate_into(
              x[sl.feature],
              {vals, static_cast<std::size_t>(bases_[sl.basis].num_basis())});
          s.slot_stamp[slot] = s.query_stamp;
        }
        const double* coef = coef_.data() + m.coef_begin + 1 + f * nb;
        for (int j = 0; j < nb; ++j) eta += vals[j] * coef[j];
      }
      return std::exp(std::clamp(eta, -40.0, 40.0));
    }
    case FlatKind::kLinear: {
      double acc = coef_[m.coef_begin];
      for (int f = 0; f + 1 < m.coef_len; ++f) {
        acc += coef_[m.coef_begin + 1 + f] * x[f];
      }
      return m.exp_link ? std::exp(acc) : acc;
    }
    case FlatKind::kConstant:
      return coef_[m.coef_begin];
  }
  MPICP_RAISE_INTERNAL("unhandled FlatKind");
}

double FlatBank::predict_one_legacy(std::size_t i, std::span<const double> x,
                                    FlatScratch& s) const {
  MPICP_ASSERT(i < models_.size(), "flat model index out of range");
  const FlatModel& m = models_[i];
  if (m.kind != FlatKind::kTreeEnsemble) return predict_one(i, x, s);
  // The PR 5 data-dependent walk over the pointer-free node pool — the
  // reference the blocked layout is differentially pinned against.
  double raw = m.base_score;
  for (int t = m.tree_begin; t < m.tree_end; ++t) {
    int cur = tree_roots_[t];
    while (nodes_[cur].feature >= 0) {
      cur = x[nodes_[cur].feature] < nodes_[cur].threshold
                ? nodes_[cur].left
                : nodes_[cur].right;
    }
    raw += nodes_[cur].value;
  }
  if (m.mean_over_trees) {
    raw /= static_cast<double>(m.tree_end - m.tree_begin);
  }
  return m.exp_link ? std::exp(raw) : raw;
}

void FlatBank::predict_tree_batch(std::size_t i, const double* xs,
                                  std::size_t x_stride, std::size_t count,
                                  double* out,
                                  std::size_t out_stride) const {
  MPICP_ASSERT(i < models_.size(), "flat model index out of range");
  MPICP_ASSERT(count <= kTreeBatch, "tree batch wider than kTreeBatch");
  const FlatModel& m = models_[i];
  MPICP_ASSERT(m.kind == FlatKind::kTreeEnsemble,
               "predict_tree_batch on a non-tree model");
  const RankTable& rt = rank_tables_[i];
  if (rt.built) {
    // Rank-cell fast path: the instance's per-feature threshold ranks
    // pick the precomputed cell, so the whole ensemble costs a few
    // small binary searches plus one load per instance.
    const double* cells = cell_val_.data() + rt.cells_begin;
    for (std::size_t b = 0; b < count; ++b) {
      const double* x = xs + b * x_stride;
      std::int64_t idx = 0;
      for (int f = 0; f < rt.dim; ++f) {
        const double* T = rank_thr_.data() + rt.thr_begin[f];
        const std::int32_t len = rt.thr_len[f];
        const double v = x[f];
        // rank = #{T <= v}; a NaN feature ranks past every threshold
        // so every comparison takes the legacy `!(x < thr)` branch.
        const std::int32_t r =
            v != v ? len
                   : static_cast<std::int32_t>(
                         std::upper_bound(T, T + len, v) - T);
        idx += static_cast<std::int64_t>(r) * rt.stride[f];
      }
      out[b * out_stride] = cells[idx];
    }
    return;
  }
  double raw[kTreeBatch];
  for (std::size_t b = 0; b < count; ++b) raw[b] = m.base_score;
  // Tree-outer, instance-inner: each tree's block is walked to
  // completion by every instance of the batch while its thresholds sit
  // in L1, and the per-instance register-resident walks are
  // independent chains the core overlaps in flight. Spill-free trees
  // (the common case) finish with one inline leaf-value load.
  for (int t = m.tree_begin; t < m.tree_end; ++t) {
    const double* thr = blk_thr_.data() + blk_base_[t];
    const std::int32_t* ft = blk_feat_.data() + blk_base_[t];
    const int levels = blk_tree_levels_[t];
    const std::uint32_t exit_off = (1u << levels) - 1;
    if (!blk_spill_[t]) {
      const double* leaf = blk_leaf_.data() + blk_exit_base_[t];
      for (std::size_t b = 0; b < count; ++b) {
        const double* x = xs + b * x_stride;
        std::uint32_t slot = 0;
        for (int d = 0; d < levels; ++d) {
          slot = 2 * slot + 1 +
                 static_cast<std::uint32_t>(!(x[ft[slot]] < thr[slot]));
        }
        raw[b] += leaf[slot - exit_off];
      }
      continue;
    }
    const std::int32_t* ex = blk_exit_.data() + blk_exit_base_[t];
    for (std::size_t b = 0; b < count; ++b) {
      const double* x = xs + b * x_stride;
      std::uint32_t slot = 0;
      for (int d = 0; d < levels; ++d) {
        slot = 2 * slot + 1 +
               static_cast<std::uint32_t>(!(x[ft[slot]] < thr[slot]));
      }
      std::int32_t cur = ex[slot - exit_off];
      while (nodes_[cur].feature >= 0) {
        cur = x[nodes_[cur].feature] < nodes_[cur].threshold
                  ? nodes_[cur].left
                  : nodes_[cur].right;
      }
      raw[b] += nodes_[cur].value;
    }
  }
  const double num_trees = static_cast<double>(m.tree_end - m.tree_begin);
  for (std::size_t b = 0; b < count; ++b) {
    double r = raw[b];
    if (m.mean_over_trees) r /= num_trees;
    out[b * out_stride] = m.exp_link ? std::exp(r) : r;
  }
}

void FlatBank::save(std::ostream& os, int version) const {
  MPICP_REQUIRE(version == 1 || version == 2,
                "unsupported flatbank version");
  io::write_tag(os, "flatbank");
  io::write_value(os, version);
  // v2 carries the blocked-layout geometry; the payload below is
  // identical in both versions (the blocked form is derived data and
  // re-lowered on load).
  if (version == 2) io::write_value(os, block_depth_cap_);
  io::write_value(os, models_.size());
  for (const FlatModel& m : models_) {
    io::write_value(os, static_cast<int>(m.kind));
    io::write_value(os, m.exp_link ? 1 : 0);
    io::write_value(os, m.tree_begin);
    io::write_value(os, m.tree_end);
    io::write_value(os, m.base_score);
    io::write_value(os, m.mean_over_trees ? 1 : 0);
    io::write_value(os, m.k);
    io::write_value(os, m.points_begin);
    io::write_value(os, m.num_points);
    io::write_value(os, m.point_dim);
    io::write_value(os, m.targets_begin);
    io::write_value(os, m.order_begin);
    io::write_value(os, m.kd_root);
    io::write_value(os, m.scaler_begin);
    io::write_value(os, m.slot_begin);
    io::write_value(os, m.num_bases);
    io::write_value(os, m.basis_size);
    io::write_value(os, m.coef_begin);
    io::write_value(os, m.coef_len);
  }
  io::write_value(os, nodes_.size());
  for (const FlatTreeNode& n : nodes_) {
    io::write_value(os, n.feature);
    io::write_value(os, n.threshold);
    io::write_value(os, n.left);
    io::write_value(os, n.right);
    io::write_value(os, n.value);
  }
  io::write_vector(os, tree_roots_);
  io::write_vector(os, points_);
  io::write_vector(os, targets_);
  io::write_vector(os, order_);
  io::write_value(os, kd_.size());
  for (const FlatKdNode& n : kd_) {
    io::write_value(os, n.axis);
    io::write_value(os, n.split);
    io::write_value(os, n.left);
    io::write_value(os, n.right);
    io::write_value(os, n.begin);
    io::write_value(os, n.end);
  }
  io::write_vector(os, scaler_mean_);
  io::write_vector(os, scaler_inv_std_);
  io::write_value(os, bases_.size());
  for (const BSplineBasis& b : bases_) {
    io::write_value(os, b.lo());
    io::write_value(os, b.hi());
    io::write_value(os, b.num_basis());
  }
  io::write_value(os, slots_.size());
  for (const FlatBasisSlot& s : slots_) {
    io::write_value(os, s.basis);
    io::write_value(os, s.feature);
  }
  io::write_vector(os, gam_slots_);
  io::write_vector(os, coef_);
}

void FlatBank::load(std::istream& is) {
  io::expect_tag(is, "flatbank");
  const int version = io::read_value<int>(is);
  MPICP_REQUIRE(version == 1 || version == 2,
                "unsupported flatbank version");
  // v1 files predate the blocked layout: load the canonical pools and
  // re-lower with the default geometry.
  block_depth_cap_ = version >= 2 ? io::read_value<int>(is)
                                  : kDefaultBlockDepthCap;
  MPICP_REQUIRE(block_depth_cap_ >= 0 && block_depth_cap_ <= 20,
                "implausible flatbank block depth");
  const auto num_models = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(num_models < (1u << 20), "implausible flatbank size");
  models_.assign(num_models, FlatModel{});
  for (FlatModel& m : models_) {
    m.kind = static_cast<FlatKind>(io::read_value<int>(is));
    m.exp_link = io::read_value<int>(is) != 0;
    m.tree_begin = io::read_value<int>(is);
    m.tree_end = io::read_value<int>(is);
    m.base_score = io::read_value<double>(is);
    m.mean_over_trees = io::read_value<int>(is) != 0;
    m.k = io::read_value<int>(is);
    m.points_begin = io::read_value<int>(is);
    m.num_points = io::read_value<int>(is);
    m.point_dim = io::read_value<int>(is);
    m.targets_begin = io::read_value<int>(is);
    m.order_begin = io::read_value<int>(is);
    m.kd_root = io::read_value<int>(is);
    m.scaler_begin = io::read_value<int>(is);
    m.slot_begin = io::read_value<int>(is);
    m.num_bases = io::read_value<int>(is);
    m.basis_size = io::read_value<int>(is);
    m.coef_begin = io::read_value<int>(is);
    m.coef_len = io::read_value<int>(is);
  }
  const auto num_nodes = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(num_nodes < (1u << 28), "implausible flatbank node pool");
  nodes_.assign(num_nodes, FlatTreeNode{});
  for (FlatTreeNode& n : nodes_) {
    n.feature = io::read_value<int>(is);
    n.threshold = io::read_value<double>(is);
    n.left = io::read_value<int>(is);
    n.right = io::read_value<int>(is);
    n.value = io::read_value<double>(is);
  }
  tree_roots_ = io::read_vector<int>(is);
  points_ = io::read_vector<double>(is);
  targets_ = io::read_vector<double>(is);
  order_ = io::read_vector<int>(is);
  const auto num_kd = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(num_kd < (1u << 26), "implausible flatbank kd pool");
  kd_.assign(num_kd, FlatKdNode{});
  for (FlatKdNode& n : kd_) {
    n.axis = io::read_value<int>(is);
    n.split = io::read_value<double>(is);
    n.left = io::read_value<int>(is);
    n.right = io::read_value<int>(is);
    n.begin = io::read_value<int>(is);
    n.end = io::read_value<int>(is);
  }
  scaler_mean_ = io::read_vector<double>(is);
  scaler_inv_std_ = io::read_vector<double>(is);
  const auto num_bases = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(num_bases < (1u << 16), "implausible flatbank basis pool");
  bases_.clear();
  bases_.reserve(num_bases);
  for (std::size_t b = 0; b < num_bases; ++b) {
    const auto lo = io::read_value<double>(is);
    const auto hi = io::read_value<double>(is);
    const auto nb = io::read_value<int>(is);
    bases_.emplace_back(lo, hi, nb);
  }
  const auto num_slots = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(num_slots < (1u << 20), "implausible flatbank slot pool");
  slots_.assign(num_slots, FlatBasisSlot{});
  for (FlatBasisSlot& s : slots_) {
    s.basis = io::read_value<int>(is);
    s.feature = io::read_value<int>(is);
  }
  gam_slots_ = io::read_vector<int>(is);
  coef_ = io::read_vector<double>(is);
  max_basis_size_ = 0;
  max_point_dim_ = 0;
  max_k_ = 0;
  for (const FlatModel& m : models_) {
    max_basis_size_ = std::max(max_basis_size_, m.basis_size);
    max_point_dim_ = std::max(max_point_dim_, m.point_dim);
    max_k_ = std::max(max_k_, m.k);
  }
  build_blocked();
}

}  // namespace mpicp::ml
