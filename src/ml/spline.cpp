#include "ml/spline.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace mpicp::ml {

BSplineBasis::BSplineBasis(double lo, double hi, int num_basis)
    : lo_(lo), hi_(hi), num_basis_(num_basis) {
  MPICP_REQUIRE(num_basis >= 4, "cubic basis needs at least 4 functions");
  MPICP_REQUIRE(hi > lo, "degenerate spline domain");
  // Equidistant knots: num_basis - 3 interior intervals, cubic degree 3
  // needs 3 extra knots on each side.
  const int intervals = num_basis - 3;
  step_ = (hi - lo) / intervals;
  knots_.reserve(static_cast<std::size_t>(intervals) + 7);
  for (int i = -3; i <= intervals + 3; ++i) knots_.push_back(lo + i * step_);
}

std::vector<double> BSplineBasis::evaluate(double x) const {
  std::vector<double> out(num_basis_, 0.0);
  evaluate_into(x, out);
  return out;
}

void BSplineBasis::evaluate_into(double x, std::span<double> out) const {
  MPICP_ASSERT(out.size() == static_cast<std::size_t>(num_basis_),
               "basis buffer size mismatch");
  x = std::clamp(x, lo_, hi_);
  std::fill(out.begin(), out.end(), 0.0);
  // Cox-de-Boor over the 4 bases with support at x. Basis j has support
  // [knots[j], knots[j+4]) with our indexing (knots_[0] = lo - 3h).
  for (int j = 0; j < num_basis_; ++j) {
    // de Boor recursion, degree 3, evaluated directly.
    const double* t = knots_.data() + j;
    if (x < t[0] || x > t[4]) continue;
    double n[4];
    for (int i = 0; i < 4; ++i) {
      n[i] = (x >= t[i] && x < t[i + 1]) ? 1.0 : 0.0;
    }
    // Make the last basis cover the right boundary.
    if (x == hi_ && t[3] <= x && x <= t[4]) n[3] = 1.0;
    for (int deg = 1; deg <= 3; ++deg) {
      for (int i = 0; i + deg < 4; ++i) {
        const double denom1 = t[i + deg] - t[i];
        const double denom2 = t[i + deg + 1] - t[i + 1];
        double v = 0.0;
        if (denom1 > 0.0) v += (x - t[i]) / denom1 * n[i];
        if (denom2 > 0.0) v += (t[i + deg + 1] - x) / denom2 * n[i + 1];
        n[i] = v;
      }
    }
    out[j] = n[0];
  }
}

Matrix BSplineBasis::penalty() const {
  const int nb = num_basis_;
  Matrix d2t_d2(nb, nb);
  // D2 has rows (1, -2, 1); penalty = D2^T D2.
  for (int r = 0; r + 2 < nb; ++r) {
    const double coef[3] = {1.0, -2.0, 1.0};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        d2t_d2(r + a, r + b) += coef[a] * coef[b];
      }
    }
  }
  return d2t_d2;
}

}  // namespace mpicp::ml
