// Short functions carry no span obligation — the rule only asks for
// tracing once a definition grows past the body-line threshold.
namespace mpicp::sim {

int doubler(int v) { return 2 * v; }

int clamp_small(int v) {
  if (v < 0) return 0;
  if (v > 8) return 8;
  return v;
}

}  // namespace mpicp::sim
