#include "simmpi/coll/types.hpp"

#include "support/error.hpp"

namespace mpicp::sim {

// Pure name formatting, no timed work worth a span.
// mpicp-lint: allow(span-coverage)
std::string to_string(Collective c) {
  switch (c) {
    case Collective::kBcast: return "bcast";
    case Collective::kReduce: return "reduce";
    case Collective::kAllreduce: return "allreduce";
    case Collective::kAlltoall: return "alltoall";
    case Collective::kAllgather: return "allgather";
    case Collective::kScatter: return "scatter";
    case Collective::kGather: return "gather";
    case Collective::kBarrier: return "barrier";
    case Collective::kScan: return "scan";
    case Collective::kReduceScatter: return "reduce_scatter";
  }
  MPICP_RAISE_INTERNAL("unhandled Collective value");
}

Collective collective_from_string(const std::string& name) {
  if (name == "bcast") return Collective::kBcast;
  if (name == "reduce") return Collective::kReduce;
  if (name == "allreduce") return Collective::kAllreduce;
  if (name == "alltoall") return Collective::kAlltoall;
  if (name == "allgather") return Collective::kAllgather;
  if (name == "scatter") return Collective::kScatter;
  if (name == "gather") return Collective::kGather;
  if (name == "barrier") return Collective::kBarrier;
  if (name == "scan") return Collective::kScan;
  if (name == "reduce_scatter") return Collective::kReduceScatter;
  MPICP_RAISE_ARG("unknown collective '" + name + "'");
}

Segmentation make_segmentation(std::size_t total_bytes,
                               std::size_t seg_request) {
  Segmentation s;
  if (total_bytes == 0) {
    s.nseg = 1;
    s.seg_bytes = 0;
    s.last_bytes = 0;
    return s;
  }
  std::size_t seg = seg_request;
  if (seg == 0 || seg >= total_bytes) {
    s.nseg = 1;
    s.seg_bytes = total_bytes;
    s.last_bytes = total_bytes;
    return s;
  }
  // Clamp the segment count; grow the effective segment if necessary.
  std::size_t nseg = (total_bytes + seg - 1) / seg;
  if (nseg > kMaxSegments) {
    seg = (total_bytes + kMaxSegments - 1) / kMaxSegments;
    nseg = (total_bytes + seg - 1) / seg;
  }
  s.nseg = static_cast<std::uint32_t>(nseg);
  s.seg_bytes = seg;
  s.last_bytes = total_bytes - (nseg - 1) * seg;
  return s;
}

}  // namespace mpicp::sim
