#include "simmpi/coll/bcast.hpp"

#include <algorithm>
#include <vector>

#include "simmpi/coll/pipeline.hpp"
#include "simmpi/coll/trees.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::uint16_t kTagTree = 10;
constexpr std::uint16_t kTagScatter = 11;
constexpr std::uint16_t kTagAllgather = 12;  // uses kTagAllgather(+1)
constexpr std::uint16_t kTagExchange = 14;
constexpr std::uint16_t kTagIntra = 15;

BuiltCollective tree_bcast(const Comm& comm, const Tree& tree,
                           std::size_t bytes, std::size_t seg_bytes,
                           int root) {
  MPICP_SPAN("sim.bcast.tree");
  const Segmentation seg = make_segmentation(bytes, seg_bytes);
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = static_cast<int>(seg.nseg);
  emit_tree_bcast(out.programs, VrankMap::rotation(root, comm.size()), tree,
                  seg, kTagTree);
  return out;
}

BuiltCollective scatter_then_allgather(const Comm& comm, std::size_t bytes,
                                       int root, bool ring) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const auto chunks = even_chunks(bytes, p);
  const VrankMap map = VrankMap::rotation(root, p);
  emit_binomial_scatter(out.programs, map, binomial_tree(p), chunks,
                        kTagScatter);
  if (ring) {
    emit_ring_allgather(out.programs, map, chunks, kTagAllgather);
  } else {
    emit_recdbl_allgather(out.programs, map, chunks, kTagAllgather);
  }
  return out;
}

}  // namespace

BuiltCollective bcast_linear(const Comm& comm, std::size_t bytes, int root) {
  return tree_bcast(comm, flat_tree(comm.size()), bytes, 0, root);
}

BuiltCollective bcast_chain(const Comm& comm, std::size_t bytes,
                            std::size_t seg_bytes, int nchains, int root) {
  return tree_bcast(comm, chain_tree(comm.size(), nchains), bytes, seg_bytes,
                    root);
}

BuiltCollective bcast_pipeline(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, int root) {
  return tree_bcast(comm, chain_tree(comm.size(), 1), bytes, seg_bytes,
                    root);
}

BuiltCollective bcast_binary(const Comm& comm, std::size_t bytes,
                             std::size_t seg_bytes, int root) {
  return tree_bcast(comm, binary_tree(comm.size()), bytes, seg_bytes, root);
}

BuiltCollective bcast_binomial(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, int root) {
  return tree_bcast(comm, binomial_tree(comm.size()), bytes, seg_bytes,
                    root);
}

BuiltCollective bcast_knomial(const Comm& comm, std::size_t bytes,
                              std::size_t seg_bytes, int radix, int root) {
  return tree_bcast(comm, knomial_tree(comm.size(), radix), bytes, seg_bytes,
                    root);
}

BuiltCollective bcast_scatter_allgather(const Comm& comm, std::size_t bytes,
                                        int root) {
  return scatter_then_allgather(comm, bytes, root, /*ring=*/false);
}

BuiltCollective bcast_scatter_ring_allgather(const Comm& comm,
                                             std::size_t bytes, int root) {
  return scatter_then_allgather(comm, bytes, root, /*ring=*/true);
}

BuiltCollective bcast_split_binary(const Comm& comm, std::size_t bytes,
                                   std::size_t seg_bytes, int root) {
  const int p = comm.size();
  // The split variant needs both subtrees populated; below three ranks it
  // degenerates to the plain binary tree (as Open MPI's does).
  if (p < 3 || bytes < 2) {
    return tree_bcast(comm, binary_tree(p), bytes, seg_bytes, root);
  }
  const VrankMap map = VrankMap::rotation(root, p);
  const Tree tree = binary_tree(p);

  // Split the payload in two halves; the subtree under vrank 1 pipelines
  // half A, the subtree under vrank 2 half B. Afterwards every non-root
  // rank swaps its missing half with a partner from the other subtree.
  const std::size_t bytes_a = (bytes + 1) / 2;
  const std::size_t bytes_b = bytes - bytes_a;
  const Segmentation seg_a = make_segmentation(bytes_a, seg_bytes);
  const Segmentation seg_b = make_segmentation(bytes_b, seg_bytes);
  const std::uint32_t blocks_a = seg_a.nseg;
  const std::uint32_t blocks_b = seg_b.nseg;

  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = static_cast<int>(blocks_a + blocks_b);

  // half[v]: 0 for the subtree under vrank 1, 1 under vrank 2.
  std::vector<int> half(p, -1);
  half[0] = -1;
  if (p > 1) half[1] = 0;
  if (p > 2) half[2] = 1;
  for (int v = 3; v < p; ++v) half[v] = half[tree[v].parent];

  // Tree phase: every rank moves only its half.
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(out.programs[rank], rank, p);
    const Segmentation& seg = half[v] == 1 ? seg_b : seg_a;
    const std::uint32_t base = half[v] == 1 ? blocks_a : 0;
    bool sent = false;
    if (v == 0) {
      for (std::uint32_t s = 0; s < seg_a.nseg || s < seg_b.nseg; ++s) {
        for (const int c : tree[0].children) {
          const Segmentation& cs = half[c] == 1 ? seg_b : seg_a;
          if (s >= cs.nseg) continue;
          const std::uint32_t cbase = half[c] == 1 ? blocks_a : 0;
          prog.isend(map.rank_of(c), kTagTree, cs.bytes_of(s), cbase + s, 1);
          sent = true;
        }
      }
    } else {
      const int parent = map.rank_of(tree[v].parent);
      const std::uint32_t w = std::min(2u, seg.nseg);  // double buffering
      for (std::uint32_t s = 0; s < w; ++s) {
        prog.irecv(parent, kTagTree, seg.bytes_of(s), base + s, 1);
      }
      for (std::uint32_t s = 0; s < seg.nseg; ++s) {
        prog.waitone();
        if (s + w < seg.nseg) {
          prog.irecv(parent, kTagTree, seg.bytes_of(s + w), base + s + w, 1);
        }
        for (const int c : tree[v].children) {
          prog.isend(map.rank_of(c), kTagTree, seg.bytes_of(s), base + s, 1);
          sent = true;
        }
      }
    }
    if (sent) prog.waitall();
  }

  // Exchange phase: left-subtree ranks obtain half B from right-subtree
  // partners and vice versa. With unequal subtree sizes some ranks serve
  // several partners (round-robin), exactly once per needy rank.
  std::vector<int> left, right;
  for (int v = 1; v < p; ++v) (half[v] == 0 ? left : right).push_back(v);
  struct Xfer {
    int from, to;
    bool half_b;  // payload is half B (else half A)
  };
  std::vector<Xfer> xfers;
  for (std::size_t i = 0; i < left.size(); ++i) {
    xfers.push_back({right[i % right.size()], left[i], true});
  }
  for (std::size_t j = 0; j < right.size(); ++j) {
    xfers.push_back({left[j % left.size()], right[j], false});
  }
  // Emit receives before sends per rank so every rank's nonblocking ops
  // are posted before its waitall; enumeration order is shared by sender
  // and receiver, so FIFO matching is consistent.
  for (int v = 1; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(out.programs[rank], rank, p);
    bool any = false;
    for (const Xfer& x : xfers) {
      if (x.to == v) {
        prog.irecv(map.rank_of(x.from), kTagExchange,
                   x.half_b ? bytes_b : bytes_a, x.half_b ? blocks_a : 0,
                   x.half_b ? blocks_b : blocks_a);
        any = true;
      }
    }
    for (const Xfer& x : xfers) {
      if (x.from == v) {
        prog.isend(map.rank_of(x.to), kTagExchange,
                   x.half_b ? bytes_b : bytes_a, x.half_b ? blocks_a : 0,
                   x.half_b ? blocks_b : blocks_a);
        any = true;
      }
    }
    if (any) prog.waitall();
  }
  return out;
}

BuiltCollective bcast_hierarchical(const Comm& comm, std::size_t bytes,
                                   std::size_t seg_bytes,
                                   HierBcastInter inter, HierBcastIntra intra,
                                   int root) {
  MPICP_REQUIRE(root == 0,
                "hierarchical broadcast requires the root to be a node "
                "leader (rank 0)");
  const int nodes = comm.nodes();
  const int ppn = comm.ppn();
  BuiltCollective out;
  out.programs.resize(comm.size());

  const VrankMap lmap = VrankMap::leaders(comm);
  std::uint32_t nblocks = 1;
  switch (inter) {
    case HierBcastInter::kBinomial: {
      const Segmentation seg = make_segmentation(bytes, seg_bytes);
      nblocks = seg.nseg;
      emit_tree_bcast(out.programs, lmap, binomial_tree(nodes), seg,
                      kTagTree);
      break;
    }
    case HierBcastInter::kPipeline: {
      const Segmentation seg = make_segmentation(bytes, seg_bytes);
      nblocks = seg.nseg;
      emit_tree_bcast(out.programs, lmap, chain_tree(nodes, 1), seg,
                      kTagTree);
      break;
    }
    case HierBcastInter::kScatterAllgather: {
      nblocks = static_cast<std::uint32_t>(nodes);
      const auto chunks = even_chunks(bytes, nodes);
      emit_binomial_scatter(out.programs, lmap, binomial_tree(nodes), chunks,
                            kTagScatter);
      emit_recdbl_allgather(out.programs, lmap, chunks, kTagAllgather);
      break;
    }
  }
  out.blocks_per_rank = static_cast<int>(nblocks);

  // Intra-node fan-out: the leader forwards the whole payload locally.
  // One message per local child covering every block.
  for (int node = 0; node < nodes; ++node) {
    const VrankMap nmap = VrankMap::node_local(comm, node);
    const Tree ltree = intra == HierBcastIntra::kBinomial
                           ? binomial_tree(ppn)
                           : flat_tree(ppn);
    for (int v = 0; v < ppn; ++v) {
      const int rank = nmap.rank_of(v);
      RankProg prog(out.programs[rank], rank, comm.size());
      if (ltree[v].parent >= 0) {
        prog.recv(nmap.rank_of(ltree[v].parent), kTagIntra, bytes, 0,
                  nblocks);
      }
      bool sent = false;
      for (const int c : ltree[v].children) {
        prog.isend(nmap.rank_of(c), kTagIntra, bytes, 0, nblocks);
        sent = true;
      }
      if (sent) prog.waitall();
    }
  }
  return out;
}

}  // namespace mpicp::sim
