#include "collbench/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace mpicp::bench {

Dataset::Dataset(std::string name, sim::MpiLib lib, sim::Collective coll,
                 std::string machine)
    : name_(std::move(name)),
      lib_(lib),
      coll_(coll),
      machine_(std::move(machine)) {}

std::uint64_t Dataset::key(int uid, const Instance& inst) {
  // uid < 2^10, nodes/ppn < 2^12, msize < 2^30 — comfortably disjoint.
  return (static_cast<std::uint64_t>(uid) << 54) ^
         (static_cast<std::uint64_t>(inst.nodes) << 42) ^
         (static_cast<std::uint64_t>(inst.ppn) << 30) ^
         static_cast<std::uint64_t>(inst.msize);
}

void Dataset::add(const Record& rec) {
  MPICP_REQUIRE(rec.uid >= 1 && rec.time_us > 0.0 && rec.nodes >= 1 &&
                    rec.ppn >= 1,
                "malformed dataset record");
  add_unchecked(rec);
}

void Dataset::add_unchecked(const Record& rec) {
  records_.push_back(rec);
  samples_[key(rec.uid, {rec.nodes, rec.ppn, rec.msize})].push_back(
      rec.time_us);
  MedianCache& cache = *median_cache_;
  const support::MutexLock lock(cache.mu);
  cache.values.clear();
}

std::vector<int> Dataset::uids() const {
  std::set<int> s;
  for (const Record& r : records_) s.insert(r.uid);
  return {s.begin(), s.end()};
}

std::vector<int> Dataset::node_counts() const {
  std::set<int> s;
  for (const Record& r : records_) s.insert(r.nodes);
  return {s.begin(), s.end()};
}

std::vector<int> Dataset::ppns() const {
  std::set<int> s;
  for (const Record& r : records_) s.insert(r.ppn);
  return {s.begin(), s.end()};
}

std::vector<std::uint64_t> Dataset::msizes() const {
  std::set<std::uint64_t> s;
  for (const Record& r : records_) s.insert(r.msize);
  return {s.begin(), s.end()};
}

bool Dataset::has(int uid, const Instance& inst) const {
  return samples_.contains(key(uid, inst));
}

double Dataset::time_us(int uid, const Instance& inst) const {
  const std::uint64_t k = key(uid, inst);
  MedianCache& cache = *median_cache_;
  {
    const support::MutexLock lock(cache.mu);
    const auto cached = cache.values.find(k);
    if (cached != cache.values.end()) return cached->second;
  }
  const auto it = samples_.find(k);
  if (it == samples_.end()) {
    MPICP_RAISE_ARG("dataset " + name_ + ": no measurement for uid " +
                          std::to_string(uid) + " at n=" +
                          std::to_string(inst.nodes) + " ppn=" +
                          std::to_string(inst.ppn) + " m=" +
                          std::to_string(inst.msize));
  }
  const double med = support::median(it->second);
  const support::MutexLock lock(cache.mu);
  cache.values.emplace(k, med);
  return med;
}

Dataset::Best Dataset::best(const Instance& inst) const {
  Best best;
  for (const int uid : uids()) {
    if (!has(uid, inst)) continue;
    const double t = time_us(uid, inst);
    if (best.uid == 0 || t < best.time_us) best = {uid, t};
  }
  MPICP_REQUIRE(best.uid != 0, "no measurements for instance");
  return best;
}

std::vector<Instance> Dataset::instances() const {
  std::set<std::tuple<int, int, std::uint64_t>> s;
  for (const Record& r : records_) s.insert({r.nodes, r.ppn, r.msize});
  std::vector<Instance> out;
  out.reserve(s.size());
  for (const auto& [n, ppn, m] : s) out.push_back({n, ppn, m});
  return out;
}

void Dataset::save_csv(const std::filesystem::path& path) const {
  support::CsvTable table({"uid", "nodes", "ppn", "msize", "time_us"});
  for (const Record& r : records_) {
    table.add_row({std::to_string(r.uid), std::to_string(r.nodes),
                   std::to_string(r.ppn), std::to_string(r.msize),
                   support::format_double(r.time_us, 17)});
  }
  support::write_csv(path, table);
}

Dataset Dataset::load_csv(const std::filesystem::path& path,
                          std::string name, sim::MpiLib lib,
                          sim::Collective coll, std::string machine) {
  const support::CsvTable table = support::read_csv(path);
  Dataset ds(std::move(name), lib, coll, std::move(machine));
  const std::size_t c_uid = table.column("uid");
  const std::size_t c_nodes = table.column("nodes");
  const std::size_t c_ppn = table.column("ppn");
  const std::size_t c_msize = table.column("msize");
  const std::size_t c_time = table.column("time_us");
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    Record rec;
    rec.uid = static_cast<int>(table.cell_int(i, c_uid));
    rec.nodes = static_cast<int>(table.cell_int(i, c_nodes));
    rec.ppn = static_cast<int>(table.cell_int(i, c_ppn));
    rec.msize = static_cast<std::uint64_t>(table.cell_int(i, c_msize));
    rec.time_us = table.cell_double(i, c_time);
    ds.add(rec);
  }
  return ds;
}

namespace {

void quarantine(IngestReport& report, std::size_t lineno,
                const std::string& reason) {
  constexpr std::size_t kMaxSamples = 10;
  ++report.rows_quarantined;
  ++report.reasons[reason];
  if (report.samples.size() < kMaxSamples) {
    report.samples.push_back({lineno, reason});
  }
}

}  // namespace

std::string validate_record(const Record& rec,
                            const IngestOptions& options) {
  if (!std::isfinite(rec.time_us)) return "non-finite time";
  if (rec.time_us <= 0.0) return "non-positive time";
  if (rec.time_us > options.max_time_us) return "implausible time";
  if (rec.uid < 1 || rec.nodes < 1 || rec.ppn < 1) {
    return "bad configuration key";
  }
  return "";
}

Dataset Dataset::load_csv_tolerant(const std::filesystem::path& path,
                                   std::string name, sim::MpiLib lib,
                                   sim::Collective coll,
                                   std::string machine,
                                   IngestReport* report,
                                   const IngestOptions& options) {
  MPICP_SPAN("ingest.load_csv_tolerant");
  const support::CsvReadResult read = support::read_csv_lenient(path);
  const support::CsvTable& table = read.table;
  Dataset ds(std::move(name), lib, coll, std::move(machine));
  IngestReport local;
  // Structurally bad rows never reached the table; account for them
  // first so rows_seen covers every data line in the file.
  for (const support::CsvRowError& err : read.errors) {
    ++local.rows_seen;
    quarantine(local, err.lineno, err.reason);
  }
  const std::size_t c_uid = table.column("uid");
  const std::size_t c_nodes = table.column("nodes");
  const std::size_t c_ppn = table.column("ppn");
  const std::size_t c_msize = table.column("msize");
  const std::size_t c_time = table.column("time_us");
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    ++local.rows_seen;
    const std::size_t lineno = read.linenos[i];
    Record rec;
    try {
      rec.uid = static_cast<int>(table.cell_int(i, c_uid));
      rec.nodes = static_cast<int>(table.cell_int(i, c_nodes));
      rec.ppn = static_cast<int>(table.cell_int(i, c_ppn));
      rec.msize = static_cast<std::uint64_t>(table.cell_int(i, c_msize));
      rec.time_us = table.cell_double(i, c_time);
    } catch (const ParseError&) {
      quarantine(local, lineno, "unparseable field");
      continue;
    }
    const std::string reason = validate_record(rec, options);
    if (!reason.empty()) {
      quarantine(local, lineno, reason);
    } else {
      ds.add(rec);
      ++local.rows_ingested;
    }
  }
  namespace metrics = support::metrics;
  metrics::counter("ingest.files").inc();
  metrics::counter("ingest.rows_seen").inc(local.rows_seen);
  metrics::counter("ingest.rows_ingested").inc(local.rows_ingested);
  metrics::counter("ingest.rows_quarantined").inc(local.rows_quarantined);
  for (const auto& [reason, count] : local.reasons) {
    metrics::counter("ingest.quarantine." + reason).inc(count);
  }
  if (report) *report = local;
  return ds;
}

void print_ingest_report(std::ostream& os,
                         const IngestReport& report) {
  support::TextTable table({"ingest", "rows"});
  table.add_row({"seen", std::to_string(report.rows_seen)});
  table.add_row({"ingested", std::to_string(report.rows_ingested)});
  table.add_row({"quarantined", std::to_string(report.rows_quarantined)});
  for (const auto& [reason, count] : report.reasons) {
    table.add_row({"  " + reason, std::to_string(count)});
  }
  table.print(os);
  for (const IngestReport::Sample& s : report.samples) {
    os << "  quarantined line " << s.lineno << ": " << s.reason << '\n';
  }
}

}  // namespace mpicp::bench
