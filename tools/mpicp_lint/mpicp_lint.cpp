// mpicp_lint — the project's invariant checker.
//
// A standalone static-analysis pass (own lightweight tokenizer, no
// libclang) that walks src/, tests/, bench/ and examples/ and enforces
// the conventions the reproduction's determinism guarantees rest on:
// all randomness through support/rng, all threading through
// support/parallel, no wall-clock reads outside the tracing layer, no
// stray output in library code, structured error raising, no exact
// floating-point comparisons, header hygiene, [[nodiscard]] on
// health-report APIs, and no per-iteration heap allocation in the hot
// fit/predict paths. See DESIGN.md §10 for the rule catalogue.
//
// Diagnostics are machine readable — `file:line: [rule-id] message` —
// and the process exits non-zero on any finding that is neither
// suppressed inline (`// mpicp-lint: allow(rule-id)`) nor listed in the
// baseline file.
//
// This tool is deliberately dependency-free (std only) so it can be
// built and run before any of the project libraries compile.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule identifiers (the `[rule-id]` in diagnostics and in allow(...)).
// ---------------------------------------------------------------------
constexpr const char* kRuleRand = "no-raw-rand";          // R1
constexpr const char* kRuleThread = "no-raw-thread";      // R2
constexpr const char* kRuleWallClock = "no-wall-clock";   // R3
constexpr const char* kRuleStdout = "no-stdout";          // R4
constexpr const char* kRuleThrow = "no-bare-throw";       // R5
constexpr const char* kRuleFloatEq = "no-float-eq";       // R6
constexpr const char* kRuleHeader = "header-hygiene";     // R7
constexpr const char* kRuleNodiscard = "nodiscard-report";// R8
constexpr const char* kRuleAllocLoop = "no-alloc-in-loop";// R9
constexpr const char* kRuleSpan = "span-coverage";        // R10
constexpr const char* kRuleIwyu =
    "include-what-you-use-lite";                          // R11
constexpr const char* kRuleLayerDag = "layer-dag";        // R12
constexpr const char* kRuleLockDiscipline =
    "lock-discipline";                                    // R13
constexpr const char* kRuleAtomicOrder =
    "atomic-order-audit";                                 // R14

const std::set<std::string>& all_rules() {
  static const std::set<std::string> rules = {
      kRuleRand,    kRuleThread,  kRuleWallClock, kRuleStdout,
      kRuleThrow,   kRuleFloatEq, kRuleHeader,    kRuleNodiscard,
      kRuleAllocLoop, kRuleSpan,  kRuleIwyu,      kRuleLayerDag,
      kRuleLockDiscipline, kRuleAtomicOrder};
  return rules;
}

/// The project's include namespaces — quoted includes under these
/// prefixes resolve to headers at <root>/src/<path> (shared by R7c and
/// R11).
const std::vector<std::string>& project_include_prefixes() {
  static const std::vector<std::string> prefixes = {
      "support/", "simmpi/", "simnet/", "collbench/", "ml/", "tune/"};
  return prefixes;
}

struct Diagnostic {
  std::string file;  // root-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    return std::tie(file, line, rule, message) <
           std::tie(o.file, o.line, o.rule, o.message);
  }
};

// ---------------------------------------------------------------------
// Lexing: split a translation unit into per-line code (comments and
// string/char literal bodies blanked out) plus per-line comment text
// (for suppression markers). The state machine spans lines, so block
// comments and multi-line raw strings are handled.
// ---------------------------------------------------------------------
struct LexedFile {
  std::vector<std::string> code;     // 0-based; literals/comments blanked
  std::vector<std::string> comment;  // comment text per line
};

LexedFile lex(const std::vector<std::string>& lines) {
  LexedFile out;
  out.code.resize(lines.size());
  out.comment.resize(lines.size());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    std::string& code = out.code[li];
    std::string& comment = out.comment[li];
    code.reserve(s.size());
    if (state == State::kLineComment) state = State::kCode;

    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      const char next = i + 1 < s.size() ? s[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment.append(s.substr(i + 2));
            i = s.size();  // rest of line is comment
            break;
          }
          if (c == '/' && next == '*') {
            state = State::kBlockComment;
            code.append("  ");
            ++i;
            break;
          }
          if (c == '"') {
            // Raw string? Look back for R (also LR/uR/u8R...).
            if (i > 0 && s[i - 1] == 'R') {
              std::size_t close = s.find('(', i + 1);
              if (close != std::string::npos) {
                raw_delim = ")" + s.substr(i + 1, close - i - 1) + "\"";
                state = State::kRawString;
                code.append(s.size() - i, ' ');  // blank to EOL; loop below
                // Check whether the raw string closes on this line.
                std::size_t end = s.find(raw_delim, close);
                if (end != std::string::npos) {
                  state = State::kCode;
                  code.resize(i);
                  code.append(end + raw_delim.size() - i, ' ');
                  i = end + raw_delim.size() - 1;
                } else {
                  i = s.size();
                }
                break;
              }
            }
            state = State::kString;
            code.push_back(' ');
            break;
          }
          if (c == '\'') {
            state = State::kChar;
            code.push_back(' ');
            break;
          }
          code.push_back(c);
          break;
        case State::kString:
          if (c == '\\') { code.append("  "); ++i; break; }
          if (c == '"') state = State::kCode;
          code.push_back(' ');
          break;
        case State::kChar:
          if (c == '\\') { code.append("  "); ++i; break; }
          if (c == '\'') state = State::kCode;
          code.push_back(' ');
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            code.append("  ");
            ++i;
          } else {
            comment.push_back(c);
            code.push_back(' ');
          }
          break;
        case State::kRawString: {
          std::size_t end = s.find(raw_delim, i);
          if (end != std::string::npos) {
            state = State::kCode;
            code.append(end + raw_delim.size() - i, ' ');
            i = end + raw_delim.size() - 1;
          } else {
            code.append(s.size() - i, ' ');
            i = s.size();
          }
          break;
        }
        case State::kLineComment:
          break;  // unreachable; line comments consume the line above
      }
    }
    // Unterminated single-line states do not leak across lines.
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Tokens: identifiers, numbers and single punctuation characters, with
// their line-local column. Enough structure for every rule below.
// ---------------------------------------------------------------------
struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  std::size_t col = 0;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      toks.push_back({Token::Kind::kIdent, code.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < code.size() &&
         std::isdigit(static_cast<unsigned char>(code[i + 1])))) {
      std::size_t j = i;
      // pp-number: digits, dots, ident chars, exponent signs.
      while (j < code.size() &&
             (ident_char(code[j]) || code[j] == '.' ||
              ((code[j] == '+' || code[j] == '-') && j > i &&
               (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                code[j - 1] == 'p' || code[j - 1] == 'P')))) {
        ++j;
      }
      toks.push_back({Token::Kind::kNumber, code.substr(i, j - i), i});
      i = j;
      continue;
    }
    // Two-character comparison operators matter for no-float-eq.
    if ((c == '=' || c == '!') && i + 1 < code.size() &&
        code[i + 1] == '=') {
      toks.push_back({Token::Kind::kPunct, code.substr(i, 2), i});
      i += 2;
      continue;
    }
    toks.push_back({Token::Kind::kPunct, std::string(1, c), i});
    ++i;
  }
  return toks;
}

bool is_float_literal(const Token& t) {
  if (t.kind != Token::Kind::kNumber) return false;
  const std::string& s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return s.find('p') != std::string::npos ||
           s.find('P') != std::string::npos;  // hex float
  }
  return s.find('.') != std::string::npos ||
         s.find('e') != std::string::npos ||
         s.find('E') != std::string::npos;
}

// ---------------------------------------------------------------------
// Suppressions: `// mpicp-lint: allow(rule-a, rule-b)` on a line
// suppresses those rules there; on a line of its own it suppresses them
// on the next line with code. `allow(all)` suppresses every rule.
// ---------------------------------------------------------------------
std::map<std::size_t, std::set<std::string>> collect_suppressions(
    const std::vector<std::string>& comments,
    const std::vector<std::string>& code,
    std::vector<Diagnostic>* diags, const std::string& rel) {
  std::map<std::size_t, std::set<std::string>> allow;  // 1-based line
  static const std::regex marker(
      R"(mpicp-lint:\s*allow\(([A-Za-z0-9_,\- ]*)\))");
  for (std::size_t li = 0; li < comments.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(comments[li], m, marker)) continue;
    std::set<std::string> rules;
    std::stringstream ss(m[1].str());
    std::string id;
    while (std::getline(ss, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(), ::isspace), id.end());
      if (id.empty()) continue;
      if (id != "all" && !all_rules().count(id)) {
        diags->push_back({rel, li + 1, kRuleHeader,
                          "unknown rule '" + id +
                              "' in mpicp-lint: allow(...)"});
        continue;
      }
      rules.insert(id);
    }
    const bool own_line =
        code[li].find_first_not_of(" \t") == std::string::npos;
    std::size_t target = li + 1;           // this line, 1-based
    if (own_line) {
      // Applies to the next line carrying code.
      std::size_t j = li + 1;
      while (j < code.size() &&
             code[j].find_first_not_of(" \t") == std::string::npos) {
        ++j;
      }
      target = j + 1;
    }
    allow[target].insert(rules.begin(), rules.end());
  }
  return allow;
}

// ---------------------------------------------------------------------
// Path role classification.
// ---------------------------------------------------------------------
bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct FileRole {
  bool in_src = false;
  bool is_header = false;
  bool rng_impl = false;       // src/support/rng.*
  bool parallel_impl = false;  // src/support/parallel.*
  bool trace_impl = false;     // src/support/trace.*
  bool error_impl = false;     // src/support/error.hpp
  bool bench = false;          // bench/** (timing mains)
  bool alloc_hot = false;      // src/ml/**, src/tune/** (hot loops)
  bool span_scope = false;     // src/tune/**, src/simmpi/** .cpp files
};

FileRole classify(const std::string& rel) {
  FileRole role;
  role.in_src = starts_with(rel, "src/");
  role.alloc_hot =
      starts_with(rel, "src/ml/") || starts_with(rel, "src/tune/");
  role.is_header = rel.size() > 4 &&
                   rel.compare(rel.size() - 4, 4, ".hpp") == 0;
  role.span_scope =
      !role.is_header && (starts_with(rel, "src/tune/") ||
                          starts_with(rel, "src/simmpi/"));
  role.rng_impl = starts_with(rel, "src/support/rng.");
  role.parallel_impl = starts_with(rel, "src/support/parallel.");
  role.trace_impl = starts_with(rel, "src/support/trace.");
  role.error_impl = rel == "src/support/error.hpp";
  role.bench = starts_with(rel, "bench/");
  return role;
}

// ---------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------
void check_tokens(const std::string& rel, const FileRole& role,
                  const std::vector<std::vector<Token>>& lines,
                  std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kRandIdents = {
      "rand",          "srand",         "rand_r",
      "drand48",       "random_device", "mt19937",
      "mt19937_64",    "minstd_rand",   "minstd_rand0",
      "default_random_engine", "random_shuffle"};
  static const std::set<std::string> kWallClockIdents = {
      "system_clock", "gettimeofday", "localtime", "gmtime", "strftime"};

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<Token>& toks = lines[li];
    for (std::size_t t = 0; t < toks.size(); ++t) {
      const Token& tok = toks[t];
      const bool after_std_scope =
          t >= 2 && toks[t - 1].text == ":" && toks[t - 2].text == ":";
      const bool member_access =
          t >= 1 && (toks[t - 1].text == "." || toks[t - 1].text == ">");
      const bool called =
          t + 1 < toks.size() && toks[t + 1].text == "(";

      // R1 — randomness primitives outside support/rng.
      if (!role.rng_impl && tok.kind == Token::Kind::kIdent &&
          kRandIdents.count(tok.text) && !member_access) {
        // `rand`/`srand` only count as the C functions when called.
        const bool c_function = tok.text == "rand" || tok.text == "srand";
        if (!c_function || called) {
          diags->push_back(
              {rel, li + 1, kRuleRand,
               "non-deterministic randomness primitive '" + tok.text +
                   "' — route all randomness through support/rng"});
        }
      }

      // R2 — raw concurrency primitives outside support/parallel.
      if (!role.parallel_impl && tok.kind == Token::Kind::kIdent) {
        if ((tok.text == "thread" || tok.text == "jthread" ||
             tok.text == "async") &&
            after_std_scope && t >= 3 && toks[t - 3].text == "std") {
          diags->push_back(
              {rel, li + 1, kRuleThread,
               "raw concurrency primitive 'std::" + tok.text +
                   "' — use support/parallel (parallel_for/ThreadPool)"});
        } else if (tok.text == "pthread_create" && called) {
          diags->push_back({rel, li + 1, kRuleThread,
                            "raw concurrency primitive 'pthread_create' — "
                            "use support/parallel"});
        } else if (tok.text == "detach" && member_access && called) {
          diags->push_back({rel, li + 1, kRuleThread,
                            "detached thread — threads must be owned by "
                            "the support/parallel pool"});
        }
      }

      // R3 — wall-clock time sources outside support/trace and bench.
      if (!role.trace_impl && !role.bench &&
          tok.kind == Token::Kind::kIdent && !member_access) {
        if (kWallClockIdents.count(tok.text) ||
            ((tok.text == "time" || tok.text == "clock") && called &&
             !after_std_scope)) {
          // `time(`/`clock(` as free calls; named clocks always.
          diags->push_back(
              {rel, li + 1, kRuleWallClock,
               "wall-clock time source '" + tok.text +
                   "' — timing belongs to support/trace (or bench mains)"});
        } else if ((tok.text == "time" || tok.text == "clock") &&
                   after_std_scope && t >= 3 &&
                   toks[t - 3].text == "std" && called) {
          diags->push_back(
              {rel, li + 1, kRuleWallClock,
               "wall-clock time source 'std::" + tok.text +
                   "' — timing belongs to support/trace (or bench mains)"});
        }
      }

      // R4 — stdout writes in library code.
      if (role.in_src && tok.kind == Token::Kind::kIdent) {
        if (tok.text == "cout" && after_std_scope && t >= 3 &&
            toks[t - 3].text == "std") {
          diags->push_back({rel, li + 1, kRuleStdout,
                            "std::cout in library code — emit through "
                            "support/table or support/metrics exporters"});
        } else if ((tok.text == "printf" || tok.text == "puts" ||
                    tok.text == "putchar" || tok.text == "fprintf") &&
                   called && !member_access) {
          diags->push_back({rel, li + 1, kRuleStdout,
                            "'" + tok.text +
                                "' in library code — emit through "
                                "support/table or support/metrics"});
        }
      }

      // R5 — bare throw in library code (rethrow `throw;` is allowed).
      if (role.in_src && !role.error_impl &&
          tok.kind == Token::Kind::kIdent && tok.text == "throw") {
        const bool rethrow =
            t + 1 < toks.size() && toks[t + 1].text == ";";
        if (!rethrow) {
          diags->push_back({rel, li + 1, kRuleThrow,
                            "bare throw — raise through the "
                            "support/error.hpp macros (MPICP_REQUIRE / "
                            "MPICP_ASSERT / MPICP_CHECK_PARSE / "
                            "MPICP_RAISE_*)"});
        }
      }

      // R6 — exact floating-point comparison (literal operand).
      if (tok.kind == Token::Kind::kPunct &&
          (tok.text == "==" || tok.text == "!=")) {
        const Token* lhs = t > 0 ? &toks[t - 1] : nullptr;
        const Token* rhs = t + 1 < toks.size() ? &toks[t + 1] : nullptr;
        // Allow a leading unary minus on the right literal.
        const Token* rhs2 =
            (rhs && rhs->text == "-" && t + 2 < toks.size())
                ? &toks[t + 2]
                : nullptr;
        if ((lhs && is_float_literal(*lhs)) ||
            (rhs && is_float_literal(*rhs)) ||
            (rhs2 && is_float_literal(*rhs2))) {
          diags->push_back(
              {rel, li + 1, kRuleFloatEq,
               "exact floating-point comparison against a literal — "
               "compare with a tolerance, or justify with an inline "
               "allow(no-float-eq)"});
        }
      }
    }
  }
}

void check_header(const std::string& rel,
                  const std::vector<std::string>& code,
                  std::vector<Diagnostic>* diags) {
  // R7a — #pragma once before any other preprocessor/code line.
  bool pragma_seen = false;
  bool code_before_pragma = false;
  std::size_t first_code_line = 0;
  for (std::size_t li = 0; li < code.size(); ++li) {
    std::string trimmed = code[li];
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (trimmed.empty()) continue;
    if (starts_with(trimmed, "#pragma") &&
        trimmed.find("once") != std::string::npos) {
      pragma_seen = true;
      break;
    }
    if (!code_before_pragma) {
      code_before_pragma = true;
      first_code_line = li + 1;
    }
  }
  if (!pragma_seen) {
    diags->push_back({rel, 1, kRuleHeader,
                      "header missing #pragma once"});
  } else if (code_before_pragma) {
    diags->push_back({rel, first_code_line, kRuleHeader,
                      "code before #pragma once (the guard must be the "
                      "first non-comment line)"});
  }

  // R7b/R7c — duplicate includes; project headers via quotes.
  static const std::regex inc(R"(^\s*#\s*include\s*([<"])([^>"]+)[>"])");
  const std::vector<std::string>& project_prefixes =
      project_include_prefixes();
  std::map<std::string, std::size_t> seen;
  for (std::size_t li = 0; li < code.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(code[li], m, inc)) continue;
    const std::string path = m[2].str();
    auto [it, inserted] = seen.emplace(path, li + 1);
    if (!inserted) {
      diags->push_back({rel, li + 1, kRuleHeader,
                        "duplicate #include of '" + path +
                            "' (first at line " +
                            std::to_string(it->second) + ")"});
    }
    if (m[1].str() == "<") {
      for (const std::string& p : project_prefixes) {
        if (starts_with(path, p)) {
          diags->push_back({rel, li + 1, kRuleHeader,
                            "project header '" + path +
                                "' included with <> — use quotes"});
          break;
        }
      }
    }
  }
}

void check_nodiscard(const std::string& rel,
                     const std::vector<std::string>& code,
                     std::vector<Diagnostic>* diags) {
  // R8 — report/result-returning declarations must be [[nodiscard]].
  // Join the stripped code so declarations split across lines are seen;
  // remember each character's line for reporting.
  std::string joined;
  std::vector<std::size_t> line_of;
  for (std::size_t li = 0; li < code.size(); ++li) {
    joined += code[li];
    joined += '\n';
    line_of.resize(joined.size(), li + 1);
  }
  static const std::regex decl(
      R"(([A-Za-z_][A-Za-z0-9_]*(?:Report|Result|Evaluation|Outcome))\s*)"
      R"(((?:<[^<>;(){}]*>)?\s*[&*]?\s*|>\s*[&*]?\s*))"
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), decl);
       it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    const std::string type = m[1].str();
    const std::string name = m[4].str();
    if (name == type) continue;  // constructor-like
    // Keywords that show this is not a declaration (e.g. `return
    // SomeResult(...)`, `case`, comparisons).
    if (name == "return" || name == "sizeof" || name == "if" ||
        name == "while" || name == "for" || name == "switch") {
      continue;
    }
    const std::size_t pos = static_cast<std::size_t>(m.position(0));
    // Look back a bounded window for [[nodiscard]] on the declaration.
    const std::size_t window_start = pos > 160 ? pos - 160 : 0;
    std::string_view back(joined.data() + window_start, pos - window_start);
    // The window must not cross a statement/declaration boundary.
    const std::size_t boundary = back.find_last_of(";{}");
    if (boundary != std::string_view::npos) {
      back = back.substr(boundary + 1);
    }
    if (back.find("[[nodiscard]]") != std::string_view::npos) continue;
    if (back.find("using") != std::string_view::npos) continue;
    diags->push_back(
        {rel, line_of[pos], kRuleNodiscard,
         "'" + type + " " + name +
             "(...)' returns a health report/result — declare it "
             "[[nodiscard]] so callers cannot drop it silently"});
  }
}

// ---------------------------------------------------------------------
// R9 — no heap allocation inside hot loops (src/ml, src/tune).
//
// The serving and fitting paths are allocation-free by design
// (DESIGN.md §11): buffers are hoisted outside loops and containers are
// reserved up front. This pass joins the blanked code, finds loop
// bodies — `for`/`while`/`do` (including single-statement bodies) and
// the argument range of `parallel_for(...)` — and flags, inside them:
//   a) `new` / `make_unique` / `make_shared`,
//   b) `.push_back(` / `.emplace_back(` whose receiver identifier has
//      no `<ident>.reserve` anywhere in the file, and
//   c) sized `std::vector<...> name(args...)` constructions.
// Receivers that cannot be resolved to an identifier (ternaries,
// call-chain results) are skipped rather than guessed at; genuinely
// unbounded loops justify themselves with allow(no-alloc-in-loop).
// ---------------------------------------------------------------------
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const std::string& openc,
                          const std::string& closec) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == openc) {
      ++depth;
    } else if (toks[i].text == closec) {
      if (--depth == 0) return i;
    }
  }
  return toks.size() - 1;  // unmatched; clamp to EOF
}

/// Final identifier of the receiver of `.push_back` at token `dot`
/// (e.g. `rows[rec.uid].push_back` -> "rows", `config.rules.push_back`
/// -> "rules"). Empty when unresolvable.
std::string receiver_of(const std::vector<Token>& toks, std::size_t dot) {
  if (dot == 0) return "";
  std::size_t i = dot - 1;
  // Skip trailing balanced `[...]` index groups (possibly several).
  while (toks[i].text == "]") {
    int depth = 0;
    while (true) {
      if (toks[i].text == "]") ++depth;
      if (toks[i].text == "[" && --depth == 0) break;
      if (i == 0) return "";
      --i;
    }
    if (i == 0) return "";
    --i;
  }
  if (toks[i].kind != Token::Kind::kIdent) return "";
  return toks[i].text;
}

void check_alloc_in_loop(const std::string& rel,
                         const std::vector<std::string>& code,
                         std::vector<Diagnostic>* diags) {
  // Join the stripped code (as check_nodiscard does) so loops spanning
  // lines are seen as one token stream; remember each offset's line.
  std::string joined;
  std::vector<std::size_t> line_of;
  for (std::size_t li = 0; li < code.size(); ++li) {
    joined += code[li];
    joined += '\n';
    line_of.resize(joined.size(), li + 1);
  }
  const std::vector<Token> toks = tokenize(joined);
  if (toks.empty()) return;

  // Pass 1: mark the token ranges that execute per loop iteration.
  std::vector<char> in_loop(toks.size(), 0);
  const auto mark = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i <= e && i < toks.size(); ++i) in_loop[i] = 1;
  };
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.kind != Token::Kind::kIdent) continue;
    const bool paren_next =
        t + 1 < toks.size() && toks[t + 1].text == "(";
    if (tok.text == "parallel_for" && paren_next) {
      // The whole argument range: the body lambda runs per element.
      mark(t + 2, match_forward(toks, t + 1, "(", ")"));
    } else if ((tok.text == "for" || tok.text == "while") && paren_next) {
      const std::size_t close = match_forward(toks, t + 1, "(", ")");
      const std::size_t body = close + 1;
      if (body >= toks.size()) continue;
      if (toks[body].text == "{") {
        mark(body, match_forward(toks, body, "{", "}"));
      } else if (toks[body].text != ";") {
        // Single-statement body: up to the top-level terminating `;`.
        std::size_t e = body;
        int pd = 0;
        int bd = 0;
        for (; e < toks.size(); ++e) {
          const std::string& s = toks[e].text;
          if (s == "(") ++pd;
          if (s == ")") --pd;
          if (s == "{") ++bd;
          if (s == "}") --bd;
          if (s == ";" && pd == 0 && bd == 0) break;
        }
        mark(body, e);
      }
    } else if (tok.text == "do" && t + 1 < toks.size() &&
               toks[t + 1].text == "{") {
      mark(t + 1, match_forward(toks, t + 1, "{", "}"));
    }
  }

  // Receivers with a `<ident>.reserve` / `<ident>->reserve` anywhere in
  // the file are considered pre-sized.
  std::set<std::string> reserved;
  for (std::size_t t = 0; t + 2 < toks.size(); ++t) {
    if (toks[t].kind != Token::Kind::kIdent) continue;
    if (toks[t + 1].text == "." && toks[t + 2].text == "reserve") {
      reserved.insert(toks[t].text);
    } else if (t + 3 < toks.size() && toks[t + 1].text == "-" &&
               toks[t + 2].text == ">" && toks[t + 3].text == "reserve") {
      reserved.insert(toks[t].text);
    }
  }

  // Pass 2: flag allocations inside the marked ranges.
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (!in_loop[t]) continue;
    const Token& tok = toks[t];
    if (tok.kind != Token::Kind::kIdent) continue;
    const std::size_t line = line_of[tok.col];

    if (tok.text == "new" || tok.text == "make_unique" ||
        tok.text == "make_shared") {
      diags->push_back(
          {rel, line, kRuleAllocLoop,
           "'" + tok.text +
               "' inside a loop on a hot path — hoist the allocation "
               "out of the loop (DESIGN.md §11)"});
      continue;
    }

    if ((tok.text == "push_back" || tok.text == "emplace_back") &&
        t >= 1 && toks[t - 1].text == "." && t + 1 < toks.size() &&
        toks[t + 1].text == "(") {
      const std::string recv = receiver_of(toks, t - 1);
      if (!recv.empty() && !reserved.count(recv)) {
        diags->push_back(
            {rel, line, kRuleAllocLoop,
             "'" + recv + "." + tok.text +
                 "' inside a loop without a prior '" + recv +
                 ".reserve' — reserve capacity up front, or justify "
                 "with allow(no-alloc-in-loop)"});
      }
      continue;
    }

    if (tok.text == "vector" && t + 1 < toks.size() &&
        toks[t + 1].text == "<") {
      // `std::vector<...> name(args)` / `std::vector<...>(args)` with a
      // non-empty argument list allocates per iteration.
      std::size_t i = t + 1;
      int depth = 0;
      for (; i < toks.size(); ++i) {
        if (toks[i].text == "<") ++depth;
        if (toks[i].text == ">" && --depth == 0) break;
      }
      if (i >= toks.size()) continue;
      std::size_t after = i + 1;
      if (after < toks.size() &&
          toks[after].kind == Token::Kind::kIdent) {
        ++after;  // declared name
      }
      if (after < toks.size() && toks[after].text == "(" &&
          after + 1 < toks.size() && toks[after + 1].text != ")") {
        diags->push_back(
            {rel, line, kRuleAllocLoop,
             "sized std::vector constructed inside a loop — hoist the "
             "buffer and use assign()/resize() to reuse its capacity"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// R10 — span coverage in the serving and simulation layers.
//
// Every .cpp under src/tune/ and src/simmpi/ that defines a non-trivial
// function (body spanning >= kSpanBodyLines source lines) must contain
// at least one MPICP_SPAN, so the observability layer sees where those
// subsystems spend their time. One finding per uncovered file, anchored
// at its first non-trivial definition. Files of short helpers are
// exempt; a file that is deliberately span-free justifies itself with
// allow(span-coverage) on that definition.
// ---------------------------------------------------------------------
constexpr std::size_t kSpanBodyLines = 15;

void check_span_coverage(const std::string& rel,
                         const std::vector<std::string>& code,
                         std::vector<Diagnostic>* diags) {
  std::string joined;
  std::vector<std::size_t> line_of;
  for (std::size_t li = 0; li < code.size(); ++li) {
    joined += code[li];
    joined += '\n';
    line_of.resize(joined.size(), li + 1);
  }
  const std::vector<Token> toks = tokenize(joined);

  static const std::set<std::string> kNotAFunction = {
      "if",     "for",    "while",  "switch", "catch",
      "return", "sizeof", "do",     "else",   "new"};
  static const std::set<std::string> kTrailer = {"const", "noexcept",
                                                 "override", "final"};
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].kind == Token::Kind::kIdent &&
        toks[t].text == "MPICP_SPAN") {
      return;  // covered
    }
  }
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.kind != Token::Kind::kIdent || kNotAFunction.count(tok.text)) {
      continue;
    }
    if (t + 1 >= toks.size() || toks[t + 1].text != "(") continue;
    const std::size_t close = match_forward(toks, t + 1, "(", ")");
    // `name(args) [const|noexcept|override|final]* {` — the shape of a
    // function definition. Constructors with init lists and trailing
    // return types are not matched; under-detection only exempts, never
    // flags.
    std::size_t j = close + 1;
    while (j < toks.size() && kTrailer.count(toks[j].text)) ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t end = match_forward(toks, j, "{", "}");
    const std::size_t body_lines =
        line_of[toks[end].col] - line_of[toks[j].col] + 1;
    if (body_lines < kSpanBodyLines) continue;
    diags->push_back(
        {rel, line_of[tok.col], kRuleSpan,
         "'" + tok.text + "' spans " + std::to_string(body_lines) +
             " lines but the file has no MPICP_SPAN — trace the entry "
             "points of this subsystem (support/trace.hpp)"});
    return;  // one finding per uncovered file
  }
}

// ---------------------------------------------------------------------
// R11 — include-what-you-use-lite for project headers.
//
// Every quoted project include (`#include "tune/x.hpp"` under the
// prefixes of project_include_prefixes()) must provide at least one
// symbol the including file actually names. "Symbols provided" is a
// deliberately lenient harvest of the header's declarations — type
// names after class/struct/enum, #define names, `using X =` aliases,
// and identifiers that look like functions or constants — so
// over-collection can only exempt an include, never flag a used one.
// Includes whose header cannot be resolved under <root>/src are
// skipped, as is a .cpp file's own header (included for its definition,
// not its symbols).
//
// The include PATH is parsed from the raw source line: the lexer blanks
// string-literal bodies, so the lexed line only confirms the directive
// is real code (not inside a comment).
// ---------------------------------------------------------------------

/// Identifiers too generic to witness a header's use: C++ keywords,
/// fixed-width typedef names and ubiquitous std vocabulary. Harvested
/// symbols and usage witnesses are both filtered through this.
bool iwyu_generic_ident(const std::string& s) {
  static const std::set<std::string> kGeneric = {
      // keywords
      "alignas", "alignof", "auto", "bool", "break", "case", "catch",
      "char", "class", "const", "constexpr", "const_cast", "continue",
      "decltype", "default", "delete", "do", "double", "dynamic_cast",
      "else", "enum", "explicit", "extern", "false", "final", "float",
      "for", "friend", "goto", "if", "inline", "int", "long", "mutable",
      "namespace", "new", "noexcept", "nullptr", "operator", "override",
      "private", "protected", "public", "reinterpret_cast", "requires",
      "return", "short", "signed", "sizeof", "static", "static_assert",
      "static_cast", "struct", "switch", "template", "this",
      "thread_local", "throw", "true", "try", "typedef", "typeid",
      "typename", "union", "unsigned", "using", "virtual", "void",
      "volatile", "while",
      // ubiquitous std vocabulary and fixed-width names
      "std", "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t",
      "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "string",
      "string_view", "vector", "map", "set", "pair", "tuple", "span",
      "optional", "shared_ptr", "unique_ptr", "function", "size", "begin",
      "end", "empty", "clear", "data", "first", "second", "push_back",
      "emplace_back", "reserve", "resize", "find", "count", "insert",
      "erase", "min", "max", "abs", "get", "value", "front", "back"};
  return s.size() <= 2 || kGeneric.count(s) > 0;
}

/// Harvest the symbols a header provides (see the R11 comment above).
std::set<std::string> iwyu_header_symbols(const fs::path& abs) {
  std::set<std::string> symbols;
  std::ifstream in(abs);
  if (!in) return symbols;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  const LexedFile lexed = lex(lines);
  std::string joined;
  for (const std::string& code : lexed.code) {
    joined += code;
    joined += '\n';
  }
  const std::vector<Token> toks = tokenize(joined);
  const auto harvest = [&](const std::string& s) {
    if (!iwyu_generic_ident(s)) symbols.insert(s);
  };
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.kind != Token::Kind::kIdent) continue;
    // Type names: `class X` / `struct X` / `enum X` / `enum class X`.
    if (tok.text == "class" || tok.text == "struct" ||
        tok.text == "enum") {
      std::size_t j = t + 1;
      if (j < toks.size() &&
          (toks[j].text == "class" || toks[j].text == "struct")) {
        ++j;  // enum class
      }
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
        harvest(toks[j].text);
      }
      continue;
    }
    // Macro names: `#define X`.
    if (tok.text == "define" && t >= 1 && toks[t - 1].text == "#" &&
        t + 1 < toks.size() &&
        toks[t + 1].kind == Token::Kind::kIdent) {
      harvest(toks[t + 1].text);
      continue;
    }
    // Aliases: `using X = ...`.
    if (tok.text == "using" && t + 2 < toks.size() &&
        toks[t + 1].kind == Token::Kind::kIdent &&
        toks[t + 2].text == "=") {
      harvest(toks[t + 1].text);
      continue;
    }
    // Function-ish (`name(`), constant-ish (`name =`) and array-ish
    // (`name[`) declarations — lenient on purpose; includes local names
    // in inline bodies, which only widens the "used" net.
    if (t + 1 < toks.size() &&
        (toks[t + 1].text == "(" || toks[t + 1].text == "=" ||
         toks[t + 1].text == "[")) {
      harvest(tok.text);
    }
  }
  return symbols;
}

/// Cache of iwyu_header_symbols keyed by resolved header path (one
/// parse per header per run, shared across every including file).
using IwyuCache = std::map<std::string, std::set<std::string>>;

void check_iwyu(const std::string& rel,
                const std::vector<std::string>& raw,
                const LexedFile& lexed, const fs::path& root,
                IwyuCache* cache, std::vector<Diagnostic>* diags) {
  static const std::regex inc_raw(R"(^\s*#\s*include\s*"([^"]+)\")");
  // The lexer blanks string literals *including* their quotes, so the
  // live-code check can only look for the directive itself.
  static const std::regex inc_code(R"(^\s*#\s*include\b)");

  // A .cpp's own header is included for its definitions, not symbols.
  std::string own;
  if (starts_with(rel, "src/") && rel.size() > 8 &&
      rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
    own = rel.substr(4, rel.size() - 8) + ".hpp";
  }

  // The identifiers this file names (filtered like the harvest side).
  std::set<std::string> used;
  for (const std::string& code : lexed.code) {
    for (const Token& tok : tokenize(code)) {
      if (tok.kind == Token::Kind::kIdent &&
          !iwyu_generic_ident(tok.text)) {
        used.insert(tok.text);
      }
    }
  }

  for (std::size_t li = 0; li < raw.size(); ++li) {
    // The lexed line proves the directive is live code; the raw line
    // carries the path the lexer blanked.
    if (!std::regex_search(lexed.code[li], inc_code)) continue;
    std::smatch m;
    if (!std::regex_search(raw[li], m, inc_raw)) continue;
    const std::string path = m[1].str();
    bool project = false;
    for (const std::string& p : project_include_prefixes()) {
      if (starts_with(path, p)) {
        project = true;
        break;
      }
    }
    if (!project || path == own) continue;
    const fs::path header = root / "src" / path;
    auto it = cache->find(header.string());
    if (it == cache->end()) {
      it = cache->emplace(header.string(), iwyu_header_symbols(header))
               .first;
    }
    const std::set<std::string>& provided = it->second;
    if (provided.empty()) continue;  // unresolvable or declaration-free
    bool witnessed = false;
    for (const std::string& sym : provided) {
      if (used.count(sym)) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) {
      diags->push_back(
          {rel, li + 1, kRuleIwyu,
           "include of '" + path +
               "' provides no symbol this file names — drop the "
               "include (or justify with allow(" +
               std::string(kRuleIwyu) + "))"});
    }
  }
}

// ---------------------------------------------------------------------
// R12 — the layer DAG (whole-program, two-phase).
//
// The project layers form a DAG (DESIGN.md §15):
//
//   support -> {ml, simnet} -> {simmpi, collbench} -> tune
//           -> {tools, bench, examples, tests}
//
// Phase 1 walks every file once and records its project includes (the
// include graph; cacheable via --graph-cache). Phase 2 then flags
//   a) upward includes — a file whose layer ranks lower than the layer
//      of a header it includes (same-rank sibling includes are fine:
//      collbench legitimately uses simmpi), and
//   b) include cycles — a DFS over the file-level graph, visited in
//      sorted order so the report is deterministic; each cycle is
//      reported once, anchored at the include edge that closes it.
// Findings honour the including file's allow(layer-dag) suppressions
// like any per-file rule.
// ---------------------------------------------------------------------
struct IncludeEdge {
  std::string path;      // as written, e.g. "tune/registry.hpp"
  std::size_t line = 0;  // 1-based
};

/// rel -> project includes, for every walked file.
using IncludeGraph = std::map<std::string, std::vector<IncludeEdge>>;

int layer_rank(const std::string& rel) {
  if (starts_with(rel, "src/support/")) return 0;
  if (starts_with(rel, "src/ml/") || starts_with(rel, "src/simnet/")) {
    return 1;
  }
  if (starts_with(rel, "src/simmpi/") ||
      starts_with(rel, "src/collbench/")) {
    return 2;
  }
  if (starts_with(rel, "src/tune/")) return 3;
  return 4;  // tools, bench, examples, tests: free to use every layer
}

const char* layer_name(int rank) {
  switch (rank) {
    case 0: return "support";
    case 1: return "ml/simnet";
    case 2: return "simmpi/collbench";
    case 3: return "tune";
    default: return "the leaf layer (tools/bench/examples/tests)";
  }
}

std::vector<IncludeEdge> extract_project_includes(
    const std::vector<std::string>& raw, const LexedFile& lexed) {
  // The lexed line proves the directive is live code; the raw line
  // carries the path the lexer blanked (as in check_iwyu). Both quote
  // forms are recorded: R7c separately flags <> project includes, but
  // they still count as dependency edges.
  static const std::regex inc_code(R"(^\s*#\s*include\b)");
  static const std::regex inc_raw(R"(^\s*#\s*include\s*[<"]([^>"]+)[>"])");
  std::vector<IncludeEdge> out;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    if (!std::regex_search(lexed.code[li], inc_code)) continue;
    std::smatch m;
    if (!std::regex_search(raw[li], m, inc_raw)) continue;
    const std::string path = m[1].str();
    for (const std::string& p : project_include_prefixes()) {
      if (starts_with(path, p)) {
        out.push_back({path, li + 1});
        break;
      }
    }
  }
  return out;
}

void check_layer_dag(const IncludeGraph& graph,
                     std::map<std::string, std::vector<Diagnostic>>* out) {
  // a) Upward includes (rank is path-derived; the target need not be a
  //    walked file for the edge to be judged).
  for (const auto& [rel, edges] : graph) {
    const int r = layer_rank(rel);
    for (const IncludeEdge& e : edges) {
      const int tr = layer_rank("src/" + e.path);
      if (tr <= r) continue;
      (*out)[rel].push_back(
          {rel, e.line, kRuleLayerDag,
           "include of '" + e.path + "' inverts the layer DAG — " +
               std::string(layer_name(r)) + " must not depend on " +
               layer_name(tr) + " (DESIGN.md §15)"});
    }
  }

  // b) Cycles. Only edges to walked files are traversed.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& u) {
        color[u] = 1;
        stack.push_back(u);
        const auto it = graph.find(u);
        if (it != graph.end()) {
          for (const IncludeEdge& e : it->second) {
            const std::string v = "src/" + e.path;
            if (!graph.count(v)) continue;
            const int c = color[v];
            if (c == 2) continue;
            if (c == 0) {
              dfs(v);
              continue;
            }
            // Back edge u -> v: the cycle is v .. u -> v on the stack.
            std::string chain = v;
            bool tail = false;
            for (const std::string& n : stack) {
              if (n == v) {
                tail = true;
                continue;
              }
              if (tail) chain += " -> " + n;
            }
            chain += " -> " + v;
            (*out)[u].push_back({u, e.line, kRuleLayerDag,
                                 "include cycle: " + chain});
          }
        }
        stack.pop_back();
        color[u] = 2;
      };
  for (const auto& [rel, edges] : graph) {
    (void)edges;
    if (color[rel] == 0) dfs(rel);
  }
}

// ---------------------------------------------------------------------
// R13 — lock discipline (src/** only).
//
// A class that declares a mutex capability (std::mutex,
// std::shared_mutex or support::Mutex by value) is a concurrent
// container: every mutable data member in it must either carry
// MPICP_GUARDED_BY / MPICP_PT_GUARDED_BY or justify itself with
// allow(lock-discipline) (the idiom for members made immutable by
// construction order — see thread_safety.hpp).
//
// The parser is deliberately conservative; unresolvable shapes exempt,
// never flag. Exempt are: the synchronisation primitives themselves
// (mutexes, atomics, condition variables), reference members (they
// alias state guarded elsewhere), static/constexpr members, const-
// leading members, and anything that parses as a method or nested type.
// ---------------------------------------------------------------------
void check_lock_discipline(const std::string& rel,
                           const std::vector<std::string>& code,
                           std::vector<Diagnostic>* diags) {
  std::string joined;
  std::vector<std::size_t> line_of;
  for (std::size_t li = 0; li < code.size(); ++li) {
    joined += code[li];
    joined += '\n';
    line_of.resize(joined.size(), li + 1);
  }
  const std::vector<Token> toks = tokenize(joined);

  static const std::set<std::string> kMutexTypes = {"mutex", "shared_mutex",
                                                    "Mutex"};
  static const std::set<std::string> kSyncTypes = {
      "mutex",       "shared_mutex",       "Mutex",
      "atomic",      "atomic_flag",        "condition_variable",
      "condition_variable_any"};
  static const std::set<std::string> kSkipLead = {
      "using",  "typedef", "friend",   "static", "constexpr",
      "enum",   "class",   "struct",   "union",  "template",
      "operator", "explicit", "virtual", "const", "public",
      "private", "protected"};

  for (std::size_t t = 0; t + 1 < toks.size(); ++t) {
    const Token& tok = toks[t];
    if (tok.kind != Token::Kind::kIdent ||
        (tok.text != "class" && tok.text != "struct")) {
      continue;
    }
    if (t > 0 && toks[t - 1].text == "enum") continue;  // enum class
    if (toks[t + 1].kind != Token::Kind::kIdent) continue;  // anonymous
    // Find the body brace past the name, capability macros and base
    // clause; `;` is a forward declaration, `>`/`,`/`)` a template or
    // parameter context — not a definition.
    std::size_t open = 0;
    for (std::size_t j = t + 1; j < toks.size(); ++j) {
      const std::string& s = toks[j].text;
      if (s == "(") { j = match_forward(toks, j, "(", ")"); continue; }
      if (s == "<") { j = match_forward(toks, j, "<", ">"); continue; }
      if (s == "{") { open = j; break; }
      if (s == ";" || s == ">" || s == "," || s == ")") break;
    }
    if (open == 0) continue;
    const std::size_t close = match_forward(toks, open, "{", "}");

    // Depth-1 statements of the class body. A `}` returning to depth 1
    // ends a method body or nested type without a separating `;`.
    std::vector<std::pair<std::size_t, std::size_t>> stmts;  // [b, e)
    int brace = 0;
    int paren = 0;
    std::size_t begin = open + 1;
    for (std::size_t j = open; j <= close && j < toks.size(); ++j) {
      const std::string& s = toks[j].text;
      if (s == "{") {
        ++brace;
      } else if (s == "}") {
        --brace;
        // Only a real body close ends a statement — a brace inside an
        // argument list (`= {}` default arguments) does not.
        if (brace == 1 && paren == 0) begin = j + 1;
      } else if (s == "(") {
        ++paren;
      } else if (s == ")") {
        --paren;
      } else if (s == ";" && brace == 1 && paren == 0) {
        stmts.emplace_back(begin, j);
        begin = j + 1;
      }
    }

    bool has_mutex = false;
    struct Candidate {
      std::string name;
      std::size_t line;
    };
    std::vector<Candidate> unannotated;
    for (auto [b, e] : stmts) {
      // Strip access-specifier labels fused into the statement.
      while (b + 1 < e && toks[b].kind == Token::Kind::kIdent &&
             (toks[b].text == "public" || toks[b].text == "private" ||
              toks[b].text == "protected") &&
             toks[b + 1].text == ":") {
        b += 2;
      }
      if (b >= e) continue;
      // Annotated members are satisfied whatever their shape (and the
      // macro's parens would otherwise read as a method signature).
      bool annotated = false;
      for (std::size_t j = b; j < e; ++j) {
        if (toks[j].text == "MPICP_GUARDED_BY" ||
            toks[j].text == "MPICP_PT_GUARDED_BY") {
          annotated = true;
          break;
        }
      }
      if (annotated) continue;
      if (toks[b].kind == Token::Kind::kIdent &&
          kSkipLead.count(toks[b].text)) {
        continue;
      }
      // The declarator prefix: everything before the first top-level
      // initialiser (`=` or `{`).
      std::size_t stop = e;
      int pd = 0;
      int ad = 0;
      for (std::size_t j = b; j < e; ++j) {
        const std::string& s = toks[j].text;
        if (s == "(") {
          ++pd;
        } else if (s == ")") {
          --pd;
        } else if (s == "<") {
          ++ad;
        } else if (s == ">") {
          if (ad > 0) --ad;
        } else if (pd == 0 && ad == 0 && (s == "=" || s == "{")) {
          stop = j;
          break;
        }
      }
      if (stop <= b) continue;
      bool has_paren = false;
      bool is_ref = false;
      bool sync = false;
      bool mutex_typed = false;
      for (std::size_t j = b; j < stop; ++j) {
        const std::string& s = toks[j].text;
        if (s == "(") has_paren = true;
        if (s == "&") is_ref = true;
        if (toks[j].kind == Token::Kind::kIdent) {
          if (kSyncTypes.count(s)) sync = true;
          if (kMutexTypes.count(s)) mutex_typed = true;
        }
      }
      if (has_paren) continue;  // method, constructor, function type
      const Token& last = toks[stop - 1];
      if (last.kind != Token::Kind::kIdent) continue;
      if (mutex_typed && !is_ref) has_mutex = true;
      if (sync || is_ref) continue;  // the primitives guard, not guarded
      unannotated.push_back({last.text, line_of[last.col]});
    }
    if (!has_mutex) continue;
    for (const Candidate& c : unannotated) {
      diags->push_back(
          {rel, c.line, kRuleLockDiscipline,
           "'" + c.name + "' shares a class with a mutex but carries no "
           "MPICP_GUARDED_BY — annotate the guard, or justify with "
           "allow(lock-discipline) (thread_safety.hpp, DESIGN.md §15)"});
    }
  }
}

// ---------------------------------------------------------------------
// R14 — atomic order audit (src/** only).
//
// Every explicitly weakened memory order (memory_order_relaxed /
// acquire / release / acq_rel / consume, either spelling) must carry an
// adjacent `// order: <why>` justification: on the same line, or in the
// comment block immediately above the statement (the walk follows
// comment-only lines and continuation lines of a multi-line call).
// Default (seq_cst) operations need nothing — the rule exists so every
// deliberate weakening states what it publishes and why that is safe.
// ---------------------------------------------------------------------
void check_atomic_order(const std::string& rel, const LexedFile& lexed,
                        const std::vector<std::vector<Token>>& toks,
                        std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kWeak = {
      "memory_order_relaxed", "memory_order_acquire",
      "memory_order_release", "memory_order_acq_rel",
      "memory_order_consume"};
  static const std::set<std::string> kWeakShort = {
      "relaxed", "acquire", "release", "acq_rel", "consume"};
  constexpr std::string_view kTag = "order:";
  constexpr std::string_view kContinuation = ",(=&|+-*/?:<>";

  const auto tagged = [&](std::size_t li) {
    return lexed.comment[li].find(kTag) != std::string::npos;
  };

  for (std::size_t li = 0; li < toks.size(); ++li) {
    const std::vector<Token>& line = toks[li];
    std::string spelled;
    for (std::size_t t = 0; t < line.size(); ++t) {
      const Token& tok = line[t];
      if (tok.kind != Token::Kind::kIdent) continue;
      if (kWeak.count(tok.text)) {
        spelled = tok.text;
        break;
      }
      if (tok.text == "memory_order" && t + 3 < line.size() &&
          line[t + 1].text == ":" && line[t + 2].text == ":" &&
          kWeakShort.count(line[t + 3].text)) {
        spelled = "memory_order::" + line[t + 3].text;
        break;
      }
    }
    if (spelled.empty() || tagged(li)) continue;
    bool satisfied = false;
    std::size_t j = li;
    for (int steps = 0; j > 0 && steps < 8; ++steps) {
      --j;
      if (tagged(j)) {
        satisfied = true;
        break;
      }
      const std::string& prev = lexed.code[j];
      const std::size_t lastc = prev.find_last_not_of(" \t");
      if (lastc == std::string::npos) continue;  // blank or comment-only
      if (kContinuation.find(prev[lastc]) != std::string_view::npos) {
        continue;  // the statement continues across this line
      }
      break;  // a completed prior statement without a tag
    }
    if (satisfied) continue;
    diags->push_back(
        {rel, li + 1, kRuleAtomicOrder,
         "explicit '" + spelled + "' without an adjacent '// order:' "
         "comment — state what the weakened ordering publishes and why "
         "that is safe (DESIGN.md §15)"});
  }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------
struct Options {
  fs::path root = ".";
  fs::path baseline;
  fs::path write_baseline;
  fs::path graph_cache;         // phase-1 include-graph cache file
  std::vector<fs::path> paths;  // explicit files/dirs; default: the tree
};

/// Per-line suppressions, shared between the per-file rules and the
/// whole-program phase (R12 findings land on include lines of a file
/// whose allow map was collected during its own lint pass).
using AllowMap = std::map<std::size_t, std::set<std::string>>;

/// The per-file pass: every rule except R12, unfiltered, plus the
/// file's allow map. Suppression filtering happens in the driver, after
/// the whole-program findings have been merged in.
AllowMap lint_file(const fs::path& abs, const std::string& rel,
                   const fs::path& root, IwyuCache* iwyu_cache,
                   std::vector<Diagnostic>* out) {
  std::ifstream in(abs);
  if (!in) {
    out->push_back({rel, 0, kRuleHeader, "cannot open file"});
    return {};
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  const FileRole role = classify(rel);
  const LexedFile lexed = lex(lines);

  const AllowMap allow =
      collect_suppressions(lexed.comment, lexed.code, out, rel);

  std::vector<std::vector<Token>> toks(lexed.code.size());
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    toks[i] = tokenize(lexed.code[i]);
  }
  check_tokens(rel, role, toks, out);
  if (role.is_header) {
    check_header(rel, lexed.code, out);
    check_nodiscard(rel, lexed.code, out);
  }
  if (role.alloc_hot) {
    check_alloc_in_loop(rel, lexed.code, out);
  }
  if (role.span_scope) {
    check_span_coverage(rel, lexed.code, out);
  }
  if (role.in_src) {
    check_lock_discipline(rel, lexed.code, out);
    check_atomic_order(rel, lexed, toks, out);
  }
  check_iwyu(rel, lines, lexed, root, iwyu_cache, out);
  return allow;
}

// ---------------------------------------------------------------------
// Phase 1: the include graph, optionally cached. The cache is a text
// file of `rel|size|mtime|path@line;...` lines; an entry is reused only
// when size and mtime still match, so a stale cache degrades to a
// re-parse, never to wrong edges.
// ---------------------------------------------------------------------
struct GraphCacheEntry {
  std::uintmax_t size = 0;
  long long mtime = 0;
  std::vector<IncludeEdge> edges;
};

std::map<std::string, GraphCacheEntry> load_graph_cache(
    const fs::path& path) {
  std::map<std::string, GraphCacheEntry> cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string rel, size_s, mtime_s, edges_s;
    if (!std::getline(ss, rel, '|') || !std::getline(ss, size_s, '|') ||
        !std::getline(ss, mtime_s, '|')) {
      continue;
    }
    std::getline(ss, edges_s);  // may be empty: a file with no includes
    GraphCacheEntry entry;
    try {
      entry.size = std::stoull(size_s);
      entry.mtime = std::stoll(mtime_s);
    } catch (...) {
      continue;
    }
    std::stringstream es(edges_s);
    std::string edge;
    bool bad = false;
    while (std::getline(es, edge, ';')) {
      const std::size_t at = edge.rfind('@');
      if (at == std::string::npos) {
        bad = true;
        break;
      }
      try {
        entry.edges.push_back(
            {edge.substr(0, at),
             static_cast<std::size_t>(std::stoull(edge.substr(at + 1)))});
      } catch (...) {
        bad = true;
        break;
      }
    }
    if (!bad) cache.emplace(std::move(rel), std::move(entry));
  }
  return cache;
}

long long mtime_of(const fs::path& p) {
  std::error_code ec;
  const auto t = fs::last_write_time(p, ec);
  return ec ? 0 : static_cast<long long>(t.time_since_epoch().count());
}

IncludeGraph build_include_graph(
    const std::vector<std::pair<fs::path, std::string>>& files,
    const fs::path& cache_path) {
  std::map<std::string, GraphCacheEntry> cache;
  if (!cache_path.empty()) cache = load_graph_cache(cache_path);

  IncludeGraph graph;
  std::map<std::string, GraphCacheEntry> fresh;
  for (const auto& [abs, rel] : files) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(abs, ec);
    const long long mtime = mtime_of(abs);
    const auto it = cache.find(rel);
    if (!ec && it != cache.end() && it->second.size == size &&
        it->second.mtime == mtime) {
      graph[rel] = it->second.edges;
      if (!cache_path.empty()) fresh.emplace(rel, it->second);
      continue;
    }
    std::ifstream in(abs);
    if (!in) {
      graph[rel];  // present but edge-free; the lint pass reports it
      continue;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    const LexedFile lexed = lex(lines);
    std::vector<IncludeEdge> edges = extract_project_includes(lines, lexed);
    graph[rel] = edges;
    if (!cache_path.empty()) {
      fresh.emplace(rel, GraphCacheEntry{ec ? 0 : size, mtime,
                                         std::move(edges)});
    }
  }

  if (!cache_path.empty()) {
    std::ofstream out(cache_path);
    for (const auto& [rel, entry] : fresh) {
      out << rel << '|' << entry.size << '|' << entry.mtime << '|';
      bool first = true;
      for (const IncludeEdge& e : entry.edges) {
        out << (first ? "" : ";") << e.path << '@' << e.line;
        first = false;
      }
      out << '\n';
    }
  }
  return graph;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

bool excluded(const std::string& rel) {
  // Fixture snippets intentionally violate rules; the self-test lints
  // them explicitly.
  return rel.find("lint_fixtures") != std::string::npos;
}

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty() || *rel.begin() == "..")
                      ? p.generic_string()
                      : rel.generic_string();
  return s;
}

std::vector<std::pair<fs::path, std::string>> collect_files(
    const Options& opt) {
  std::vector<std::pair<fs::path, std::string>> files;  // abs, rel
  auto add_tree = [&](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file() || !lintable(e.path())) continue;
      const std::string rel = rel_path(e.path(), opt.root);
      if (excluded(rel)) continue;
      files.emplace_back(e.path(), rel);
    }
  };
  if (opt.paths.empty()) {
    for (const char* sub : {"src", "tests", "bench", "examples"}) {
      add_tree(opt.root / sub);
    }
  } else {
    for (const fs::path& p : opt.paths) {
      if (fs::is_directory(p)) {
        add_tree(p);
      } else {
        files.emplace_back(p, rel_path(p, opt.root));
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return files;
}

/// Both phases over the requested file set: per-file rules, the
/// whole-program layer DAG, then suppression filtering. Returns the
/// surviving diagnostics, sorted.
std::vector<Diagnostic> analyze(const Options& opt, std::size_t* n_files) {
  const auto files = collect_files(opt);
  if (n_files) *n_files = files.size();

  // Phase 1: the include graph (cache-aware).
  const IncludeGraph graph = build_include_graph(files, opt.graph_cache);
  std::map<std::string, std::vector<Diagnostic>> layer_diags;
  check_layer_dag(graph, &layer_diags);

  // Phase 2: per-file rules, then filter everything — including the
  // R12 findings above — through each file's allow map.
  std::vector<Diagnostic> diags;
  IwyuCache iwyu_cache;
  for (const auto& [abs, rel] : files) {
    std::vector<Diagnostic> file_diags;
    const AllowMap allow =
        lint_file(abs, rel, opt.root, &iwyu_cache, &file_diags);
    const auto lit = layer_diags.find(rel);
    if (lit != layer_diags.end()) {
      file_diags.insert(file_diags.end(), lit->second.begin(),
                        lit->second.end());
    }
    for (const Diagnostic& d : file_diags) {
      const auto it = allow.find(d.line);
      if (it != allow.end() &&
          (it->second.count("all") || it->second.count(d.rule))) {
        continue;
      }
      diags.push_back(d);
    }
  }
  std::sort(diags.begin(), diags.end());
  return diags;
}

int run(const Options& opt) {
  std::size_t n_files = 0;
  std::vector<Diagnostic> diags = analyze(opt, &n_files);

  // Baseline: `path: [rule-id]` lines grandfather existing findings.
  std::set<std::pair<std::string, std::string>> baselined;
  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline);
    if (!in) {
      std::cerr << "mpicp_lint: cannot open baseline "
                << opt.baseline.string() << '\n';
      return 2;
    }
    std::string line;
    static const std::regex entry(R"(^\s*([^#:\s]+)\s*:\s*\[([a-z\-]+)\])");
    while (std::getline(in, line)) {
      std::smatch m;
      if (std::regex_search(line, m, entry)) {
        baselined.emplace(m[1].str(), m[2].str());
      }
    }
  }

  if (!opt.write_baseline.empty()) {
    std::ofstream out(opt.write_baseline);
    out << "# mpicp_lint baseline — `path: [rule-id]` entries grandfather\n"
           "# existing findings. Keep this file empty: fix violations or\n"
           "# justify an inline allow() instead (DESIGN.md §10).\n";
    std::set<std::pair<std::string, std::string>> entries;
    for (const Diagnostic& d : diags) entries.emplace(d.file, d.rule);
    for (const auto& [file, rule] : entries) {
      out << file << ": [" << rule << "]\n";
    }
    std::cerr << "mpicp_lint: wrote " << entries.size()
              << " baseline entr" << (entries.size() == 1 ? "y" : "ies")
              << " to " << opt.write_baseline.string() << '\n';
    return 0;
  }

  std::size_t reported = 0;
  for (const Diagnostic& d : diags) {
    if (baselined.count({d.file, d.rule})) continue;
    std::cout << d.file << ':' << d.line << ": [" << d.rule << "] "
              << d.message << '\n';
    ++reported;
  }
  std::cerr << "mpicp_lint: " << n_files << " file(s), " << reported
            << " finding(s)\n";
  return reported == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// --self-test: lint the checked-in fixture trees under
// <root>/tests/lint_fixtures and compare against the expected findings
// embedded here. Standalone (no gtest), so CI can gate on the linter
// before any project library compiles; tests/test_lint.cpp asserts the
// same tables through the ctest harness.
// ---------------------------------------------------------------------
int self_test(const fs::path& root) {
  struct Expect {
    const char* file;
    std::size_t line;
    const char* rule;
  };
  struct Case {
    const char* tree;
    std::vector<Expect> expects;
  };
  const std::vector<Case> cases = {
      {"clean", {}},
      {"dirty",
       {{"src/bad_clock.cpp", 6, kRuleWallClock},
        {"src/bad_clock.cpp", 7, kRuleWallClock},
        {"src/bad_floateq.cpp", 3, kRuleFloatEq},
        {"src/bad_header.hpp", 1, kRuleHeader},
        {"src/bad_header.hpp", 3, kRuleHeader},
        {"src/bad_header.hpp", 5, kRuleHeader},
        {"src/bad_nodiscard.hpp", 6, kRuleNodiscard},
        {"src/bad_rand.cpp", 6, kRuleRand},
        {"src/bad_rand.cpp", 7, kRuleRand},
        {"src/bad_rand.cpp", 8, kRuleRand},
        {"src/bad_stdout.cpp", 6, kRuleStdout},
        {"src/bad_stdout.cpp", 7, kRuleStdout},
        {"src/bad_thread.cpp", 5, kRuleThread},
        {"src/bad_thread.cpp", 6, kRuleThread},
        {"src/bad_throw.cpp", 5, kRuleThrow}}},
      {"alloc",
       {{"src/ml/bad_alloc.cpp", 9, kRuleAllocLoop},
        {"src/ml/bad_alloc.cpp", 10, kRuleAllocLoop},
        {"src/ml/bad_alloc.cpp", 11, kRuleAllocLoop},
        {"src/ml/bad_alloc.cpp", 12, kRuleAllocLoop},
        {"src/ml/bad_alloc.cpp", 15, kRuleAllocLoop},
        {"src/ml/bad_alloc.cpp", 18, kRuleAllocLoop}}},
      {"spans", {{"src/tune/needs_span.cpp", 8, kRuleSpan}}},
      {"iwyu", {{"src/tune/consumer.cpp", 7, kRuleIwyu}}},
      {"suppressed", {}},
      {"unknown", {{"src/unknown.cpp", 3, kRuleHeader}}},
      {"layers",
       {{"src/ml/bad_up.cpp", 4, kRuleLayerDag},
        {"src/simmpi/cycle_a.hpp", 4, kRuleLayerDag}}},
      {"locks",
       {{"src/support/bad_lock.hpp", 9, kRuleLockDiscipline},
        {"src/support/bad_lock.hpp", 19, kRuleLockDiscipline}}},
      {"atomics",
       {{"src/support/bad_order.cpp", 8, kRuleAtomicOrder},
        {"src/support/bad_order.cpp", 12, kRuleAtomicOrder}}},
  };

  bool ok = true;
  for (const Case& c : cases) {
    Options opt;
    opt.root = root / "tests" / "lint_fixtures" / c.tree;
    if (!fs::exists(opt.root)) {
      std::cout << "self-test " << c.tree << ": FAIL (missing fixture tree "
                << opt.root.string() << ")\n";
      ok = false;
      continue;
    }
    const std::vector<Diagnostic> diags = analyze(opt, nullptr);
    std::set<std::string> got;
    for (const Diagnostic& d : diags) {
      got.insert(d.file + ":" + std::to_string(d.line) + ":" + d.rule);
    }
    std::set<std::string> want;
    for (const Expect& e : c.expects) {
      want.insert(std::string(e.file) + ":" + std::to_string(e.line) + ":" +
                  e.rule);
    }
    if (got == want) {
      std::cout << "self-test " << c.tree << ": PASS (" << want.size()
                << " expected finding" << (want.size() == 1 ? "" : "s")
                << ")\n";
      continue;
    }
    ok = false;
    std::cout << "self-test " << c.tree << ": FAIL\n";
    for (const std::string& g : got) {
      if (!want.count(g)) std::cout << "  unexpected: " << g << '\n';
    }
    for (const std::string& w : want) {
      if (!got.count(w)) std::cout << "  missing:    " << w << '\n';
    }
  }
  std::cout << "mpicp_lint --self-test: " << (ok ? "PASS" : "FAIL")
            << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool want_self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "mpicp_lint: " << flag << " expects a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value("--root");
    } else if (arg == "--baseline") {
      opt.baseline = value("--baseline");
    } else if (arg == "--write-baseline") {
      opt.write_baseline = value("--write-baseline");
    } else if (arg == "--graph-cache") {
      opt.graph_cache = value("--graph-cache");
    } else if (arg == "--self-test") {
      want_self_test = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : all_rules()) std::cout << r << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout <<
          "usage: mpicp_lint [--root DIR] [--baseline FILE]\n"
          "                  [--write-baseline FILE] [--graph-cache FILE]\n"
          "                  [--list-rules] [--self-test] [paths...]\n"
          "Lints src/ tests/ bench/ examples/ under --root (default: .)\n"
          "or the explicit files/directories given. Exits 1 on findings.\n"
          "--graph-cache reuses the phase-1 include graph across runs\n"
          "(entries are revalidated by size+mtime). --self-test lints\n"
          "the fixture trees under <root>/tests/lint_fixtures against\n"
          "the expected findings embedded in the binary.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mpicp_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      opt.paths.emplace_back(arg);
    }
  }
  if (want_self_test) return self_test(opt.root);
  return run(opt);
}
