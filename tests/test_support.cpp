// Unit tests for the support library (rng, stats, csv, cli, str, table).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace mpicp::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Xoshiro256 rng(11);
  int counts[5] = {0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(3.0, 2.0);
  EXPECT_NEAR(mean(xs), 3.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Xoshiro256 rng(17);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal_median(5.0, 0.3);
  EXPECT_NEAR(median(xs), 5.0, 0.15);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, PermutationIsPermutation) {
  Xoshiro256 rng(19);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (const std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine({1, 2}), hash_combine({2, 1}));
  EXPECT_EQ(hash_combine({1, 2, 3}), hash_combine({1, 2, 3}));
}

TEST(Stats, BasicMoments) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 5.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Stats, MedianUnsortedEven) {
  const std::vector<double> xs = {5, 1, 4, 2};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs = {1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), Error);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(median(std::vector<double>{}), InvalidArgument);
}

TEST(Stats, Summarize) {
  const std::vector<double> xs = {2, 4, 6, 8};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(Str, SplitTrim) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, ParseNumbers) {
  EXPECT_DOUBLE_EQ(parse_double(" 3.5 "), 3.5);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_int("1.5"), ParseError);
}

TEST(Str, FormatBytes) {
  EXPECT_EQ(format_bytes(1), "1");
  EXPECT_EQ(format_bytes(1024), "1Ki");
  EXPECT_EQ(format_bytes(4 * 1024 * 1024), "4Mi");
  EXPECT_EQ(format_bytes(1536), "1536");  // not a whole Ki multiple
}

TEST(Csv, RoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "mpicp_test_roundtrip.csv";
  CsvTable t({"a", "b"});
  t.add_row({"1", "2.5"});
  t.add_row({"3", "x"});
  write_csv(path, t);
  const CsvTable r = read_csv(path);
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.cell_int(0, r.column("a")), 1);
  EXPECT_DOUBLE_EQ(r.cell_double(0, r.column("b")), 2.5);
  EXPECT_EQ(r.cell(1, 1), "x");
  EXPECT_THROW(r.column("missing"), ParseError);
  std::filesystem::remove(path);
}

TEST(Csv, RejectsRaggedRows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Csv, RejectsMalformedFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  EXPECT_THROW(read_csv(dir / "mpicp_does_not_exist.csv"), ParseError);

  const auto ragged = dir / "mpicp_ragged.csv";
  {
    std::ofstream out(ragged);
    out << "a,b\n1,2\n3\n";
  }
  EXPECT_THROW(read_csv(ragged), ParseError);
  std::filesystem::remove(ragged);

  const auto empty = dir / "mpicp_empty.csv";
  { std::ofstream out(empty); }
  EXPECT_THROW(read_csv(empty), ParseError);
  std::filesystem::remove(empty);
}

TEST(Csv, SkipsBlankLines) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mpicp_blank_lines.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n\n3,4\n";
  }
  const CsvTable t = read_csv(path);
  EXPECT_EQ(t.num_rows(), 2u);
  std::filesystem::remove(path);
}

TEST(Cli, OptionsAndPositional) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "--beta",
                        "7",    "pos1",      "pos2"};
  CliParser cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("absent", false));
  EXPECT_EQ(cli.get("absent", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"b", "100"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  // Header, separator and two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace mpicp::support
