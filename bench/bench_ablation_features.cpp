// Ablation — feature engineering: does the derived total-process-count
// feature p = n * ppn help the per-algorithm runtime models? (The paper
// trains on (m, n, N); p is the obvious derived feature and this harness
// quantifies its effect per learner.)
#include <iostream>

#include "bench_common.hpp"
#include "tune/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());
  const auto default_logic = bench::make_default_for(ds);

  std::printf("Ablation: instance features, dataset %s\n\n",
              dataset.c_str());
  support::TextTable table({"learner", "features", "mean speedup",
                            "mean norm. runtime", "frac. optimal"});
  for (const std::string learner : {"knn", "gam", "xgboost"}) {
    for (const bool with_p : {true, false}) {
      tune::SelectorOptions opts;
      opts.learner = learner;
      opts.features.include_total_processes = with_p;
      tune::Selector selector(opts);
      bench::fit_or_warn(selector, ds, split.train_full);
      const tune::Evaluation eval =
          tune::evaluate(ds, selector, *default_logic, split.test);
      table.add_row(
          {learner, with_p ? "(log2 m, n, ppn, p)" : "(log2 m, n, ppn)",
           support::format_double(eval.summary.mean_speedup, 4),
           support::format_double(eval.summary.mean_norm_predicted, 4),
           support::format_double(eval.summary.fraction_optimal, 4)});
    }
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
