#include "tune/ruletable.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"
#include "tune/compiled_bank.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

namespace {

/// The dispatch features, identical to DecisionRules::feature_of
/// evaluated once per instance: log2 is the only one that costs
/// anything. `feat` must hold at least 3 doubles.
inline void features_of(const bench::Instance& inst, double* feat) {
  feat[0] = std::log2(
      static_cast<double>(std::max<std::uint64_t>(inst.msize, 1)));
  feat[1] = static_cast<double>(inst.nodes);
  feat[2] = static_cast<double>(inst.ppn);
}

/// Per-instance feature stride in the batched kernel: 3 live features
/// padded to 4 so the row offset is a shift, not a multiply.
constexpr std::size_t kFeatStride = 4;

/// The legacy double comparison `feature(v) < thr` is monotone
/// non-increasing in the raw instance value v (uint64 -> double
/// conversion and log2 are both monotone), so the smallest v on which
/// it turns false — found by binary search *with the exact legacy
/// transform* — is an integer bound with the same truth table:
/// `v < integer_bound(f, thr)` takes the same branch as the legacy
/// compare on every representable instance. This moves std::log2 out
/// of the dispatch path entirely, into lowering.
///
/// When the comparison holds even at UINT64_MAX (thr = +inf, which
/// only the synthetic pass-through slots use), the bound saturates:
/// `v < UINT64_MAX` diverges only at v == UINT64_MAX, and pass-through
/// slots route both children to the same leaf, so the result is still
/// identical.
std::uint64_t integer_bound(int feature, double thr) {
  const auto below = [feature, thr](std::uint64_t v) {
    const double f =
        feature == 0
            ? std::log2(static_cast<double>(std::max<std::uint64_t>(v, 1)))
            : static_cast<double>(v);
    return f < thr;
  };
  if (!below(0)) return 0;
  std::uint64_t lo = 0;  // invariant: below(lo)
  std::uint64_t hi = std::numeric_limits<std::uint64_t>::max();
  if (below(hi)) return hi;  // saturate (see above)
  while (hi - lo > 1) {      // invariant: !below(hi)
    const std::uint64_t mid = lo + (hi - lo) / 2;
    (below(mid) ? lo : hi) = mid;
  }
  return hi;
}

/// The raw integer features the integerized comparisons consume, in
/// the same order as DecisionRules::feature_of.
inline void raw_features_of(const bench::Instance& inst,
                            std::uint64_t* u) {
  u[0] = inst.msize;
  u[1] = static_cast<std::uint64_t>(inst.nodes);
  u[2] = static_cast<std::uint64_t>(inst.ppn);
}

}  // namespace

RuleTable RuleTable::lower(const DecisionRules& rules) {
  MPICP_SPAN("tune.ruletable.lower");
  const std::vector<DecisionRules::Node>& nodes = rules.nodes();
  MPICP_REQUIRE(!nodes.empty(), "lowering an unfitted rule tree");
  RuleTable table;
  const std::size_t n = nodes.size();
  table.feature_.resize(n);
  table.threshold_.resize(n);
  table.left_.resize(n);
  table.right_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DecisionRules::Node& node = nodes[i];
    if (node.feature < 0) {
      table.feature_[i] = -1;
      table.threshold_[i] = 0.0;
      table.left_[i] = node.uid;
      table.right_[i] = -1;
    } else {
      MPICP_REQUIRE(node.feature < 3, "bad rule feature index");
      MPICP_REQUIRE(node.left >= 0 && node.left < static_cast<int>(n) &&
                        node.right >= 0 && node.right < static_cast<int>(n),
                    "rule tree child index out of range");
      table.feature_[i] = static_cast<std::int8_t>(node.feature);
      table.threshold_[i] = node.threshold;
      table.left_[i] = node.left;
      table.right_[i] = node.right;
    }
  }
  metrics::counter("ruletable.lowered").inc();
  table.build_blocked();
  return table;
}

void RuleTable::build_blocked() {
  MPICP_ASSERT(!feature_.empty(), "blocking an empty rule table");
  // Integerized thresholds for the whole pool (the spill walk uses
  // them; the block below copies its prefix).
  ithr_.assign(feature_.size(), 0);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] >= 0) {
      ithr_[i] = integer_bound(feature_[i], threshold_[i]);
    }
  }
  // Blocked levels: the deepest comparison level, capped so the block
  // stays a few cache lines. Subtrees below the cap spill back into
  // the flat pool.
  int levels = 0;
  std::vector<std::pair<std::int32_t, int>> stack;
  stack.reserve(64);
  stack.push_back({0, 0});
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    if (feature_[i] < 0) continue;
    levels = std::max(levels, d + 1);
    if (levels >= block_depth_cap_) {
      levels = block_depth_cap_;
      break;
    }
    stack.push_back({left_[i], d + 1});
    stack.push_back({right_[i], d + 1});
  }
  blk_levels_ = levels;
  const std::size_t inner = (std::size_t{1} << levels) - 1;
  const std::size_t exits = std::size_t{1} << levels;
  blk_ithr_.assign(inner, 0);
  blk_feat_.assign(inner, 0);
  blk_exit_.assign(exits, 0);
  std::vector<std::int32_t> assign(inner + exits, -1);
  assign[0] = 0;
  for (std::size_t s = 0; s < inner; ++s) {
    const std::int32_t i = assign[s];
    if (feature_[i] >= 0) {
      blk_feat_[s] = feature_[i];
      blk_ithr_[s] = ithr_[i];
      assign[2 * s + 1] = left_[i];
      assign[2 * s + 2] = right_[i];
    } else {
      // Pass-through slot for a leaf shallower than the block: both
      // children route to the same leaf, so the predicated step lands
      // where the legacy walk stops regardless of the comparison.
      blk_feat_[s] = 0;
      blk_ithr_[s] = std::numeric_limits<std::uint64_t>::max();
      assign[2 * s + 1] = i;
      assign[2 * s + 2] = i;
    }
  }
  for (std::size_t e = 0; e < exits; ++e) blk_exit_[e] = assign[inner + e];
}

int RuleTable::num_leaves() const {
  int leaves = 0;
  for (const std::int8_t f : feature_) leaves += f < 0 ? 1 : 0;
  return leaves;
}

int RuleTable::uid_for(const bench::Instance& inst) const {
  MPICP_ASSERT(!feature_.empty(), "dispatch on an empty rule table");
  std::uint64_t u[3];
  raw_features_of(inst, u);
  // Predicated walk through the blocked prefix — no data-dependent
  // branches, no log2 (integerized thresholds) — then the flat pool
  // finishes any spill (a no-op when the exit slot is already a leaf).
  const std::uint32_t exit_off = (1u << blk_levels_) - 1;
  std::uint32_t slot = 0;
  for (int d = 0; d < blk_levels_; ++d) {
    slot = 2 * slot + 1 +
           static_cast<std::uint32_t>(
               !(u[blk_feat_[slot]] < blk_ithr_[slot]));
  }
  std::int32_t cur = blk_exit_[slot - exit_off];
  while (feature_[cur] >= 0) {
    cur = u[feature_[cur]] < ithr_[cur] ? left_[cur] : right_[cur];
  }
  return left_[cur];
}

int RuleTable::uid_for_legacy(const bench::Instance& inst) const {
  MPICP_ASSERT(!feature_.empty(), "dispatch on an empty rule table");
  // The PR 8 walk: same arithmetic, data-dependent branches.
  double feat[3];
  features_of(inst, feat);
  std::int32_t cur = 0;
  std::int8_t f = feature_[0];
  while (f >= 0) {
    cur = feat[f] < threshold_[cur] ? left_[cur] : right_[cur];
    f = feature_[cur];
  }
  return left_[cur];
}

void RuleTable::select_grid_into(std::span<const bench::Instance> grid,
                                 std::span<int> out) const {
  MPICP_SPAN("tune.ruletable.select_grid");
  MPICP_REQUIRE(!feature_.empty(), "dispatch on an empty rule table");
  MPICP_REQUIRE(out.size() == grid.size(),
                "rule table output buffer size mismatch");
  // Cached references: registration takes a mutex + map walk, and the
  // registry never deallocates instruments, so pay it once per process
  // instead of once per ns-scale grid call.
  static metrics::Counter& grid_requests =
      metrics::counter("ruletable.grid_requests");
  static metrics::Counter& grid_instances =
      metrics::counter("ruletable.grid_instances");
  grid_requests.inc();
  grid_instances.inc(grid.size());
  const std::size_t n = grid.size();
  const std::size_t batches = (n + kDispatchBatch - 1) / kDispatchBatch;
  const std::uint32_t exit_off = (1u << blk_levels_) - 1;
  // Batched level-synchronous dispatch: each batch walks the block one
  // level at a time across all its instances, so the independent
  // comparisons pipeline instead of serializing on one branchy walk.
  const auto dispatch_batch = [&](std::size_t bi) {
    const std::size_t lo = bi * kDispatchBatch;
    const std::size_t count = std::min(kDispatchBatch, n - lo);
    std::uint64_t u[kDispatchBatch * kFeatStride];
    std::uint32_t slot[kDispatchBatch];
    for (std::size_t b = 0; b < count; ++b) {
      raw_features_of(grid[lo + b], u + b * kFeatStride);
      slot[b] = 0;
    }
    for (int d = 0; d < blk_levels_; ++d) {
      for (std::size_t b = 0; b < count; ++b) {
        const std::uint32_t s = slot[b];
        slot[b] = 2 * s + 1 +
                  static_cast<std::uint32_t>(
                      !(u[b * kFeatStride + blk_feat_[s]] <
                        blk_ithr_[s]));
      }
    }
    for (std::size_t b = 0; b < count; ++b) {
      std::int32_t cur = blk_exit_[slot[b] - exit_off];
      const std::uint64_t* f = u + b * kFeatStride;
      while (feature_[cur] >= 0) {
        cur = f[feature_[cur]] < ithr_[cur] ? left_[cur] : right_[cur];
      }
      out[lo + b] = left_[cur];
    }
  };
  // Grids of one pool chunk (64 batches ≈ 1024 instances) or less run
  // inline: parallel_for would serialize them anyway, and skipping it
  // skips a std::function construction per ns-scale call.
  constexpr std::size_t kGridChunk = 64;
  if (batches <= kGridChunk) {
    for (std::size_t bi = 0; bi < batches; ++bi) dispatch_batch(bi);
  } else {
    support::parallel_for(batches, kGridChunk, dispatch_batch);
  }
}

std::vector<int> RuleTable::select_grid(
    std::span<const bench::Instance> grid) const {
  std::vector<int> out(grid.size(), -1);
  select_grid_into(grid, out);
  return out;
}

void RuleTable::save(const std::filesystem::path& path,
                     int version) const {
  MPICP_SPAN("tune.ruletable.save");
  MPICP_REQUIRE(!feature_.empty(), "saving an empty rule table");
  MPICP_REQUIRE(version == 1 || version == 2,
                "unsupported rule table version");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  // Envelope discipline of the model files: serialize the payload to a
  // buffer first so the header carries its exact byte count and FNV-1a
  // checksum. v2 adds the blocked-layout geometry right after the
  // agreement; the node pool payload is identical in both versions.
  std::ostringstream payload;
  ml::io::write_value(payload, agreement_);
  if (version == 2) ml::io::write_value(payload, block_depth_cap_);
  std::vector<int> features(feature_.begin(), feature_.end());
  ml::io::write_vector(payload, features);
  ml::io::write_vector(payload, threshold_);
  std::vector<int> left(left_.begin(), left_.end());
  std::vector<int> right(right_.begin(), right_.end());
  ml::io::write_vector(payload, left);
  ml::io::write_vector(payload, right);
  const std::string body = payload.str();

  std::ofstream os(path);
  if (!os) {
    MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  }
  os << "mpicp-ruletable " << version << ' ' << body.size() << ' '
     << std::hex << ml::io::fnv1a64(body) << std::dec << '\n'
     << body;
  if (!os) {
    MPICP_RAISE_ERROR("failed writing rule table to " + path.string());
  }
}

RuleTable RuleTable::load(const std::filesystem::path& path) {
  MPICP_SPAN("tune.ruletable.load");
  std::ifstream is(path);
  if (!is) {
    MPICP_RAISE_PARSE("cannot open rule table file " + path.string());
  }
  ml::io::expect_tag(is, "mpicp-ruletable");
  const int version = ml::io::read_value<int>(is);
  MPICP_CHECK_PARSE(version == 1 || version == 2,
                    "unsupported rule table version");
  const auto bytes = ml::io::read_value<std::size_t>(is);
  MPICP_CHECK_PARSE(bytes < (1u << 28), "implausible rule table size");
  std::string checksum_hex;
  if (!(is >> checksum_hex)) {
    MPICP_RAISE_PARSE("rule table: truncated header");
  }
  is.ignore(1);  // the newline terminating the header
  std::string body(bytes, '\0');
  is.read(body.data(), static_cast<std::streamsize>(bytes));
  MPICP_CHECK_PARSE(static_cast<std::size_t>(is.gcount()) == bytes,
                    "rule table: truncated payload");
  std::uint64_t expected = 0;
  try {
    expected = std::stoull(checksum_hex, nullptr, 16);
  } catch (const std::exception&) {
    MPICP_RAISE_PARSE("rule table: malformed checksum '" + checksum_hex +
                      "'");
  }
  MPICP_CHECK_PARSE(ml::io::fnv1a64(body) == expected,
                    "rule table: checksum mismatch (corrupt file)");

  std::istringstream ps(body);
  RuleTable table;
  table.agreement_ = ml::io::read_value<double>(ps);
  // v1 envelopes predate the blocked layout: re-lower with the default
  // geometry after the pool is parsed.
  if (version >= 2) {
    table.block_depth_cap_ = ml::io::read_value<int>(ps);
    MPICP_CHECK_PARSE(
        table.block_depth_cap_ >= 0 && table.block_depth_cap_ <= 20,
        "rule table: implausible block depth");
  }
  const std::vector<int> features = ml::io::read_vector<int>(ps);
  table.threshold_ = ml::io::read_vector<double>(ps);
  const std::vector<int> left = ml::io::read_vector<int>(ps);
  const std::vector<int> right = ml::io::read_vector<int>(ps);
  const std::size_t n = features.size();
  MPICP_CHECK_PARSE(n >= 1, "empty rule table file");
  MPICP_CHECK_PARSE(table.threshold_.size() == n && left.size() == n &&
                        right.size() == n,
                    "rule table array length mismatch");
  table.feature_.resize(n);
  table.left_.resize(n);
  table.right_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    MPICP_CHECK_PARSE(features[i] >= -1 && features[i] < 3,
                      "rule table: bad feature index");
    table.feature_[i] = static_cast<std::int8_t>(features[i]);
    table.left_[i] = left[i];
    table.right_[i] = right[i];
    if (features[i] >= 0) {
      const bool in_range =
          left[i] >= 0 && left[i] < static_cast<int>(n) && right[i] >= 0 &&
          right[i] < static_cast<int>(n);
      MPICP_CHECK_PARSE(in_range, "rule table: child index out of range");
    }
  }
  table.build_blocked();
  return table;
}

RuleDistillation distill(const CompiledBank& bank,
                         std::span<const bench::Instance> grid,
                         RuleParams params) {
  MPICP_SPAN("tune.distill");
  MPICP_REQUIRE(!grid.empty(), "cannot distill over an empty grid");
  // Label the grid with the bank's own batched argmin — the picks the
  // rules must reproduce.
  const std::vector<int> labels = bank.select_grid(grid);
  std::vector<LabeledInstance> points;
  points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    points.push_back({grid[i], labels[i]});
  }
  RuleDistillation out;
  out.grid_points = grid.size();
  out.rules = DecisionRules::fit(points, params);
  out.table = RuleTable::lower(out.rules);
  // Recount the agreement empirically through the *table* (not the
  // tree): the number the serving gate trusts is measured on the
  // artifact that will serve.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    hits += out.table.uid_for(grid[i]) == labels[i] ? 1 : 0;
  }
  out.agreement =
      static_cast<double>(hits) / static_cast<double>(grid.size());
  out.table.set_agreement(out.agreement);
  metrics::counter("ruletable.distilled").inc();
  return out;
}

}  // namespace mpicp::tune
