// Tests for the tuning layer: feature encoding, per-uid selector,
// evaluation accounting, tuning-file round trips, and a synthetic
// end-to-end check that the selector recovers a known best-algorithm
// structure from noisy measurements.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "collbench/defaults.hpp"
#include "support/rng.hpp"
#include "tune/config_writer.hpp"
#include "tune/evaluator.hpp"
#include "tune/selector.hpp"

namespace mpicp::tune {
namespace {

using bench::Dataset;
using bench::Instance;
using bench::Record;

/// Synthetic dataset with three "algorithms" whose (known) runtimes
/// cross over in message size and scale:
///   uid 1: latency-optimal   t = 10 log2(p) + 0.01 m
///   uid 2: bandwidth-optimal t = 2 p + 0.001 m
///   uid 3: never optimal     t = 50 + 0.01 m + p
Dataset make_synthetic(const std::vector<int>& nodes, double noise_sigma,
                       std::uint64_t seed) {
  Dataset ds("synth", sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce,
             "Hydra");
  support::Xoshiro256 rng(seed);
  const std::vector<int> ppns = {1, 2, 4, 8};
  const std::vector<std::uint64_t> msizes = {16,    256,   4096,
                                             65536, 262144, 1048576};
  for (const int n : nodes) {
    for (const int ppn : ppns) {
      const double p = n * ppn;
      for (const std::uint64_t m : msizes) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, noise_sigma)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, noise_sigma)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, noise_sigma)});
        }
      }
    }
  }
  return ds;
}

TEST(Features, EncodeInstance) {
  const FeatureOptions with_p{.include_total_processes = true};
  const FeatureOptions without_p{.include_total_processes = false};
  const auto f1 = instance_features({8, 4, 1024}, with_p);
  ASSERT_EQ(f1.size(), 4u);
  EXPECT_DOUBLE_EQ(f1[0], 10.0);  // log2(1024)
  EXPECT_DOUBLE_EQ(f1[1], 8.0);
  EXPECT_DOUBLE_EQ(f1[2], 4.0);
  EXPECT_DOUBLE_EQ(f1[3], 32.0);
  EXPECT_EQ(instance_features({8, 4, 1024}, without_p).size(), 3u);
  // msize 1 maps to log2 = 0 without blowing up.
  EXPECT_DOUBLE_EQ(instance_features({1, 1, 1}, without_p)[0], 0.0);
}

class SelectorLearners : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectorLearners, RecoversCrossoverStructure) {
  const Dataset train_ds =
      make_synthetic({2, 4, 8, 16, 32}, 0.05, 1);
  Selector selector(SelectorOptions{.learner = GetParam()});
  ASSERT_FALSE(selector.fit(train_ds, {2, 4, 16, 32}).degraded());
  EXPECT_EQ(selector.uids().size(), 3u);

  // On unseen node counts, the selector must pick the latency algorithm
  // for small messages at scale and the bandwidth algorithm for large
  // messages, and essentially never the dominated algorithm 3.
  int wrong = 0;
  int total = 0;
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 2, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{16}, std::uint64_t{4096},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const int expect = t1 <= t2 ? 1 : 2;
        const int got = selector.select_uid({n, ppn, m});
        EXPECT_NE(got, 3) << "dominated algorithm selected";
        // Allow misses near the crossover; count them.
        if (got != expect &&
            std::abs(t1 - t2) > 0.25 * std::min(t1, t2)) {
          ++wrong;
        }
        ++total;
      }
    }
  }
  // Tree ensembles predict piecewise-constant surfaces, so they place
  // the crossover less precisely between training node counts than the
  // smooth learners do (the paper sees the same effect: XGBoost loses
  // the most on the small training sets in Table IVb). Smooth learners
  // must be nearly exact; trees get a wider band.
  const std::string learner = GetParam();
  const bool tree_based = learner == "xgboost" || learner == "rf";
  EXPECT_LE(wrong, tree_based ? total / 2 : total / 10) << learner;
}

INSTANTIATE_TEST_SUITE_P(Learners, SelectorLearners,
                         ::testing::Values("xgboost", "knn", "gam", "rf",
                                           "linear"));

TEST(Selector, PredictedTimesArePositive) {
  const Dataset ds = make_synthetic({2, 4, 8}, 0.05, 2);
  Selector selector(SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 8}).degraded());
  for (const int uid : selector.uids()) {
    EXPECT_GT(selector.predicted_time_us(uid, {3, 2, 512}), 0.0);
  }
  EXPECT_THROW(selector.predicted_time_us(99, {3, 2, 512}), Error);
}

TEST(Selector, ThrowsBeforeFit) {
  Selector selector;
  EXPECT_THROW((void)selector.select_uid({2, 1, 16}), Error);
}

TEST(Evaluator, AccountingIsExact) {
  // Hand-built dataset where we can compute every metric by hand.
  Dataset ds("t", sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce,
             "Hydra");
  // Instance A (n=2): uid1=10, uid2=20. Instance B (n=3): uid1=40, uid2=8.
  ds.add({1, 2, 1, 64, 10.0});
  ds.add({2, 2, 1, 64, 20.0});
  ds.add({1, 3, 1, 64, 40.0});
  ds.add({2, 3, 1, 64, 8.0});

  struct FixedDefault final : bench::DefaultLogic {
    std::string name() const override { return "fixed"; }
    int select_uid(const Instance&) const override { return 1; }
  };
  // A "selector" trained on this toy set with knn k=1 picks the true
  // best at the training points.
  Selector selector(SelectorOptions{.learner = "knn"});
  ASSERT_FALSE(selector.fit(ds, {2, 3}).degraded());

  const Evaluation eval = evaluate(ds, selector, FixedDefault{}, {2, 3});
  ASSERT_EQ(eval.rows.size(), 2u);
  for (const EvalRow& row : eval.rows) {
    EXPECT_EQ(row.default_uid, 1);
    if (row.inst.nodes == 2) {
      EXPECT_EQ(row.best_uid, 1);
      EXPECT_DOUBLE_EQ(row.t_best_us, 10.0);
      EXPECT_DOUBLE_EQ(row.t_default_us, 10.0);
    } else {
      EXPECT_EQ(row.best_uid, 2);
      EXPECT_DOUBLE_EQ(row.t_best_us, 8.0);
      EXPECT_DOUBLE_EQ(row.t_default_us, 40.0);
      EXPECT_DOUBLE_EQ(row.norm_default(), 5.0);
    }
  }
  EXPECT_EQ(eval.summary.num_instances, 2u);
  EXPECT_GE(eval.summary.mean_speedup, 1.0);
  EXPECT_GE(eval.summary.mean_norm_default,
            eval.summary.mean_norm_predicted);
}

TEST(Evaluator, EndToEndBeatsBadDefaultOnSynthetic) {
  const Dataset ds = make_synthetic({2, 4, 8, 16, 32}, 0.05, 3);
  struct AlwaysThree final : bench::DefaultLogic {
    std::string name() const override { return "always-3"; }
    int select_uid(const Instance&) const override { return 3; }
  };
  Selector selector(SelectorOptions{.learner = "xgboost"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 16, 32}).degraded());
  const Evaluation eval = evaluate(ds, selector, AlwaysThree{}, {8});
  EXPECT_GT(eval.summary.mean_speedup, 1.2);
  EXPECT_LT(eval.summary.mean_norm_predicted, 1.5);
}

TEST(ConfigWriter, FoldsAndRoundTrips) {
  const Dataset ds = make_synthetic({2, 4, 8, 16, 32}, 0.02, 4);
  Selector selector(SelectorOptions{.learner = "knn"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 8, 16, 32}).degraded());
  const std::vector<std::uint64_t> ladder = {16,    256,    4096,
                                             65536, 262144, 1048576};
  const TuningConfig config = build_tuning_config(
      selector, sim::MpiLib::kIntelMPI, sim::Collective::kAllreduce, 16, 4,
      ladder);
  ASSERT_FALSE(config.rules.empty());
  // Rules must reproduce the selector's picks at the queried sizes.
  for (const std::uint64_t m : ladder) {
    EXPECT_EQ(config.uid_for(m), selector.select_uid({16, 4, m}))
        << "m=" << m;
  }
  const auto path =
      std::filesystem::temp_directory_path() / "mpicp_tuning_test.conf";
  write_tuning_file(path, config);
  const TuningConfig loaded = read_tuning_file(path);
  EXPECT_EQ(loaded.nodes, 16);
  EXPECT_EQ(loaded.ppn, 4);
  EXPECT_EQ(loaded.coll, sim::Collective::kAllreduce);
  ASSERT_EQ(loaded.rules.size(), config.rules.size());
  for (std::size_t i = 0; i < config.rules.size(); ++i) {
    EXPECT_EQ(loaded.rules[i].uid, config.rules[i].uid);
    EXPECT_EQ(loaded.rules[i].msize_upto, config.rules[i].msize_upto);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mpicp::tune
