#include "ml/learner.hpp"

#include "ml/forest.hpp"
#include "ml/gam.hpp"
#include "ml/gbt.hpp"
#include "ml/knn.hpp"
#include "ml/linreg.hpp"
#include <istream>
#include <ostream>

#include "support/error.hpp"

namespace mpicp::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict_one(x.row(i));
  }
  return out;
}

void save_regressor(std::ostream& os, const Regressor& model) {
  os << "regressor " << model.name() << '\n';
  model.save(os);
}

std::unique_ptr<Regressor> load_regressor(std::istream& is) {
  std::string tag;
  std::string name;
  if (!(is >> tag >> name) || tag != "regressor") {
    throw ParseError("model stream: missing regressor header");
  }
  auto model = make_regressor(name);
  model->load(is);
  return model;
}

std::unique_ptr<Regressor> make_regressor(const std::string& name) {
  if (name == "xgboost") return std::make_unique<GradientBoostedTrees>();
  if (name == "knn") return std::make_unique<KnnRegressor>();
  if (name == "gam") return std::make_unique<GamRegressor>();
  if (name == "rf") return std::make_unique<RandomForest>();
  if (name == "linear") return std::make_unique<LinearRegressor>();
  throw InvalidArgument("unknown learner '" + name + "'");
}

}  // namespace mpicp::ml
