file(REMOVE_RECURSE
  "CMakeFiles/app_speedup.dir/app_speedup.cpp.o"
  "CMakeFiles/app_speedup.dir/app_speedup.cpp.o.d"
  "app_speedup"
  "app_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
