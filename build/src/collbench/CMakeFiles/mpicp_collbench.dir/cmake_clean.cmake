file(REMOVE_RECURSE
  "CMakeFiles/mpicp_collbench.dir/dataset.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/dataset.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/defaults.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/defaults.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/generator.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/generator.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/guidelines.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/guidelines.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/noise.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/noise.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/runner.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/runner.cpp.o.d"
  "CMakeFiles/mpicp_collbench.dir/specs.cpp.o"
  "CMakeFiles/mpicp_collbench.dir/specs.cpp.o.d"
  "libmpicp_collbench.a"
  "libmpicp_collbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_collbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
