// Unit tests for the discrete-event executor: matching semantics,
// eager/rendezvous protocols, waitall, deadlock detection, data tracking.
#include <gtest/gtest.h>

#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"

namespace mpicp::sim {
namespace {

MachineDesc test_machine() {
  MachineDesc m = hydra_machine();
  m.eager_limit_bytes = 1024;
  return m;
}

ProgramSet make_progs(int p) { return ProgramSet(p); }

TEST(Executor, EagerPingHasLatencyAndOverhead) {
  const MachineDesc desc = test_machine();
  Network net(desc, 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).send(1, 1, 64);
  RankProg(progs[1], 1, 2).recv(0, 1, 64);
  const ExecResult res = exec.run(progs);
  const double expect = desc.inter.overhead_us +            // sender o
                        desc.inter.occupancy_us(64) +       // wire
                        desc.inter.latency_us +             // L
                        desc.inter.overhead_us;             // receiver o
  EXPECT_NEAR(res.finish_us[1], expect, 1e-9);
  // The eager sender finishes right after injection.
  EXPECT_NEAR(res.finish_us[0], desc.inter.overhead_us, 1e-9);
  EXPECT_EQ(res.num_messages, 1u);
  EXPECT_DOUBLE_EQ(res.makespan_us, res.finish_us[1]);
}

TEST(Executor, RendezvousSenderBlocksUntilReceiverArrives) {
  const MachineDesc desc = test_machine();
  Network net(desc, 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  const std::size_t big = 1 << 20;
  RankProg(progs[0], 0, 2).send(1, 1, big);
  {
    RankProg p1(progs[1], 1, 2);
    p1.compute(static_cast<std::uint64_t>(
        100.0 / desc.reduce_us_per_byte));  // ~100 us of local work
    p1.recv(0, 1, big);
  }
  const ExecResult res = exec.run(progs);
  // The transfer cannot start before the receiver posts at ~100 us.
  EXPECT_GT(res.finish_us[0], 100.0);
  EXPECT_GE(res.finish_us[1], res.finish_us[0] - 1e-9);
}

TEST(Executor, EagerSendDoesNotBlockOnLateReceiver) {
  const MachineDesc desc = test_machine();
  Network net(desc, 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).send(1, 1, 128);
  {
    RankProg p1(progs[1], 1, 2);
    p1.compute(static_cast<std::uint64_t>(50.0 / desc.reduce_us_per_byte));
    p1.recv(0, 1, 128);
  }
  const ExecResult res = exec.run(progs);
  EXPECT_NEAR(res.finish_us[0], desc.inter.overhead_us, 1e-9);
  // Receiver completes right after its local work (message already there).
  EXPECT_NEAR(res.finish_us[1], 50.0 + desc.inter.overhead_us, 0.5);
}

TEST(Executor, FifoMatchingPreservesOrder) {
  // Two same-tag messages must match the receives in post order; the
  // tracked payloads prove which message landed where.
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  {
    RankProg p0(progs[0], 0, 2);
    p0.send(1, 1, 8, /*block_begin=*/0, /*block_count=*/1);
    p0.send(1, 1, 8, /*block_begin=*/1, /*block_count=*/1);
  }
  {
    RankProg p1(progs[1], 1, 2);
    p1.recv(0, 1, 8, /*block_begin=*/0, /*block_count=*/1);
    p1.recv(0, 1, 8, /*block_begin=*/1, /*block_count=*/1);
  }
  DataStore store(2, 2);
  store.at(0, 0) = Block{111};
  store.at(0, 1) = Block{222};
  EXPECT_GT(exec.run(progs, &store).makespan_us, 0.0);
  EXPECT_EQ(store.at(1, 0), (Block{111}));
  EXPECT_EQ(store.at(1, 1), (Block{222}));
}

TEST(Executor, TagsSeparateMessageStreams) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  {
    RankProg p0(progs[0], 0, 2);
    p0.send(1, /*tag=*/7, 8, 0, 1);
    p0.send(1, /*tag=*/9, 8, 1, 1);
  }
  {
    RankProg p1(progs[1], 1, 2);
    // Receive the tag-9 message first even though it was sent second.
    p1.recv(0, 9, 8, 0, 1);
    p1.recv(0, 7, 8, 1, 1);
  }
  DataStore store(2, 2);
  store.at(0, 0) = Block{1};
  store.at(0, 1) = Block{2};
  EXPECT_GT(exec.run(progs, &store).makespan_us, 0.0);
  EXPECT_EQ(store.at(1, 0), (Block{2}));
  EXPECT_EQ(store.at(1, 1), (Block{1}));
}

TEST(Executor, WaitallCollectsAllRequests) {
  Network net(test_machine(), 3, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(3);
  {
    RankProg p0(progs[0], 0, 3);
    p0.irecv(1, 1, 2048);
    p0.irecv(2, 1, 2048);
    p0.waitall();
  }
  RankProg(progs[1], 1, 3).send(0, 1, 2048);
  RankProg(progs[2], 2, 3).send(0, 1, 2048);
  const ExecResult res = exec.run(progs);
  EXPECT_GT(res.finish_us[0], 0.0);
  EXPECT_EQ(res.num_messages, 2u);
}

TEST(Executor, DeadlockIsDetected) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).recv(1, 1, 8);
  RankProg(progs[1], 1, 2).recv(0, 1, 8);
  EXPECT_THROW((void)exec.run(progs), InternalError);
}

TEST(Executor, MissingWaitallIsDetected) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).isend(1, 1, 1 << 20);  // rendezvous, never waited
  RankProg(progs[1], 1, 2).recv(0, 1, 1 << 20);
  EXPECT_THROW((void)exec.run(progs), InternalError);
}

TEST(Executor, ComputeAdvancesLocalClock) {
  const MachineDesc desc = test_machine();
  Network net(desc, 1, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(1);
  RankProg(progs[0], 0, 1).compute(1000);
  const ExecResult res = exec.run(progs);
  EXPECT_NEAR(res.finish_us[0], 1000 * desc.reduce_us_per_byte, 1e-12);
}

TEST(Executor, CopyMovesBlocksLocally) {
  Network net(test_machine(), 1, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(1);
  RankProg(progs[0], 0, 1).copy(64, /*src=*/0, /*dst=*/2, /*count=*/2);
  DataStore store(1, 4);
  store.at(0, 0) = Block{7};
  store.at(0, 1) = Block{9};
  const ExecResult res = exec.run(progs, &store);
  EXPECT_EQ(store.at(0, 2), (Block{7}));
  EXPECT_EQ(store.at(0, 3), (Block{9}));
  EXPECT_GT(res.finish_us[0], 0.0);
}

TEST(Executor, CombineRecvOrsPayload) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).send(1, 1, 8, 0, 1);
  RankProg(progs[1], 1, 2).recv(0, 1, 8, 0, 1, kCombine);
  DataStore store(2, 1);
  store.at(0, 0) = contribution_of(0);
  store.at(1, 0) = contribution_of(1);
  EXPECT_GT(exec.run(progs, &store).makespan_us, 0.0);
  EXPECT_TRUE(has_all_contributions(store.at(1, 0), 2));
}

TEST(Executor, RejectsWrongProgramCount) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(1);
  EXPECT_THROW((void)exec.run(progs), InvalidArgument);
}

TEST(Executor, ZeroByteMessagesWork) {
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  RankProg(progs[0], 0, 2).send(1, 1, 0);
  RankProg(progs[1], 1, 2).recv(0, 1, 0);
  const ExecResult res = exec.run(progs);
  EXPECT_GT(res.makespan_us, 0.0);
}

TEST(Executor, ManyInFlightMessagesRecycleRecords) {
  // Smoke test that the record pool handles thousands of outstanding
  // requests without mixing them up.
  Network net(test_machine(), 2, 1);
  Executor exec(net);
  ProgramSet progs = make_progs(2);
  const int n = 5000;
  {
    RankProg p0(progs[0], 0, 2);
    for (int i = 0; i < n; ++i) p0.isend(1, 1, 64);
    p0.waitall();
  }
  {
    RankProg p1(progs[1], 1, 2);
    for (int i = 0; i < n; ++i) p1.irecv(0, 1, 64);
    p1.waitall();
  }
  const ExecResult res = exec.run(progs);
  EXPECT_EQ(res.num_messages, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace mpicp::sim
