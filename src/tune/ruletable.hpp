// Distilled rule-table serving tier (DESIGN.md §14).
//
// Open MPI's default decision logic is fast because it is branchy
// thresholds compiled into the library (Pjesivac-Grbovic et al., the
// paper's ref [8]); Hutter et al. (arXiv:1211.0906) show compact
// surrogate structures retain most of a full model's decision quality.
// This module closes that loop as a production artifact: a fitted
// selector's picks over a grid are compressed into a `DecisionRules`
// tree (tune/rulegen.hpp) and lowered into `RuleTable` — a flat SoA
// threshold structure over (log2 msize, nodes, ppn) whose dispatch is
// a handful of array reads: no model evaluation, no virtual calls, no
// allocation. It is the third serving tier next to the compiled bank
// (µs-scale argmin) and the interpreted selector, and the registry
// (tune/registry.hpp) serves it as a per-shard fast path when the
// distillation agreement clears a configurable floor.
//
// Exact equivalence is the contract: the table reproduces the tree's
// uid_for bit for bit (same thresholds, same comparisons, same
// traversal), and both match the C source `DecisionRules::to_c_code`
// emits — tests/test_ruletable.cpp compiles and executes the generated
// C to pin all three against each other on every grid point.
//
// Dispatch runs through a *blocked* branch-free layout (DESIGN.md §16):
// the first K tree levels packed level-order into one cache-line-
// aligned block walked by predicated index arithmetic, deeper subtrees
// spilling into the flat SoA pool; `select_grid_into` walks batches of
// independent instances level-by-level so their comparisons pipeline.
// The double thresholds are additionally rewritten into *integer
// bounds*: `log2(msize) < thr` is monotone in msize, so a binary
// search with the exact legacy transform finds the smallest raw value
// on which the comparison flips, and dispatch compares (msize, nodes,
// ppn) directly — no log2 in the hot path, provably the same branch on
// every possible instance. The PR 8 pointer-free walk survives as
// `uid_for_legacy`, the differential reference the blocked layout is
// pinned against.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/aligned.hpp"
#include "tune/rulegen.hpp"

namespace mpicp::tune {

class CompiledBank;

/// Flat SoA lowering of a DecisionRules tree: allocation-free ns-scale
/// dispatch, batched grid selection, checksummed persistence.
class RuleTable {
 public:
  RuleTable() = default;

  /// Lower a fitted tree into the flat form. Node order, thresholds and
  /// comparisons are preserved exactly, so uid_for is bit-identical to
  /// the tree's.
  static RuleTable lower(const DecisionRules& rules);

  bool empty() const { return feature_.empty(); }
  int num_nodes() const { return static_cast<int>(feature_.size()); }
  int num_leaves() const;

  /// Fraction of the distillation grid on which this table selects
  /// identically to the bank it was distilled from — stamped by
  /// distill() and preserved across save/load, so a serving layer can
  /// gate the fast path on fidelity. 0 when the table was lowered
  /// directly from a hand-built tree.
  double agreement() const { return agreement_; }
  void set_agreement(double agreement) { agreement_ = agreement; }

  /// Instances walked per level by the batched grid kernel.
  static constexpr std::size_t kDispatchBatch = 16;

  /// Blocked levels cap: 2^8-1 = 255 inner slots (~2 KB of thresholds)
  /// covers the default depth-8 distillation entirely, so the whole hot
  /// walk usually never leaves the block.
  static constexpr int kDefaultBlockDepthCap = 8;

  /// ns-scale dispatch through the blocked branch-free layout:
  /// predicated index steps through the packed prefix, then the flat
  /// pool finishes any spill. Never allocates and never throws on a
  /// non-empty table.
  int uid_for(const bench::Instance& inst) const;

  /// The PR 8 data-dependent walk over the flat node pool — the
  /// differential reference for the blocked layout (tests and the
  /// layout-comparison bench). Same result, branchier traversal.
  int uid_for_legacy(const bench::Instance& inst) const;

  /// Batched dispatch into a caller-owned buffer of grid.size()
  /// entries: kDispatchBatch instances walk the block level-by-level
  /// together (their comparisons pipeline), batches parallelized over
  /// the pool. Allocation-free per instance.
  void select_grid_into(std::span<const bench::Instance> grid,
                        std::span<int> out) const;

  /// Allocating convenience wrapper around select_grid_into.
  [[nodiscard]] std::vector<int> select_grid(
      std::span<const bench::Instance> grid) const;

  /// Persistence with the model-file envelope discipline: the header
  /// carries the payload byte count and FNV-1a checksum, so a truncated
  /// or bit-flipped table fails loudly at load instead of silently
  /// serving wrong rules. Version 2 (the default) records the blocked
  /// geometry; version 1 emits the PR 8 envelope byte-for-byte. Both
  /// load — v1 files re-lower their blocked form with the default
  /// geometry.
  void save(const std::filesystem::path& path) const { save(path, 2); }
  void save(const std::filesystem::path& path, int version) const;
  static RuleTable load(const std::filesystem::path& path);

 private:
  void build_blocked();

  // SoA node pool in DecisionRules order (node 0 is the root):
  // feature_[i] is 0 (log2 msize), 1 (nodes) or 2 (ppn) for an inner
  // node and -1 for a leaf; leaves store their uid in left_[i].
  std::vector<std::int8_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  double agreement_ = 0.0;

  // Blocked branch-free prefix (derived from the pool above; only the
  // geometry is serialized). Exit slots hold indices into the node
  // pool: a leaf when the path terminated inside the block, or the
  // root of a spill subtree deeper than the block. Thresholds are the
  // integerized bounds: `u < blk_ithr_` takes the same branch as the
  // legacy `feature(u) < threshold_` on every possible instance (see
  // integer_bound in ruletable.cpp); `ithr_` is the same rewrite for
  // the whole node pool, used by the spill walk.
  int block_depth_cap_ = kDefaultBlockDepthCap;
  int blk_levels_ = 0;
  support::AlignedVec<std::uint64_t> blk_ithr_;
  support::AlignedVec<std::int32_t> blk_feat_;
  support::AlignedVec<std::int32_t> blk_exit_;
  std::vector<std::uint64_t> ithr_;
};

/// Everything one distillation produces: the fitted tree, its flat
/// lowering (agreement stamped), and the fidelity account against the
/// bank that labeled the grid.
struct RuleDistillation {
  DecisionRules rules;
  RuleTable table;
  double agreement = 0.0;      ///< table picks == bank picks, fraction
  std::size_t grid_points = 0; ///< labeled training grid size
};

/// Distill a compiled bank into decision rules: label `grid` with the
/// bank's batched argmin (CompiledBank::select_grid), fit a tree on the
/// labels, lower it, and recount the table's agreement against the
/// labels empirically. Throws when the grid is empty or the bank cannot
/// serve one of its instances.
[[nodiscard]] RuleDistillation distill(const CompiledBank& bank,
                                       std::span<const bench::Instance> grid,
                                       RuleParams params = {});

}  // namespace mpicp::tune
