#include "support/rng.hpp"

#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace mpicp::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  MPICP_REQUIRE(lo <= hi, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  MPICP_REQUIRE(n > 0, "uniform_int over empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

double Xoshiro256::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
    // mpicp-lint: allow(no-float-eq) — Marsaglia polar rejects s == 0
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::lognormal_median(double median, double sigma) {
  MPICP_REQUIRE(median > 0.0, "log-normal median must be positive");
  return median * std::exp(sigma * normal());
}

std::vector<std::size_t> Xoshiro256::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[uniform_int(i)]);
  }
  return idx;
}

std::uint64_t hash_combine(std::initializer_list<std::uint64_t> values) {
  std::uint64_t h = 0x6a09e667f3bcc909ULL;  // sqrt(2) fractional bits
  for (std::uint64_t v : values) {
    SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
    h = sm.next();
  }
  return h;
}

}  // namespace mpicp::support
