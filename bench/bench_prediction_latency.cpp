// Microbenchmarks (google-benchmark) for the operational costs the
// paper discusses in §II: offline selection must answer in seconds
// (SLURM prolog), online selection would need microseconds. Also
// measures model fitting cost and the simulator's message throughput.
#include <benchmark/benchmark.h>

#include <cmath>

#include "collbench/dataset.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "support/rng.hpp"
#include "tune/selector.hpp"

namespace {

using namespace mpicp;

/// Synthetic dataset shaped like d2 (13 uids, Hydra-like grid) so the
/// microbenchmarks run without the cached CSVs.
bench::Dataset make_training_data() {
  bench::Dataset ds("synthetic", sim::MpiLib::kOpenMPI,
                    sim::Collective::kAllreduce, "Hydra");
  support::Xoshiro256 rng(99);
  const std::vector<int> nodes = {4, 8, 16, 20, 24, 32, 36};
  const std::vector<int> ppns = {1, 4, 8, 16, 32};
  const std::vector<std::uint64_t> msizes = {16,    1024,   16384,
                                             65536, 524288, 4194304};
  for (int uid = 1; uid <= 13; ++uid) {
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = n * ppn;
          const double t = 5.0 + 0.2 * uid * std::log2(p) +
                           (0.001 + 0.0002 * uid) *
                               static_cast<double>(m) / std::sqrt(p);
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.05)});
          }
        }
      }
    }
  }
  return ds;
}

const bench::Dataset& training_data() {
  static const bench::Dataset ds = make_training_data();
  return ds;
}

void BM_SelectorFit(benchmark::State& state, const char* learner) {
  const bench::Dataset& ds = training_data();
  for (auto _ : state) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    benchmark::DoNotOptimize(selector.fit(ds, ds.node_counts()));
    benchmark::DoNotOptimize(selector.uids());
  }
}
BENCHMARK_CAPTURE(BM_SelectorFit, knn, "knn")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectorFit, gam, "gam")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectorFit, xgboost, "xgboost")
    ->Unit(benchmark::kMillisecond);

void BM_SelectUid(benchmark::State& state, const char* learner) {
  const bench::Dataset& ds = training_data();
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  if (selector.fit(ds, ds.node_counts()).degraded()) {
    state.SkipWithError("selector fit degraded on synthetic data");
    return;
  }
  std::uint64_t m = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select_uid({13, 16, m}));
    m = m < (1u << 22) ? m * 2 : 1;
  }
}
BENCHMARK_CAPTURE(BM_SelectUid, knn, "knn")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SelectUid, gam, "gam")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SelectUid, xgboost, "xgboost")
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatorBcastBinomial(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const sim::MachineDesc machine = sim::hydra_machine();
  const sim::Comm comm(nodes, 16);
  sim::Network net(machine, nodes, 16);
  sim::Executor exec(net);
  const auto& cfg = sim::algorithm_configs(sim::MpiLib::kOpenMPI,
                                           sim::Collective::kBcast)
                        .at(20 + 5);  // a segmented binomial config
  std::uint64_t messages = 0;
  for (auto _ : state) {
    auto built =
        sim::build_algorithm(sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                             cfg, comm, 1u << 20, 0, false);
    messages += exec.run(built.programs).num_messages;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorBcastBinomial)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorAlltoallPairwise(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const sim::MachineDesc machine = sim::hydra_machine();
  const sim::Comm comm(nodes, 8);
  sim::Network net(machine, nodes, 8);
  sim::Executor exec(net);
  const auto& configs = sim::algorithm_configs(sim::MpiLib::kIntelMPI,
                                               sim::Collective::kAlltoall);
  const auto& cfg = configs.at(2);  // pairwise
  std::uint64_t messages = 0;
  for (auto _ : state) {
    auto built = sim::build_algorithm(sim::MpiLib::kIntelMPI,
                                      sim::Collective::kAlltoall, cfg, comm,
                                      4096, 0, false);
    messages += exec.run(built.programs).num_messages;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorAlltoallPairwise)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
