// Tree topologies used by the collective algorithms.
//
// All trees are built over *virtual ranks* 0..p-1 with vrank 0 as the
// root; callers map vranks onto real ranks (usually the rotation
// (root + v) mod p). Children are ordered largest-subtree-first, which is
// the forwarding order real implementations use to keep pipelines busy.
#pragma once

#include <vector>

namespace mpicp::sim {

struct TreeNode {
  int parent = -1;          ///< -1 for the root
  std::vector<int> children;
  int subtree_size = 1;     ///< number of vranks in this node's subtree
};

using Tree = std::vector<TreeNode>;

/// Classic binomial tree: parent(v) = v with its lowest set bit cleared.
Tree binomial_tree(int p);

/// k-nomial generalization (radix >= 2); radix 2 equals the binomial tree.
Tree knomial_tree(int p, int radix);

/// Complete binary tree with children 2v+1 / 2v+2.
Tree binary_tree(int p);

/// `nchains` chains hanging off the root; chain members are contiguous
/// vrank runs (Open MPI's chain topology).
Tree chain_tree(int p, int nchains);

/// Flat tree: every non-root vrank is a direct child of the root.
Tree flat_tree(int p);

/// Sanity helper for tests: true iff the structure is a tree rooted at 0
/// covering all p vranks, with consistent parent/child/subtree links.
bool is_valid_tree(const Tree& tree);

}  // namespace mpicp::sim
