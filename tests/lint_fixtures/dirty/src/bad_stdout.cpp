// Fixture: violates no-stdout (R4) — this path counts as library code.
#include <cstdio>
#include <iostream>

void fixture_stdout(int v) {
  std::cout << v << '\n';
  printf("%d\n", v);
}
