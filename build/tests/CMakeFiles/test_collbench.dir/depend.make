# Empty dependencies file for test_collbench.
# This may be replaced when dependencies are built.
