# Empty dependencies file for explore_algorithms.
# This may be replaced when dependencies are built.
