#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/table.hpp"

namespace mpicp::support::metrics {

namespace {

/// Relaxed fetch-min/max via CAS (atomic<double> has no fetch_min).
/// All three helpers update independent statistics: readers only need
/// eventual totals, never cross-field consistency.
void atomic_min(std::atomic<double>& target, double v) {
  // order: independent statistic (see above).
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        // order: independent statistic (see above).
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  // order: independent statistic (see above).
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        // order: independent statistic (see above).
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) {
  // order: independent statistic (see above).
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       // order: independent statistic.
                                       std::memory_order_relaxed)) {
  }
}

std::size_t bucket_index(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN
  const int exp = std::ilogb(v);
  // Bucket b covers (2^(b-1), 2^b]: an exact power of two stays in its
  // own bucket, everything above it moves one up.
  const std::size_t b = static_cast<std::size_t>(exp) +
                        (std::ldexp(1.0, exp) < v ? 1 : 0);
  return std::min<std::size_t>(b, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::observe(double v) {
  atomic_min(min_, v);
  atomic_max(max_, v);
  atomic_add(sum_, v);
  // order: independent statistics; a snapshot may straddle an observe,
  // which the summary tolerates (count/sum drift by one sample).
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  // order: independent statistic (see above).
  count_.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  // order: statistics snapshot; tolerates straddling a concurrent
  // observe (fields drift by at most the in-flight sample).
  s.count = count_.load(std::memory_order_relaxed);
  // order: statistics snapshot (see above).
  s.sum = sum_.load(std::memory_order_relaxed);
  // order: statistics snapshot (see above).
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  // order: statistics snapshot (see above).
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    // order: statistics snapshot (see above).
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    s.buckets.emplace_back(std::ldexp(1.0, static_cast<int>(b)), n);
  }
  return s;
}

void Histogram::reset() {
  // order: reset is quiesced by callers (tests/bench reps); no
  // concurrent observers need a consistent zeroing order.
  count_.store(0, std::memory_order_relaxed);
  // order: quiesced reset (see above).
  sum_.store(0.0, std::memory_order_relaxed);
  // order: quiesced reset (see above).
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  // order: quiesced reset (see above).
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  // order: quiesced reset (see above).
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

Snapshot Registry::snapshot() const {
  const MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->summary();
  }
  return snap;
}

void Registry::reset() {
  const MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// JSON number: non-finite doubles have no JSON spelling, emit null.
void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void print_metrics(std::ostream& os, const Snapshot& snapshot) {
  if (!snapshot.counters.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [name, v] : snapshot.counters) {
      table.add_row({name, std::to_string(v)});
    }
    table.print(os);
  }
  if (!snapshot.gauges.empty()) {
    TextTable table({"gauge", "value"});
    for (const auto& [name, v] : snapshot.gauges) {
      table.add_row({name, fmt(v)});
    }
    table.print(os);
  }
  if (!snapshot.histograms.empty()) {
    TextTable table({"histogram", "count", "mean", "min", "max", "sum"});
    for (const auto& [name, h] : snapshot.histograms) {
      table.add_row({name, std::to_string(h.count), fmt(h.mean()),
                     fmt(h.min), fmt(h.max), fmt(h.sum)});
    }
    table.print(os);
  }
}

void write_json(std::ostream& os, const Snapshot& snapshot) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << v;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": ";
    json_number(os, v);
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    json_number(os, h.sum);
    os << ", \"min\": ";
    json_number(os, h.min);
    os << ", \"max\": ";
    json_number(os, h.max);
    os << ", \"mean\": ";
    json_number(os, h.mean());
    os << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      json_number(os, h.buckets[i].first);
      os << ", \"count\": " << h.buckets[i].second << "}";
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace mpicp::support::metrics
