file(REMOVE_RECURSE
  "CMakeFiles/test_coll_timing.dir/test_coll_timing.cpp.o"
  "CMakeFiles/test_coll_timing.dir/test_coll_timing.cpp.o.d"
  "test_coll_timing"
  "test_coll_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
