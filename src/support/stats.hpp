// Small descriptive-statistics helpers used by the benchmarking runner
// and the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpicp::support {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Median; copies and partially sorts its input.
double median(std::span<const double> xs);

/// Linear-interpolation quantile (q in [0,1]); copies and sorts.
double quantile(std::span<const double> xs, double q);

/// Geometric mean; requires strictly positive inputs.
double geomean(std::span<const double> xs);

/// Summary bundle for one measurement series.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace mpicp::support
