#include "simmpi/coll/decision.hpp"

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::size_t kKi = 1024;

/// Find the uid of the configuration matching (alg_id, seg, param).
int uid_of(Collective coll, int alg_id, std::size_t seg, int param) {
  for (const auto& cfg :
       algorithm_configs(MpiLib::kOpenMPI, coll)) {
    if (cfg.alg_id == alg_id && cfg.seg_bytes == seg &&
        cfg.param == param) {
      return cfg.uid;
    }
  }
  MPICP_RAISE_INTERNAL("default decision refers to unknown configuration");
}

int bcast_default(int p, std::size_t m) {
  // Shape of ompi_coll_tuned_bcast_intra_dec_fixed: binomial for small
  // messages / small communicators, split-binary in the eager range,
  // segmented binomial up to ~370 KiB, pipelined algorithms beyond.
  // (Thresholds and parameters are "reasonable elsewhere": decent but
  // beatable on the simulated fabrics, as the real fixed rules are on
  // the paper's machines.)
  if (p < 4 || m < 2048) return uid_of(Collective::kBcast, 6, 0, 0);
  if (m < 16384) return uid_of(Collective::kBcast, 4, 4 * kKi, 0);
  if (m < 370728) return uid_of(Collective::kBcast, 6, 16 * kKi, 0);
  // Large messages: a single pipelined chain for small communicators,
  // a few parallel chains beyond (deep chains' fill time dominates at
  // scale — the effect behind the paper's Fig. 4 default spikes).
  if (p < 64) return uid_of(Collective::kBcast, 3, 128 * kKi, 0);
  return uid_of(Collective::kBcast, 2, 64 * kKi, 4);
}

int allreduce_default(int p, std::size_t m) {
  // Shape of the fixed allreduce rules: recursive doubling while
  // latency-bound, ring once bandwidth matters, segmented ring for very
  // large payloads.
  if (p < 4) {
    return m < 65536 ? uid_of(Collective::kAllreduce, 3, 0, 0)
                     : uid_of(Collective::kAllreduce, 6, 0, 0);
  }
  if (m < 10240) return uid_of(Collective::kAllreduce, 3, 0, 0);
  if (m < 1048576) return uid_of(Collective::kAllreduce, 4, 0, 0);
  return uid_of(Collective::kAllreduce, 5, 16 * kKi, 0);
}

int alltoall_default(int p, std::size_t m) {
  if (m < 200 && p > 12) return uid_of(Collective::kAlltoall, 3, 0, 2);
  if (m < 3000) return uid_of(Collective::kAlltoall, 1, 0, 0);
  return uid_of(Collective::kAlltoall, 2, 0, 0);
}

/// Find the Intel-registry uid of (alg_id, seg, param).
int intel_uid_of(Collective coll, int alg_id, std::size_t seg, int param) {
  for (const auto& cfg : algorithm_configs(MpiLib::kIntelMPI, coll)) {
    if (cfg.alg_id == alg_id && cfg.seg_bytes == seg &&
        cfg.param == param) {
      return cfg.uid;
    }
  }
  MPICP_RAISE_INTERNAL("default decision refers to unknown configuration");
}

/// Static threshold analogue of Intel MPI's release-to-release fallback
/// rules (used when no tuning table applies): binomial/recursive
/// doubling while latency-bound, bandwidth-optimal algorithms beyond.
int intel_static_default(Collective coll, int p, std::size_t m) {
  switch (coll) {
    case Collective::kBcast:
      if (p < 4 || m < 4096) return intel_uid_of(coll, 1, 0, 0);
      if (m < 262144) return intel_uid_of(coll, 7, 0, 8);
      return intel_uid_of(coll, 3, 0, 0);
    case Collective::kAllreduce:
      if (m < 8192) return intel_uid_of(coll, 1, 0, 0);
      if (m < 1048576) return intel_uid_of(coll, 2, 0, 0);
      return intel_uid_of(coll, 3, 0, 0);
    case Collective::kAlltoall:
      if (m < 256 && p > 8) return intel_uid_of(coll, 1, 0, 2);
      if (m < 8192) return intel_uid_of(coll, 2, 0, 0);
      return intel_uid_of(coll, 3, 0, 0);
    default: break;
  }
  MPICP_RAISE_ARG("no default decision logic for collective " +
                        to_string(coll));
}

}  // namespace

int library_default_uid(MpiLib lib, Collective coll, int p,
                        std::size_t m_bytes) {
  MPICP_SPAN("sim.default_uid");
  switch (lib) {
    case MpiLib::kOpenMPI: return openmpi_default_uid(coll, p, m_bytes);
    case MpiLib::kIntelMPI: return intel_static_default(coll, p, m_bytes);
  }
  MPICP_RAISE_ARG("no default decision logic for library " +
                        to_string(lib));
}

int openmpi_default_uid(Collective coll, int p, std::size_t m_bytes) {
  switch (coll) {
    case Collective::kBcast: return bcast_default(p, m_bytes);
    case Collective::kAllreduce: return allreduce_default(p, m_bytes);
    case Collective::kAlltoall: return alltoall_default(p, m_bytes);
    default: break;
  }
  MPICP_RAISE_ARG("no default decision logic for collective " +
                        to_string(coll));
}

}  // namespace mpicp::sim
