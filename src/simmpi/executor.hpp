// Discrete-event execution of per-rank communication programs.
//
// The executor advances every rank through its program, resolving MPI
// point-to-point matching ((source, tag) FIFO, non-overtaking), the
// eager/rendezvous protocol switch, and network resource contention via
// simnet::Network. The completion time of the collective is the maximum
// finish time over all ranks — the same "last process leaves" semantics
// ReproMPI measures with synchronized clocks.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/datacheck.hpp"
#include "simmpi/program.hpp"
#include "simnet/network.hpp"

namespace mpicp::sim {

/// Outcome of executing one ProgramSet.
struct ExecResult {
  double makespan_us = 0.0;            ///< max finish time over ranks
  std::vector<double> finish_us;       ///< per-rank finish times
  std::uint64_t num_messages = 0;      ///< point-to-point messages sent
};

/// Executes program sets against a network. Reusable across runs; each
/// run() resets network resource state.
class Executor {
 public:
  explicit Executor(Network& net) : net_(net) {}

  /// Run all rank programs to completion. If `store` is non-null, data
  /// tracking is enabled: sends snapshot blocks, receive completions
  /// apply them. Throws InternalError on deadlock (some rank blocked
  /// forever) with a diagnostic of the first stuck ranks.
  [[nodiscard]] ExecResult run(const ProgramSet& programs,
                               DataStore* store = nullptr);

 private:
  Network& net_;
};

}  // namespace mpicp::sim
