// Extension bench — online (STAR-MPI-style) vs. offline (this paper)
// selection: an application issues a stream of collective calls on a
// handful of instances; the online tuner pays exploration cost on the
// first calls, the offline selector uses its pre-trained models from
// call one. Reports cumulative communication time relative to always
// running the empirically best algorithm (oracle).
#include <iostream>

#include "bench_common.hpp"
#include "collbench/noise.hpp"
#include "support/rng.hpp"
#include "tune/evaluator.hpp"
#include "tune/online.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const int calls_per_instance = argc > 2 ? std::atoi(argv[2]) : 200;
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());
  const bench::DatasetSpec& spec = bench::dataset_spec(dataset);
  const bench::NoiseModel noise(spec.seed);
  support::Xoshiro256 rng(2024);

  // The "application": all held-out instances at one ppn, each called
  // `calls_per_instance` times.
  std::vector<bench::Instance> workload;
  for (const bench::Instance& inst : ds.instances()) {
    if (std::find(split.test.begin(), split.test.end(), inst.nodes) !=
            split.test.end() &&
        inst.ppn == ds.ppns()[ds.ppns().size() / 2]) {
      workload.push_back(inst);
    }
  }

  tune::Selector offline(tune::SelectorOptions{.learner = "gam"});
  bench::fit_or_warn(offline, ds, split.train_full);
  tune::OnlineSelector online(
      {.candidate_uids = ds.uids(), .probes_per_algorithm = 2});

  // A call of uid on inst "costs" a noisy draw around the measured time.
  const auto call_cost = [&](const bench::Instance& inst, int uid) {
    return noise.observe_us(ds.time_us(uid, inst), rng);
  };

  double total_oracle = 0.0;
  double total_online = 0.0;
  double total_offline = 0.0;
  double total_default = 0.0;
  const auto default_logic = bench::make_default_for(ds);
  for (const bench::Instance& inst : workload) {
    const int best_uid = ds.best(inst).uid;
    const int off_uid = offline.select_uid(inst);
    const int def_uid = default_logic->select_uid(inst);
    for (int call = 0; call < calls_per_instance; ++call) {
      total_oracle += call_cost(inst, best_uid);
      total_offline += call_cost(inst, off_uid);
      total_default += call_cost(inst, def_uid);
      const int on_uid = online.next_uid(inst);
      const double t = call_cost(inst, on_uid);
      online.record(inst, on_uid, t);
      total_online += t;
    }
  }

  std::printf("Online vs offline selection, dataset %s, %zu instances x "
              "%d calls\n\n",
              dataset.c_str(), workload.size(), calls_per_instance);
  support::TextTable table({"strategy", "total time [s]", "vs oracle"});
  const auto row = [&](const char* name, double total) {
    table.add_row({name, support::format_double(total * 1e-6, 5),
                   support::format_double(total / total_oracle, 4)});
  };
  row("oracle (always best)", total_oracle);
  row("offline prediction (paper)", total_offline);
  row("online probing (STAR-MPI-like)", total_online);
  row("library default", total_default);
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\n(Online probing must first try every candidate; with %zu "
      "configurations the exploration phase dominates short runs.)\n",
      ds.uids().size());
  return 0;
}
