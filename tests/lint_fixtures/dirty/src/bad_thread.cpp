// Fixture: violates no-raw-thread (R2).
#include <thread>

void fixture_thread() {
  std::thread t([] {});
  t.detach();
}
