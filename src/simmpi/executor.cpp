#include "simmpi/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

/// Record of a pending nonblocking or rendezvous operation.
struct Rec {
  double post_us = 0.0;
  double complete_us = -1.0;  // < 0: pending
  std::int32_t owner = -1;
  std::int32_t slot = -1;  // index in the owner's outstanding list
  std::int32_t next = -1;  // intrusive link in a posted-receive FIFO
  std::uint32_t bytes = 0;
  std::uint32_t block_begin = 0;
  std::uint32_t block_count = 0;
  std::uint8_t flags = kNone;
  bool is_send = false;
  std::vector<Block> payload;  // tracking: snapshot for rendezvous sends

  bool complete() const { return complete_us >= 0.0; }
};

/// A send announced at a receiver before the matching receive was posted.
struct UnexpectedMsg {
  std::int32_t src = -1;
  double arrival_us = 0.0;     // eager only: wire arrival time
  std::int32_t send_rec = -1;  // rendezvous only: the sender's record
  std::uint32_t bytes = 0;
  std::int32_t next = -1;      // intrusive FIFO link
  std::vector<Block> payload;  // tracking: eager payload snapshot
};

/// Intrusive FIFO of pool indices. Kept as a plain 8-byte value inside
/// the match maps so matching does no per-message node allocation.
struct Fifo {
  std::int32_t head = -1;
  std::int32_t tail = -1;
  bool empty() const { return head < 0; }
};

struct MatchQueues {
  // key = (src << 16) | tag
  std::unordered_map<std::uint32_t, Fifo> unexpected;
  std::unordered_map<std::uint32_t, Fifo> recvs;
};

struct RankState {
  std::size_t pc = 0;
  double time = 0.0;
  // Outstanding nonblocking requests. Slots consumed early by kWaitOne
  // are tombstoned (-1); kWaitAll sweeps and clears the list.
  std::vector<std::int32_t> outstanding;
  // Outstanding receives in posting order, for kWaitOne.
  std::deque<std::int32_t> recv_order;
  int pending = 0;             // outstanding requests not yet complete
  double outstanding_max = 0;  // latest completion among outstanding
  std::int32_t blocked_rec = -1;
  bool in_waitall = false;
  bool finished = false;

  bool blocked() const { return blocked_rec >= 0 || in_waitall; }
};

std::uint32_t match_key(int src, std::uint16_t tag) {
  return (static_cast<std::uint32_t>(src) << 16) | tag;
}

class Engine {
 public:
  Engine(Network& net, const ProgramSet& programs, DataStore* store)
      : net_(net),
        programs_(programs),
        store_(store),
        ranks_(programs.size()),
        match_(programs.size()) {}

  ExecResult run() {
    for (int r = 0; r < num_ranks(); ++r) heap_.emplace(0.0, r);
    while (!heap_.empty()) {
      const auto [t, r] = heap_.top();
      heap_.pop();
      wake(r, t);
      advance(r, t + kHorizonUs);
    }
    ExecResult result;
    result.finish_us.resize(ranks_.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (!ranks_[r].finished) report_deadlock();
      result.finish_us[r] = ranks_[r].time;
      result.makespan_us = std::max(result.makespan_us, ranks_[r].time);
    }
    result.num_messages = num_messages_;
    return result;
  }

 private:
  int num_ranks() const { return static_cast<int>(programs_.size()); }

  // ---- record pool -------------------------------------------------
  std::int32_t alloc_rec() {
    if (!free_recs_.empty()) {
      const std::int32_t idx = free_recs_.back();
      free_recs_.pop_back();
      recs_[idx] = Rec{};
      return idx;
    }
    recs_.emplace_back();
    return static_cast<std::int32_t>(recs_.size() - 1);
  }

  void free_rec(std::int32_t idx) { free_recs_.push_back(idx); }

  // ---- match FIFO plumbing -------------------------------------------
  std::int32_t alloc_unexpected() {
    if (!ufree_.empty()) {
      const std::int32_t idx = ufree_.back();
      ufree_.pop_back();
      return idx;
    }
    upool_.emplace_back();
    return static_cast<std::int32_t>(upool_.size() - 1);
  }

  void free_unexpected(std::int32_t idx) {
    upool_[idx] = UnexpectedMsg{};
    ufree_.push_back(idx);
  }

  void push_unexpected(Fifo& f, std::int32_t idx) {
    upool_[idx].next = -1;
    if (f.tail >= 0) {
      upool_[f.tail].next = idx;
    } else {
      f.head = idx;
    }
    f.tail = idx;
  }

  std::int32_t pop_unexpected(Fifo& f) {
    const std::int32_t idx = f.head;
    f.head = upool_[idx].next;
    if (f.head < 0) f.tail = -1;
    return idx;
  }

  void push_recv(Fifo& f, std::int32_t rec_idx) {
    recs_[rec_idx].next = -1;
    if (f.tail >= 0) {
      recs_[f.tail].next = rec_idx;
    } else {
      f.head = rec_idx;
    }
    f.tail = rec_idx;
  }

  std::int32_t pop_recv(Fifo& f) {
    const std::int32_t idx = f.head;
    f.head = recs_[idx].next;
    if (f.head < 0) f.tail = -1;
    return idx;
  }

  // ---- wake/blocking machinery --------------------------------------

  /// Register a freshly posted nonblocking request with its owner.
  void add_outstanding(RankState& st, std::int32_t rec_idx, bool is_recv) {
    Rec& rec = recs_[rec_idx];
    rec.slot = static_cast<std::int32_t>(st.outstanding.size());
    st.outstanding.push_back(rec_idx);
    if (is_recv) st.recv_order.push_back(rec_idx);
    if (rec.complete()) {
      st.outstanding_max = std::max(st.outstanding_max, rec.complete_us);
    } else {
      ++st.pending;
    }
  }

  /// Retire every remaining outstanding request (all complete).
  void consume_outstanding(RankState& st) {
    MPICP_ASSERT(st.pending == 0, "consuming pending requests");
    st.time = std::max(st.time, st.outstanding_max);
    for (const std::int32_t idx : st.outstanding) {
      if (idx >= 0) free_rec(idx);  // skip kWaitOne tombstones
    }
    st.outstanding.clear();
    st.recv_order.clear();
    st.outstanding_max = 0.0;
  }

  void wake(int r, double at) {
    RankState& st = ranks_[r];
    st.time = std::max(st.time, at);
    if (st.blocked_rec >= 0) {
      Rec& rec = recs_[st.blocked_rec];
      MPICP_ASSERT(rec.complete(), "woken rank's record still pending");
      st.time = std::max(st.time, rec.complete_us);
      if (rec.slot >= 0) {
        // kWaitOne target: drop it from the bookkeeping structures.
        MPICP_ASSERT(!st.recv_order.empty() &&
                         st.recv_order.front() == st.blocked_rec,
                     "waitone target is not the oldest receive");
        st.recv_order.pop_front();
        st.outstanding[rec.slot] = -1;
      }
      free_rec(st.blocked_rec);
      st.blocked_rec = -1;
    }
    if (st.in_waitall) {
      consume_outstanding(st);
      st.in_waitall = false;
    }
  }

  /// A previously pending record just completed; resume the owner if
  /// this satisfies its blocking condition.
  void notify(std::int32_t rec_idx) {
    const Rec& rec = recs_[rec_idx];
    RankState& st = ranks_[rec.owner];
    if (rec.slot >= 0) {
      --st.pending;
      st.outstanding_max = std::max(st.outstanding_max, rec.complete_us);
    }
    if (st.blocked_rec == rec_idx) {
      heap_.emplace(rec.complete_us, rec.owner);
      return;
    }
    if (st.in_waitall && st.pending == 0) {
      heap_.emplace(std::max(st.time, st.outstanding_max), rec.owner);
    }
  }

  // ---- data tracking -------------------------------------------------
  std::vector<Block> snapshot(int rank, const Op& op) const {
    if (store_ == nullptr || op.block_count == 0) return {};
    return store_->snapshot(rank, op.block_begin, op.block_count);
  }

  void apply_payload(int rank, std::uint32_t block_begin,
                     std::uint32_t block_count, std::uint8_t flags,
                     const std::vector<Block>& payload) {
    if (store_ == nullptr || block_count == 0 || payload.empty()) return;
    MPICP_ASSERT(payload.size() == block_count,
                 "send/recv block count mismatch");
    store_->apply(rank, block_begin, payload, (flags & kCombine) != 0);
  }

  // ---- rendezvous ------------------------------------------------------
  /// Both sides of a rendezvous message are known; schedule the wire
  /// transfer, complete the send record, and return the receive
  /// completion time.
  double resolve_rendezvous(std::int32_t send_rec_idx, int dst,
                            double recv_post_us) {
    Rec& srec = recs_[send_rec_idx];
    const LinkParams& lk = net_.link(srec.owner, dst);
    const double ready = std::max(srec.post_us, recv_post_us) +
                         net_.machine().rendezvous_rtt_us;
    const Transfer t =
        net_.schedule_transfer(srec.owner, dst, srec.bytes, ready);
    ++num_messages_;
    srec.complete_us = t.arrival_us;
    notify(send_rec_idx);
    return t.arrival_us + lk.overhead_us;
  }

  // ---- op execution ----------------------------------------------------

  /// Conservative time window: a rank may only execute ops while its
  /// local clock stays within this horizon of the current global event
  /// time; beyond it the rank is re-queued. This keeps network resource
  /// reservations in near-global-time order — without it, a rank that
  /// never blocks (e.g. a root flooding eager sends) would book shared
  /// NIC rails arbitrarily far into the future before its peers get to
  /// schedule causally-earlier transfers.
  static constexpr double kHorizonUs = 0.5;

  void advance(int r, double deadline) {
    RankState& st = ranks_[r];
    const std::vector<Op>& prog = programs_[r];
    while (!st.blocked() && st.pc < prog.size()) {
      if (st.time > deadline) {
        heap_.emplace(st.time, r);  // yield; resume at local time
        return;
      }
      const Op& op = prog[st.pc];
      ++st.pc;
      switch (op.kind) {
        case OpKind::kSend:
        case OpKind::kISend:
          exec_send(r, op);
          break;
        case OpKind::kRecv:
        case OpKind::kIRecv:
          exec_recv(r, op);
          break;
        case OpKind::kWaitAll:
          exec_waitall(r);
          break;
        case OpKind::kWaitOne:
          exec_waitone(r);
          break;
        case OpKind::kCompute:
          st.time += static_cast<double>(op.bytes) *
                     net_.machine().reduce_us_per_byte;
          break;
        case OpKind::kCopy: {
          st.time += net_.machine().intra.occupancy_us(op.bytes);
          if (store_ != nullptr && op.block_count > 0) {
            const auto payload =
                store_->snapshot(r, op.block_begin, op.block_count);
            store_->apply(r, static_cast<std::uint32_t>(op.peer), payload,
                          (op.flags & kCombine) != 0);
          }
          break;
        }
      }
    }
    if (st.pc >= prog.size() && !st.blocked()) {
      bool leftovers = st.pending > 0;
      for (const std::int32_t idx : st.outstanding) {
        leftovers = leftovers || idx >= 0;  // -1: consumed by kWaitOne
      }
      MPICP_ASSERT(!leftovers,
                   "rank finished with outstanding requests (missing "
                   "waitall in algorithm builder)");
      st.finished = true;
    }
  }

  void exec_send(int r, const Op& op) {
    RankState& st = ranks_[r];
    const bool blocking = op.kind == OpKind::kSend;
    const LinkParams& lk = net_.link(r, op.peer);
    st.time += lk.overhead_us;
    const bool eager = op.bytes <= net_.machine().eager_limit_bytes;
    const std::uint32_t key = match_key(r, op.tag);
    MatchQueues& mq = match_[op.peer];

    if (eager) {
      const Transfer t =
          net_.schedule_transfer(r, op.peer, op.bytes, st.time);
      ++num_messages_;
      auto rq = mq.recvs.find(key);
      if (rq != mq.recvs.end() && !rq->second.empty()) {
        const std::int32_t recv_rec = pop_recv(rq->second);
        Rec& rrec = recs_[recv_rec];
        rrec.complete_us =
            std::max(rrec.post_us, t.arrival_us) + lk.overhead_us;
        apply_payload(op.peer, rrec.block_begin, rrec.block_count,
                      rrec.flags, snapshot(r, op));
        notify(recv_rec);
      } else {
        const std::int32_t uidx = alloc_unexpected();
        UnexpectedMsg& msg = upool_[uidx];
        msg.src = r;
        msg.arrival_us = t.arrival_us;
        msg.bytes = op.bytes;
        msg.payload = snapshot(r, op);
        push_unexpected(mq.unexpected[key], uidx);
      }
      return;  // eager sends complete locally; nothing to wait for
    }

    // Rendezvous path: create a send record.
    const std::int32_t send_rec = alloc_rec();
    Rec& srec = recs_[send_rec];
    srec.owner = r;
    srec.post_us = st.time;
    srec.bytes = op.bytes;
    srec.is_send = true;
    srec.payload = snapshot(r, op);

    auto rq = mq.recvs.find(key);
    if (rq != mq.recvs.end() && !rq->second.empty()) {
      const std::int32_t recv_rec = pop_recv(rq->second);
      Rec& rrec = recs_[recv_rec];
      const double recv_complete =
          resolve_rendezvous(send_rec, op.peer, rrec.post_us);
      rrec.complete_us = recv_complete;
      apply_payload(op.peer, rrec.block_begin, rrec.block_count, rrec.flags,
                    recs_[send_rec].payload);
      notify(recv_rec);
      if (blocking) {
        st.time = std::max(st.time, recs_[send_rec].complete_us);
        free_rec(send_rec);
      } else {
        add_outstanding(st, send_rec, /*is_recv=*/false);
      }
      return;
    }

    // No receive posted yet: announce (RTS) and wait for the match.
    const std::int32_t uidx = alloc_unexpected();
    UnexpectedMsg& msg = upool_[uidx];
    msg.src = r;
    msg.send_rec = send_rec;
    msg.bytes = op.bytes;
    push_unexpected(mq.unexpected[key], uidx);
    if (blocking) {
      st.blocked_rec = send_rec;
    } else {
      add_outstanding(st, send_rec, /*is_recv=*/false);
    }
  }

  void exec_recv(int r, const Op& op) {
    RankState& st = ranks_[r];
    const bool blocking = op.kind == OpKind::kRecv;
    const LinkParams& lk = net_.link(op.peer, r);
    const std::uint32_t key = match_key(op.peer, op.tag);
    MatchQueues& mq = match_[r];

    auto uq = mq.unexpected.find(key);
    if (uq != mq.unexpected.end() && !uq->second.empty()) {
      const std::int32_t uidx = pop_unexpected(uq->second);
      const UnexpectedMsg& msg = upool_[uidx];
      double complete_us;
      if (msg.send_rec < 0) {
        // Eager: data is already in flight (or buffered at the receiver).
        complete_us = std::max(st.time, msg.arrival_us) + lk.overhead_us;
        apply_payload(r, op.block_begin, op.block_count, op.flags,
                      msg.payload);
      } else {
        complete_us = resolve_rendezvous(msg.send_rec, r, st.time);
        apply_payload(r, op.block_begin, op.block_count, op.flags,
                      recs_[msg.send_rec].payload);
      }
      free_unexpected(uidx);
      if (blocking) {
        st.time = std::max(st.time, complete_us);
      } else {
        const std::int32_t recv_rec = alloc_rec();
        Rec& rrec = recs_[recv_rec];
        rrec.owner = r;
        rrec.post_us = st.time;
        rrec.complete_us = complete_us;
        add_outstanding(st, recv_rec, /*is_recv=*/true);
      }
      return;
    }

    // Nothing matched: post the receive.
    const std::int32_t recv_rec = alloc_rec();
    Rec& rrec = recs_[recv_rec];
    rrec.owner = r;
    rrec.post_us = st.time;
    rrec.bytes = op.bytes;
    rrec.block_begin = op.block_begin;
    rrec.block_count = op.block_count;
    rrec.flags = op.flags;
    push_recv(mq.recvs[key], recv_rec);
    if (blocking) {
      st.blocked_rec = recv_rec;
    } else {
      add_outstanding(st, recv_rec, /*is_recv=*/true);
    }
  }

  void exec_waitall(int r) {
    RankState& st = ranks_[r];
    if (st.pending > 0) {
      st.in_waitall = true;
      return;
    }
    consume_outstanding(st);
  }

  void exec_waitone(int r) {
    RankState& st = ranks_[r];
    if (st.recv_order.empty()) {
      MPICP_RAISE_INTERNAL(
          "kWaitOne with no outstanding receive (algorithm builder bug)");
    }
    const std::int32_t idx = st.recv_order.front();
    Rec& rec = recs_[idx];
    if (rec.complete()) {
      st.time = std::max(st.time, rec.complete_us);
      st.recv_order.pop_front();
      st.outstanding[rec.slot] = -1;
      free_rec(idx);
    } else {
      st.blocked_rec = idx;  // wake() drops it from the bookkeeping
    }
  }

  [[noreturn]] void report_deadlock() const {
    std::ostringstream os;
    os << "simulated collective deadlocked; stuck ranks:";
    int shown = 0;
    for (std::size_t r = 0; r < ranks_.size() && shown < 8; ++r) {
      if (ranks_[r].finished) continue;
      os << " [rank " << r << " pc=" << ranks_[r].pc << '/'
         << programs_[r].size()
         << (ranks_[r].in_waitall ? " in waitall" : "")
         << (ranks_[r].blocked_rec >= 0 ? " blocked on p2p" : "") << ']';
      ++shown;
    }
    MPICP_RAISE_INTERNAL(os.str());
  }

  Network& net_;
  const ProgramSet& programs_;
  DataStore* store_;

  std::vector<RankState> ranks_;
  std::vector<MatchQueues> match_;
  std::vector<Rec> recs_;
  std::vector<std::int32_t> free_recs_;
  std::vector<UnexpectedMsg> upool_;
  std::vector<std::int32_t> ufree_;
  std::uint64_t num_messages_ = 0;

  using HeapEntry = std::pair<double, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace

ExecResult Executor::run(const ProgramSet& programs, DataStore* store) {
  MPICP_SPAN("sim.exec.run");
  MPICP_REQUIRE(static_cast<int>(programs.size()) == net_.num_ranks(),
                "program set size must equal the network's rank count");
  net_.reset();
  Engine engine(net_, programs, store);
  return engine.run();
}

}  // namespace mpicp::sim
