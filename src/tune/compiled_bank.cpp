#include "tune/compiled_bank.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "ml/io.hpp"
#include "simmpi/coll/decision.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

namespace {

/// One scratch per thread, reused across queries and banks — the only
/// mutable per-query state of the compiled serving path.
ml::FlatScratch& thread_scratch() {
  thread_local ml::FlatScratch scratch;
  return scratch;
}

/// Per-thread prediction matrix of the batched grid argmin
/// (model-major, ml::FlatBank::kTreeBatch instances wide). Grows to
/// the largest bank served on this thread and is never shrunk.
std::vector<double>& thread_batch_preds() {
  thread_local std::vector<double> preds;
  return preds;
}

}  // namespace

void CompiledBank::predict_all_into(
    const bench::Instance& inst,
    std::span<Selector::Prediction> out) const {
  MPICP_SPAN("compiled.predict_all");
  MPICP_REQUIRE(!uids_.empty(), "serving from an empty compiled bank");
  MPICP_REQUIRE(out.size() == uids_.size(),
                "prediction buffer size mismatch");
  metrics::counter("compiled.predict.calls").inc();
  metrics::counter("compiled.predict.predictions_served")
      .inc(uids_.size());
  double feat[kMaxInstanceFeatures];
  const std::size_t dim = feature_dim(features_);
  instance_features_into(inst, features_, std::span<double>(feat, dim));
  ml::FlatScratch& scratch = thread_scratch();
  bank_.begin_query(scratch);
  for (std::size_t i = 0; i < uids_.size(); ++i) {
    double t = bank_.predict_one(i, {feat, dim}, scratch);
    if (support::faultinject::active()) {
      if (const auto forced =
              support::faultinject::forced_prediction(uids_[i])) {
        t = *forced;
      }
    }
    out[i].uid = uids_[i];
    out[i].time_us = t;
    out[i].usable = std::isfinite(t) && t >= 0.0;
  }
}

std::vector<Selector::Prediction> CompiledBank::predict_all(
    const bench::Instance& inst) const {
  std::vector<Selector::Prediction> out(uids_.size());
  predict_all_into(inst, out);
  return out;
}

int CompiledBank::argmin_uid(const bench::Instance& inst) const {
  double feat[kMaxInstanceFeatures];
  const std::size_t dim = feature_dim(features_);
  instance_features_into(inst, features_, std::span<double>(feat, dim));
  ml::FlatScratch& scratch = thread_scratch();
  bank_.begin_query(scratch);
  int best_uid = -1;
  double best_time = 0.0;
  std::size_t excluded = 0;
  // Fused predict+argmin in ascending uid order: same tie-breaking and
  // the same usability screen as the interpreted argmin_usable, without
  // materializing a prediction vector.
  for (std::size_t i = 0; i < uids_.size(); ++i) {
    double t = bank_.predict_one(i, {feat, dim}, scratch);
    if (support::faultinject::active()) {
      if (const auto forced =
              support::faultinject::forced_prediction(uids_[i])) {
        t = *forced;
      }
    }
    if (!(std::isfinite(t) && t >= 0.0)) {
      ++excluded;
      continue;
    }
    if (best_uid < 0 || t < best_time) {
      best_uid = uids_[i];
      best_time = t;
    }
  }
  if (excluded > 0) {
    metrics::counter("compiled.select.argmin_excluded").inc(excluded);
  }
  return best_uid;
}

int CompiledBank::argmin_uid_cached(const bench::Instance& inst) const {
  if (!cache_enabled_) return argmin_uid(inst);
  const std::tuple<std::uint64_t, int, int> key{inst.msize, inst.nodes,
                                                inst.ppn};
  CacheState& cache = *cache_;
  {
    const support::MutexLock lock(cache.mu);
    const auto it = cache.memo.find(key);
    if (it != cache.memo.end()) {
      // order: independent statistic; readers only need eventual totals.
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("compiled.cache.hits").inc();
      return it->second;
    }
  }
  const int best = argmin_uid(inst);
  {
    const support::MutexLock lock(cache.mu);
    cache.memo.emplace(key, best);
  }
  // order: independent statistic; readers only need eventual totals.
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("compiled.cache.misses").inc();
  return best;
}

int CompiledBank::select_uid(const bench::Instance& inst) const {
  MPICP_REQUIRE(!uids_.empty(), "serving from an empty compiled bank");
  metrics::counter("compiled.select.requests").inc();
  const int best_uid = argmin_uid_cached(inst);
  MPICP_REQUIRE(best_uid > 0,
                "no usable model prediction for the instance (use "
                "select_uid_or_default for graceful degradation)");
  return best_uid;
}

int CompiledBank::select_uid_or_default(const bench::Instance& inst,
                                        sim::MpiLib lib,
                                        sim::Collective coll) const {
  metrics::counter("compiled.select.requests").inc();
  if (!uids_.empty()) {
    const int best_uid = argmin_uid_cached(inst);
    if (best_uid > 0) return best_uid;
  }
  // No usable model: behave like an untuned library run.
  metrics::counter("compiled.select.default_fallbacks").inc();
  return sim::library_default_uid(lib, coll, inst.nodes * inst.ppn,
                                  inst.msize);
}

int CompiledBank::select_uid_or_invalid(const bench::Instance& inst) const {
  if (uids_.empty()) return -1;
  metrics::counter("compiled.select.requests").inc();
  return argmin_uid_cached(inst);
}

void CompiledBank::argmin_batch(const bench::Instance* insts,
                                std::size_t count, int* out) const {
  constexpr std::size_t kBatch = ml::FlatBank::kTreeBatch;
  const std::size_t dim = feature_dim(features_);
  double feats[kBatch * kMaxInstanceFeatures];
  for (std::size_t b = 0; b < count; ++b) {
    instance_features_into(
        insts[b], features_,
        std::span<double>(feats + b * kMaxInstanceFeatures, dim));
  }
  const std::size_t num_models = uids_.size();
  std::vector<double>& preds = thread_batch_preds();
  if (preds.size() < num_models * kBatch) {
    preds.resize(num_models * kBatch);
  }
  ml::FlatScratch& scratch = thread_scratch();
  // Two passes over the bank. Non-tree models (GAM/KNN/linear/constant)
  // keep the per-instance order: begin_query stamps the slot memo per
  // query vector, so all of an instance's GAM evaluations must share
  // one query epoch. Tree ensembles have no cross-model query state and
  // go model-major through the blocked batched kernel, where the win is.
  for (std::size_t b = 0; b < count; ++b) {
    const std::span<const double> x{feats + b * kMaxInstanceFeatures, dim};
    bank_.begin_query(scratch);
    for (std::size_t i = 0; i < num_models; ++i) {
      if (bank_.is_tree_ensemble(i)) continue;
      preds[i * kBatch + b] = bank_.predict_one(i, x, scratch);
    }
  }
  for (std::size_t i = 0; i < num_models; ++i) {
    if (!bank_.is_tree_ensemble(i)) continue;
    bank_.predict_tree_batch(i, feats, kMaxInstanceFeatures, count,
                             preds.data() + i * kBatch, 1);
  }
  // Reduce in ascending model (= uid) order per instance: identical
  // usability screen and tie-breaking to argmin_uid.
  const bool faults = support::faultinject::active();
  std::size_t excluded = 0;
  for (std::size_t b = 0; b < count; ++b) {
    int best_uid = -1;
    double best_time = 0.0;
    for (std::size_t i = 0; i < num_models; ++i) {
      double t = preds[i * kBatch + b];
      if (faults) {
        if (const auto forced =
                support::faultinject::forced_prediction(uids_[i])) {
          t = *forced;
        }
      }
      if (!(std::isfinite(t) && t >= 0.0)) {
        ++excluded;
        continue;
      }
      if (best_uid < 0 || t < best_time) {
        best_uid = uids_[i];
        best_time = t;
      }
    }
    out[b] = best_uid;
  }
  if (excluded > 0) {
    metrics::counter("compiled.select.argmin_excluded").inc(excluded);
  }
}

void CompiledBank::select_grid_into(std::span<const bench::Instance> grid,
                                    std::span<int> out) const {
  MPICP_SPAN("compiled.select_grid");
  MPICP_REQUIRE(!uids_.empty(), "serving from an empty compiled bank");
  MPICP_REQUIRE(out.size() == grid.size(),
                "grid selection buffer size mismatch");
  metrics::counter("compiled.select.grid_requests").inc();
  metrics::counter("compiled.select.grid_instances").inc(grid.size());
  if (cache_enabled_) {
    // The memo is the faster tier for repeated cells; serve through it
    // per instance rather than re-scoring whole batches.
    support::parallel_for(grid.size(), 8, [&](std::size_t i) {
      out[i] = argmin_uid_cached(grid[i]);
    });
  } else {
    constexpr std::size_t kBatch = ml::FlatBank::kTreeBatch;
    const std::size_t batches = (grid.size() + kBatch - 1) / kBatch;
    // Parallelize over whole batches so each worker walks the blocked
    // layout level-by-level across kTreeBatch independent instances.
    support::parallel_for(batches, 4, [&](std::size_t blk) {
      const std::size_t lo = blk * kBatch;
      const std::size_t n = std::min(kBatch, grid.size() - lo);
      argmin_batch(grid.data() + lo, n, out.data() + lo);
    });
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    MPICP_REQUIRE(out[i] > 0,
                  "no usable model prediction for a grid instance (use "
                  "select_uid_or_default for graceful degradation)");
  }
}

std::vector<int> CompiledBank::select_grid(
    std::span<const bench::Instance> grid) const {
  std::vector<int> out(grid.size(), -1);
  select_grid_into(grid, out);
  return out;
}

std::vector<int> CompiledBank::select_grid_legacy(
    std::span<const bench::Instance> grid) const {
  MPICP_SPAN("compiled.select_grid_legacy");
  MPICP_REQUIRE(!uids_.empty(), "serving from an empty compiled bank");
  std::vector<int> out(grid.size(), -1);
  // The PR 8 shape: per-instance fused predict+argmin over the
  // pointer-free layout, parallelized over instances.
  support::parallel_for(grid.size(), 8, [&](std::size_t g) {
    double feat[kMaxInstanceFeatures];
    const std::size_t dim = feature_dim(features_);
    instance_features_into(grid[g], features_,
                           std::span<double>(feat, dim));
    ml::FlatScratch& scratch = thread_scratch();
    bank_.begin_query(scratch);
    int best_uid = -1;
    double best_time = 0.0;
    for (std::size_t i = 0; i < uids_.size(); ++i) {
      double t = bank_.predict_one_legacy(i, {feat, dim}, scratch);
      if (support::faultinject::active()) {
        if (const auto forced =
                support::faultinject::forced_prediction(uids_[i])) {
          t = *forced;
        }
      }
      if (!(std::isfinite(t) && t >= 0.0)) continue;
      if (best_uid < 0 || t < best_time) {
        best_uid = uids_[i];
        best_time = t;
      }
    }
    MPICP_REQUIRE(best_uid > 0,
                  "no usable model prediction for a grid instance (use "
                  "select_uid_or_default for graceful degradation)");
    out[g] = best_uid;
  });
  return out;
}

void CompiledBank::set_cache_enabled(bool enabled) {
  CacheState& cache = *cache_;
  const support::MutexLock lock(cache.mu);
  cache_enabled_ = enabled;
  cache.memo.clear();
  // order: quiesced reconfiguration; counters are independent stats.
  cache.hits.store(0, std::memory_order_relaxed);
  // order: quiesced reconfiguration; counters are independent stats.
  cache.misses.store(0, std::memory_order_relaxed);
}

CompiledBank::CacheStats CompiledBank::cache_stats() const {
  // order: independent statistics snapshot; may straddle a concurrent
  // selection by one query, which callers tolerate.
  return {cache_->hits.load(std::memory_order_relaxed),
          // order: independent statistics snapshot (see above).
          cache_->misses.load(std::memory_order_relaxed)};
}

void CompiledBank::save(const std::filesystem::path& path,
                        int version) const {
  MPICP_REQUIRE(!uids_.empty(), "saving an empty compiled bank");
  MPICP_REQUIRE(version == 1 || version == 2,
                "unsupported compiled bank save version");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) {
    MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  }
  os << "mpicp-compiled-bank " << version << '\n';
  os << (features_.include_total_processes ? 1 : 0) << '\n';
  ml::io::write_vector(os, uids_);
  // The nested flatbank envelope carries the blocked-layout geometry in
  // v2; v1 reproduces the PR 5 file byte-for-byte.
  bank_.save(os, version);
  if (!os) {
    MPICP_RAISE_ERROR("failed writing compiled bank to " + path.string());
  }
}

CompiledBank CompiledBank::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    MPICP_RAISE_PARSE("cannot open compiled bank file " + path.string());
  }
  ml::io::expect_tag(is, "mpicp-compiled-bank");
  const int version = ml::io::read_value<int>(is);
  MPICP_CHECK_PARSE(version == 1 || version == 2,
                    "unsupported compiled bank version");
  CompiledBank bank;
  bank.features_.include_total_processes =
      ml::io::read_value<int>(is) != 0;
  bank.uids_ = ml::io::read_vector<int>(is);
  bank.bank_.load(is);
  MPICP_CHECK_PARSE(bank.uids_.size() == bank.bank_.size(),
                    "compiled bank uid/model count mismatch");
  MPICP_CHECK_PARSE(!bank.uids_.empty(), "empty compiled bank file");
  return bank;
}

}  // namespace mpicp::tune
