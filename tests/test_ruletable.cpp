// Differential fidelity harness for the distilled rule-table serving
// tier (tune/ruletable.hpp): the fitted DecisionRules tree, its flat
// RuleTable lowering and the *compiled and executed* output of
// DecisionRules::to_c_code must agree on every distillation grid point
// and on randomized off-grid instances — for every learner, at thread
// counts 1 and 4, and through the table's save/load round trip. The
// registry's serving-tier plumbing (attach, fallback, auto-drop on hot
// swap) is pinned here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/registry.hpp"
#include "tune/ruletable.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

/// Seeded synthetic dataset: 3-6 algorithms with distinct random cost
/// models over a random grid (same recipe as the compiled-bank suite).
bench::Dataset random_dataset(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  bench::Dataset ds("ruletable", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  const int num_uids = 3 + static_cast<int>(rng.uniform_int(4));
  const std::vector<int> nodes = {2, 4, 8, 16};
  const std::vector<int> ppns = {1, 1 + static_cast<int>(rng.uniform_int(8))};
  const std::vector<std::uint64_t> msizes = {
      std::uint64_t{1} << rng.uniform_int(8),
      std::uint64_t{1} << (8 + rng.uniform_int(8)),
      std::uint64_t{1} << (16 + rng.uniform_int(6))};
  for (int uid = 1; uid <= num_uids; ++uid) {
    const double a = rng.uniform(1.0, 50.0);
    const double b = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(1e-4, 1e-2);
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = static_cast<double>(n) * ppn;
          const double t = a * std::log2(p + 1) + b * p +
                           c * static_cast<double>(m) + 1.0;
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.08)});
          }
        }
      }
    }
  }
  return ds;
}

/// Randomized off-grid probes, including non-power-of-two message sizes
/// (the boundary-exactness cases for the emitted integer comparisons).
std::vector<bench::Instance> random_instances(std::uint64_t seed,
                                              int count) {
  support::Xoshiro256 rng(seed);
  std::vector<bench::Instance> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t base = std::uint64_t{1} << rng.uniform_int(22);
    out.push_back({1 + static_cast<int>(rng.uniform_int(64)),
                   1 + static_cast<int>(rng.uniform_int(16)),
                   base + rng.uniform_int(base)});
  }
  return out;
}

constexpr const char* kAllLearners[] = {"xgboost", "rf",     "knn",
                                        "gam",     "linear", "median"};

/// Compile `to_c_code` output with the system C compiler and execute it
/// on `instances` via a scanf/printf harness; nullopt when no working
/// compiler is on PATH (the caller skips, never passes vacuously).
std::optional<std::vector<int>> run_generated_c(
    const std::string& c_source, const std::string& function_name,
    const std::vector<bench::Instance>& instances, const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / ("mpicp_rulec_" + tag);
  fs::create_directories(dir);
  const fs::path src = dir / "rules.c";
  const fs::path bin = dir / "rules_bin";
  const fs::path input = dir / "input.txt";
  const fs::path output = dir / "output.txt";
  {
    std::ofstream os(src);
    os << "#include <stdio.h>\n\n"
       << c_source << "\n"
       << "int main(void) {\n"
       << "  unsigned long long msize; int nodes, ppn;\n"
       << "  while (scanf(\"%llu %d %d\", &msize, &nodes, &ppn) == 3) {\n"
       << "    printf(\"%d\\n\", " << function_name
       << "(msize, nodes, ppn));\n"
       << "  }\n"
       << "  return 0;\n"
       << "}\n";
  }
  {
    std::ofstream os(input);
    for (const bench::Instance& inst : instances) {
      os << inst.msize << ' ' << inst.nodes << ' ' << inst.ppn << '\n';
    }
  }
  const std::string compile = "cc -O1 -o '" + bin.string() + "' '" +
                              src.string() + "' 2>/dev/null";
  if (std::system(compile.c_str()) != 0) return std::nullopt;
  const std::string run = "'" + bin.string() + "' < '" + input.string() +
                          "' > '" + output.string() + "'";
  if (std::system(run.c_str()) != 0) return std::nullopt;
  std::ifstream is(output);
  std::vector<int> uids;
  uids.reserve(instances.size());
  int uid = 0;
  while (is >> uid) uids.push_back(uid);
  fs::remove_all(dir);
  if (uids.size() != instances.size()) return std::nullopt;
  return uids;
}

// ---- tree == table == executed C, all learners, both thread counts -------

TEST(RuleTableDifferential, TreeTableAndGeneratedCAgreeEverywhere) {
  const bench::Dataset ds = random_dataset(21);
  const std::vector<bench::Instance> grid = ds.instances();
  const std::vector<bench::Instance> off_grid = random_instances(77, 64);
  std::vector<bench::Instance> probes = grid;
  probes.insert(probes.end(), off_grid.begin(), off_grid.end());

  for (const char* learner : kAllLearners) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u)
        << learner;
    const tune::RuleDistillation dist =
        selector.distill(grid, {.max_depth = 32});

    // An uncapped tree on a label-distinct grid reproduces the bank.
    EXPECT_EQ(dist.agreement, 1.0) << learner;
    EXPECT_EQ(dist.table.agreement(), dist.agreement) << learner;
    EXPECT_EQ(dist.table.num_nodes(), dist.rules.num_nodes()) << learner;
    EXPECT_EQ(dist.table.num_leaves(), dist.rules.num_leaves()) << learner;

    // Save/load round trip: the served table is the loaded one.
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        (std::string("mpicp_ruletable_") + learner + ".txt");
    dist.table.save(path);
    const tune::RuleTable loaded = tune::RuleTable::load(path);
    std::filesystem::remove(path);
    EXPECT_EQ(loaded.agreement(), dist.table.agreement()) << learner;
    ASSERT_EQ(loaded.num_nodes(), dist.table.num_nodes()) << learner;

    for (const int threads : {1, 4}) {
      support::ScopedThreads scoped(threads);
      for (const bench::Instance& inst : probes) {
        const int tree_uid = dist.rules.uid_for(inst);
        ASSERT_EQ(dist.table.uid_for(inst), tree_uid)
            << learner << " @" << threads << " threads, m=" << inst.msize
            << " n=" << inst.nodes << " ppn=" << inst.ppn;
        ASSERT_EQ(loaded.uid_for(inst), tree_uid)
            << learner << " (loaded) @" << threads << " threads";
      }
      // The batched path agrees with per-instance dispatch.
      const std::vector<int> batched = dist.table.select_grid(probes);
      ASSERT_EQ(batched.size(), probes.size());
      for (std::size_t i = 0; i < probes.size(); ++i) {
        ASSERT_EQ(batched[i], dist.rules.uid_for(probes[i]))
            << learner << " grid[" << i << "] @" << threads;
      }
    }

    // The emitted C, compiled and executed, is the third equal voice.
    const std::string fn = std::string("mpicp_rules_") + learner;
    const auto executed =
        run_generated_c(dist.rules.to_c_code(fn), fn, probes, learner);
    if (!executed.has_value()) {
      GTEST_SKIP() << "no working C compiler on PATH";
    }
    for (std::size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ((*executed)[i], dist.rules.uid_for(probes[i]))
          << learner << " generated C diverges at m=" << probes[i].msize
          << " n=" << probes[i].nodes << " ppn=" << probes[i].ppn;
    }
  }
}

// ---- blocked layout vs legacy walk, both envelope versions ---------------

TEST(RuleTableBlocked, BlockedBatchedAndBothEnvelopesMatchLegacyWalk) {
  const bench::Dataset ds = random_dataset(29);
  const std::vector<bench::Instance> grid = ds.instances();
  std::vector<bench::Instance> probes = grid;
  const std::vector<bench::Instance> off_grid = random_instances(101, 96);
  probes.insert(probes.end(), off_grid.begin(), off_grid.end());

  for (const char* learner : kAllLearners) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u)
        << learner;
    const tune::RuleDistillation dist =
        selector.distill(grid, {.max_depth = 32});
    const tune::RuleTable& table = dist.table;

    // Both envelope versions load and re-lower the blocked form: v1 is
    // the PR 8 format byte-for-byte, v2 carries the blocked geometry.
    namespace fs = std::filesystem;
    const fs::path p1 = fs::temp_directory_path() /
                        (std::string("mpicp_rt_v1_") + learner + ".txt");
    const fs::path p2 = fs::temp_directory_path() /
                        (std::string("mpicp_rt_v2_") + learner + ".txt");
    table.save(p1, 1);
    table.save(p2, 2);
    const tune::RuleTable v1 = tune::RuleTable::load(p1);
    const tune::RuleTable v2 = tune::RuleTable::load(p2);
    fs::remove(p1);
    fs::remove(p2);
    EXPECT_EQ(v2.agreement(), table.agreement()) << learner;

    std::vector<int> batched(probes.size(), 0);
    for (const int threads : {1, 4}) {
      support::ScopedThreads scoped(threads);
      table.select_grid_into(probes, batched);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const int legacy = table.uid_for_legacy(probes[i]);
        ASSERT_EQ(table.uid_for(probes[i]), legacy)
            << learner << " blocked walk @" << threads << " threads, m="
            << probes[i].msize << " n=" << probes[i].nodes
            << " ppn=" << probes[i].ppn;
        ASSERT_EQ(batched[i], legacy)
            << learner << " batched dispatch @" << threads << " threads";
        ASSERT_EQ(v1.uid_for(probes[i]), legacy)
            << learner << " v1 envelope @" << threads << " threads";
        ASSERT_EQ(v2.uid_for(probes[i]), legacy)
            << learner << " v2 envelope @" << threads << " threads";
      }
    }
  }
}

// ---- persistence contracts -----------------------------------------------

TEST(RuleTable, LoadRejectsCorruptAndTruncatedFiles) {
  const bench::Dataset ds = random_dataset(5);
  tune::Selector selector(tune::SelectorOptions{.learner = "knn"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  const tune::RuleDistillation dist = selector.distill(ds.instances());

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "mpicp_ruletable_corrupt.txt";
  dist.table.save(path);
  std::string contents;
  {
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    contents = ss.str();
  }
  {
    // Flip one payload byte: the checksum must catch it.
    std::string corrupt = contents;
    corrupt[corrupt.size() - 2] ^= 0x01;
    std::ofstream os(path);
    os << corrupt;
  }
  EXPECT_THROW((void)tune::RuleTable::load(path), ParseError);
  {
    // Drop the tail: the byte count must catch it.
    std::ofstream os(path);
    os << contents.substr(0, contents.size() / 2);
  }
  EXPECT_THROW((void)tune::RuleTable::load(path), ParseError);
  std::filesystem::remove(path);
}

TEST(RuleTable, EmptyTableContracts) {
  const tune::RuleTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_THROW(
      table.save(std::filesystem::temp_directory_path() / "mpicp_rt.txt"),
      std::exception);
  const std::vector<bench::Instance> grid = {{4, 4, 1024}};
  EXPECT_THROW((void)table.select_grid(grid), std::exception);
}

// ---- registry serving-tier plumbing --------------------------------------

TEST(RegistryRules, DistillAttachServeAndDropOnSwap) {
  const bench::Dataset ds = random_dataset(13);
  const std::vector<bench::Instance> grid = ds.instances();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  auto bank = std::make_shared<const tune::CompiledBank>(selector.compile());

  tune::BankRegistry registry;
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kNone);
  (void)registry.publish(key, bank);
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kCompiled);

  // Uncapped depth on a distinct grid: agreement 1.0 clears any floor.
  const auto outcome =
      registry.distill_and_publish(key, grid, {.max_depth = 32});
  ASSERT_TRUE(outcome.published) << outcome.error;
  EXPECT_EQ(outcome.agreement, 1.0);
  EXPECT_EQ(outcome.version, registry.version(key));
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kRules);
  ASSERT_NE(registry.lookup_rules(key), nullptr);

  // Selections now come from the table — and equal the bank's picks.
  const auto stats0 = registry.shard_stats();
  for (const bench::Instance& inst : grid) {
    EXPECT_EQ(registry.select_uid(key, inst), bank->select_uid(inst));
  }
  std::uint64_t rule_selections = 0;
  for (const auto& s : registry.shard_stats()) {
    rule_selections += s.rule_selections;
  }
  for (const auto& s : stats0) rule_selections -= s.rule_selections;
  EXPECT_EQ(rule_selections, grid.size());

  // A hot swap of a fresh bank drops the table: the rules described the
  // outgoing bank.
  (void)registry.publish(key, bank);
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kCompiled);
  EXPECT_EQ(registry.lookup_rules(key), nullptr);
}

TEST(RegistryRules, AgreementFloorRejectsLowFidelityTables) {
  const bench::Dataset ds = random_dataset(13);
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  auto bank = std::make_shared<const tune::CompiledBank>(selector.compile());

  tune::BankRegistry registry({.rule_agreement_floor = 1.01});
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  (void)registry.publish(key, bank);
  const auto outcome = registry.distill_and_publish(key, ds.instances());
  EXPECT_FALSE(outcome.published);
  EXPECT_TRUE(outcome.rejected);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kCompiled);
}

TEST(RegistryRules, PublishRulesRefusesStaleVersionAndMissingKey) {
  const bench::Dataset ds = random_dataset(13);
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  auto bank = std::make_shared<const tune::CompiledBank>(selector.compile());
  const tune::RuleDistillation dist = selector.distill(ds.instances());
  auto table = std::make_shared<const tune::RuleTable>(dist.table);

  tune::BankRegistry registry;
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  EXPECT_EQ(registry.publish_rules(key, table), 0u);  // no bank yet

  const std::uint64_t v1 = registry.publish(key, bank);
  const std::uint64_t v2 = registry.publish(key, bank);  // hot swap
  EXPECT_EQ(registry.publish_rules(key, table, v1), 0u);  // stale
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kCompiled);
  EXPECT_EQ(registry.publish_rules(key, table, v2), v2);
  EXPECT_EQ(registry.tier(key), tune::ServingTier::kRules);
}

}  // namespace
}  // namespace mpicp
