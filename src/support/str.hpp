// String helpers (split/trim/format) used by CSV, CLI and table printing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mpicp::support {

std::vector<std::string> split(std::string_view s, char sep);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers that throw mpicp::ParseError with context on failure.
double parse_double(std::string_view s);
std::int64_t parse_int(std::string_view s);

/// Render a byte count as a compact human-readable string (e.g. "64Ki").
std::string format_bytes(std::uint64_t bytes);

/// Fixed-precision double without trailing noise (for CSV/tables).
std::string format_double(double v, int precision = 6);

/// Join a list of strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace mpicp::support
