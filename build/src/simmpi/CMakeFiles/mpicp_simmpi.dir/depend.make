# Empty dependencies file for mpicp_simmpi.
# This may be replaced when dependencies are built.
