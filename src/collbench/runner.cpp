#include "collbench/runner.hpp"

#include <algorithm>

#include "simmpi/coll/types.hpp"
#include "simmpi/executor.hpp"

namespace mpicp::bench {

RunnerResult run_benchmark(sim::Network& net, sim::MpiLib lib,
                           sim::Collective coll, const sim::AlgoConfig& cfg,
                           std::uint64_t msize, const NoiseModel& noise,
                           const RunnerBudget& budget,
                           support::Xoshiro256& rng) {
  MPICP_REQUIRE(budget.max_reps >= 1 && budget.budget_us > 0.0,
                "empty benchmark budget");
  const sim::Comm comm(net.num_nodes(), net.ppn());
  sim::BuiltCollective built = sim::build_algorithm(
      lib, coll, cfg, comm, msize, /*root=*/0, /*tracking=*/false);
  sim::Executor exec(net);
  RunnerResult result;
  result.des_time_us = exec.run(built.programs).makespan_us;
  result.true_time_us = noise.true_time_us(
      result.des_time_us, static_cast<std::uint64_t>(coll), cfg.uid,
      net.num_nodes(), net.ppn(), msize);

  // Budget rule (ReproMPI): stop after max_reps observations or when the
  // accumulated measured time exceeds the budget, whichever is first.
  // At least one observation is always taken.
  double spent = 0.0;
  for (int rep = 0; rep < budget.max_reps; ++rep) {
    const double obs = noise.observe_us(result.true_time_us, rng);
    result.observations_us.push_back(obs);
    spent += obs;
    if (spent >= budget.budget_us) break;
  }
  return result;
}

}  // namespace mpicp::bench
