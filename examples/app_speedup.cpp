// Scenario: end-to-end application impact of collective auto-tuning.
//
// The paper's introduction motivates tuning with applications built on
// collectives. This example models a simple iterative solver on the
// simulated cluster — each iteration performs local compute, a halo-ish
// alltoall, and a convergence allreduce — and compares the communication
// time per iteration under (a) the library default algorithms, (b) the
// ML-selected algorithms, and (c) the per-instance optimum.
//
// The solver's communication: a small convergence allreduce plus a
// broadcast of updated coefficients each iteration (trained from the
// Open MPI Hydra datasets d2 / d1).
//
// Usage:
//   app_speedup [--nodes=27] [--ppn=16] [--iters=100]
//               [--allreduce-bytes=8] [--bcast-bytes=16384]
#include <cmath>
#include <cstdio>

#include "collbench/defaults.hpp"
#include "collbench/generator.hpp"
#include "collbench/specs.hpp"
#include "support/cli.hpp"
#include "tune/selector.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 27));
  const int ppn = static_cast<int>(cli.get_int("ppn", 16));
  const int iters = static_cast<int>(cli.get_int("iters", 100));
  const std::uint64_t ar_bytes =
      static_cast<std::uint64_t>(cli.get_int("allreduce-bytes", 8));
  const std::uint64_t bc_bytes =
      static_cast<std::uint64_t>(cli.get_int("bcast-bytes", 16384));

  // Training data: the Open-MPI-modeled Hydra datasets cover both
  // collectives the app uses.
  std::printf("loading training datasets d2 (allreduce) and d1 "
              "(bcast) ...\n");
  const auto dir = bench::default_data_dir();
  const bench::Dataset ds_ar =
      bench::load_or_generate(bench::dataset_spec("d2"), dir);
  const bench::Dataset ds_a2a =
      bench::load_or_generate(bench::dataset_spec("d1"), dir);

  const bench::NodeSplit split = bench::node_split("Hydra");
  tune::Selector sel_ar(tune::SelectorOptions{.learner = "gam"});
  const bool ar_degraded = sel_ar.fit(ds_ar, split.train_full).degraded();
  tune::Selector sel_a2a(tune::SelectorOptions{.learner = "gam"});
  const bool a2a_degraded =
      sel_a2a.fit(ds_a2a, split.train_full).degraded();
  if (ar_degraded || a2a_degraded) {
    std::printf("warning: model-bank fit degraded; speedups may be "
                "conservative\n");
  }

  // Scoring uses the measured dataset, so snap the app's message sizes
  // to the nearest benchmarked grid size (log scale).
  const auto snap = [](const bench::Dataset& ds, std::uint64_t m) {
    std::uint64_t best = ds.msizes().front();
    double best_d = 1e300;
    for (const std::uint64_t g : ds.msizes()) {
      const double d = std::abs(std::log2(static_cast<double>(g)) -
                                std::log2(static_cast<double>(m)));
      if (d < best_d) {
        best_d = d;
        best = g;
      }
    }
    return best;
  };
  const bench::Instance inst_ar{nodes, ppn, snap(ds_ar, ar_bytes)};
  const bench::Instance inst_a2a{nodes, ppn, snap(ds_a2a, bc_bytes)};
  const auto def_ar = bench::make_default_for(ds_ar);
  const auto def_a2a = bench::make_default_for(ds_a2a);

  const auto per_iter = [&](int uid_ar, int uid_a2a) {
    return ds_ar.time_us(uid_ar, inst_ar) +
           ds_a2a.time_us(uid_a2a, inst_a2a);
  };
  const double t_default =
      per_iter(def_ar->select_uid(inst_ar), def_a2a->select_uid(inst_a2a));
  const double t_pred = per_iter(sel_ar.select_uid(inst_ar),
                                 sel_a2a.select_uid(inst_a2a));
  const double t_best =
      ds_ar.best(inst_ar).time_us + ds_a2a.best(inst_a2a).time_us;

  std::printf("\nsolver on %dx%d: allreduce %llu B + bcast %llu B per "
              "iteration, %d iterations\n\n",
              nodes, ppn, static_cast<unsigned long long>(ar_bytes),
              static_cast<unsigned long long>(bc_bytes), iters);
  std::printf("  communication per iteration (default):   %10.2f us\n",
              t_default);
  std::printf("  communication per iteration (predicted): %10.2f us\n",
              t_pred);
  std::printf("  communication per iteration (oracle):    %10.2f us\n",
              t_best);
  std::printf("\n  total communication saved by tuning: %.2f ms over %d "
              "iterations (speed-up %.2fx, oracle headroom %.2fx)\n",
              (t_default - t_pred) * iters * 1e-3, iters,
              t_default / t_pred, t_pred / t_best);
  return 0;
}
