// The other half of the include cycle. simmpi and collbench share a
// rank, so neither edge is an upward include — only the cycle fires.
#pragma once

#include "simmpi/cycle_a.hpp"

namespace mpicp::bench {

struct CycleB {
  int tag = 0;
};

inline int poke(CycleB& b) { return sim::touch_b(b); }

}  // namespace mpicp::bench
