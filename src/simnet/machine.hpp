// Machine model: a hierarchical LogGP-style description of a cluster.
//
// This is the substitute for the paper's physical testbeds (Table I). The
// model captures exactly the effects that make different collective
// algorithms win in different regimes:
//   * per-message latency L and per-message gap g (latency-bound regime,
//     where tree algorithms win for small messages),
//   * per-byte gap G = 1/bandwidth (bandwidth-bound regime, where
//     pipelined/segmented algorithms win for large messages),
//   * separate intra-node (shared memory) and inter-node (fabric)
//     parameter sets (ppn sensitivity),
//   * a finite number of NIC rails per node whose occupancy serializes
//     concurrent transfers (root bottleneck of linear algorithms),
//   * eager vs. rendezvous point-to-point protocols,
//   * a local reduction compute rate (for reduce-like collectives).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpicp::sim {

/// LogGP-style parameters of one communication channel class.
/// All times in microseconds; G in microseconds per byte.
struct LinkParams {
  double latency_us = 1.0;       ///< L: wire latency per message
  double overhead_us = 0.3;      ///< o: CPU cost per message (send & recv)
  double gap_per_msg_us = 0.2;   ///< g: NIC/port occupancy per message
  double gap_per_byte_us = 1e-4; ///< G: NIC/port occupancy per byte

  /// Pure occupancy time of a message of `bytes` bytes on this channel.
  double occupancy_us(std::size_t bytes) const {
    return gap_per_msg_us + gap_per_byte_us * static_cast<double>(bytes);
  }
};

/// Static description of one parallel machine (the Table I analogue).
struct MachineDesc {
  std::string name;
  int max_nodes = 1;
  int max_ppn = 1;

  int rails = 1;          ///< inter-node NICs per node (dual-rail Hydra = 2)
  int mem_channels = 2;   ///< concurrent intra-node copy engines per node

  LinkParams intra;       ///< within one compute node
  LinkParams inter;       ///< between compute nodes, per rail

  std::size_t eager_limit_bytes = 8192;  ///< eager/rendezvous switch point
  double rendezvous_rtt_us = 2.0;        ///< RTS/CTS handshake cost

  double reduce_us_per_byte = 4e-4;      ///< local reduction compute rate
};

/// The three machines of the paper's Table I, modeled after their
/// published properties (interconnect generation, rails, core counts).
MachineDesc hydra_machine();       ///< 36 nodes, 32 ppn, dual-rail OmniPath
MachineDesc jupiter_machine();     ///< 35 nodes, 16 ppn, QDR InfiniBand
MachineDesc supermucng_machine();  ///< 48 ppn Skylake, OmniPath (subset)

/// Look up a machine preset by (case-sensitive) name; throws
/// mpicp::InvalidArgument for unknown names.
MachineDesc machine_by_name(const std::string& name);

}  // namespace mpicp::sim
