#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::support {

namespace {

// -1 = no override active; 0 = hardware; >= 1 = explicit count.
std::atomic<int> g_thread_override{-1};

thread_local bool tl_in_parallel_region = false;

// Workers the shared pool may grow to. Far above any sane MPICP_THREADS
// value; exists only to bound a corrupt environment variable.
constexpr int kMaxPoolWorkers = 256;

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int configured_threads() {
  // order: the override is a per-process tuning knob read point-wise;
  // no other data is published through it.
  const int override_value = g_thread_override.load(std::memory_order_relaxed);
  if (override_value >= 0) {
    return override_value == 0 ? hardware_threads() : override_value;
  }
  if (const char* env = std::getenv("MPICP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0 &&
        value <= kMaxPoolWorkers) {
      return value == 0 ? hardware_threads() : static_cast<int>(value);
    }
  }
  return hardware_threads();
}

ScopedThreads::ScopedThreads(int threads)
    // order: single-owner knob (harness code); see configured_threads.
    : previous_(g_thread_override.load(std::memory_order_relaxed)) {
  MPICP_REQUIRE(threads >= 0 && threads <= kMaxPoolWorkers,
                "thread override out of range");
  // order: single-owner knob (harness code); see configured_threads.
  g_thread_override.store(threads, std::memory_order_relaxed);
}

ScopedThreads::~ScopedThreads() {
  // order: single-owner knob (harness code); see configured_threads.
  g_thread_override.store(previous_, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int workers) {
  MPICP_REQUIRE(workers >= 0 && workers <= kMaxPoolWorkers,
                "invalid thread pool size");
  MutexLock lock(mu_);
  spawn_locked(workers);
}

ThreadPool::~ThreadPool() {
  // The workers are joined outside the lock (a joining worker needs
  // mu_ to see stop_); swapping the vector out keeps every guarded
  // access inside the critical section.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) t.join();
}

int ThreadPool::workers() const {
  MutexLock lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    MPICP_REQUIRE(!stop_, "submit on a stopped thread pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::spawn_locked(int count) {
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Manual wait loop: a predicate lambda would be analyzed without
      // the caller's capability context (thread_safety.hpp).
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared(int min_workers) {
  static ThreadPool pool(0);
  min_workers = std::min(min_workers, kMaxPoolWorkers);
  MutexLock lock(pool.mu_);
  const int have = static_cast<int>(pool.threads_.size());
  if (have < min_workers) pool.spawn_locked(min_workers - have);
  return pool;
}

bool in_parallel_region() { return tl_in_parallel_region; }

namespace {

/// Shared state of one parallel_for region. Runners pull chunk indices
/// from `next` until the range is exhausted (or cancelled by an
/// exception); the caller waits for every runner to retire before
/// returning, so `fn` outlives all uses.
struct ForState {
  // The range geometry is written once by the issuing thread before any
  // runner is published and is immutable afterwards.
  std::size_t n = 0;           // mpicp-lint: allow(lock-discipline)
  std::size_t chunk = 0;       // mpicp-lint: allow(lock-discipline)
  std::size_t num_chunks = 0;  // mpicp-lint: allow(lock-discipline)
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  Mutex mu;
  std::condition_variable_any done_cv;
  int active_runners MPICP_GUARDED_BY(mu) = 0;
  std::exception_ptr error MPICP_GUARDED_BY(mu);
};

void run_chunks(const std::shared_ptr<ForState>& state) {
  ForState& s = *state;
  const bool was_in_region = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    // order: the chunk cursor is an independent work-stealing ticket;
    // all result publication happens through the caller's join below.
    const std::size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s.num_chunks) break;
    const std::size_t lo = c * s.chunk;
    const std::size_t hi = std::min(s.n, lo + s.chunk);
    try {
      for (std::size_t i = lo; i < hi; ++i) (*s.fn)(i);
    } catch (...) {
      MutexLock lock(s.mu);
      if (!s.error) s.error = std::current_exception();
      // Best-effort cancellation: park the cursor past the end so no
      // further chunks are claimed.
      // order: cancellation is advisory; stragglers finish their chunk.
      s.next.store(s.num_chunks, std::memory_order_relaxed);
    }
  }
  tl_in_parallel_region = was_in_region;
  {
    MutexLock lock(s.mu);
    --s.active_runners;
  }
  s.done_cv.notify_all();
}

void serial_for(std::size_t n,
                const std::function<void(std::size_t)>& fn) {
  const bool was_in_region = tl_in_parallel_region;
  tl_in_parallel_region = true;
  try {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } catch (...) {
    tl_in_parallel_region = was_in_region;
    throw;
  }
  tl_in_parallel_region = was_in_region;
}

}  // namespace

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const int threads = configured_threads();
  if (threads <= 1 || num_chunks <= 1 || tl_in_parallel_region) {
    serial_for(n, fn);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->chunk = chunk;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  const int helpers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads - 1), num_chunks - 1));
  state->active_runners = helpers + 1;
  ThreadPool& pool = ThreadPool::shared(helpers);
  // Pool runners inherit the caller's span path so spans opened inside
  // fn merge under the stage that spawned the region (support/trace).
  const std::string trace_parent = trace::current_path();
  for (int i = 0; i < helpers; ++i) {
    pool.submit([state, trace_parent] {
      const trace::ScopedParent parent(trace_parent);
      run_chunks(state);
    });
  }
  run_chunks(state);  // the calling thread participates
  std::exception_ptr error;
  {
    ForState& s = *state;
    MutexLock lock(s.mu);
    // Manual wait loop: a predicate lambda would be analyzed without
    // the caller's capability context (thread_safety.hpp).
    while (s.active_runners != 0) s.done_cv.wait(lock);
    error = s.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mpicp::support
