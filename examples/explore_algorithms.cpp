// Scenario: explore the collective algorithm landscape of a machine.
//
// A performance engineer bringing up a new system wants to see which
// algorithm wins where before any ML enters the picture: sweep every
// algorithm configuration of a collective over message sizes on a given
// allocation and print the ranking per size — the kind of exhaustive
// sweep the paper's Figure 2 is built from.
//
// Usage:
//   explore_algorithms [--machine=Hydra] [--lib=OpenMPI]
//                      [--collective=allreduce] [--nodes=16] [--ppn=16]
//                      [--top=5]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "collbench/specs.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const sim::MachineDesc machine =
      sim::machine_by_name(cli.get("machine", "Hydra"));
  const sim::MpiLib lib = sim::mpilib_from_string(cli.get("lib", "OpenMPI"));
  const sim::Collective coll =
      sim::collective_from_string(cli.get("collective", "allreduce"));
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  const int ppn = static_cast<int>(cli.get_int("ppn", 16));
  const auto top = static_cast<std::size_t>(cli.get_int("top", 5));

  sim::Network net(machine, nodes, ppn);
  sim::Executor exec(net);
  const sim::Comm comm(nodes, ppn);
  const auto& configs = sim::algorithm_configs(lib, coll);

  std::printf("%s/%s on %s, %dx%d processes — top %zu per message size\n",
              to_string(lib).c_str(), to_string(coll).c_str(),
              machine.name.c_str(), nodes, ppn, top);
  for (const std::uint64_t m : bench::standard_msizes()) {
    if (coll == sim::Collective::kAlltoall && m > 524288) break;
    std::vector<std::pair<double, const sim::AlgoConfig*>> ranking;
    for (const sim::AlgoConfig& cfg : configs) {
      auto built = sim::build_algorithm(lib, coll, cfg, comm, m, 0, false);
      ranking.emplace_back(exec.run(built.programs).makespan_us, &cfg);
    }
    std::sort(ranking.begin(), ranking.end());
    std::printf("\nmsize %llu B:\n", static_cast<unsigned long long>(m));
    for (std::size_t i = 0; i < std::min(top, ranking.size()); ++i) {
      std::printf("  %zu. uid %2d  %-30s %12.2f us\n", i + 1,
                  ranking[i].second->uid, ranking[i].second->label().c_str(),
                  ranking[i].first);
    }
  }
  return 0;
}
