#include "simmpi/coll/smallcoll.hpp"

#include <vector>

#include "simmpi/coll/pipeline.hpp"
#include "simmpi/coll/trees.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::uint16_t kTagReduce = 40;
constexpr std::uint16_t kTagGather = 41;
constexpr std::uint16_t kTagScatter = 42;
constexpr std::uint16_t kTagAllgather = 43;  // uses kTagAllgather(+1)
constexpr std::uint16_t kTagBcast = 45;
constexpr std::uint16_t kTagBarrier = 46;
constexpr std::uint16_t kTagScan = 47;

BuiltCollective tree_reduce(const Comm& comm, const Tree& tree,
                            std::size_t bytes, std::size_t seg_bytes,
                            int root) {
  MPICP_SPAN("sim.smallcoll.tree_reduce");
  const Segmentation seg = make_segmentation(bytes, seg_bytes);
  BuiltCollective out;
  out.programs.resize(comm.size());
  out.blocks_per_rank = static_cast<int>(seg.nseg);
  emit_tree_reduce(out.programs, VrankMap::rotation(root, comm.size()), tree,
                   seg, kTagReduce);
  return out;
}

/// Binomial gather: vrank v accumulates the contributions of its subtree
/// (contiguous vrank block range [v, v+size)) and ships them upward.
void emit_binomial_gather(ProgramSet& progs, const VrankMap& map,
                          const Tree& tree, std::size_t bytes,
                          std::uint16_t tag) {
  for (int v = 0; v < static_cast<int>(tree.size()); ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(progs[rank], rank, map.world);
    for (const int c : tree[v].children) {
      prog.recv(map.rank_of(c), tag,
                static_cast<std::uint64_t>(tree[c].subtree_size) * bytes,
                static_cast<std::uint32_t>(c),
                static_cast<std::uint32_t>(tree[c].subtree_size));
    }
    if (tree[v].parent >= 0) {
      prog.send(map.rank_of(tree[v].parent), tag,
                static_cast<std::uint64_t>(tree[v].subtree_size) * bytes,
                static_cast<std::uint32_t>(v),
                static_cast<std::uint32_t>(tree[v].subtree_size));
    }
  }
}

}  // namespace

BuiltCollective reduce_linear(const Comm& comm, std::size_t bytes,
                              int root) {
  return tree_reduce(comm, flat_tree(comm.size()), bytes, 0, root);
}

BuiltCollective reduce_binomial(const Comm& comm, std::size_t bytes,
                                std::size_t seg_bytes, int root) {
  return tree_reduce(comm, binomial_tree(comm.size()), bytes, seg_bytes,
                     root);
}

BuiltCollective reduce_binary(const Comm& comm, std::size_t bytes,
                              std::size_t seg_bytes, int root) {
  return tree_reduce(comm, binary_tree(comm.size()), bytes, seg_bytes, root);
}

BuiltCollective reduce_pipeline(const Comm& comm, std::size_t bytes,
                                std::size_t seg_bytes, int root) {
  return tree_reduce(comm, chain_tree(comm.size(), 1), bytes, seg_bytes,
                     root);
}

BuiltCollective allgather_ring(const Comm& comm, std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const std::vector<std::uint32_t> chunks(
      p, static_cast<std::uint32_t>(bytes));
  emit_ring_allgather(out.programs, VrankMap::rotation(0, p), chunks,
                      kTagAllgather);
  return out;
}

BuiltCollective allgather_recursive_doubling(const Comm& comm,
                                             std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const std::vector<std::uint32_t> chunks(
      p, static_cast<std::uint32_t>(bytes));
  emit_recdbl_allgather(out.programs, VrankMap::rotation(0, p), chunks,
                        kTagAllgather);
  return out;
}

BuiltCollective allgather_gather_bcast(const Comm& comm, std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const VrankMap map = VrankMap::rotation(0, p);
  emit_binomial_gather(out.programs, map, binomial_tree(p), bytes,
                       kTagGather);
  // Broadcast the gathered buffer (p * bytes) down a binomial tree.
  const Tree tree = binomial_tree(p);
  for (int v = 0; v < p; ++v) {
    const int rank = map.rank_of(v);
    RankProg prog(out.programs[rank], rank, p);
    if (tree[v].parent >= 0) {
      prog.recv(map.rank_of(tree[v].parent), kTagBcast,
                static_cast<std::uint64_t>(p) * bytes, 0,
                static_cast<std::uint32_t>(p));
    }
    bool sent = false;
    for (const int c : tree[v].children) {
      prog.isend(map.rank_of(c), kTagBcast,
                 static_cast<std::uint64_t>(p) * bytes, 0,
                 static_cast<std::uint32_t>(p));
      sent = true;
    }
    if (sent) prog.waitall();
  }
  return out;
}

BuiltCollective gather_linear(const Comm& comm, std::size_t bytes,
                              int root) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const VrankMap map = VrankMap::rotation(root, p);
  emit_binomial_gather(out.programs, map, flat_tree(p), bytes, kTagGather);
  return out;
}

BuiltCollective gather_binomial(const Comm& comm, std::size_t bytes,
                                int root) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  emit_binomial_gather(out.programs, VrankMap::rotation(root, p),
                       binomial_tree(p), bytes, kTagGather);
  return out;
}

BuiltCollective scatter_linear(const Comm& comm, std::size_t bytes,
                               int root) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const std::vector<std::uint32_t> chunks(
      p, static_cast<std::uint32_t>(bytes));
  emit_binomial_scatter(out.programs, VrankMap::rotation(root, p),
                        flat_tree(p), chunks, kTagScatter);
  return out;
}

BuiltCollective scatter_binomial(const Comm& comm, std::size_t bytes,
                                 int root) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  const std::vector<std::uint32_t> chunks(
      p, static_cast<std::uint32_t>(bytes));
  emit_binomial_scatter(out.programs, VrankMap::rotation(root, p),
                        binomial_tree(p), chunks, kTagScatter);
  return out;
}

BuiltCollective barrier_dissemination(const Comm& comm) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 1;
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    for (int d = 1; d < p; d <<= 1) {
      prog.isend((r + d) % p, kTagBarrier, 0);
      prog.recv((r - d + p) % p, kTagBarrier, 0);
      prog.waitall();
    }
  }
  return out;
}

BuiltCollective barrier_tree(const Comm& comm) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 1;
  const VrankMap map = VrankMap::rotation(0, p);
  const Tree tree = binomial_tree(p);
  const Segmentation seg = make_segmentation(0, 0);
  emit_tree_reduce(out.programs, map, tree, seg, kTagReduce);
  emit_tree_bcast(out.programs, map, tree, seg, kTagBcast);
  return out;
}

BuiltCollective scan_linear(const Comm& comm, std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 1;
  // Sequential prefix chain: rank r combines rank r-1's prefix into its
  // own and forwards the result.
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    if (r > 0) {
      prog.recv(r - 1, kTagScan, bytes, 0, 1, kCombine);
      prog.compute(bytes);
    }
    if (r + 1 < p) prog.send(r + 1, kTagScan, bytes, 0, 1);
  }
  return out;
}

BuiltCollective scan_recursive_doubling(const Comm& comm,
                                        std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 1;
  // Hillis-Steele: in round d every rank ships its running prefix d
  // ranks up and folds in the prefix arriving from d ranks down; after
  // ceil(log2 p) rounds rank r holds contributions 0..r.
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    for (int d = 1; d < p; d <<= 1) {
      if (r + d < p) prog.isend(r + d, kTagScan, bytes, 0, 1);
      if (r - d >= 0) {
        prog.recv(r - d, kTagScan, bytes, 0, 1, kCombine);
        prog.compute(bytes);
      }
      if (r + d < p) prog.waitall();
    }
  }
  return out;
}

BuiltCollective reduce_scatter_ring(const Comm& comm, std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  if (p == 1) return out;
  // emit_ring_reduce_scatter leaves vrank v with chunk (v+1) mod p fully
  // reduced; the rotation below aligns that with the MPI semantics
  // "rank j owns chunk j".
  const auto chunks = even_chunks(bytes, p);
  emit_ring_reduce_scatter(out.programs,
                           VrankMap::rotation(1, p), chunks,
                           kTagReduce);
  return out;
}

BuiltCollective reduce_scatter_halving(const Comm& comm,
                                       std::size_t bytes) {
  const int p = comm.size();
  if (floor_pow2(p) != p) return reduce_scatter_ring(comm, bytes);
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = p;
  if (p == 1) return out;
  const auto chunks = even_chunks(bytes, p);
  // Recursive halving: each round exchanges the half of the chunk range
  // the partner is responsible for; the owned range converges to the
  // rank's own chunk.
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    int lo = 0;
    int hi = p;
    for (int d = p / 2; d >= 1; d /= 2) {
      const int partner = r ^ d;
      const int mid = lo + (hi - lo) / 2;
      const bool upper = (r & d) != 0;
      const int my_lo = upper ? mid : lo;
      const int my_hi = upper ? hi : mid;
      const int pr_lo = upper ? lo : mid;
      const int pr_hi = upper ? mid : hi;
      prog.irecv(partner, kTagReduce,
                 chunk_range_bytes(chunks, my_lo, my_hi),
                 static_cast<std::uint32_t>(my_lo),
                 static_cast<std::uint32_t>(my_hi - my_lo), kCombine);
      prog.isend(partner, kTagReduce,
                 chunk_range_bytes(chunks, pr_lo, pr_hi),
                 static_cast<std::uint32_t>(pr_lo),
                 static_cast<std::uint32_t>(pr_hi - pr_lo));
      prog.waitall();
      prog.compute(chunk_range_bytes(chunks, my_lo, my_hi));
      lo = my_lo;
      hi = my_hi;
    }
  }
  return out;
}

}  // namespace mpicp::sim
