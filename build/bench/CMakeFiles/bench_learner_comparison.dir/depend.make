# Empty dependencies file for bench_learner_comparison.
# This may be replaced when dependencies are built.
