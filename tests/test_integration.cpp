// End-to-end integration tests: benchmark grid -> dataset -> per-uid
// regression models -> selection -> evaluation -> tuning file, on
// reduced grids (the full Table II grids live in the bench harnesses).
#include <gtest/gtest.h>

#include <filesystem>

#include "collbench/defaults.hpp"
#include "collbench/generator.hpp"
#include "collbench/specs.hpp"
#include "tune/config_writer.hpp"
#include "tune/evaluator.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

/// A reduced d1-style spec that generates in a few seconds.
bench::DatasetSpec mini_spec(const char* base, std::uint64_t seed) {
  bench::DatasetSpec spec = bench::dataset_spec(base);
  spec.name = std::string("mini_") + base;
  spec.nodes = {4, 6, 8, 12, 16};
  spec.ppns = {1, 4, 8};
  spec.msizes = {16, 1024, 16384, 262144};
  spec.budget = {.max_reps = 3, .budget_us = 1e6};
  spec.seed = seed;
  return spec;
}

TEST(Integration, BcastPipelineBeatsDefaultOnHeldOutNodes) {
  const bench::Dataset ds = bench::generate_dataset(mini_spec("d1", 7));
  const std::vector<int> train = {4, 8, 16};
  const std::vector<int> test = {6, 12};

  const auto default_logic = bench::make_default_for(ds);
  for (const std::string learner : {"knn", "gam", "xgboost"}) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    ASSERT_FALSE(selector.fit(ds, train).degraded()) << learner;
    const tune::Evaluation eval =
        tune::evaluate(ds, selector, *default_logic, test);
    // The prediction must clearly beat the portable Open MPI thresholds
    // and stay reasonably close to the exhaustive best.
    EXPECT_GT(eval.summary.mean_speedup, 1.05) << learner;
    EXPECT_LT(eval.summary.mean_norm_predicted, 2.0) << learner;
    EXPECT_GE(eval.summary.mean_norm_default,
              eval.summary.mean_norm_predicted)
        << learner;
  }
}

TEST(Integration, PredictionNeverWorseThanWorstMeasured) {
  const bench::Dataset ds = bench::generate_dataset(mini_spec("d2", 8));
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, {4, 8, 16}).degraded());
  for (const bench::Instance& inst : ds.instances()) {
    const int uid = selector.select_uid(inst);
    EXPECT_TRUE(ds.has(uid, inst));
    // Selected time must be within the measured range for the instance.
    double worst = 0.0;
    for (const int u : ds.uids()) {
      if (ds.has(u, inst)) worst = std::max(worst, ds.time_us(u, inst));
    }
    EXPECT_LE(ds.time_us(uid, inst), worst);
  }
}

TEST(Integration, IntelTunedDefaultIsNearOptimalOnItsGrid) {
  // The factory-table default evaluated on the very grid it was tuned on
  // must be optimal there — and near-optimal between grid points.
  const bench::Dataset ds = bench::generate_dataset(mini_spec("d5", 9));
  const auto logic = bench::make_intel_default(ds, {4, 16});
  for (const bench::Instance& inst : ds.instances()) {
    if (inst.nodes != 4 && inst.nodes != 16) continue;
    EXPECT_EQ(logic->select_uid(inst), ds.best(inst).uid)
        << "n=" << inst.nodes << " ppn=" << inst.ppn
        << " m=" << inst.msize;
  }
  double norm_sum = 0.0;
  int count = 0;
  for (const bench::Instance& inst : ds.instances()) {
    const double t = ds.time_us(logic->select_uid(inst), inst);
    norm_sum += t / ds.best(inst).time_us;
    ++count;
  }
  EXPECT_LT(norm_sum / count, 1.6);  // close to best everywhere
}

TEST(Integration, TuningFileMatchesSelectorDecisions) {
  const bench::Dataset ds = bench::generate_dataset(mini_spec("d1", 10));
  tune::Selector selector(tune::SelectorOptions{.learner = "knn"});
  ASSERT_FALSE(selector.fit(ds, {4, 8, 16}).degraded());
  const tune::TuningConfig config = tune::build_tuning_config(
      selector, ds.lib(), ds.collective(), 12, 8, ds.msizes());
  const auto path = std::filesystem::temp_directory_path() /
                    "mpicp_integration_tuning.conf";
  tune::write_tuning_file(path, config);
  const tune::TuningConfig loaded = tune::read_tuning_file(path);
  for (const std::uint64_t m : ds.msizes()) {
    EXPECT_EQ(loaded.uid_for(m), selector.select_uid({12, 8, m}));
  }
  std::filesystem::remove(path);
}

TEST(Integration, CachedDatasetRoundTripsThroughGenerator) {
  const auto dir = std::filesystem::temp_directory_path() / "mpicp_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  bench::DatasetSpec spec = mini_spec("d4", 11);
  spec.nodes = {4, 6};
  spec.ppns = {1, 2};
  spec.msizes = {64, 4096};
  const bench::Dataset generated = bench::load_or_generate(spec, dir);
  ASSERT_TRUE(std::filesystem::exists(dir / (spec.name + ".csv")));
  const bench::Dataset reloaded = bench::load_or_generate(spec, dir);
  ASSERT_EQ(generated.num_records(), reloaded.num_records());
  for (const bench::Instance& inst : generated.instances()) {
    for (const int uid : generated.uids()) {
      EXPECT_DOUBLE_EQ(generated.time_us(uid, inst),
                       reloaded.time_us(uid, inst));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mpicp
