// Ridge-regularized linear regression — the baseline the paper reports
// as insufficient for the (strongly nonlinear) runtime surfaces.
#pragma once

#include "ml/learner.hpp"

namespace mpicp::ml {

struct LinearParams {
  double ridge = 1e-6;
  bool log_target = true;  ///< fit log(y), predict exp (positive data)
};

class LinearRegressor final : public Regressor {
 public:
  explicit LinearRegressor(LinearParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "linear"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Fitted coefficients (intercept first).
  const std::vector<double>& coefficients() const { return beta_; }

  bool log_target() const { return params_.log_target; }

 private:
  LinearParams params_;
  std::vector<double> beta_;
};

}  // namespace mpicp::ml
