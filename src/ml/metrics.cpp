#include "ml/metrics.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace mpicp::ml {

namespace {

void check(std::span<const double> truth, std::span<const double> pred) {
  MPICP_REQUIRE(truth.size() == pred.size() && !truth.empty(),
                "metric inputs must be non-empty and equally sized");
}

}  // namespace

double mae(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mape(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // mpicp-lint: allow(no-float-eq) — division-by-zero guard
    MPICP_REQUIRE(truth[i] != 0.0, "MAPE undefined for zero truth");
    acc += std::abs((truth[i] - pred[i]) / truth[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double r2(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  const double mean_truth = support::mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean_truth) * (truth[i] - mean_truth);
  }
  // Exact zeros pick the degenerate-R² convention; a tolerance would
  // misclassify genuinely tiny variance. mpicp-lint: allow(no-float-eq)
  return ss_tot == 0.0 ? (ss_res == 0.0 ? 1.0 : 0.0)
                       : 1.0 - ss_res / ss_tot;
}

}  // namespace mpicp::ml
