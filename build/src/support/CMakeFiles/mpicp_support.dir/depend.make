# Empty dependencies file for mpicp_support.
# This may be replaced when dependencies are built.
