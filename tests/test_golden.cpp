// Golden regression test of the full ingest -> fit -> select pipeline.
//
// One fixed-seed Bcast campaign (synthetic data, 10% injected CSV
// corruption, one forced fit fallback) runs end to end; its observable
// outcome — ingest accounting, fit report, every selection over a fixed
// instance grid, and the metrics-registry counters — is rendered as
// canonical JSON and compared *byte for byte* against the committed
// snapshot in tests/golden/. Any behavioural drift in ingest screening,
// the fallback chain, feature encoding, a learner, or the argmin shows
// up as a diff against a reviewable artifact.
//
// Refresh path: MPICP_UPDATE_GOLDEN=1 ctest -R test_golden rewrites the
// snapshot in the source tree; commit the diff deliberately.
//
// Timing metrics (span durations, fit-time histograms) are excluded —
// only deterministic counters are snapshotted, so the comparison holds
// at any MPICP_THREADS and on any machine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "collbench/dataset.hpp"
#include "collbench/streamgen.hpp"
#include "ml/io.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"
#include "tune/registry.hpp"
#include "tune/ruletable.hpp"
#include "tune/selector.hpp"
#include "tune/stream.hpp"

#ifndef MPICP_GOLDEN_DIR
#error "build must define MPICP_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace mpicp {
namespace {

namespace fi = support::faultinject;
namespace metrics = support::metrics;

/// Same three-algorithm Bcast shape the fault tests train on; fully
/// determined by the seed.
bench::Dataset make_synthetic(std::uint64_t seed = 1) {
  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(seed);
  for (const int n : {2, 4, 8, 16, 32}) {
    for (const int ppn : {1, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{4096}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, 0.05)});
        }
      }
    }
  }
  return ds;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

struct PipelineRun {
  bench::IngestReport ingest;
  tune::FitReport fit;
  std::string json;  ///< canonical rendering of the whole outcome
  metrics::Snapshot snapshot;
};

/// The one fixed-seed campaign this test snapshots. Resets the metrics
/// registry first, so the counters in the rendering cover exactly this
/// run.
PipelineRun run_pipeline() {
  metrics::Registry::instance().reset();
  support::trace::reset();
  PipelineRun run;

  // Ingest: save a pristine campaign, corrupt 10% of the rows with the
  // seeded injector, re-load through the tolerant path.
  const bench::Dataset pristine = make_synthetic(1);
  const auto path = std::filesystem::temp_directory_path() /
                    "mpicp_golden_bcast.csv";
  pristine.save_csv(path);
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  const std::string corrupted = fi::corrupt_csv(
      text, {.fault_rate = 0.1, .value_column = 4, .seed = 2026}, nullptr);
  {
    std::ofstream out(path);
    out << corrupted;
  }
  const bench::Dataset ds = bench::Dataset::load_csv_tolerant(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &run.ingest);
  std::filesystem::remove(path);

  // Fit: gam bank with uid 2's configured fit forced to fail once, so
  // the snapshot pins the fallback chain's behaviour too.
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  {
    fi::ScopedFaults faults({.fit_failures = {{2, 1}}});
    run.fit = selector.fit(ds, {2, 4, 8, 16, 32});
  }

  // Select over a fixed grid of unseen instances.
  std::ostringstream sel;
  bool first = true;
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const int uid = selector.select_uid_or_default(
            {n, ppn, m}, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
        sel << (first ? "" : ",") << "\n    {\"nodes\": " << n
            << ", \"ppn\": " << ppn << ", \"msize\": " << m
            << ", \"uid\": " << uid << "}";
        first = false;
      }
    }
  }

  run.snapshot = metrics::Registry::instance().snapshot();

  std::ostringstream os;
  os << "{\n";
  os << "  \"ingest\": {\n";
  os << "    \"rows_seen\": " << run.ingest.rows_seen << ",\n";
  os << "    \"rows_ingested\": " << run.ingest.rows_ingested << ",\n";
  os << "    \"rows_quarantined\": " << run.ingest.rows_quarantined
     << ",\n";
  os << "    \"reasons\": {";
  first = true;
  for (const auto& [reason, count] : run.ingest.reasons) {
    os << (first ? "" : ",") << "\n      \"" << json_escape(reason)
       << "\": " << count;
    first = false;
  }
  os << "\n    }\n  },\n";
  os << "  \"fit\": {\n";
  os << "    \"uids_total\": " << run.fit.uids_total() << ",\n";
  os << "    \"uids_clean\": " << run.fit.uids_clean() << ",\n";
  os << "    \"uids_fallback\": " << run.fit.uids_fallback() << ",\n";
  os << "    \"uids_unusable\": " << run.fit.uids_unusable() << ",\n";
  os << "    \"rows_dropped\": " << run.fit.rows_dropped() << ",\n";
  os << "    \"outcomes\": [";
  first = true;
  for (const auto& o : run.fit.outcomes) {
    os << (first ? "" : ",") << "\n      {\"uid\": " << o.uid
       << ", \"learner\": \"" << json_escape(o.learner)
       << "\", \"fallback_depth\": " << o.fallback_depth
       << ", \"rows_total\": " << o.rows_total
       << ", \"rows_dropped\": " << o.rows_dropped << "}";
    first = false;
  }
  os << "\n    ]\n  },\n";
  os << "  \"selections\": [" << sel.str() << "\n  ],\n";
  // Deterministic counters only (prefix-filtered, nonzero): histograms
  // and span timings vary run to run and are deliberately left out.
  os << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : run.snapshot.counters) {
    const bool pipeline_counter =
        name.starts_with("ingest.") || name.starts_with("fit.") ||
        name.starts_with("predict.") || name.starts_with("select.");
    if (!pipeline_counter || value == 0) continue;
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  }\n}\n";
  run.json = os.str();
  return run;
}

std::filesystem::path golden_path() {
  return std::filesystem::path(MPICP_GOLDEN_DIR) / "bcast_pipeline.json";
}

std::uint64_t counter_or_zero(const metrics::Snapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// The acceptance reconciliation: the process-wide counters must mirror
// the per-call health reports *exactly* — same totals, same per-reason
// quarantine split — or the observability layer is lying about the run.
TEST(Golden, CountersReconcileWithReports) {
  const PipelineRun run = run_pipeline();
  const metrics::Snapshot& snap = run.snapshot;

  EXPECT_EQ(counter_or_zero(snap, "ingest.files"), 1u);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_seen"),
            run.ingest.rows_seen);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_ingested"),
            run.ingest.rows_ingested);
  EXPECT_EQ(counter_or_zero(snap, "ingest.rows_quarantined"),
            run.ingest.rows_quarantined);
  for (const auto& [reason, count] : run.ingest.reasons) {
    EXPECT_EQ(counter_or_zero(snap, "ingest.quarantine." + reason), count)
        << reason;
  }

  EXPECT_EQ(counter_or_zero(snap, "fit.calls"), 1u);
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_total"),
            run.fit.uids_total());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_clean"),
            run.fit.uids_clean());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_fallback"),
            run.fit.uids_fallback());
  EXPECT_EQ(counter_or_zero(snap, "fit.uids_unusable"),
            run.fit.uids_unusable());
  EXPECT_EQ(counter_or_zero(snap, "fit.rows_dropped"),
            run.fit.rows_dropped());

  // 4 node counts x 3 ppns x 3 msizes selections, each fanning out over
  // the whole (usable) bank.
  EXPECT_EQ(counter_or_zero(snap, "select.requests"), 36u);
  EXPECT_EQ(counter_or_zero(snap, "select.default_fallbacks"), 0u);
  EXPECT_EQ(counter_or_zero(snap, "predict.calls"), 36u);
  EXPECT_EQ(counter_or_zero(snap, "predict.predictions_served"),
            36u * run.fit.uids_total());
}

// Two back-to-back runs must render byte-identically — the pipeline and
// its accounting are deterministic in the seeds alone. A failure here
// means the golden comparison below would flake; fix that first.
TEST(Golden, PipelineRenderingIsDeterministic) {
  const std::string a = run_pipeline().json;
  const std::string b = run_pipeline().json;
  EXPECT_EQ(a, b);
}

TEST(Golden, MatchesCommittedSnapshot) {
  const PipelineRun run = run_pipeline();
  const auto path = golden_path();

  const char* update = std::getenv("MPICP_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << run.json;
    GTEST_SKIP() << "golden snapshot rewritten at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << path
      << " — generate it with MPICP_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(run.json, want.str())
      << "pipeline outcome drifted from the committed snapshot; if the "
         "change is intentional, refresh with MPICP_UPDATE_GOLDEN=1 and "
         "commit the diff";
}

// ---- continuous retraining campaign -------------------------------------
//
// The second golden: a fixed-seed *drifting* campaign through the
// StreamPipeline (DESIGN.md §13). 1200 rows, 8% injected corruption, a
// machine regime swap at row 600. The byte-pinned snapshot fixes the
// whole lifecycle: quarantine accounting, the bootstrap publish, the
// detection offset after the shift, exactly one accepted drift refit,
// and the post-swap selections of the refit bank. Swap/refit COUNTS are
// pinned — never absolute registry versions, which are process-unique.

/// The campaign constants (mirrors tests/test_stream.cpp).
bench::StreamSpec golden_stream_spec() {
  bench::StreamSpec spec;
  spec.uids = {1, 2, 3, 4};
  spec.nodes = {2, 8, 16};
  spec.ppns = {4};
  spec.msizes = {64, 1048576};
  spec.machine_seed = 101;
  spec.shifts = {{600, 202}};
  spec.fault_rate = 0.08;
  spec.seed = 7;
  return spec;
}

tune::StreamOptions golden_stream_options() {
  tune::StreamOptions opts;
  opts.selector.learner = "knn";  // memorizes per-config regime factors
  opts.window_capacity = 512;
  opts.min_refit_rows = 160;
  opts.holdout_every = 4;
  opts.refit_cooldown = 32;
  opts.backoff_initial = 64;
  opts.accept_tolerance = 1.05;
  return opts;
}

struct StreamRun {
  tune::StreamPipeline::Stats stats;
  metrics::Snapshot snapshot;
  std::string json;
  std::uint64_t bootstrap_version = 0;
  std::uint64_t final_version = 0;
  bool post_swap_selections_match_bank = false;
};

StreamRun run_stream_campaign() {
  metrics::Registry::instance().reset();
  support::trace::reset();
  StreamRun run;

  bench::MeasurementStream stream(golden_stream_spec());
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, golden_stream_options());
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};

  for (int i = 0; i < 1200; ++i) {
    const auto out = pipeline.push_row(key, stream.next().text);
    if (out.published && run.bootstrap_version == 0) {
      run.bootstrap_version = registry.version(key);
    }
  }
  run.stats = pipeline.stats();
  run.final_version = registry.version(key);

  // Post-swap selections: the registry must answer bit-identically to
  // the refit bank it serves.
  std::vector<bench::Instance> grid;
  for (const int n : {2, 3, 8, 12, 16}) {
    for (const std::uint64_t m : {std::uint64_t{64}, std::uint64_t{65536},
                                  std::uint64_t{1048576}}) {
      grid.push_back({n, 4, m});
    }
  }
  const std::vector<int> selections = registry.select_grid(key, grid);
  const auto bank = registry.lookup(key);
  run.post_swap_selections_match_bank =
      bank != nullptr && selections == bank->select_grid(grid);

  run.snapshot = metrics::Registry::instance().snapshot();

  std::ostringstream os;
  os << "{\n";
  os << "  \"stream\": {\n";
  os << "    \"rows_seen\": " << run.stats.rows_seen << ",\n";
  os << "    \"rows_ingested\": " << run.stats.rows_ingested << ",\n";
  os << "    \"rows_quarantined\": " << run.stats.rows_quarantined
     << ",\n";
  os << "    \"reasons\": {";
  bool first = true;
  for (const auto& [reason, count] : run.stats.quarantine_reasons) {
    os << (first ? "" : ",") << "\n      \"" << json_escape(reason)
       << "\": " << count;
    first = false;
  }
  os << "\n    },\n";
  os << "    \"drift_detections\": " << run.stats.drift_detections
     << ",\n";
  os << "    \"detection_rows\": [";
  first = true;
  for (const std::uint64_t row : run.stats.detection_rows) {
    os << (first ? "" : ", ") << row;
    first = false;
  }
  os << "],\n";
  os << "    \"rows_discarded_on_drift\": "
     << run.stats.rows_discarded_on_drift << ",\n";
  os << "    \"refits_attempted\": " << run.stats.refits_attempted
     << ",\n";
  os << "    \"refits_published\": " << run.stats.refits_published
     << ",\n";
  os << "    \"refits_rejected\": " << run.stats.refits_rejected << ",\n";
  os << "    \"refits_failed\": " << run.stats.refits_failed << ",\n";
  os << "    \"backoff_skips\": " << run.stats.backoff_skips << ",\n";
  os << "    \"window_evictions\": " << run.stats.window_evictions
     << "\n  },\n";
  os << "  \"post_swap_selections\": [";
  first = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    os << (first ? "" : ",") << "\n    {\"nodes\": " << grid[i].nodes
       << ", \"ppn\": " << grid[i].ppn << ", \"msize\": " << grid[i].msize
       << ", \"uid\": " << selections[i] << "}";
    first = false;
  }
  os << "\n  ],\n";
  os << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : run.snapshot.counters) {
    const bool stream_counter =
        name.starts_with("stream.") || name.starts_with("drift.") ||
        name == "registry.swaps" || name == "registry.refits" ||
        name == "registry.refit_rejected" ||
        name == "registry.refit_failures";
    if (!stream_counter || value == 0) continue;
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  }\n}\n";
  run.json = os.str();
  return run;
}

std::filesystem::path stream_golden_path() {
  return std::filesystem::path(MPICP_GOLDEN_DIR) / "stream_pipeline.json";
}

// The acceptance reconciliation for the retraining loop: detection
// within a bounded latency of the known shift, exactly one accepted
// drift refit after the bootstrap, serving version moved exactly once,
// and the counters mirroring the pipeline stats exactly.
TEST(Golden, StreamCountersReconcile) {
  const StreamRun run = run_stream_campaign();
  const metrics::Snapshot& snap = run.snapshot;

  // Lifecycle: bootstrap publish + exactly one accepted drift refit.
  ASSERT_GT(run.bootstrap_version, 0u);
  EXPECT_EQ(run.stats.drift_detections, 1u);
  ASSERT_EQ(run.stats.detection_rows.size(), 1u);
  EXPECT_GT(run.stats.detection_rows[0], 600u) << "alarm before the shift";
  EXPECT_LT(run.stats.detection_rows[0], 800u) << "detection latency bound";
  EXPECT_EQ(run.stats.refits_published, 2u);
  EXPECT_EQ(run.stats.refits_attempted, 2u);
  EXPECT_EQ(run.stats.refits_rejected, 0u);
  EXPECT_EQ(run.stats.refits_failed, 0u);
  EXPECT_NE(run.final_version, run.bootstrap_version)
      << "the drift refit must move the serving version exactly once";
  EXPECT_TRUE(run.post_swap_selections_match_bank);

  // Counters mirror the stats exactly.
  EXPECT_EQ(counter_or_zero(snap, "stream.rows_seen"),
            run.stats.rows_seen);
  EXPECT_EQ(counter_or_zero(snap, "stream.rows_ingested"),
            run.stats.rows_ingested);
  EXPECT_EQ(counter_or_zero(snap, "stream.rows_quarantined"),
            run.stats.rows_quarantined);
  for (const auto& [reason, count] : run.stats.quarantine_reasons) {
    EXPECT_EQ(counter_or_zero(snap, "stream.quarantine." + reason), count)
        << reason;
  }
  EXPECT_EQ(counter_or_zero(snap, "drift.detected"),
            run.stats.drift_detections);
  EXPECT_EQ(counter_or_zero(snap, "stream.rows_discarded_on_drift"),
            run.stats.rows_discarded_on_drift);
  EXPECT_EQ(counter_or_zero(snap, "stream.refits_attempted"),
            run.stats.refits_attempted);
  EXPECT_EQ(counter_or_zero(snap, "stream.refits_published"),
            run.stats.refits_published);
  EXPECT_EQ(counter_or_zero(snap, "drift.refit_rejected"),
            run.stats.refits_rejected + run.stats.refits_failed);
  EXPECT_EQ(counter_or_zero(snap, "registry.swaps"),
            run.stats.refits_published);
  EXPECT_EQ(counter_or_zero(snap, "registry.refits"),
            run.stats.refits_published);
}

TEST(Golden, StreamRenderingIsDeterministic) {
  const std::string a = run_stream_campaign().json;
  const std::string b = run_stream_campaign().json;
  EXPECT_EQ(a, b);
}

TEST(Golden, StreamMatchesCommittedSnapshot) {
  const StreamRun run = run_stream_campaign();
  const auto path = stream_golden_path();

  const char* update = std::getenv("MPICP_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << run.json;
    GTEST_SKIP() << "golden snapshot rewritten at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << path
      << " — generate it with MPICP_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(run.json, want.str())
      << "stream campaign outcome drifted from the committed snapshot; "
         "if the change is intentional, refresh with MPICP_UPDATE_GOLDEN=1 "
         "and commit the diff";
}

// Rejected-refit variant: the same campaign, but every fit during the
// post-shift stretch is forced to fail. The incumbent bank must keep
// serving (version pinned), the failure/backoff ledger must reconcile
// exactly, and clearing the faults must let the pipeline self-heal.
TEST(Golden, StreamRejectedRefitKeepsIncumbent) {
  metrics::Registry::instance().reset();
  support::trace::reset();

  bench::MeasurementStream stream(golden_stream_spec());
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, golden_stream_options());
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};

  for (int i = 0; i < 600; ++i) {
    (void)pipeline.push_row(key, stream.next().text);
  }
  const std::uint64_t incumbent = registry.version(key);
  ASSERT_GT(incumbent, 0u);

  {
    fi::ScopedFaults faults({.fit_failures = {
        {1, 1000}, {2, 1000}, {3, 1000}, {4, 1000}}});
    for (int i = 0; i < 1200; ++i) {
      (void)pipeline.push_row(key, stream.next().text);
    }
  }
  const auto mid = pipeline.stats();
  EXPECT_EQ(mid.refits_published, 1u);
  EXPECT_GE(mid.refits_failed, 1u);
  EXPECT_EQ(registry.version(key), incumbent)
      << "a failed refit must never unseat the incumbent";

  // Counters reconcile exactly with the attempt ledger.
  const metrics::Snapshot snap = metrics::Registry::instance().snapshot();
  EXPECT_EQ(counter_or_zero(snap, "stream.refits_attempted"),
            mid.refits_attempted);
  EXPECT_EQ(counter_or_zero(snap, "drift.refit_rejected"),
            mid.refits_rejected + mid.refits_failed);
  EXPECT_EQ(mid.refits_attempted,
            mid.refits_published + mid.refits_rejected + mid.refits_failed);

  // Self-healing: faults gone, the next due refit swaps a fresh bank in.
  for (int i = 0; i < 1200; ++i) {
    (void)pipeline.push_row(key, stream.next().text);
  }
  EXPECT_EQ(pipeline.stats().refits_published, 2u);
  EXPECT_NE(registry.version(key), incumbent);
}

// ---- rule distillation ----------------------------------------------------
//
// The third golden: a fixed-seed Bcast distillation (DESIGN.md §14).
// The same synthetic campaign as the pipeline golden is fitted, compiled
// and distilled into a rule table; the snapshot byte-pins the tree shape
// (node/leaf counts), the empirical agreement, the table's selection
// surface over the 36-point unseen grid, and an FNV-1a hash of the
// emitted C source — so any drift in the split search, the lowering or
// the code generator lands as a reviewable diff.

struct DistillRun {
  tune::RuleDistillation dist;
  std::string c_source;
  std::string json;
};

DistillRun run_distill() {
  DistillRun run;
  const bench::Dataset ds = make_synthetic(1);
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  (void)selector.fit(ds, {2, 4, 8, 16, 32});
  const std::vector<bench::Instance> grid = ds.instances();
  run.dist = selector.distill(grid, {.max_depth = 12});
  run.c_source = run.dist.rules.to_c_code("mpicp_select_bcast_hydra");

  std::ostringstream os;
  os.precision(17);  // doubles round-trip exactly
  os << "{\n";
  os << "  \"distill\": {\n";
  os << "    \"grid_points\": " << run.dist.grid_points << ",\n";
  os << "    \"tree_nodes\": " << run.dist.rules.num_nodes() << ",\n";
  os << "    \"tree_leaves\": " << run.dist.rules.num_leaves() << ",\n";
  os << "    \"agreement\": " << run.dist.agreement << "\n  },\n";
  os << "  \"surface\": [";
  bool first = true;
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        os << (first ? "" : ",") << "\n    {\"nodes\": " << n
           << ", \"ppn\": " << ppn << ", \"msize\": " << m
           << ", \"uid\": " << run.dist.table.uid_for({n, ppn, m}) << "}";
        first = false;
      }
    }
  }
  os << "\n  ],\n";
  os << "  \"c_source_fnv1a64\": \"" << std::hex
     << ml::io::fnv1a64(run.c_source) << std::dec << "\"\n}\n";
  run.json = os.str();
  return run;
}

std::filesystem::path distill_golden_path() {
  return std::filesystem::path(MPICP_GOLDEN_DIR) / "rule_distill.json";
}

// The acceptance reconciliation: tree and table are the same classifier
// on the surface, and an uncapped-enough tree reproduces the bank.
TEST(Golden, DistillTreeAndTableAgreeOnSurface) {
  const DistillRun run = run_distill();
  EXPECT_EQ(run.dist.agreement, 1.0);
  EXPECT_EQ(run.dist.table.agreement(), run.dist.agreement);
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        EXPECT_EQ(run.dist.table.uid_for({n, ppn, m}),
                  run.dist.rules.uid_for({n, ppn, m}))
            << "n=" << n << " ppn=" << ppn << " m=" << m;
      }
    }
  }
}

TEST(Golden, DistillRenderingIsDeterministic) {
  const std::string a = run_distill().json;
  const std::string b = run_distill().json;
  EXPECT_EQ(a, b);
}

TEST(Golden, DistillMatchesCommittedSnapshot) {
  const DistillRun run = run_distill();
  const auto path = distill_golden_path();

  const char* update = std::getenv("MPICP_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << run.json;
    GTEST_SKIP() << "golden snapshot rewritten at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << path
      << " — generate it with MPICP_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(run.json, want.str())
      << "distillation outcome drifted from the committed snapshot; if "
         "the change is intentional, refresh with MPICP_UPDATE_GOLDEN=1 "
         "and commit the diff";
}

}  // namespace
}  // namespace mpicp
