// Continuous retraining: the producer/consumer loop that closes the
// production lifecycle (DESIGN.md §13).
//
// A StreamPipeline consumes measurement rows one at a time — textual
// CSV rows from a live campaign, or already-parsed Records — and keeps
// the BankRegistry's served banks matched to the machine the rows come
// from:
//
//   row -> tolerant validation (quarantine, never poison the window)
//       -> bounded sliding window + holdout slice per BankKey
//       -> drift detection against the currently served bank
//       -> [drift] discard the stale window, re-accumulate,
//          refit -> validate on the holdout -> hot swap or reject
//
// Serving never stops: selections go through the registry's RCU
// snapshots, a refit publishes (or is rejected) while readers keep
// answering from the incumbent, and refit storms are rate-limited with
// exponential backoff. The pump itself is serialized: push()/push_row()
// take the pipeline mutex, so concurrent producers interleave whole
// rows (fits inside refits still use the support/parallel pool and
// stay bit-identical at any MPICP_THREADS).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/thread_safety.hpp"
#include "tune/drift.hpp"
#include "tune/registry.hpp"

namespace mpicp::tune {

struct StreamOptions {
  sim::MpiLib lib = sim::MpiLib::kOpenMPI;
  SelectorOptions selector;
  DriftOptions drift;
  bench::IngestOptions ingest;

  /// Per-key training window: oldest accepted rows are evicted beyond
  /// this (the holdout slice is bounded at window_capacity /
  /// holdout_every alongside).
  std::size_t window_capacity = 2048;
  /// A refit needs at least this many windowed rows (training slice +
  /// holdout) — both for the bootstrap fit and after a drift discard.
  std::size_t min_refit_rows = 192;
  /// Every holdout_every-th accepted row goes to the holdout slice
  /// (never trained on) — the validation set refits must win on.
  std::size_t holdout_every = 5;
  /// A candidate is published only when its holdout error does not
  /// exceed the incumbent's times this factor.
  double accept_tolerance = 1.02;
  /// Minimum accepted rows between consecutive refit attempts on one
  /// key — the base rate limit against refit storms.
  std::uint64_t refit_cooldown = 64;
  /// Exponential backoff after a failed or rejected refit: wait
  /// backoff_initial accepted rows, then x backoff_multiplier per
  /// consecutive failure, capped at backoff_max.
  std::uint64_t backoff_initial = 128;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max = 8192;
};

class StreamPipeline {
 public:
  StreamPipeline(BankRegistry& registry, StreamOptions options = {});

  /// What one pushed row did to the pipeline.
  struct RowOutcome {
    bool ingested = false;          ///< accepted into the window
    std::string quarantine_reason;  ///< non-empty when quarantined
    DriftSignal drift = DriftSignal::kNone;  ///< first alarm this row
    bool refit_attempted = false;
    bool published = false;  ///< a refit hot-swapped a new bank version
    bool rejected = false;   ///< a refit was declined or failed
  };

  /// Feed one textual measurement row ("uid,nodes,ppn,msize,time_us").
  /// Structurally bad rows are quarantined with read_csv-style reasons;
  /// parsed rows continue through push().
  [[nodiscard]] RowOutcome push_row(const BankKey& key,
                                    const std::string& row_text);

  /// Feed one parsed observation. Validation, windowing, drift
  /// detection and (when due) refit-and-swap all happen on the calling
  /// thread.
  [[nodiscard]] RowOutcome push(const BankKey& key, const bench::Record& rec);

  /// Deterministic pipeline accounting (no timings — byte-pinnable).
  struct Stats {
    std::uint64_t rows_seen = 0;
    std::uint64_t rows_ingested = 0;
    std::uint64_t rows_quarantined = 0;
    std::map<std::string, std::uint64_t> quarantine_reasons;
    std::uint64_t drift_detections = 0;
    /// rows_seen at each drift detection, in order.
    std::vector<std::uint64_t> detection_rows;
    /// Stale windowed rows discarded when drift was detected.
    std::uint64_t rows_discarded_on_drift = 0;
    std::uint64_t refits_attempted = 0;
    std::uint64_t refits_published = 0;
    std::uint64_t refits_rejected = 0;  ///< holdout validation declined
    std::uint64_t refits_failed = 0;    ///< the fit itself failed
    std::uint64_t backoff_skips = 0;    ///< refit due but backoff gated it
    std::uint64_t window_evictions = 0;
  };
  /// Point-in-time copy of the pipeline accounting, taken under the
  /// pump lock so a concurrent push never tears it.
  Stats stats() const;

  std::size_t window_size(const BankKey& key) const;
  std::size_t holdout_size(const BankKey& key) const;
  const StreamOptions& options() const { return options_; }

 private:
  struct KeyState {
    std::deque<bench::Record> window;   ///< training slice
    std::deque<bench::Record> holdout;  ///< validation slice
    DriftDetector detector;
    std::uint64_t accepted = 0;         ///< rows windowed for this key
    bool pending_refit = false;         ///< drift raised, refit owed
    bool attempted_before = false;
    std::uint64_t last_attempt_at = 0;  ///< accepted count at last attempt
    std::uint64_t backoff = 0;          ///< current backoff span (rows)
    std::uint64_t backoff_until = 0;    ///< accepted count gate
  };

  [[nodiscard]] RowOutcome push_locked(const BankKey& key,
                                       const bench::Record& rec)
      MPICP_REQUIRES(mu_);
  void ingest(KeyState& state, const bench::Record& rec)
      MPICP_REQUIRES(mu_);
  void observe_error(KeyState& state, const BankKey& key,
                     const bench::Record& rec, RowOutcome* out)
      MPICP_REQUIRES(mu_);
  void maybe_refit(KeyState& state, const BankKey& key, RowOutcome* out)
      MPICP_REQUIRES(mu_);
  /// Mean relative holdout error of `bank`; unusable predictions carry
  /// a fixed penalty so a bank that cannot serve the holdout loses.
  /// Needs no capability: it runs inside the registry's validator
  /// callback, which the analysis sees without the pump's context.
  double holdout_error(const KeyState& state, const CompiledBank& bank) const;

  BankRegistry& registry_;
  /// Validated by the constructor; immutable afterwards.
  StreamOptions options_;  // mpicp-lint: allow(lock-discipline)
  /// Serializes the pump: whole rows interleave, never their steps.
  mutable support::Mutex mu_;
  std::map<BankKey, KeyState> states_ MPICP_GUARDED_BY(mu_);
  Stats stats_ MPICP_GUARDED_BY(mu_);
  /// Scratch for per-row predictions, reused across pushes.
  mutable std::vector<Selector::Prediction> pred_scratch_
      MPICP_GUARDED_BY(mu_);
};

}  // namespace mpicp::tune
