// Fault-injection tests for the ingest → fit → select degradation paths.
//
// Every test follows the same contract: faults are injected with the
// seeded harness (support/faultinject), the pipeline must complete
// without throwing, and the health reports (IngestReport / FitReport)
// must account for every injected fault *exactly* — nothing silently
// dropped, nothing double-counted.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "collbench/dataset.hpp"
#include "ml/io.hpp"
#include "ml/learner.hpp"
#include "simmpi/coll/decision.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/rng.hpp"
#include "tune/config_writer.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

namespace fi = support::faultinject;

/// Synthetic Bcast-shaped dataset with three crossing algorithms
/// (latency-optimal, bandwidth-optimal, dominated).
bench::Dataset make_synthetic(std::uint64_t seed = 1) {
  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(seed);
  for (const int n : {2, 4, 8, 16, 32}) {
    for (const int ppn : {1, 4, 8}) {
      const double p = n * ppn;
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{4096}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const double md = static_cast<double>(m);
        const double t1 = 10.0 * std::log2(p + 1) + 0.01 * md;
        const double t2 = 2.0 * p + 0.001 * md;
        const double t3 = 50.0 + 0.01 * md + p;
        for (int rep = 0; rep < 3; ++rep) {
          ds.add({1, n, ppn, m, rng.lognormal_median(t1, 0.05)});
          ds.add({2, n, ppn, m, rng.lognormal_median(t2, 0.05)});
          ds.add({3, n, ppn, m, rng.lognormal_median(t3, 0.05)});
        }
      }
    }
  }
  return ds;
}

const std::vector<int> kTrainNodes = {2, 4, 8, 16, 32};

std::filesystem::path temp_csv(const std::string& stem) {
  return std::filesystem::temp_directory_path() / (stem + ".csv");
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

// ---- CSV ingest quarantine ----------------------------------------------

/// Injected fault kind -> the quarantine reason ingest must book it
/// under (dropped rows are invisible to ingest and map to nothing).
struct KindMapping {
  const char* injected;
  const char* reason;
};
constexpr KindMapping kKindMap[] = {
    {"nan-value", "non-finite time"},
    {"negative-value", "non-positive time"},
    {"outlier-value", "implausible time"},
    {"malformed-token", "unparseable field"},
    {"truncated-row", "row width mismatch"},
};

struct QuarantineCase {
  double fault_rate;
  std::uint64_t seed;
};

class CsvQuarantine : public ::testing::TestWithParam<QuarantineCase> {};

TEST_P(CsvQuarantine, InjectedFaultsExactlyAccounted) {
  const auto [fault_rate, seed] = GetParam();
  const bench::Dataset ds = make_synthetic();
  const auto path = temp_csv("mpicp_faults_quarantine");
  ds.save_csv(path);

  fi::CsvFaultLog log;
  const std::string corrupted = fi::corrupt_csv(
      slurp(path),
      {.fault_rate = fault_rate, .value_column = 4, .seed = seed}, &log);
  spit(path, corrupted);

  bench::IngestReport report;
  const bench::Dataset loaded = bench::Dataset::load_csv_tolerant(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &report);
  std::filesystem::remove(path);

  EXPECT_EQ(log.rows_total, ds.num_records());
  // Dropped rows never reach ingest; every other line must be seen.
  EXPECT_EQ(report.rows_seen, log.rows_total - log.rows_dropped);
  // Every surviving faulted row is quarantined, every clean row kept.
  EXPECT_EQ(report.rows_quarantined, log.rows_faulted - log.rows_dropped);
  EXPECT_EQ(report.rows_ingested, log.rows_total - log.rows_faulted);
  EXPECT_EQ(report.rows_seen,
            report.rows_ingested + report.rows_quarantined);
  EXPECT_EQ(loaded.num_records(), report.rows_ingested);
  // Per-kind accounting: each injected kind books under its one reason.
  for (const KindMapping& map : kKindMap) {
    const auto injected = log.by_kind.find(map.injected);
    const auto booked = report.reasons.find(map.reason);
    const std::size_t want =
        injected == log.by_kind.end() ? 0 : injected->second;
    const std::size_t got =
        booked == report.reasons.end() ? 0 : booked->second;
    EXPECT_EQ(got, want) << map.injected << " -> " << map.reason;
  }
  // mpicp-lint: allow(no-float-eq) — test parameter, not computed
  if (fault_rate == 0.0) {
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(loaded.num_records(), ds.num_records());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, CsvQuarantine,
    ::testing::Values(QuarantineCase{0.0, 1}, QuarantineCase{0.1, 7},
                      QuarantineCase{0.3, 42}, QuarantineCase{1.0, 3}));

TEST(CsvQuarantine, CleanFileMatchesStrictLoad) {
  const bench::Dataset ds = make_synthetic();
  const auto path = temp_csv("mpicp_faults_clean");
  ds.save_csv(path);
  bench::IngestReport report;
  const bench::Dataset tolerant = bench::Dataset::load_csv_tolerant(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &report);
  const bench::Dataset strict = bench::Dataset::load_csv(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra");
  std::filesystem::remove(path);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(tolerant.num_records(), strict.num_records());
  for (std::size_t i = 0; i < strict.num_records(); ++i) {
    EXPECT_EQ(tolerant.records()[i].uid, strict.records()[i].uid);
    EXPECT_DOUBLE_EQ(tolerant.records()[i].time_us,
                     strict.records()[i].time_us);
  }
}

// ---- fit fallback chain ---------------------------------------------------

TEST(FitFallback, ForcedFailureFallsBackToKnn) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  {
    fi::ScopedFaults faults({.fit_failures = {{2, 1}}});
    ASSERT_EQ(selector.fit(ds, kTrainNodes).uids_total(), 3u);
  }
  ASSERT_EQ(selector.uids(), (std::vector<int>{1, 2, 3}));
  const tune::FitReport& report = selector.fit_report();
  ASSERT_EQ(report.uids_total(), 3u);
  EXPECT_EQ(report.uids_clean(), 2u);
  EXPECT_EQ(report.uids_fallback(), 1u);
  EXPECT_EQ(report.uids_unusable(), 0u);
  const tune::FitOutcome& o = report.outcomes[1];
  EXPECT_EQ(o.uid, 2);
  EXPECT_EQ(o.learner, "knn");
  EXPECT_EQ(o.fallback_depth, 1);
  EXPECT_NE(o.error.find("fault injection"), std::string::npos);
  // The degraded bank still selects sensibly on every instance.
  EXPECT_GT(selector.select_uid({6, 2, 65536}), 0);
}

TEST(FitFallback, DoubleFailureLandsOnMedian) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  {
    fi::ScopedFaults faults({.fit_failures = {{2, 2}}});
    ASSERT_EQ(selector.fit(ds, kTrainNodes).uids_total(), 3u);
  }
  const tune::FitOutcome& o = selector.fit_report().outcomes[1];
  EXPECT_EQ(o.learner, "median");
  EXPECT_EQ(o.fallback_depth, 2);
  // The median model predicts a constant, finite, positive time.
  const double t = selector.predicted_time_us(2, {6, 2, 65536});
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(t, selector.predicted_time_us(2, {32, 8, 64}));
}

TEST(FitFallback, WholeChainFailureExcludesUid) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  {
    fi::ScopedFaults faults({.fit_failures = {{2, 3}}});
    ASSERT_EQ(selector.fit(ds, kTrainNodes).uids_total(), 3u);
  }
  EXPECT_EQ(selector.uids(), (std::vector<int>{1, 3}));
  const tune::FitReport& report = selector.fit_report();
  EXPECT_EQ(report.uids_unusable(), 1u);
  EXPECT_FALSE(report.outcomes[1].usable());
  // Selection proceeds over the remaining uids.
  const int uid = selector.select_uid({6, 2, 65536});
  EXPECT_TRUE(uid == 1 || uid == 3);
}

TEST(FitFallback, AllUidsUnfittableThrows) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  fi::ScopedFaults faults(
      {.fit_failures = {{1, 3}, {2, 3}, {3, 3}}});
  EXPECT_THROW((void)selector.fit(ds, kTrainNodes), Error);
}

TEST(FitFallback, CorruptRowsScreenedPerUid) {
  bench::Dataset ds = make_synthetic();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Plant corrupt in-memory observations on uid 1 only (the boundary a
  // fault-injecting generator would hit).
  ds.add_unchecked({1, 4, 4, 4096, nan});
  ds.add_unchecked({1, 8, 4, 4096, -5.0});
  ds.add_unchecked({1, 16, 4, 4096, 0.0});
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  const tune::FitReport& report = selector.fit(ds, kTrainNodes);
  ASSERT_EQ(report.uids_total(), 3u);
  EXPECT_EQ(report.outcomes[0].rows_dropped, 3u);
  EXPECT_EQ(report.outcomes[1].rows_dropped, 0u);
  EXPECT_EQ(report.outcomes[2].rows_dropped, 0u);
  EXPECT_EQ(report.rows_dropped(), 3u);
  // uid 1 still fits (on its clean rows) with the configured learner.
  EXPECT_EQ(report.outcomes[0].learner, "gam");
  EXPECT_TRUE(report.degraded());
}

TEST(FitFallback, UidWithNoValidRowsIsUnusable) {
  bench::Dataset ds = make_synthetic();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // A uid whose every observation is corrupt: all rows screened, no fit.
  for (const int n : kTrainNodes) {
    ds.add_unchecked({9, n, 4, 4096, nan});
  }
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  const tune::FitReport& report = selector.fit(ds, kTrainNodes);
  EXPECT_EQ(selector.uids(), (std::vector<int>{1, 2, 3}));
  const tune::FitOutcome& o = report.outcomes.back();
  EXPECT_EQ(o.uid, 9);
  EXPECT_FALSE(o.usable());
  EXPECT_EQ(o.error, "no valid training rows");
}

TEST(FitFallback, ZeroFaultFitIsCleanAndUnchanged) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector hardened(tune::SelectorOptions{.learner = "gam"});
  const tune::FitReport& report = hardened.fit(ds, kTrainNodes);
  EXPECT_FALSE(report.degraded());
  EXPECT_EQ(report.uids_clean(), 3u);
  // And the report totals are internally consistent.
  EXPECT_EQ(report.uids_clean() + report.uids_fallback() +
                report.uids_unusable(),
            report.uids_total());
}

// ---- prediction sanitization ---------------------------------------------

TEST(PredictSanitize, NonFinitePredictionExcludedFromArgmin) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, kTrainNodes).degraded());

  const bench::Instance inst{6, 2, 65536};
  const int honest = selector.select_uid(inst);

  // Poison the honest winner's prediction; the argmin must move on.
  for (const double poison :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), -1.0}) {
    fi::ScopedFaults faults({.forced_predictions = {{honest, poison}}});
    const auto predictions = selector.predict_all(inst);
    for (const auto& p : predictions) {
      EXPECT_EQ(p.usable, p.uid != honest);
    }
    const int chosen = selector.select_uid(inst);
    EXPECT_NE(chosen, honest);
    EXPECT_GT(chosen, 0);
  }
}

TEST(PredictSanitize, AllPredictionsPoisonedFallsBackToDefault) {
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  ASSERT_FALSE(selector.fit(ds, kTrainNodes).degraded());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  fi::ScopedFaults faults(
      {.forced_predictions = {{1, nan}, {2, nan}, {3, nan}}});
  const bench::Instance inst{6, 2, 65536};
  EXPECT_THROW((void)selector.select_uid(inst), Error);
  const int uid = selector.select_uid_or_default(
      inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
  EXPECT_EQ(uid, sim::library_default_uid(sim::MpiLib::kOpenMPI,
                                          sim::Collective::kBcast,
                                          inst.nodes * inst.ppn,
                                          inst.msize));
  // The fallback uid is a real registry configuration.
  EXPECT_NO_THROW(sim::config_by_uid(sim::MpiLib::kOpenMPI,
                                     sim::Collective::kBcast, uid));
}

TEST(PredictSanitize, LibraryDefaultValidForEveryLibAndCollective) {
  for (const auto lib : {sim::MpiLib::kOpenMPI, sim::MpiLib::kIntelMPI}) {
    for (const auto coll :
         {sim::Collective::kBcast, sim::Collective::kAllreduce,
          sim::Collective::kAlltoall}) {
      for (const int p : {2, 8, 64, 512}) {
        for (const std::size_t m :
             {std::size_t{8}, std::size_t{65536}, std::size_t{8u << 20}}) {
          const int uid = sim::library_default_uid(lib, coll, p, m);
          EXPECT_NO_THROW(sim::config_by_uid(lib, coll, uid))
              << to_string(lib) << "/" << to_string(coll) << " p=" << p
              << " m=" << m;
        }
      }
    }
  }
}

// ---- model stream corruption ---------------------------------------------

class ModelCorruption : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelCorruption, TruncatedAndBitFlippedStreamsRejected) {
  // Fit the learner on a small synthetic problem and serialize it.
  support::Xoshiro256 rng(11);
  ml::Matrix x(120, 3);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.uniform(0.0, 20.0);
    x(i, 1) = rng.uniform(1.0, 32.0);
    x(i, 2) = rng.uniform(1.0, 16.0);
    y[i] = std::exp(0.1 * x(i, 0)) + 0.5 * x(i, 1);
  }
  auto model = ml::make_regressor(GetParam());
  model->fit(x, y);
  std::ostringstream os;
  ml::save_regressor(os, *model);
  const std::string clean = os.str();

  // Clean stream loads and predicts identically.
  {
    std::istringstream is(clean);
    const auto restored = ml::load_regressor(is);
    EXPECT_DOUBLE_EQ(restored->predict_one(x.row(0)),
                     model->predict_one(x.row(0)));
  }

  // Truncation at several depths: always a ParseError, never a silently
  // wrong model.
  for (const double frac : {0.2, 0.5, 0.9}) {
    const std::string cut = fi::corrupt_stream(
        clean, {.truncate_at = static_cast<std::ptrdiff_t>(
                    static_cast<double>(clean.size()) * frac)});
    std::istringstream is(cut);
    EXPECT_THROW(ml::load_regressor(is), ParseError)
        << GetParam() << " truncated at " << frac;
  }

  // Bit-flips in the payload: the checksum must catch them.
  const std::size_t header_end = clean.find('\n') + 1;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::string body = fi::corrupt_stream(
        clean.substr(header_end), {.char_flips = 1, .seed = seed});
    std::istringstream is(clean.substr(0, header_end) + body);
    EXPECT_THROW(ml::load_regressor(is), ParseError)
        << GetParam() << " flip seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLearners, ModelCorruption,
                         ::testing::ValuesIn(ml::kLearnerNames));

TEST(ModelCorruption, LegacyV1EnvelopeStillLoads) {
  // Pre-checksum banks must keep loading (the deployment split caches
  // model files on disk).
  std::stringstream os;
  os << "regressor median\n";
  os << "median\n42.5\n";
  const auto model = ml::load_regressor(os);
  EXPECT_EQ(model->name(), "median");
  EXPECT_DOUBLE_EQ(model->predict_one(std::vector<double>{1.0, 2.0}),
                   42.5);
}

// ---- io token readers (satellite) ----------------------------------------

TEST(IoReaders, ExpectTagDistinguishesEofFromMismatch) {
  std::istringstream empty("");
  try {
    ml::io::expect_tag(empty, "header");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unexpected end of stream"),
              std::string::npos);
  }
  std::istringstream wrong("footer");
  try {
    ml::io::expect_tag(wrong, "header");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("got 'footer'"),
              std::string::npos);
  }
}

TEST(IoReaders, ReadValueReportsTruncationAndFailedStreams) {
  std::istringstream empty("");
  EXPECT_THROW(ml::io::read_value<int>(empty), ParseError);
  std::istringstream garbage("not-a-number");
  EXPECT_THROW(ml::io::read_value<int>(garbage), ParseError);
  // A stream that already failed must not hand back defaults.
  std::istringstream dead("x y");
  int sink = 0;
  dead >> sink;  // fails, leaves failbit
  EXPECT_THROW(ml::io::read_value<int>(dead), ParseError);
}

TEST(IoReaders, CheckParseMacroThrowsParseError) {
  EXPECT_NO_THROW(MPICP_CHECK_PARSE(1 + 1 == 2, "fine"));
  try {
    MPICP_CHECK_PARSE(false, "bad input");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("bad input"), std::string::npos);
  }
}

// ---- end-to-end acceptance ------------------------------------------------

TEST(EndToEnd, CorruptedCampaignCompletesAndAccounts) {
  // The acceptance criterion: 10% row corruption + one uid's fit forced
  // to fail; the full Bcast train -> select run completes, the argmin
  // never returns a uid with an unusable prediction, and the reports
  // account for every injected fault.
  const bench::Dataset pristine = make_synthetic();
  const auto path = temp_csv("mpicp_faults_e2e");
  pristine.save_csv(path);

  fi::CsvFaultLog log;
  const std::string corrupted = fi::corrupt_csv(
      slurp(path), {.fault_rate = 0.1, .value_column = 4, .seed = 2026},
      &log);
  spit(path, corrupted);
  ASSERT_GT(log.rows_faulted, 0u);

  bench::IngestReport ingest;
  const bench::Dataset ds = bench::Dataset::load_csv_tolerant(
      path, "synth", sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
      "Hydra", &ingest);
  std::filesystem::remove(path);
  EXPECT_EQ(ingest.rows_quarantined, log.rows_faulted - log.rows_dropped);
  EXPECT_EQ(ingest.rows_ingested, log.rows_total - log.rows_faulted);

  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  fi::ScopedFaults faults({.fit_failures = {{1, 1}}});
  const tune::FitReport& fit = selector.fit(ds, kTrainNodes);

  EXPECT_TRUE(fit.degraded());
  EXPECT_EQ(fit.uids_fallback(), 1u);
  EXPECT_EQ(fit.outcomes[0].uid, 1);
  EXPECT_EQ(fit.outcomes[0].learner, "knn");
  // The report must cover *every* uid the dataset contains — no uid can
  // vanish from the accounting — and the three outcome classes must
  // partition that total exactly.
  EXPECT_EQ(fit.uids_total(), ds.uids().size());
  EXPECT_EQ(fit.uids_clean() + fit.uids_fallback() + fit.uids_unusable(),
            fit.uids_total());

  // Select across the whole instance grid; every decision must be a
  // usable (finite, non-negative) prediction from the bank.
  for (const int n : {3, 6, 12, 24}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536},
            std::uint64_t{1048576}}) {
        const bench::Instance inst{n, ppn, m};
        const int uid = selector.select_uid_or_default(
            inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast);
        ASSERT_GT(uid, 0);
        const auto predictions = selector.predict_all(inst);
        for (const auto& p : predictions) {
          if (p.uid != uid) continue;
          EXPECT_TRUE(p.usable);
          EXPECT_TRUE(std::isfinite(p.time_us));
          EXPECT_GE(p.time_us, 0.0);
        }
      }
    }
  }

  // The tuning-file path (the deployment artifact) also survives.
  const tune::TuningConfig config = tune::build_tuning_config(
      selector, sim::MpiLib::kOpenMPI, sim::Collective::kBcast, 12, 8,
      {64, 4096, 65536, 1048576});
  EXPECT_FALSE(config.rules.empty());
}

TEST(EndToEnd, ZeroFaultRunMatchesPrePipelineBehaviour) {
  // With no faults armed, the hardened pipeline must make exactly the
  // selections the pre-robustness code made (the screening is a no-op on
  // valid data and the fallback chain never engages).
  const bench::Dataset ds = make_synthetic();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  EXPECT_FALSE(selector.fit(ds, kTrainNodes).degraded());
  for (const int n : {3, 6, 12}) {
    for (const std::uint64_t m : {std::uint64_t{64}, std::uint64_t{65536}}) {
      const bench::Instance inst{n, 2, m};
      const int strict = selector.select_uid(inst);
      EXPECT_EQ(strict,
                selector.select_uid_or_default(
                    inst, sim::MpiLib::kOpenMPI, sim::Collective::kBcast));
      for (const auto& p : selector.predict_all(inst)) {
        EXPECT_TRUE(p.usable);
      }
    }
  }
}

}  // namespace
}  // namespace mpicp
