// Cross-cutting consistency properties of the simulation stack:
// tracking vs. fast-mode timing equivalence, rotation invariances,
// noise/runner reproducibility across generation orders, and default
// decision-logic sanity across the whole instance space.
#include <gtest/gtest.h>

#include "simmpi/coll/alltoall.hpp"
#include "simmpi/coll/bcast.hpp"
#include "simmpi/coll/datainit.hpp"
#include "simmpi/coll/decision.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"

namespace mpicp::sim {
namespace {

TEST(Consistency, TrackingModeDoesNotChangeTimings) {
  // Data tracking must be an observer: for algorithms whose program is
  // identical in both modes, the makespan must match bit-for-bit.
  const Comm comm(4, 3);
  MachineDesc desc = hydra_machine();
  for (const auto& cfg :
       algorithm_configs(MpiLib::kOpenMPI, Collective::kBcast)) {
    Network net(desc, 4, 3);
    Executor exec(net);
    auto fast = build_algorithm(MpiLib::kOpenMPI, Collective::kBcast, cfg,
                                comm, 32768, 0, false);
    const double t_fast = exec.run(fast.programs).makespan_us;
    auto tracked = build_algorithm(MpiLib::kOpenMPI, Collective::kBcast,
                                   cfg, comm, 32768, 0, true);
    DataStore store = make_initial_store(Collective::kBcast, comm.size(),
                                         tracked.blocks_per_rank, 0);
    const double t_tracked = exec.run(tracked.programs, &store).makespan_us;
    EXPECT_DOUBLE_EQ(t_fast, t_tracked) << cfg.label();
  }
}

TEST(Consistency, BruckFastModeMatchesTrackingModeBytes) {
  // Bruck's packed fast-mode program moves the same byte volume through
  // the same round structure as the per-block tracking program, so the
  // makespans must agree within the per-message overhead difference.
  const Comm comm(6, 2);
  MachineDesc desc = hydra_machine();
  for (const int radix : {2, 4}) {
    for (const std::uint64_t m : {64ull, 2048ull}) {
      Network net(desc, 6, 2);
      Executor exec(net);
      auto fast = alltoall_bruck(comm, m, radix, false);
      auto tracked = alltoall_bruck(comm, m, radix, true);
      const double t_fast = exec.run(fast.programs).makespan_us;
      const double t_tracked = exec.run(tracked.programs).makespan_us;
      // Tracking sends each block separately: more per-message latency,
      // same bytes. Expect same order of magnitude, fast <= tracked * 2.
      EXPECT_LE(t_fast, t_tracked * 2.0) << "radix " << radix;
      EXPECT_GE(t_fast, t_tracked * 0.2) << "radix " << radix;
    }
  }
}

TEST(Consistency, BcastCostIndependentOfRootUpToRotation) {
  // With uniform placement (ppn = 1), the rotated binomial broadcast
  // must cost exactly the same for every root.
  const Comm comm(9, 1);
  MachineDesc desc = hydra_machine();
  double t0 = -1.0;
  for (int root = 0; root < comm.size(); ++root) {
    Network net(desc, 9, 1);
    Executor exec(net);
    auto built = bcast_binomial(comm, 4096, 0, root);
    const double t = exec.run(built.programs).makespan_us;
    if (t0 < 0.0) {
      t0 = t;
    } else {
      EXPECT_DOUBLE_EQ(t, t0) << "root " << root;
    }
  }
}

TEST(Consistency, DefaultLogicAgreesWithRegistryParameters) {
  // Every uid returned by the fixed rules must carry the parameters the
  // rule intended (catches registry renumbering regressions).
  const int uid_small = openmpi_default_uid(Collective::kBcast, 64, 128);
  const auto& cfg_small =
      config_by_uid(MpiLib::kOpenMPI, Collective::kBcast, uid_small);
  EXPECT_EQ(cfg_small.name, "binomial");
  EXPECT_EQ(cfg_small.seg_bytes, 0u);

  const int uid_large =
      openmpi_default_uid(Collective::kBcast, 32, 8u << 20);
  const auto& cfg_large =
      config_by_uid(MpiLib::kOpenMPI, Collective::kBcast, uid_large);
  EXPECT_EQ(cfg_large.name, "pipeline");
  EXPECT_EQ(cfg_large.seg_bytes, 128u * 1024);

  const int uid_huge_comm =
      openmpi_default_uid(Collective::kBcast, 512, 8u << 20);
  EXPECT_EQ(config_by_uid(MpiLib::kOpenMPI, Collective::kBcast,
                          uid_huge_comm)
                .name,
            "chain");
}

TEST(Consistency, UidsAreContiguousAndStable) {
  for (const auto lib : {MpiLib::kOpenMPI, MpiLib::kIntelMPI}) {
    for (const auto coll : {Collective::kBcast, Collective::kAllreduce,
                            Collective::kAlltoall}) {
      const auto& configs = algorithm_configs(lib, coll);
      for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(configs[i].uid, static_cast<int>(i) + 1);
        EXPECT_EQ(&config_by_uid(lib, coll, configs[i].uid), &configs[i]);
      }
    }
  }
  // Table II column sanity: the library algorithm counts the paper
  // reports for the suites we model.
  EXPECT_EQ(num_library_algorithms(MpiLib::kOpenMPI, Collective::kBcast),
            9);
  EXPECT_EQ(
      num_library_algorithms(MpiLib::kOpenMPI, Collective::kAllreduce), 7);
  EXPECT_EQ(num_library_algorithms(MpiLib::kIntelMPI, Collective::kBcast),
            12);
  EXPECT_EQ(
      num_library_algorithms(MpiLib::kIntelMPI, Collective::kAllreduce),
      16);
  EXPECT_EQ(
      num_library_algorithms(MpiLib::kIntelMPI, Collective::kAlltoall), 5);
}

}  // namespace
}  // namespace mpicp::sim
