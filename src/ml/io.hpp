// Tiny token-stream helpers for model serialization. The format is
// line-oriented text: human-inspectable, diff-friendly, and exact
// (doubles round-trip via max_digits10).
#pragma once

#include <cstdint>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace mpicp::ml::io {

inline void write_tag(std::ostream& os, const std::string& tag) {
  os << tag << '\n';
}

/// Read one whitespace-delimited token and require it to equal `tag`.
/// Distinguishes a truncated stream from a wrong token — the two need
/// different operator responses (re-transfer vs. format investigation).
inline void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got)) {
    MPICP_RAISE_PARSE("model stream: unexpected end of stream while "
                     "expecting '" + tag + "'");
  }
  if (got != tag) {
    MPICP_RAISE_PARSE("model stream: expected '" + tag + "', got '" + got +
                     "'");
  }
}

template <typename T>
void write_value(std::ostream& os, const T& value) {
  if constexpr (std::is_floating_point_v<T>) {
    os << std::setprecision(std::numeric_limits<T>::max_digits10) << value
       << '\n';
  } else {
    os << value << '\n';
  }
}

template <typename T>
T read_value(std::istream& is) {
  if (is.fail()) {
    // The stream was already dead before this read; without this check a
    // chain of read_value calls after a truncation would silently hand
    // back default-initialized values. (eof alone is fine — the
    // extraction below reports it precisely.)
    MPICP_RAISE_PARSE("model stream: read past a previous failure");
  }
  T value{};
  if (!(is >> value)) {
    if (is.eof()) {
      MPICP_RAISE_PARSE("model stream: unexpected end of stream");
    }
    MPICP_RAISE_PARSE("model stream: malformed value");
  }
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& values) {
  write_value(os, values.size());
  for (const T& v : values) write_value(os, v);
}

template <typename T>
std::vector<T> read_vector(std::istream& is) {
  const auto n = read_value<std::size_t>(is);
  MPICP_CHECK_PARSE(n < (1u << 28), "model stream: implausible vector size");
  std::vector<T> values(n);
  for (auto& v : values) v = read_value<T>(is);
  return values;
}

/// FNV-1a 64-bit — the payload checksum of the regressor-v2 envelope.
/// Not cryptographic; catches the bit-flips and truncations a corrupted
/// model transfer produces.
inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace mpicp::ml::io
