
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collbench/dataset.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/dataset.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/dataset.cpp.o.d"
  "/root/repo/src/collbench/defaults.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/defaults.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/defaults.cpp.o.d"
  "/root/repo/src/collbench/generator.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/generator.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/generator.cpp.o.d"
  "/root/repo/src/collbench/guidelines.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/guidelines.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/guidelines.cpp.o.d"
  "/root/repo/src/collbench/noise.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/noise.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/noise.cpp.o.d"
  "/root/repo/src/collbench/runner.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/runner.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/runner.cpp.o.d"
  "/root/repo/src/collbench/specs.cpp" "src/collbench/CMakeFiles/mpicp_collbench.dir/specs.cpp.o" "gcc" "src/collbench/CMakeFiles/mpicp_collbench.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/mpicp_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mpicp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpicp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
