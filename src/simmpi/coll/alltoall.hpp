// Alltoall algorithm builders.
//
// `bytes` is the per-destination block size (the m the paper's datasets
// sweep). Data-tracking block layout: send blocks [0, p), receive blocks
// [p, 2p); Bruck additionally uses a staging region [2p, 3p).
//
// Bruck builders take a `tracking` flag: with tracking on they move every
// staging block in its own message/copy (exact data-flow validation, used
// by the tests at small scale); with tracking off they model the packed
// aggregate transfers real implementations perform (identical byte
// volume and round structure, used for dataset generation at scale).
#pragma once

#include <cstddef>

#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

/// Post all p-1 irecvs and isends, then wait (MPICH basic linear).
BuiltCollective alltoall_linear(const Comm& comm, std::size_t bytes);

/// p-1 rounds of pairwise exchange with partners (r+k, r-k).
BuiltCollective alltoall_pairwise(const Comm& comm, std::size_t bytes);

/// Bruck's algorithm with configurable radix (>= 2): ceil(log_r p)
/// rounds of packed exchanges, O(p log p) total traffic.
BuiltCollective alltoall_bruck(const Comm& comm, std::size_t bytes,
                               int radix, bool tracking);

/// Linear algorithm with at most `limit` outstanding send/recv pairs
/// (Open MPI's linear_sync flow control).
BuiltCollective alltoall_linear_sync(const Comm& comm, std::size_t bytes,
                                     int limit);

}  // namespace mpicp::sim
