// Model-error view (the "typical ML setting" the paper contrasts with
// its HPC metric in §V): MAE / RMSE / MAPE of the per-uid runtime
// models on the held-out node counts, per learner. Errors are computed
// in log space as well, since runtimes span five orders of magnitude.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "ml/gbt.hpp"
#include "ml/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string dataset = argc > 1 ? argv[1] : "d2";
  const bench::Dataset ds = bench::load_dataset_cached(dataset);
  const bench::NodeSplit split = bench::node_split(ds.machine());

  std::printf("Regression error on held-out nodes, dataset %s\n\n",
              dataset.c_str());
  support::TextTable table(
      {"learner", "MAPE", "RMSE(log t)", "MAE(log t)", "models"});
  for (const std::string learner : {"knn", "gam", "xgboost", "rf",
                                    "linear"}) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    bench::fit_or_warn(selector, ds, split.train_full);
    std::vector<double> truth_log;
    std::vector<double> pred_log;
    std::vector<double> truth;
    std::vector<double> pred;
    for (const bench::Instance& inst : ds.instances()) {
      if (std::find(split.test.begin(), split.test.end(), inst.nodes) ==
          split.test.end()) {
        continue;
      }
      for (const int uid : selector.uids()) {
        if (!ds.has(uid, inst)) continue;
        const double t = ds.time_us(uid, inst);
        const double p = selector.predicted_time_us(uid, inst);
        truth.push_back(t);
        pred.push_back(p);
        truth_log.push_back(std::log(t));
        pred_log.push_back(std::log(p));
      }
    }
    table.add_row({learner,
                   support::format_double(ml::mape(truth, pred), 4),
                   support::format_double(ml::rmse(truth_log, pred_log), 4),
                   support::format_double(ml::mae(truth_log, pred_log), 4),
                   std::to_string(selector.uids().size())});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  // Gain-based feature importance of the boosted-tree models, averaged
  // over the per-uid model bank (the paper: "the message size turned
  // out to be the most important factor").
  std::printf("\nXGBoost gain importance (mean over per-uid models):\n");
  {
    const tune::FeatureOptions fopts;
    std::map<int, std::vector<const bench::Record*>> rows;
    for (const bench::Record& rec : ds.records()) {
      if (std::find(split.train_full.begin(), split.train_full.end(),
                    rec.nodes) != split.train_full.end()) {
        rows[rec.uid].push_back(&rec);
      }
    }
    std::vector<double> acc(4, 0.0);
    for (const auto& [uid, recs] : rows) {
      ml::Matrix x(recs.size(), 4);
      std::vector<double> y(recs.size());
      for (std::size_t i = 0; i < recs.size(); ++i) {
        const auto feat = tune::instance_features(
            {recs[i]->nodes, recs[i]->ppn, recs[i]->msize}, fopts);
        std::copy(feat.begin(), feat.end(), x.row(i).begin());
        y[i] = recs[i]->time_us;
      }
      ml::GradientBoostedTrees model;
      model.fit(x, y);
      const auto imp = model.feature_importance();
      for (std::size_t f = 0; f < imp.size(); ++f) acc[f] += imp[f];
    }
    const char* names[] = {"log2(msize)", "nodes", "ppn", "p=n*ppn"};
    for (std::size_t f = 0; f < 4; ++f) {
      std::printf("  %-12s %.3f\n", names[f],
                  acc[f] / static_cast<double>(rows.size()));
    }
  }
  return 0;
}
