// Tests for decision-rule encoding and the guideline checker.
#include <gtest/gtest.h>

#include <cmath>

#include "collbench/guidelines.hpp"
#include "simnet/machine.hpp"
#include "tune/rulegen.hpp"

namespace mpicp::tune {
namespace {

std::vector<LabeledInstance> threshold_labels() {
  // Ground truth: uid 1 below 4 KiB, uid 2 from 4 KiB on, except at
  // ppn 1 where uid 3 always wins.
  std::vector<LabeledInstance> points;
  for (const int n : {2, 4, 8, 16}) {
    for (const int ppn : {1, 4, 8}) {
      for (const std::uint64_t m : {64u, 1024u, 8192u, 131072u}) {
        int uid = m < 4096 ? 1 : 2;
        if (ppn == 1) uid = 3;
        points.push_back({{n, ppn, m}, uid});
      }
    }
  }
  return points;
}

TEST(Rulegen, PerfectlySeparableGridIsLearnedExactly) {
  const auto points = threshold_labels();
  const DecisionRules rules = DecisionRules::fit(points, {.max_depth = 6});
  EXPECT_DOUBLE_EQ(rules.agreement(points), 1.0);
  // Generalization inside the boxes.
  EXPECT_EQ(rules.uid_for({6, 6, 100}), 1);
  EXPECT_EQ(rules.uid_for({6, 6, 1u << 20}), 2);
  EXPECT_EQ(rules.uid_for({6, 1, 100}), 3);
}

TEST(Rulegen, DepthCapTradesAccuracyForSize) {
  const auto points = threshold_labels();
  const DecisionRules shallow =
      DecisionRules::fit(points, {.max_depth = 1});
  const DecisionRules deep = DecisionRules::fit(points, {.max_depth = 8});
  EXPECT_LE(shallow.num_leaves(), 2);
  EXPECT_GE(deep.agreement(points), shallow.agreement(points));
}

TEST(Rulegen, PureGridYieldsSingleLeaf) {
  std::vector<LabeledInstance> points;
  for (const int n : {2, 4}) points.push_back({{n, 1, 64}, 7});
  const DecisionRules rules = DecisionRules::fit(points);
  EXPECT_EQ(rules.num_leaves(), 1);
  EXPECT_EQ(rules.uid_for({32, 32, 1u << 22}), 7);
}

TEST(Rulegen, CCodeContainsAllLeafUids) {
  const auto points = threshold_labels();
  const DecisionRules rules = DecisionRules::fit(points, {.max_depth = 6});
  const std::string code = rules.to_c_code("select_algo");
  EXPECT_NE(code.find("int select_algo"), std::string::npos);
  EXPECT_NE(code.find("return 1;"), std::string::npos);
  EXPECT_NE(code.find("return 2;"), std::string::npos);
  EXPECT_NE(code.find("return 3;"), std::string::npos);
  EXPECT_NE(code.find("msize <"), std::string::npos);
  EXPECT_NE(code.find("ppn <"), std::string::npos);
}

TEST(Rulegen, RejectsEmptyGrid) {
  EXPECT_THROW(DecisionRules::fit({}), Error);
}

TEST(Rulegen, XorLabelPatternReachesFullAgreement) {
  // No single split improves misclassification on an XOR layout — the
  // fit must still take a tie-split and separate the quadrants one
  // level down instead of terminating impure.
  const std::vector<LabeledInstance> points = {
      {{2, 1, 64}, 1},
      {{2, 8, 64}, 2},
      {{16, 1, 64}, 2},
      {{16, 8, 64}, 1},
  };
  const DecisionRules rules = DecisionRules::fit(points, {.max_depth = 8});
  EXPECT_DOUBLE_EQ(rules.agreement(points), 1.0);
  EXPECT_EQ(rules.num_leaves(), 4);
}

TEST(Rulegen, DuplicateInstancesWithConflictingLabelsTerminate) {
  // Identical feature vectors with different labels admit no separating
  // split; a candidate whose child would hold zero points must be
  // skipped, not recursed on (this used to loop forever with
  // min_points_per_leaf = 0). The node terminates as a majority leaf.
  std::vector<LabeledInstance> points;
  for (int rep = 0; rep < 3; ++rep) points.push_back({{4, 2, 1024}, 1});
  points.push_back({{4, 2, 1024}, 2});
  const DecisionRules rules = DecisionRules::fit(
      points, {.max_depth = 64, .min_points_per_leaf = 0});
  EXPECT_EQ(rules.num_leaves(), 1);
  EXPECT_EQ(rules.uid_for({4, 2, 1024}), 1);
  EXPECT_DOUBLE_EQ(rules.agreement(points), 0.75);
}

TEST(Rulegen, AdjacentDoubleThresholdsCannotRecurseForever) {
  // These two message sizes have *adjacent doubles* as their log2
  // features, and the candidate midpoint rounds onto the lower one —
  // so the "left" child of the only available split holds zero points.
  // The degenerate-split guard must skip that candidate; accepting it
  // used to recurse on an unchanged point set forever.
  constexpr std::uint64_t kLower = 4503599627370507ull;  // 2^52 + 11
  std::vector<LabeledInstance> points;
  points.push_back({{2, 1, kLower}, 1});
  points.push_back({{2, 1, kLower + 1}, 2});
  points.push_back({{2, 1, kLower + 1}, 1});
  const DecisionRules rules = DecisionRules::fit(
      points, {.max_depth = 1024, .min_points_per_leaf = 0});
  // The impure node terminates as a majority leaf.
  EXPECT_EQ(rules.num_leaves(), 1);
  EXPECT_DOUBLE_EQ(rules.agreement(points), 2.0 / 3.0);
}

TEST(Guidelines, ChecksRunAndReportFiniteRatios) {
  const auto results = bench::check_guidelines(
      sim::hydra_machine(), 4, 4, {64, 16384, 1048576});
  EXPECT_EQ(results.size(), 5u * 3u);  // five guidelines, three sizes
  for (const auto& r : results) {
    EXPECT_GT(r.lhs_us, 0.0) << r.guideline;
    EXPECT_GT(r.rhs_us, 0.0) << r.guideline;
    EXPECT_TRUE(std::isfinite(r.factor));
    EXPECT_EQ(r.violated, r.lhs_us > r.rhs_us * 1.10);
  }
}

TEST(Guidelines, GatherNeverLosesToAllgatherBadly) {
  // Structural sanity: gather moves strictly less data than allgather,
  // so the default gather must not lose by an order of magnitude.
  const auto results = bench::check_guidelines(
      sim::hydra_machine(), 8, 4, {1024, 262144});
  for (const auto& r : results) {
    if (r.guideline == "Gather <= Allgather") {
      EXPECT_LT(r.factor, 10.0);
    }
  }
}

}  // namespace
}  // namespace mpicp::tune
