// Self-consistent performance guidelines (PGMPITuneLib; Hunold &
// Carpen-Amarie, HPC Asia'18 — the paper's ref [29]).
//
// A performance guideline states that a collective must not be slower
// than an equivalent composition of other collectives, e.g. an
// MPI_Allreduce should never lose against MPI_Reduce followed by
// MPI_Bcast. Violations expose badly chosen default algorithms — the
// same motivation as the paper's ML selection. This module evaluates the
// classic guidelines on the simulator using the modeled library
// defaults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "simnet/machine.hpp"

namespace mpicp::bench {

struct GuidelineResult {
  std::string guideline;       ///< e.g. "Allreduce <= Reduce + Bcast"
  Instance inst;
  double lhs_us = 0.0;         ///< the monolithic collective (default alg)
  double rhs_us = 0.0;         ///< the composed mock
  bool violated = false;       ///< lhs slower than rhs (beyond tolerance)
  double factor = 1.0;         ///< lhs / rhs
};

/// Evaluate all built-in guidelines for one allocation over the given
/// message sizes. `tolerance` guards against flagging noise-level
/// differences (default: flag only >10 % violations).
[[nodiscard]] std::vector<GuidelineResult> check_guidelines(
    const sim::MachineDesc& machine, int nodes, int ppn,
    const std::vector<std::uint64_t>& msizes, double tolerance = 1.10);

}  // namespace mpicp::bench
