// Seeded, deterministic fault injection for the ingest → fit → select
// pipeline.
//
// Real measurement campaigns produce messy artifacts: benchmark crashes
// leave truncated CSV rows, clock glitches produce negative or absurd
// timings, file transfers corrupt model banks. This module manufactures
// exactly those faults on demand so the degradation paths (tolerant
// ingest, fit fallback chains, prediction sanitization) can be exercised
// and *accounted for* in tests — every injected fault is logged, and the
// pipeline's health reports must add up to the injection log.
//
// Two kinds of injection points:
//
//  * Artifact corruption — pure functions that corrupt textual artifacts
//    (CSV datasets, serialized model streams). Deterministic in the
//    plan's seed; the returned log says what was done where.
//
//  * Process-global sabotage — boundaries with no textual artifact
//    (in-memory fits, predictions) consult a scoped fault table. Off by
//    default with a single atomic check, so production paths pay nothing;
//    tests arm it with ScopedFaults (RAII, like support::ScopedThreads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace mpicp::support::faultinject {

// ---- artifact corruption ------------------------------------------------

/// Row-level CSV fault kinds, cycled deterministically over faulted rows.
/// The labels (csv_fault_label) double as the accounting key faults are
/// logged under.
enum class CsvFault {
  kNaNValue,       ///< value cell replaced by "nan" (parses, fails checks)
  kNegativeValue,  ///< value cell negated
  kOutlierValue,   ///< value cell inflated past any plausible timing
  kMalformedToken, ///< value cell replaced by an unparseable token
  kTruncatedRow,   ///< row cut mid-cell (width mismatch on ingest)
  kDroppedRow,     ///< row removed entirely (a missing uid×instance cell)
};

const char* csv_fault_label(CsvFault kind);

/// The deterministic rotation corrupt_csv walks: the i-th faulted row
/// gets csv_fault_cycle(i), so every kind appears once per six faults.
/// Streaming corruptors share the same rotation for identical
/// accounting semantics.
CsvFault csv_fault_cycle(std::size_t i);

/// Corrupt one CSV data row with `kind` (the row-level primitive behind
/// corrupt_csv, exposed for streaming producers that fault rows one at
/// a time). Returns nullopt when the row is dropped entirely
/// (kDroppedRow).
std::optional<std::string> corrupt_csv_row(const std::string& row,
                                           CsvFault kind,
                                           std::size_t value_column);

struct CsvFaultPlan {
  double fault_rate = 0.1;       ///< fraction of data rows corrupted
  std::size_t value_column = 0;  ///< column hit by the value faults
  std::uint64_t seed = 1;        ///< drives row choice and fault kind
};

/// What corrupt_csv actually did — the ground truth the pipeline's
/// IngestReport is checked against.
struct CsvFaultLog {
  std::size_t rows_total = 0;    ///< data rows in the input
  std::size_t rows_faulted = 0;  ///< rows corrupted (any kind)
  std::size_t rows_dropped = 0;  ///< subset removed entirely
  std::map<std::string, std::size_t> by_kind;  ///< label -> count
};

/// Corrupt a fraction of the data rows of CSV `text` (the header line is
/// never touched). Deterministic in plan.seed.
std::string corrupt_csv(const std::string& text, const CsvFaultPlan& plan,
                        CsvFaultLog* log = nullptr);

struct StreamFaultPlan {
  int char_flips = 0;           ///< corrupt this many payload characters
  std::ptrdiff_t truncate_at = -1;  ///< cut the stream here (-1: don't)
  std::uint64_t seed = 1;
};

/// Corrupt a serialized model stream: flip characters and/or truncate.
std::string corrupt_stream(const std::string& text,
                           const StreamFaultPlan& plan);

// ---- process-global sabotage --------------------------------------------

struct Faults {
  /// uid -> number of fit attempts to fail for that uid. 1 fails the
  /// configured learner (first fallback succeeds); a count covering the
  /// whole fallback chain renders the uid unusable.
  std::map<int, int> fit_failures;
  /// uid -> forced prediction value (NaN / negative / anything) injected
  /// after the model's own predict; exercises argmin sanitization.
  std::map<int, double> forced_predictions;
};

/// Arms the global fault table for the current scope. Nestable; the
/// innermost table wins. Construct from top-level test code only (not
/// thread-safe against concurrent arming, like ScopedThreads).
class ScopedFaults {
 public:
  explicit ScopedFaults(Faults faults);
  ~ScopedFaults();

  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  Faults faults_;  ///< the armed table (address-stable for the scope)
  const Faults* previous_;
};

/// True if any fault table is armed (single relaxed atomic load).
bool active();

/// Consume one forced fit failure for `uid` if one is budgeted; callable
/// concurrently from parallel fit tasks (each uid is owned by one task,
/// so the per-uid budget decrements deterministically).
bool consume_fit_failure(int uid);

/// Forced prediction override for `uid`, if armed.
std::optional<double> forced_prediction(int uid);

}  // namespace mpicp::support::faultinject
