// Capability (thread-safety) annotations (DESIGN.md §15).
//
// Every concurrent subsystem declares its locking contract with these
// macros: which mutex guards which member (MPICP_GUARDED_BY), which
// functions must be entered with a capability held (MPICP_REQUIRES),
// and which RAII types acquire/release capabilities. Under Clang the
// macros lower to the thread-safety-analysis attributes and the CI
// `-Wthread-safety -Werror=thread-safety` job verifies the contracts
// at compile time; under other compilers they expand to nothing and
// serve as machine-readable documentation that `mpicp_lint` rule R13
// (lock-discipline) keeps mandatory.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through it. `support::Mutex` and
// `support::MutexLock` below are the annotated drop-in wrappers; all
// project code locks through them. MutexLock is relockable (lock() /
// unlock() members) so it can be handed to
// std::condition_variable_any::wait as a BasicLockable.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MPICP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef MPICP_TSA
#define MPICP_TSA(x)  // no-op outside Clang thread-safety analysis
#endif

/// Type is a capability (lockable). Argument names the capability kind
/// shown in diagnostics, e.g. MPICP_CAPABILITY("mutex").
#define MPICP_CAPABILITY(x) MPICP_TSA(capability(x))

/// RAII type whose constructor acquires and destructor releases a
/// capability.
#define MPICP_SCOPED_CAPABILITY MPICP_TSA(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define MPICP_GUARDED_BY(x) MPICP_TSA(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define MPICP_PT_GUARDED_BY(x) MPICP_TSA(pt_guarded_by(x))

/// Function must be called with the capabilities held (and does not
/// release them).
#define MPICP_REQUIRES(...) MPICP_TSA(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define MPICP_ACQUIRE(...) MPICP_TSA(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities; they must be held on entry.
#define MPICP_RELEASE(...) MPICP_TSA(release_capability(__VA_ARGS__))

/// Function acquires the capabilities iff it returns `b`.
#define MPICP_TRY_ACQUIRE(b, ...) \
  MPICP_TSA(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called with the capabilities held (deadlock
/// guard for self-locking public entry points).
#define MPICP_EXCLUDES(...) MPICP_TSA(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MPICP_RETURN_CAPABILITY(x) MPICP_TSA(lock_returned(x))

/// Escape hatch: function body is exempt from the analysis. Use only
/// with a comment explaining why the contract cannot be expressed.
#define MPICP_NO_THREAD_SAFETY_ANALYSIS \
  MPICP_TSA(no_thread_safety_analysis)

namespace mpicp::support {

/// std::mutex with capability attributes the analysis can see.
class MPICP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MPICP_ACQUIRE() { mu_.lock(); }
  void unlock() MPICP_RELEASE() { mu_.unlock(); }
  bool try_lock() MPICP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for support::Mutex. Relockable: lock()/unlock() allow
/// condition-variable waits (std::condition_variable_any takes any
/// BasicLockable) while keeping the capability bookkeeping exact.
class MPICP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MPICP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() MPICP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() MPICP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() MPICP_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

}  // namespace mpicp::support
