#include "ml/linreg.hpp"

#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"

namespace mpicp::ml {

LinearRegressor::LinearRegressor(LinearParams params) : params_(params) {}

void LinearRegressor::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  Matrix design(n, d + 1);
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    for (std::size_t f = 0; f < d; ++f) design(i, f + 1) = x(i, f);
    double t = y[i];
    if (params_.log_target) {
      MPICP_REQUIRE(t > 0.0, "log target needs positive values");
      t = std::log(t);
    }
    target[i] = t;
  }
  Matrix normal = design.gram();
  for (std::size_t c = 0; c <= d; ++c) normal(c, c) += params_.ridge;
  beta_ = cholesky_solve(normal, design.transpose_times(target));
}

void LinearRegressor::save(std::ostream& os) const {
  io::write_tag(os, "linear");
  io::write_value(os, params_.log_target ? 1 : 0);
  io::write_vector(os, beta_);
}

void LinearRegressor::load(std::istream& is) {
  io::expect_tag(is, "linear");
  params_.log_target = io::read_value<int>(is) != 0;
  beta_ = io::read_vector<double>(is);
}

double LinearRegressor::predict_one(std::span<const double> x) const {
  MPICP_REQUIRE(beta_.size() == x.size() + 1,
                "predicting with an unfitted model");
  double acc = beta_[0];
  for (std::size_t f = 0; f < x.size(); ++f) acc += beta_[f + 1] * x[f];
  return params_.log_target ? std::exp(acc) : acc;
}

}  // namespace mpicp::ml
