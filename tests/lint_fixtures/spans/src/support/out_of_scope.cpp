// src/support is outside span scope: a long untraced function here
// must stay silent (the trace layer itself cannot be asked to trace).
namespace mpicp::support {

int long_untraceable(int a) {
  int r = a;
  r += 1;
  r += 2;
  r += 3;
  r += 4;
  r += 5;
  r += 6;
  r += 7;
  r += 8;
  r += 9;
  r += 10;
  r += 11;
  r += 12;
  r += 13;
  return r;
}

}  // namespace mpicp::support
