file(REMOVE_RECURSE
  "CMakeFiles/bench_online_vs_offline.dir/bench_online_vs_offline.cpp.o"
  "CMakeFiles/bench_online_vs_offline.dir/bench_online_vs_offline.cpp.o.d"
  "bench_online_vs_offline"
  "bench_online_vs_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_vs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
