// Decision-rule encoding of a fitted selector.
//
// Open MPI's hard-coded decision functions were produced by benchmarking
// and then *encoding the winners as decision trees translated into C*
// (Pjesivac-Grbovic et al., the paper's ref [8]). This module closes
// that loop for our framework: it compresses the selector's per-instance
// picks over a grid into a small classification tree and can render the
// tree as compilable C source — i.e. it regenerates a `coll_tuned`-style
// fixed decision function from the learned models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"

namespace mpicp::tune {

/// One labeled grid point: an instance and the uid selected for it.
struct LabeledInstance {
  bench::Instance inst;
  int uid = 0;
};

struct RuleParams {
  int max_depth = 8;
  int min_points_per_leaf = 1;
};

/// A compact decision tree over (log2 msize, nodes, ppn).
class DecisionRules {
 public:
  /// One tree node, exposed so the flat serving lowering
  /// (tune/ruletable.hpp) and the differential tests can reproduce the
  /// tree exactly — same thresholds, same comparisons, same traversal.
  struct Node {
    int feature = -1;  ///< 0: log2 msize, 1: nodes, 2: ppn; -1: leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int uid = 0;  ///< leaf label
  };

  /// Fit by recursive misclassification-minimizing splits; leaves carry
  /// the majority uid. An impure node splits even when no candidate
  /// improves the immediate misclassification (ties go to the first
  /// feature / lowest threshold): XOR-shaped winner regions only
  /// separate deeper down, and on label-distinct points an uncapped
  /// tree therefore always reaches agreement 1.0. A node whose points
  /// cannot be separated at all (identical feature vectors) terminates
  /// as a majority leaf.
  static DecisionRules fit(const std::vector<LabeledInstance>& points,
                           RuleParams params = {});

  int uid_for(const bench::Instance& inst) const;

  /// Fraction of `points` the tree classifies to their label.
  double agreement(const std::vector<LabeledInstance>& points) const;

  int num_leaves() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Render as a C function `int <name>(size_t msize, int nodes, int
  /// ppn)` returning the uid — the artifact a library maintainer would
  /// paste into a coll component. The integer comparisons it emits are
  /// exactly equivalent to the tree's double comparisons for every
  /// integer input (tests/test_ruletable.cpp compiles and executes the
  /// output to prove it).
  std::string to_c_code(const std::string& function_name) const;

  /// The node pool (node 0 is the root; children index into it).
  const std::vector<Node>& nodes() const { return nodes_; }

  /// The feature encoding the tree splits on: 0 is log2(max(msize, 1)),
  /// 1 is nodes, 2 is ppn. Shared with RuleTable so both walk the same
  /// arithmetic.
  static double feature_of(const bench::Instance& inst, int f);

 private:
  int build(std::vector<const LabeledInstance*> points, int depth,
            const RuleParams& params);
  void render(int node, int indent, std::string& out) const;

  std::vector<Node> nodes_;
};

}  // namespace mpicp::tune
