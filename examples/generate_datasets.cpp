// Dataset generation driver.
//
// Benchmarks every algorithm configuration of the Table II datasets on
// the simulated machines and caches the results as CSV under the data
// directory ($MPICP_DATA_DIR or ./data). All other examples and all
// bench binaries reload these files instead of re-simulating.
//
// Usage:
//   generate_datasets [--only=d1,d5] [--data-dir=path] [--force]
#include <cstdio>
#include <string>
#include <vector>

#include "collbench/generator.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const std::filesystem::path data_dir =
      cli.get("data-dir", bench::default_data_dir().string());
  const bool force = cli.get_bool("force", false);
  std::vector<std::string> only;
  if (cli.has("only")) only = support::split(cli.get("only", ""), ',');

  std::filesystem::create_directories(data_dir);
  for (const bench::DatasetSpec& spec : bench::all_dataset_specs()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), spec.name) == only.end()) {
      continue;
    }
    const auto path = data_dir / (spec.name + ".csv");
    if (force && std::filesystem::exists(path)) {
      std::filesystem::remove(path);
    }
    if (std::filesystem::exists(path)) {
      std::printf("%s: cached (%s)\n", spec.name.c_str(),
                  path.string().c_str());
      continue;
    }
    std::printf("%s: generating %s/%s on %s ...\n", spec.name.c_str(),
                to_string(spec.lib).c_str(), to_string(spec.coll).c_str(),
                spec.machine.c_str());
    std::fflush(stdout);
    std::size_t last_pct = 0;
    const bench::Dataset ds = bench::generate_dataset(
        spec, [&](std::size_t done, std::size_t total) {
          const std::size_t pct = 100 * done / total;
          if (pct >= last_pct + 10) {
            std::printf("  %s: %zu%%\n", spec.name.c_str(), pct);
            std::fflush(stdout);
            last_pct = pct;
          }
        });
    ds.save_csv(path);
    std::printf("%s: %zu records -> %s\n", spec.name.c_str(),
                ds.num_records(), path.string().c_str());
    std::fflush(stdout);
  }
  return 0;
}
