file(REMOVE_RECURSE
  "CMakeFiles/mpicp_tune.dir/config_writer.cpp.o"
  "CMakeFiles/mpicp_tune.dir/config_writer.cpp.o.d"
  "CMakeFiles/mpicp_tune.dir/evaluator.cpp.o"
  "CMakeFiles/mpicp_tune.dir/evaluator.cpp.o.d"
  "CMakeFiles/mpicp_tune.dir/online.cpp.o"
  "CMakeFiles/mpicp_tune.dir/online.cpp.o.d"
  "CMakeFiles/mpicp_tune.dir/rulegen.cpp.o"
  "CMakeFiles/mpicp_tune.dir/rulegen.cpp.o.d"
  "CMakeFiles/mpicp_tune.dir/selector.cpp.o"
  "CMakeFiles/mpicp_tune.dir/selector.cpp.o.d"
  "libmpicp_tune.a"
  "libmpicp_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicp_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
