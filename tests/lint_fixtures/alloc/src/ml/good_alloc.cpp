// Fixture: allocation-free loop patterns that must pass R9.
#include <cstddef>
#include <vector>

void good(std::vector<int>& out, std::size_t n) {
  out.reserve(n);
  std::vector<double> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));  // reserved above
    scratch.assign(n, 0.0);              // reuses capacity
    std::vector<double> spare;           // default ctor: no allocation
    spare.swap(scratch);
    spare.swap(scratch);
  }
  std::vector<int> once(n, 0);  // sized, but outside any loop
  for (std::size_t i = 0; i < n; ++i) {
    // mpicp-lint: allow(no-alloc-in-loop) growth justified by fixture
    once.push_back(0);
  }
  once.clear();
}

void unresolvable(std::vector<int>& a, std::vector<int>& b, bool c) {
  // Receivers that do not resolve to an identifier are skipped, not
  // guessed at.
  for (int i = 0; i < 4; ++i) (c ? a : b).push_back(i);
}
