// Minimal CSV persistence for measurement datasets.
//
// The format is deliberately simple (no quoting — our data are numbers and
// identifier-like strings), but reads are validated and errors carry the
// offending line number.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace mpicp::support {

/// An in-memory CSV table: a header and rows of string cells.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Column index by name; throws ParseError if absent.
  std::size_t column(const std::string& name) const;

  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;

  const std::string& cell(std::size_t row, std::size_t col) const;
  double cell_double(std::size_t row, std::size_t col) const;
  std::int64_t cell_int(std::size_t row, std::size_t col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);
void write_csv(const std::filesystem::path& path, const CsvTable& table);

/// One structurally bad row skipped by read_csv_lenient.
struct CsvRowError {
  std::size_t lineno = 0;  ///< 1-based line number in the file
  std::string reason;
};

struct CsvReadResult {
  CsvTable table;
  /// 1-based file line number of each kept row, parallel to the table's
  /// rows (for error reporting downstream of the CSV layer).
  std::vector<std::size_t> linenos;
  std::vector<CsvRowError> errors;
};

/// Like read_csv, but structurally bad rows (wrong cell count) are
/// recorded in `errors` and skipped instead of aborting the read. The
/// header and file-level failures (missing/empty file) still throw.
[[nodiscard]] CsvReadResult read_csv_lenient(
    const std::filesystem::path& path);

}  // namespace mpicp::support
