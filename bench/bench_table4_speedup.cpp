// Table IV — overall prediction quality: relative speed-up of the
// predicted algorithm over the default selection strategy (higher is
// better), per learner and dataset, for (a) the large and (b) the small
// training node sets.
//
// Paper shape: mean speed-ups around 1.3-1.5 on the Open MPI datasets,
// around 0.85-1.1 on the Intel datasets (whose tuned default is already
// near-optimal), all three learners similar, and the small training sets
// nearly matching the large ones.
#include <iostream>

#include "bench_common.hpp"
#include "tune/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  // Optional: restrict to a subset of datasets (e.g. "d1,d2").
  std::vector<std::string> names;
  for (const auto& spec : bench::all_dataset_specs()) {
    names.push_back(spec.name);
  }
  if (argc > 1) names = support::split(argv[1], ',');

  const std::vector<std::string> learners = {"knn", "gam", "xgboost"};
  for (const bool small : {false, true}) {
    std::printf("Table IV%s: mean speed-up over the default strategy "
                "(%s training dataset)\n\n",
                small ? "b" : "a", small ? "small" : "large");
    std::vector<std::string> header = {"method"};
    header.insert(header.end(), names.begin(), names.end());
    header.push_back("mean");
    support::TextTable table(std::move(header));
    // Cache datasets across learners.
    std::vector<bench::Dataset> datasets;
    datasets.reserve(names.size());
    for (const auto& name : names) {
      datasets.push_back(bench::load_dataset_cached(name));
    }
    for (const std::string& learner : learners) {
      std::vector<std::string> row = {learner == "xgboost" ? "XGBoost"
                                      : learner == "gam"   ? "GAM"
                                                           : "KNN"};
      double sum = 0.0;
      for (const bench::Dataset& ds : datasets) {
        const tune::Evaluation eval =
            tune::run_split_evaluation(ds, learner, small);
        sum += eval.summary.mean_speedup;
        row.push_back(
            support::format_double(eval.summary.mean_speedup, 3));
      }
      row.push_back(support::format_double(
          sum / static_cast<double>(datasets.size()), 3));
      table.add_row(std::move(row));
    }
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
