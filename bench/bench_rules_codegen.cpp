// Rule-distillation latency/fidelity harness (DESIGN.md §14): fit a
// selector, compile it, distill the compiled bank into a RuleTable and
// quantify the fidelity/speed frontier of the third serving tier —
// leaf count and agreement across a max_depth sweep, then per-dispatch
// latency of the flat table walk (ns) against the compiled bank's
// argmin (µs) on the same query stream.
//
// Four hard gates make this a harness, not a report: the flat table
// must agree with the tree it was lowered from on every probe (exact
// equivalence is the tier's contract); the rule-table p50 must be at
// least 10x faster than the bank argmin p50; the blocked and batched
// layouts (DESIGN.md §16) must agree bit for bit with the PR 8 legacy
// walk on every probe; and the batched grid kernel must beat the
// legacy layout by at least 2x at p50. Any failing exits non-zero.
//
//   --smoke            fewer dispatches — the CI mode
//   --json-out=PATH    default BENCH_rules.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "collbench/dataset.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"
#include "tune/compiled_bank.hpp"
#include "tune/ruletable.hpp"
#include "tune/selector.hpp"

namespace {

using namespace mpicp;
using Clock = std::chrono::steady_clock;

const std::vector<int>& grid_nodes() {
  static const std::vector<int> v = {4, 8, 16, 20, 24, 32, 36};
  return v;
}
const std::vector<int>& grid_ppns() {
  static const std::vector<int> v = {1, 4, 8, 16, 32};
  return v;
}
const std::vector<std::uint64_t>& grid_msizes() {
  static const std::vector<std::uint64_t> v = {16,    1024,   16384,
                                               65536, 524288, 4194304};
  return v;
}

/// Synthetic measurements in the d2 shape: per-uid cost surfaces whose
/// winner changes across the (m, n, N) grid, so the distilled tree has
/// real structure to capture.
bench::Dataset make_dataset() {
  bench::Dataset ds("rules-distill", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(17);
  for (int uid = 1; uid <= 13; ++uid) {
    const double log_w = 0.15 + 0.05 * (uid % 7);
    const double band_w = 0.0008 + 0.0003 * ((uid * 3) % 5);
    for (const int n : grid_nodes()) {
      for (const int ppn : grid_ppns()) {
        for (const std::uint64_t m : grid_msizes()) {
          const double p = n * ppn;
          const double t = 5.0 + log_w * uid * std::log2(p) +
                           band_w * static_cast<double>(m) / std::sqrt(p);
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.05)});
          }
        }
      }
    }
  }
  return ds;
}

/// The distillation grid: the dataset's own (m, n, N) lattice.
std::vector<bench::Instance> make_grid() {
  std::vector<bench::Instance> grid;
  grid.reserve(grid_nodes().size() * grid_ppns().size() *
               grid_msizes().size());
  for (const int n : grid_nodes()) {
    for (const int ppn : grid_ppns()) {
      for (const std::uint64_t m : grid_msizes()) {
        grid.push_back({n, ppn, m});
      }
    }
  }
  return grid;
}

/// Random on- and off-grid query stream (interpolated node counts and
/// message sizes included — the tiers must agree off the lattice too).
std::vector<bench::Instance> make_stream(std::size_t total) {
  support::Xoshiro256 rng(4242);
  std::vector<bench::Instance> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const int n = 4 + static_cast<int>(rng.uniform_int(33));
    const int ppn = 1 + static_cast<int>(rng.uniform_int(32));
    const std::uint64_t m = std::uint64_t{1}
                            << (4 + rng.uniform_int(19));
    stream.push_back({n, ppn, m});
  }
  return stream;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

int run(std::size_t dispatches, const std::string& json_path) {
  std::printf("fitting the selector and compiling the bank...\n");
  const bench::Dataset ds = make_dataset();
  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  (void)selector.fit(ds, ds.node_counts());
  const tune::CompiledBank bank = selector.compile();
  const std::vector<bench::Instance> grid = make_grid();

  // Fidelity frontier: leaves and agreement as the depth cap loosens.
  std::printf("distilling over %zu grid points...\n\n", grid.size());
  bench::JsonMetrics metrics;
  metrics.emplace_back("grid_points", static_cast<double>(grid.size()));
  support::TextTable sweep({"max depth", "leaves", "agreement with bank"});
  // Bounded sweep (6 depths), not a serving hot path.
  // mpicp-lint: allow(no-alloc-in-loop)
  for (const int depth : {2, 3, 4, 6, 8, 12}) {
    const tune::RuleDistillation dist =
        tune::distill(bank, grid, {.max_depth = depth});
    sweep.add_row({std::to_string(depth),
                   std::to_string(dist.table.num_leaves()),
                   support::format_double(dist.agreement, 4)});
    const std::string prefix = "depth" + std::to_string(depth) + "_";
    metrics.emplace_back(prefix + "leaves",
                         static_cast<double>(dist.table.num_leaves()));
    metrics.emplace_back(prefix + "agreement", dist.agreement);
  }
  std::ostringstream os;
  sweep.print(os);
  std::fputs(os.str().c_str(), stdout);

  // The serving candidate: default params, as the registry would use.
  const tune::RuleDistillation dist = tune::distill(bank, grid, {});
  metrics.emplace_back("leaves",
                       static_cast<double>(dist.table.num_leaves()));
  metrics.emplace_back("agreement", dist.agreement);
  std::printf("\nserving table: %d leaves, agreement %.4f\n",
              dist.table.num_leaves(), dist.agreement);

  // Hard gate 1 — exact tree/table equivalence on every probe. This is
  // the tier's contract; a single divergence means the lowering is
  // broken, not slow.
  const std::vector<bench::Instance> stream = make_stream(dispatches);
  for (const bench::Instance& inst : grid) {
    if (dist.table.uid_for(inst) != dist.rules.uid_for(inst)) {
      std::printf("FAIL: table diverges from tree on a grid point\n");
      return 1;
    }
  }
  for (const bench::Instance& inst : stream) {
    if (dist.table.uid_for(inst) != dist.rules.uid_for(inst)) {
      std::printf("FAIL: table diverges from tree off-grid\n");
      return 1;
    }
  }
  std::printf("table == tree on %zu grid + %zu stream probes: yes\n\n",
              grid.size(), stream.size());

  // Latency: per-dispatch cost in batches of kBatch (one clock read per
  // batch — a single table walk is below timer resolution).
  constexpr std::size_t kBatch = 256;
  const std::size_t batches = stream.size() / kBatch;
  std::vector<double> rule_ns(batches, 0.0);
  std::vector<double> bank_us(batches, 0.0);
  support::trace::ScopedEnabled spans_off(false);

  long long sink = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const auto t0 = Clock::now();
    for (std::size_t i = b * kBatch; i < (b + 1) * kBatch; ++i) {
      sink += dist.table.uid_for(stream[i]);
    }
    rule_ns[b] = seconds_since(t0) * 1e9 / static_cast<double>(kBatch);
  }
  for (std::size_t b = 0; b < batches; ++b) {
    const auto t0 = Clock::now();
    for (std::size_t i = b * kBatch; i < (b + 1) * kBatch; ++i) {
      sink += bank.select_uid_or_invalid(stream[i]);
    }
    bank_us[b] = seconds_since(t0) * 1e6 / static_cast<double>(kBatch);
  }

  // Layout comparison (DESIGN.md §16): the PR 8 branchy walk
  // (uid_for_legacy), the blocked predicated walk (uid_for — already
  // timed above as rule_ns), and the batched level-synchronous grid
  // kernel over the same stream slices.
  std::vector<double> legacy_ns(batches, 0.0);
  std::vector<double> batched_ns(batches, 0.0);
  std::vector<int> batch_out(kBatch, -1);
  for (std::size_t b = 0; b < batches; ++b) {
    const auto t0 = Clock::now();
    for (std::size_t i = b * kBatch; i < (b + 1) * kBatch; ++i) {
      sink += dist.table.uid_for_legacy(stream[i]);
    }
    legacy_ns[b] = seconds_since(t0) * 1e9 / static_cast<double>(kBatch);
  }
  for (std::size_t b = 0; b < batches; ++b) {
    const std::span<const bench::Instance> slice{stream.data() + b * kBatch,
                                                 kBatch};
    const auto t0 = Clock::now();
    dist.table.select_grid_into(slice, batch_out);
    batched_ns[b] = seconds_since(t0) * 1e9 / static_cast<double>(kBatch);
    sink += batch_out[0];
  }

  // Hard gate 3 — every layout agrees bit for bit on every probe: the
  // blocked walk against the legacy walk, and the batched kernel
  // against both, over the full stream in one grid call.
  std::vector<int> grid_out(stream.size(), -1);
  dist.table.select_grid_into(stream, grid_out);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const int legacy = dist.table.uid_for_legacy(stream[i]);
    if (dist.table.uid_for(stream[i]) != legacy || grid_out[i] != legacy) {
      std::printf("FAIL: blocked/batched layout diverges from legacy\n");
      return 1;
    }
  }
  std::printf("legacy == blocked == batched on %zu stream probes: yes\n\n",
              stream.size());

  const double rule_p50 = percentile(rule_ns, 0.50);
  const double rule_p99 = percentile(rule_ns, 0.99);
  const double bank_p50 = percentile(bank_us, 0.50);
  const double bank_p99 = percentile(bank_us, 0.99);
  const double legacy_p50 = percentile(legacy_ns, 0.50);
  const double legacy_p99 = percentile(legacy_ns, 0.99);
  const double batched_p50 = percentile(batched_ns, 0.50);
  const double batched_p99 = percentile(batched_ns, 0.99);
  const double speedup = bank_p50 * 1e3 / rule_p50;
  const double layout_speedup = legacy_p50 / batched_p50;

  support::TextTable table({"metric", "value"});
  table.add_row({"dispatches per tier",
                 std::to_string(batches * kBatch)});
  table.add_row({"legacy layout p50 [ns]",
                 support::format_double(legacy_p50, 1)});
  table.add_row({"legacy layout p99 [ns]",
                 support::format_double(legacy_p99, 1)});
  table.add_row({"blocked walk p50 [ns]",
                 support::format_double(rule_p50, 1)});
  table.add_row({"blocked walk p99 [ns]",
                 support::format_double(rule_p99, 1)});
  table.add_row({"batched kernel p50 [ns]",
                 support::format_double(batched_p50, 1)});
  table.add_row({"batched kernel p99 [ns]",
                 support::format_double(batched_p99, 1)});
  table.add_row({"bank argmin p50 [us]",
                 support::format_double(bank_p50, 3)});
  table.add_row({"bank argmin p99 [us]",
                 support::format_double(bank_p99, 3)});
  table.add_row({"p50 speedup vs bank", support::format_double(speedup, 1)});
  table.add_row({"batched p50 speedup vs legacy",
                 support::format_double(layout_speedup, 2)});
  std::ostringstream os2;
  table.print(os2);
  std::fputs(os2.str().c_str(), stdout);
  if (sink == 42) std::printf(" \n");  // keep the dispatch loops live

  metrics.emplace_back("dispatches",
                       static_cast<double>(batches * kBatch));
  metrics.emplace_back("rule_p50_ns", rule_p50);
  metrics.emplace_back("rule_p99_ns", rule_p99);
  metrics.emplace_back("legacy_p50_ns", legacy_p50);
  metrics.emplace_back("legacy_p99_ns", legacy_p99);
  metrics.emplace_back("batched_p50_ns", batched_p50);
  metrics.emplace_back("batched_p99_ns", batched_p99);
  metrics.emplace_back("bank_p50_us", bank_p50);
  metrics.emplace_back("bank_p99_us", bank_p99);
  metrics.emplace_back("speedup_p50", speedup);
  metrics.emplace_back("layout_speedup_p50", layout_speedup);
  bench::json_report(json_path, "rules_codegen", metrics);
  std::printf("\nwrote %s\n", json_path.c_str());

  // Hard gate 2 — the tier only earns its keep at >= 10x the bank.
  if (speedup < 10.0) {
    std::printf("FAIL: rule-table p50 speedup %.1fx below the 10x gate\n",
                speedup);
    return 1;
  }

  // Hard gate 4 — the blocked batched kernel must beat the PR 8 layout
  // by >= 2x at p50 on grid dispatch, or the rework is not paying rent.
  if (layout_speedup < 2.0) {
    std::printf(
        "FAIL: batched layout speedup %.2fx below the 2x gate\n",
        layout_speedup);
    return 1;
  }

  std::printf("\nserving tree rendered as C (what a library maintainer "
              "would hard-code):\n\n%s",
              dist.rules.to_c_code("mpicp_select_bcast_hydra").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_rules.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  return run(smoke ? 1u << 16 : 1u << 20, json_path);
}
