#include "ml/gbt.hpp"

#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace mpicp::ml {

namespace {

bool log_link(GbtObjective obj) { return obj != GbtObjective::kSquared; }

/// Per-sample gradient/hessian of the objective at raw score f.
GradPair grad_hess(GbtObjective obj, double tweedie_p, double y, double f) {
  switch (obj) {
    case GbtObjective::kSquared:
      return {f - y, 1.0};
    case GbtObjective::kGamma: {
      // -2 log-lik (up to constants): g = 1 - y e^{-f}.
      const double ef = std::exp(-f);
      return {1.0 - y * ef, y * ef};
    }
    case GbtObjective::kTweedie: {
      const double p = tweedie_p;
      const double a = std::exp((1.0 - p) * f);
      const double b = std::exp((2.0 - p) * f);
      return {-y * a + b, (p - 1.0) * y * a + (2.0 - p) * b};
    }
  }
  MPICP_RAISE_INTERNAL("unhandled GbtObjective");
}

double loss_value(GbtObjective obj, double tweedie_p, double y, double f) {
  switch (obj) {
    case GbtObjective::kSquared:
      return 0.5 * (y - f) * (y - f);
    case GbtObjective::kGamma:
      return y * std::exp(-f) + f;
    case GbtObjective::kTweedie: {
      const double p = tweedie_p;
      return -y * std::exp((1.0 - p) * f) / (1.0 - p) +
             std::exp((2.0 - p) * f) / (2.0 - p);
    }
  }
  MPICP_RAISE_INTERNAL("unhandled GbtObjective");
}

}  // namespace

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params) {
  MPICP_REQUIRE(params_.rounds >= 1, "need at least one boosting round");
  MPICP_REQUIRE(params_.tweedie_p > 1.0 && params_.tweedie_p < 2.0,
                "tweedie power must lie in (1, 2)");
}

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  if (log_link(params_.objective)) {
    for (const double v : y) {
      MPICP_REQUIRE(v > 0.0, "log-link objectives need positive targets");
    }
  }
  trees_.clear();
  loss_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.rounds));
  loss_.reserve(static_cast<std::size_t>(params_.rounds));

  const double mean_y = support::mean(y);
  base_score_ =
      log_link(params_.objective) ? std::log(mean_y) : mean_y;

  const std::size_t n = x.rows();
  const int d = static_cast<int>(x.cols());
  num_features_ = d;
  const FeatureBinner binner(x);
  const std::vector<std::uint8_t> codes = binner.encode(x);

  std::vector<double> score(n, base_score_);
  std::vector<GradPair> gh(n);
  std::vector<int> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = static_cast<int>(i);

  TreeParams tree_params = params_.tree;
  tree_params.learning_rate = params_.learning_rate;

  std::vector<GradPair> hist_scratch;
  for (int round = 0; round < params_.rounds; ++round) {
    double total_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      gh[i] = grad_hess(params_.objective, params_.tweedie_p, y[i],
                        score[i]);
      total_loss +=
          loss_value(params_.objective, params_.tweedie_p, y[i], score[i]);
    }
    loss_.push_back(total_loss / static_cast<double>(n));

    RegressionTree tree;
    tree.fit(binner, codes, d, gh, all_rows, tree_params, hist_scratch);
    for (std::size_t i = 0; i < n; ++i) {
      score[i] += tree.predict_one(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

void GradientBoostedTrees::save(std::ostream& os) const {
  io::write_tag(os, "gbt");
  io::write_value(os, static_cast<int>(params_.objective));
  io::write_value(os, params_.tweedie_p);
  io::write_value(os, num_features_);
  io::write_value(os, base_score_);
  io::write_value(os, trees_.size());
  for (const RegressionTree& tree : trees_) tree.save(os);
}

void GradientBoostedTrees::load(std::istream& is) {
  io::expect_tag(is, "gbt");
  params_.objective = static_cast<GbtObjective>(io::read_value<int>(is));
  params_.tweedie_p = io::read_value<double>(is);
  num_features_ = io::read_value<int>(is);
  base_score_ = io::read_value<double>(is);
  const auto count = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(count < (1u << 20), "implausible ensemble size");
  trees_.assign(count, RegressionTree{});
  for (RegressionTree& tree : trees_) tree.load(is);
  loss_.clear();
}

std::vector<double> GradientBoostedTrees::feature_importance() const {
  if (trees_.empty()) return {};
  std::vector<double> gains(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) tree.accumulate_gains(gains);
  double total = 0.0;
  for (const double g : gains) total += g;
  if (total > 0.0) {
    for (double& g : gains) g /= total;
  }
  return gains;
}

double GradientBoostedTrees::raw_score(std::span<const double> x) const {
  double f = base_score_;
  for (const RegressionTree& tree : trees_) f += tree.predict_one(x);
  return f;
}

double GradientBoostedTrees::predict_one(std::span<const double> x) const {
  MPICP_REQUIRE(!trees_.empty(), "predicting with an unfitted model");
  const double f = raw_score(x);
  return log_link(params_.objective) ? std::exp(f) : f;
}

}  // namespace mpicp::ml
