// Extension bench — performance-guideline check (PGMPITuneLib, the
// paper's ref [29]): does the modeled library default ever lose against
// a composition of other collectives? Each violation is a case the
// paper's ML selection would repair.
#include <iostream>

#include "collbench/guidelines.hpp"
#include "collbench/specs.hpp"
#include "simnet/machine.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const std::string machine_name = argc > 1 ? argv[1] : "Hydra";
  const sim::MachineDesc machine = sim::machine_by_name(machine_name);

  std::printf("Performance guidelines, %s (modeled Open MPI defaults)\n\n",
              machine_name.c_str());
  support::TextTable table({"nodes x ppn", "msize [B]", "guideline",
                            "lhs [us]", "rhs [us]", "lhs/rhs", "verdict"});
  std::size_t checks = 0;
  std::size_t violations = 0;
  for (const auto& [nodes, ppn] :
       std::vector<std::pair<int, int>>{{8, 4}, {16, 16}, {32, 8}}) {
    const auto results = bench::check_guidelines(
        machine, nodes, ppn, bench::standard_msizes());
    for (const auto& r : results) {
      ++checks;
      if (!r.violated) continue;
      ++violations;
      table.add_row({std::to_string(nodes) + "x" + std::to_string(ppn),
                     std::to_string(r.inst.msize), r.guideline,
                     support::format_double(r.lhs_us, 5),
                     support::format_double(r.rhs_us, 5),
                     support::format_double(r.factor, 4), "VIOLATED"});
    }
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\n%zu of %zu guideline checks violated by the default "
              "algorithms (each is tuning potential).\n",
              violations, checks);
  return 0;
}
