// Top-layer header; including it from a lower layer inverts the DAG.
#pragma once

#include "support/base.hpp"

namespace mpicp::tune {

struct TopThing {
  support::BaseThing base;
};

}  // namespace mpicp::tune
