
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_bcast_hydra.cpp" "bench/CMakeFiles/bench_fig4_bcast_hydra.dir/bench_fig4_bcast_hydra.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_bcast_hydra.dir/bench_fig4_bcast_hydra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tune/CMakeFiles/mpicp_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mpicp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/collbench/CMakeFiles/mpicp_collbench.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/mpicp_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mpicp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpicp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
