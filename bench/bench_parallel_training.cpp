// Serial-vs-parallel wall-clock of the model-bank hot paths on a Bcast
// dataset: fitting one regression model per algorithm configuration uid
// (Selector::fit) and answering argmin queries over the full bank
// (Selector::predict_all). Records the speedup trajectory of the
// support/parallel layer and asserts the determinism contract: the
// selected uids must be identical at every thread count.
//
//   --dataset=<name>   Table II dataset to train on (cached under data/;
//                      default: a trimmed d1 grid generated in-process so
//                      the bench runs in seconds)
//   --learner=<name>   regressor (default xgboost — the heaviest fit)
//   --threads=<n>      parallel thread count (default 4; serial is
//                      always measured as the baseline)
//   --repeats=<n>      timing repetitions, best-of (default 3)
//   --json-out=<path>  also write a bench_json.hpp report (the CI
//                      trajectory artifact, e.g. BENCH_training.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "collbench/generator.hpp"
#include "collbench/specs.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A d1-shaped (Open MPI Bcast on Hydra) grid small enough to generate
/// in-process but with the full algorithm configuration bank, so the
/// per-uid fan-out matches a real training run.
mpicp::bench::Dataset make_default_dataset() {
  mpicp::bench::DatasetSpec spec = mpicp::bench::dataset_spec("d1");
  spec.name = "d1-trimmed";
  spec.nodes = {4, 8, 16, 32};
  spec.ppns = {1, 8, 16};
  spec.budget = {.max_reps = 3, .budget_us = 1.0e6};
  return mpicp::bench::generate_dataset(spec);
}

struct TimedRun {
  double fit_s = 0.0;
  double predict_s = 0.0;
  std::vector<int> selected;
};

TimedRun run_at(int threads, const mpicp::bench::Dataset& ds,
                const std::vector<int>& train_nodes,
                const std::vector<mpicp::bench::Instance>& queries,
                const std::string& learner, int repeats) {
  mpicp::support::ScopedThreads scope(threads);
  TimedRun out;
  out.fit_s = 1e300;
  out.predict_s = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    mpicp::tune::Selector selector(
        mpicp::tune::SelectorOptions{.learner = learner});
    auto start = Clock::now();
    // Timed region: the report is deliberately dropped — fit health on
    // this clean synthetic grid is covered by the unit suite.
    (void)selector.fit(ds, train_nodes);
    out.fit_s = std::min(out.fit_s, seconds_since(start));

    std::vector<int> selected;
    selected.reserve(queries.size());
    start = Clock::now();
    for (const mpicp::bench::Instance& inst : queries) {
      selected.push_back(selector.select_uid(inst));
    }
    out.predict_s = std::min(out.predict_s, seconds_since(start));
    out.selected = std::move(selected);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const std::string learner = cli.get("learner", "xgboost");
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int repeats =
      std::max(1, static_cast<int>(cli.get_int("repeats", 3)));
  const std::string dataset_name = cli.get("dataset", "");

  const bench::Dataset ds = dataset_name.empty()
                                ? make_default_dataset()
                                : bench::load_dataset_cached(dataset_name);
  const std::vector<int> all_nodes = ds.node_counts();
  // Hold out the largest node count as the query set, train on the rest
  // (the paper's extrapolation-to-unseen-nodes split).
  const std::vector<int> train_nodes(all_nodes.begin(),
                                     all_nodes.end() - 1);
  std::vector<bench::Instance> queries;
  for (const bench::Instance& inst : ds.instances()) {
    if (inst.nodes == all_nodes.back()) queries.push_back(inst);
  }

  std::printf("dataset: %s (%zu records, %zu uids, %zu queries)\n",
              ds.name().c_str(), ds.num_records(), ds.uids().size(),
              queries.size());
  std::printf("learner: %s, hardware threads: %d, best of %d\n\n",
              learner.c_str(), support::hardware_threads(), repeats);

  const TimedRun serial =
      run_at(1, ds, train_nodes, queries, learner, repeats);
  const TimedRun parallel =
      run_at(threads, ds, train_nodes, queries, learner, repeats);

  support::TextTable table({"phase", "serial [s]",
                            "parallel [s] (t=" + std::to_string(threads) +
                                ")",
                            "speedup"});
  table.add_row({"fit model bank", support::format_double(serial.fit_s, 4),
                 support::format_double(parallel.fit_s, 4),
                 support::format_double(serial.fit_s / parallel.fit_s, 3)});
  table.add_row(
      {"argmin queries", support::format_double(serial.predict_s, 4),
       support::format_double(parallel.predict_s, 4),
       support::format_double(serial.predict_s / parallel.predict_s, 3)});
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  const std::string json_path = cli.get("json-out", "");
  if (!json_path.empty()) {
    bench::json_report(
        json_path, "parallel_training",
        {{"threads", static_cast<double>(threads)},
         {"queries", static_cast<double>(queries.size())},
         {"fit_s_serial", serial.fit_s},
         {"fit_s_parallel", parallel.fit_s},
         {"fit_speedup", serial.fit_s / parallel.fit_s},
         {"predict_s_serial", serial.predict_s},
         {"predict_s_parallel", parallel.predict_s},
         {"predict_speedup", serial.predict_s / parallel.predict_s}});
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (serial.selected != parallel.selected) {
    std::printf("\nFAIL: selected uids differ between thread counts\n");
    return 1;
  }
  std::printf("\nselected uids bit-identical across thread counts: yes\n");
  return 0;
}
