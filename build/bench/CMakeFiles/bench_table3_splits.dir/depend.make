# Empty dependencies file for bench_table3_splits.
# This may be replaced when dependencies are built.
