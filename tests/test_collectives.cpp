// Semantic property tests for every collective algorithm configuration.
//
// Every registry uid is executed in data-tracking mode over a sweep of
// process geometries and message sizes; the post-conditions of
// validate_store() then assert the algorithm really implements its
// collective (broadcast delivers the root's data everywhere, allreduce
// accumulates every contribution on every rank, alltoall routes every
// block to the right slot, ...).
#include <gtest/gtest.h>

#include <string>

#include "simmpi/coll/datainit.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/coll/smallcoll.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"

namespace mpicp::sim {
namespace {

struct SweepParam {
  MpiLib lib;
  Collective coll;
  int nodes;
  int ppn;
  std::size_t bytes;
  int root;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  return to_string(p.lib) + "_" + to_string(p.coll) + "_n" +
         std::to_string(p.nodes) + "x" + std::to_string(p.ppn) + "_m" +
         std::to_string(p.bytes) + "_r" + std::to_string(p.root);
}

class CollectiveSemantics : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CollectiveSemantics, EveryUidDeliversCorrectData) {
  const SweepParam& param = GetParam();
  const Comm comm(param.nodes, param.ppn);
  MachineDesc desc = hydra_machine();
  Network net(desc, param.nodes, param.ppn);
  Executor exec(net);
  for (const AlgoConfig& cfg :
       algorithm_configs(param.lib, param.coll)) {
    BuiltCollective built =
        build_algorithm(param.lib, param.coll, cfg, comm, param.bytes,
                        param.root, /*tracking=*/true);
    DataStore store = make_initial_store(param.coll, comm.size(),
                                         built.blocks_per_rank, param.root);
    const ExecResult res = exec.run(built.programs, &store);
    if (comm.size() > 1) {
      EXPECT_GT(res.makespan_us, 0.0) << cfg.label();
    }
    const std::string err =
        validate_store(param.coll, store, comm.size(), param.root);
    EXPECT_EQ(err, "") << to_string(param.lib) << "/"
                       << to_string(param.coll) << " uid=" << cfg.uid
                       << " (" << cfg.label() << "), " << param.nodes << "x"
                       << param.ppn << ", m=" << param.bytes;
  }
}

std::vector<SweepParam> MakeRegistrySweep() {
  std::vector<SweepParam> out;
  const std::vector<std::pair<int, int>> geometries = {
      {1, 1}, {1, 4}, {2, 1}, {2, 3}, {3, 2}, {4, 4}, {5, 3}, {7, 1}, {8, 2}};
  const std::vector<std::size_t> sizes = {1, 64, 8192, 100000};
  for (const auto lib : {MpiLib::kOpenMPI, MpiLib::kIntelMPI}) {
    for (const auto coll : {Collective::kBcast, Collective::kAllreduce,
                            Collective::kAlltoall}) {
      for (const auto& [nodes, ppn] : geometries) {
        for (const std::size_t m : sizes) {
          out.push_back({lib, coll, nodes, ppn, m, 0});
        }
      }
    }
  }
  // Non-zero roots for the non-hierarchical (Open MPI) broadcast suite.
  for (const auto& [nodes, ppn] :
       std::vector<std::pair<int, int>>{{3, 2}, {5, 3}}) {
    for (const std::size_t m : sizes) {
      out.push_back(
          {MpiLib::kOpenMPI, Collective::kBcast, nodes, ppn, m,
           nodes * ppn - 1});
      out.push_back({MpiLib::kOpenMPI, Collective::kBcast, nodes, ppn, m, 1});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RegistrySweep, CollectiveSemantics,
                         ::testing::ValuesIn(MakeRegistrySweep()),
                         ParamName);

// ---- substrate collectives (reduce/gather/scatter/allgather) ----------

struct SmallParam {
  int nodes;
  int ppn;
  std::size_t bytes;
  int root;
};

class SubstrateSemantics : public ::testing::TestWithParam<SmallParam> {
 protected:
  void Check(Collective coll, BuiltCollective built, int p, int root) {
    MachineDesc desc = hydra_machine();
    Network net(desc, GetParam().nodes, GetParam().ppn);
    Executor exec(net);
    DataStore store =
        make_initial_store(coll, p, built.blocks_per_rank, root);
    // Single-rank sweeps finish at t=0, so only non-negativity holds.
    EXPECT_GE(exec.run(built.programs, &store).makespan_us, 0.0);
    EXPECT_EQ(validate_store(coll, store, p, root), "")
        << to_string(coll) << " " << GetParam().nodes << "x"
        << GetParam().ppn;
  }
};

TEST_P(SubstrateSemantics, Reduce) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  Check(Collective::kReduce, reduce_linear(comm, bytes, root), p, root);
  Check(Collective::kReduce, reduce_binomial(comm, bytes, 1024, root), p,
        root);
  Check(Collective::kReduce, reduce_binary(comm, bytes, 4096, root), p,
        root);
  Check(Collective::kReduce, reduce_pipeline(comm, bytes, 1024, root), p,
        root);
}

TEST_P(SubstrateSemantics, Allgather) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  (void)root;
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  Check(Collective::kAllgather, allgather_ring(comm, bytes), p, 0);
  Check(Collective::kAllgather, allgather_recursive_doubling(comm, bytes),
        p, 0);
  Check(Collective::kAllgather, allgather_gather_bcast(comm, bytes), p, 0);
}

TEST_P(SubstrateSemantics, GatherScatter) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  Check(Collective::kGather, gather_linear(comm, bytes, root), p, root);
  Check(Collective::kGather, gather_binomial(comm, bytes, root), p, root);
  Check(Collective::kScatter, scatter_linear(comm, bytes, root), p, root);
  Check(Collective::kScatter, scatter_binomial(comm, bytes, root), p, root);
}

TEST_P(SubstrateSemantics, BarrierCompletes) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  (void)bytes;
  (void)root;
  const Comm comm(nodes, ppn);
  MachineDesc desc = hydra_machine();
  Network net(desc, nodes, ppn);
  Executor exec(net);
  for (auto built : {barrier_dissemination(comm), barrier_tree(comm)}) {
    const ExecResult res = exec.run(built.programs);
    if (comm.size() > 1) {
      EXPECT_GT(res.makespan_us, 0.0);
    }
    // Every rank must leave the barrier no earlier than any rank entered
    // could possibly require: with zero-byte messages, all finish times
    // are positive and bounded.
    for (const double t : res.finish_us) EXPECT_GE(t, 0.0);
  }
}

TEST_P(SubstrateSemantics, Scan) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  (void)root;
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  Check(Collective::kScan, scan_linear(comm, bytes), p, 0);
  Check(Collective::kScan, scan_recursive_doubling(comm, bytes), p, 0);
}

TEST_P(SubstrateSemantics, ReduceScatter) {
  const auto& [nodes, ppn, bytes, root] = GetParam();
  (void)root;
  const Comm comm(nodes, ppn);
  const int p = comm.size();
  Check(Collective::kReduceScatter, reduce_scatter_ring(comm, bytes), p,
        0);
  Check(Collective::kReduceScatter, reduce_scatter_halving(comm, bytes), p,
        0);
}

std::string SmallName(const ::testing::TestParamInfo<SmallParam>& info) {
  const SmallParam& p = info.param;
  return "n" + std::to_string(p.nodes) + "x" + std::to_string(p.ppn) +
         "_m" + std::to_string(p.bytes) + "_r" + std::to_string(p.root);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubstrateSemantics,
    ::testing::ValuesIn(std::vector<SmallParam>{
        {1, 1, 8, 0},
        {1, 5, 64, 2},
        {2, 2, 1, 0},
        {3, 2, 4096, 5},
        {4, 4, 100000, 0},
        {5, 3, 8192, 7},
        {8, 1, 512, 3},
        {6, 4, 30000, 23},
    }),
    SmallName);

}  // namespace
}  // namespace mpicp::sim
