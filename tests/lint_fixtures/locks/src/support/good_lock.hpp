// Every exempt shape: annotated, allow()ed, sync primitives,
// references, static/constexpr/const members, and mutex-free classes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#define MPICP_GUARDED_BY(x)

namespace mpicp::support {

class GoodQueue {
 public:
  void push(int v);

 private:
  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::atomic<int> pending_{0};
  int depth_ MPICP_GUARDED_BY(mu_) = 0;
  /// Written once at construction; immutable afterwards.
  int capacity_ = 0;  // mpicp-lint: allow(lock-discipline)
  int& sink_;
  static int s_instances;
  static constexpr int kLimit = 8;
  const int floor_ = 0;
};

struct NoMutexHere {
  int anything = 0;
};

}  // namespace mpicp::support
