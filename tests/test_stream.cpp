// Continuous retraining pipeline: drift detection, windowed refit and
// self-healing hot swap (DESIGN.md §13).
//
// Property tests pin the detector's operating characteristic (never
// fires on a stationary stream, always fires within K observations of
// an injected regime shift) over seeded noise; pipeline tests drive a
// full corrupted drifting campaign through StreamPipeline against a
// live BankRegistry and check exact accounting, bounded memory,
// bit-identity across MPICP_THREADS, fault-injected refit rejection
// with recovery, and serving continuity while refits swap banks
// underneath concurrent readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "collbench/streamgen.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/drift.hpp"
#include "tune/registry.hpp"
#include "tune/stream.hpp"

namespace mpicp {
namespace {

namespace fi = support::faultinject;

tune::BankKey stream_key() {
  return {"Hydra", sim::Collective::kBcast};
}

/// The fixed drifting campaign shared by the pipeline tests (and, with
/// the same constants, the golden snapshot): one mid-stream machine
/// regime swap plus seeded row corruption.
bench::StreamSpec drifting_spec() {
  bench::StreamSpec spec;
  // A compact instance grid: the pipeline's windowed refits train KNN
  // banks (k = 5), so every (uid, configuration) pair needs a handful
  // of window rows before the bank memorizes that configuration's
  // systematic factor.
  spec.uids = {1, 2, 3, 4};
  spec.nodes = {2, 8, 16};
  spec.ppns = {4};
  spec.msizes = {64, 1048576};
  spec.machine_seed = 101;
  spec.shifts = {{600, 202}};
  spec.fault_rate = 0.08;
  spec.seed = 7;
  return spec;
}

tune::StreamOptions pipeline_options() {
  tune::StreamOptions opts;
  // KNN memorizes the per-configuration systematic factors the stream's
  // cost surface carries, so the served bank's stationary error is pure
  // measurement jitter and a regime shift stands out crisply. (A smooth
  // additive learner would fold the factors into its residual and blur
  // the drift signal.)
  opts.selector.learner = "knn";
  opts.window_capacity = 512;
  opts.min_refit_rows = 160;
  opts.holdout_every = 4;
  opts.refit_cooldown = 32;
  opts.backoff_initial = 64;
  opts.accept_tolerance = 1.05;
  return opts;
}

// ---- drift detector properties ------------------------------------------

// A stationary error stream — relative errors that are pure noise
// around zero — must never raise the alarm, at any tested seed: a
// false positive here would trigger refit churn in production.
TEST(DriftDetector, StationaryStreamNeverFires) {
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    tune::DriftDetector detector;
    support::Xoshiro256 rng(seed);
    for (int i = 0; i < 2000; ++i) {
      const int uid = 1 + i % 4;
      // Multiplicative noise of a well-fit bank: median 1, sigma 0.25,
      // plus a rare straggler-style spike.
      double factor = rng.lognormal_median(1.0, 0.25);
      if (rng.uniform() < 0.01) factor *= 2.0;
      const auto signal = detector.observe(uid, factor - 1.0);
      ASSERT_EQ(signal, tune::DriftSignal::kNone)
          << "seed " << seed << " obs " << i << " max_ewma "
          << detector.max_abs_ewma() << " ph " << detector.ph_statistic();
    }
    EXPECT_FALSE(detector.drifted()) << "seed " << seed;
  }
}

// After an injected shift — the served bank's predictions suddenly run
// a constant factor hot — the alarm must come within K observations,
// at every tested seed. K bounds the pipeline's detection latency.
TEST(DriftDetector, FiresWithinKOfInjectedShift) {
  constexpr int kShiftAt = 600;
  constexpr int kMaxLatency = 200;
  for (const std::uint64_t seed : {11, 12, 13, 14, 15}) {
    tune::DriftDetector detector;
    support::Xoshiro256 rng(seed);
    int fired_at = -1;
    for (int i = 0; i < kShiftAt + kMaxLatency; ++i) {
      const int uid = 1 + i % 4;
      const double median = i < kShiftAt ? 1.0 : 1.6;
      const double rel = rng.lognormal_median(median, 0.25) - 1.0;
      if (detector.observe(uid, rel) != tune::DriftSignal::kNone) {
        fired_at = i;
        break;
      }
    }
    ASSERT_GE(fired_at, kShiftAt) << "seed " << seed;
    EXPECT_LT(fired_at, kShiftAt + kMaxLatency) << "seed " << seed;
    EXPECT_TRUE(detector.drifted());
  }
}

TEST(DriftDetector, ResetClearsAlarmAndStatistics) {
  tune::DriftDetector detector;
  for (int i = 0; i < 300; ++i) {
    (void)detector.observe(1 + i % 2, 1.5);
  }
  ASSERT_TRUE(detector.drifted());
  detector.reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.samples(), 0u);
  EXPECT_EQ(detector.max_abs_ewma(), 0.0);
  EXPECT_EQ(detector.ph_statistic(), 0.0);
}

// ---- stream generator ----------------------------------------------------

TEST(MeasurementStream, RegimeScheduleAndFaultAccounting) {
  bench::StreamSpec spec = drifting_spec();
  spec.fault_rate = 0.15;
  bench::MeasurementStream stream(spec);
  EXPECT_EQ(stream.regime_seed_at(0), 101u);
  EXPECT_EQ(stream.regime_seed_at(599), 101u);
  EXPECT_EQ(stream.regime_seed_at(600), 202u);

  std::size_t produced = 0;
  std::size_t faulted = 0;
  for (int i = 0; i < 500; ++i) {
    const auto row = stream.next();
    EXPECT_EQ(row.index, static_cast<std::size_t>(i));
    ++produced;
    if (row.faulted) ++faulted;
    if (row.dropped) {
      EXPECT_TRUE(row.text.empty());
    }
  }
  EXPECT_EQ(stream.rows_produced(), produced);
  EXPECT_EQ(stream.rows_faulted(), faulted);
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(stream.rows_dropped(), 0u);
  EXPECT_LT(stream.rows_dropped(), faulted);

  // The true cost surface moves with the regime: at least one
  // configuration changes its per-uid cost across the shift.
  const bench::Instance inst{8, 4, 65536};
  bool moved = false;
  for (const int uid : spec.uids) {
    if (std::abs(stream.true_time_us(0, uid, inst) -
                 stream.true_time_us(600, uid, inst)) > 1e-9) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

// ---- pipeline: quarantine accounting ------------------------------------

// Every corrupted row the generator emits must land in quarantine (or
// vanish as a dropped row) — and nothing else may: the stream's fault
// log and the pipeline's ingest accounting reconcile exactly, the same
// contract the file-based tolerant ingest pins in test_faults.
TEST(StreamPipeline, QuarantineReconcilesWithFaultLog) {
  bench::StreamSpec spec = drifting_spec();
  spec.shifts.clear();
  spec.fault_rate = 0.15;
  bench::MeasurementStream stream(spec);

  tune::BankRegistry registry;
  tune::StreamOptions opts = pipeline_options();
  opts.min_refit_rows = 100000;  // ingest only: no refits interfering
  tune::StreamPipeline pipeline(registry, opts);

  for (int i = 0; i < 800; ++i) {
    const auto row = stream.next();
    (void)pipeline.push_row(stream_key(), row.text);
  }

  const tune::StreamPipeline::Stats& stats = pipeline.stats();
  // Dropped rows never reach the pipeline; every other faulted row must
  // be quarantined, every clean row ingested.
  EXPECT_EQ(stats.rows_seen, stream.rows_produced() - stream.rows_dropped());
  EXPECT_EQ(stats.rows_quarantined,
            stream.rows_faulted() - stream.rows_dropped());
  EXPECT_EQ(stats.rows_ingested, stats.rows_seen - stats.rows_quarantined);
  // The reasons are exactly the tolerant-ingest vocabulary.
  for (const auto& [reason, count] : stats.quarantine_reasons) {
    EXPECT_TRUE(reason == "row width mismatch" ||
                reason == "unparseable field" ||
                reason == "non-finite time" ||
                reason == "non-positive time" ||
                reason == "implausible time" ||
                reason == "bad configuration key")
        << reason;
    EXPECT_GT(count, 0u);
  }
  EXPECT_EQ(registry.version(stream_key()), 0u);  // no refit ran
}

// ---- pipeline: bounded memory -------------------------------------------

TEST(StreamPipeline, WindowStaysBounded) {
  bench::StreamSpec spec = drifting_spec();
  spec.shifts.clear();
  spec.fault_rate = 0.0;
  bench::MeasurementStream stream(spec);

  tune::BankRegistry registry;
  tune::StreamOptions opts = pipeline_options();
  opts.window_capacity = 64;
  opts.holdout_every = 4;
  opts.min_refit_rows = 100000;
  tune::StreamPipeline pipeline(registry, opts);

  for (int i = 0; i < 1000; ++i) {
    (void)pipeline.push_row(stream_key(), stream.next().text);
  }
  const auto& stats = pipeline.stats();
  EXPECT_LE(pipeline.window_size(stream_key()), opts.window_capacity);
  EXPECT_LE(pipeline.holdout_size(stream_key()),
            opts.window_capacity / opts.holdout_every);
  EXPECT_EQ(stats.rows_ingested, 1000u);
  EXPECT_EQ(stats.window_evictions,
            stats.rows_ingested - pipeline.window_size(stream_key()) -
                pipeline.holdout_size(stream_key()));
}

// ---- pipeline: detect -> refit -> validate -> swap ----------------------

TEST(StreamPipeline, DriftTriggersExactlyOneAcceptedSwap) {
  bench::MeasurementStream stream(drifting_spec());
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, pipeline_options());
  const tune::BankKey key = stream_key();

  std::uint64_t bootstrap_version = 0;
  for (int i = 0; i < 1200; ++i) {
    const auto out = pipeline.push_row(key, stream.next().text);
    if (out.published && bootstrap_version == 0) {
      bootstrap_version = registry.version(key);
    }
  }
  const auto& stats = pipeline.stats();

  // One bootstrap publish, one drift detection, one accepted refit.
  ASSERT_GT(bootstrap_version, 0u) << "bootstrap refit never published";
  EXPECT_EQ(stats.drift_detections, 1u);
  EXPECT_EQ(stats.refits_published, 2u);
  EXPECT_EQ(stats.refits_rejected, 0u);
  EXPECT_EQ(stats.refits_failed, 0u);
  EXPECT_EQ(stats.refits_attempted, 2u);

  // Detection must come after the shift at row 600 and within a bounded
  // latency window.
  ASSERT_EQ(stats.detection_rows.size(), 1u);
  EXPECT_GT(stats.detection_rows[0], 600u);
  EXPECT_LT(stats.detection_rows[0], 1000u);

  // The serving version moved on from the bootstrap bank exactly once.
  EXPECT_NE(registry.version(key), bootstrap_version);

  // Post-swap selections come bit-identically from the refit bank.
  const auto bank = registry.lookup(key);
  ASSERT_NE(bank, nullptr);
  std::vector<bench::Instance> grid;
  for (const int n : {2, 4, 8, 16}) {
    for (const int ppn : {1, 4}) {
      for (const std::uint64_t m : {std::uint64_t{64}, std::uint64_t{65536},
                                    std::uint64_t{1048576}}) {
        grid.push_back({n, ppn, m});
      }
    }
  }
  const std::vector<int> via_registry = registry.select_grid(key, grid);
  const std::vector<int> via_bank = bank->select_grid(grid);
  EXPECT_EQ(via_registry, via_bank);
}

// The whole campaign — ingest accounting, detection offsets, refit
// decisions, final selections — must agree bit-for-bit at any
// MPICP_THREADS: refits parallelize inside, but every merge is
// deterministic.
TEST(StreamPipeline, CampaignIsBitIdenticalAcrossThreadCounts) {
  struct Outcome {
    tune::StreamPipeline::Stats stats;
    std::vector<int> selections;
  };
  const auto run = [](int threads) {
    support::ScopedThreads scoped(threads);
    bench::MeasurementStream stream(drifting_spec());
    tune::BankRegistry registry;
    tune::StreamPipeline pipeline(registry, pipeline_options());
    for (int i = 0; i < 1200; ++i) {
      (void)pipeline.push_row(stream_key(), stream.next().text);
    }
    Outcome out;
    out.stats = pipeline.stats();
    for (const int n : {3, 6, 12}) {
      for (const std::uint64_t m :
           {std::uint64_t{64}, std::uint64_t{65536}}) {
        out.selections.push_back(registry.select_uid_or_default(
            stream_key(), {n, 2, m}, sim::MpiLib::kOpenMPI));
      }
    }
    return out;
  };
  const Outcome a = run(1);
  const Outcome b = run(4);
  EXPECT_EQ(a.stats.rows_seen, b.stats.rows_seen);
  EXPECT_EQ(a.stats.rows_ingested, b.stats.rows_ingested);
  EXPECT_EQ(a.stats.rows_quarantined, b.stats.rows_quarantined);
  EXPECT_EQ(a.stats.quarantine_reasons, b.stats.quarantine_reasons);
  EXPECT_EQ(a.stats.drift_detections, b.stats.drift_detections);
  EXPECT_EQ(a.stats.detection_rows, b.stats.detection_rows);
  EXPECT_EQ(a.stats.refits_attempted, b.stats.refits_attempted);
  EXPECT_EQ(a.stats.refits_published, b.stats.refits_published);
  EXPECT_EQ(a.stats.refits_rejected, b.stats.refits_rejected);
  EXPECT_EQ(a.stats.refits_failed, b.stats.refits_failed);
  EXPECT_EQ(a.stats.backoff_skips, b.stats.backoff_skips);
  EXPECT_EQ(a.stats.window_evictions, b.stats.window_evictions);
  EXPECT_EQ(a.selections, b.selections);
}

// ---- pipeline: rejection, backoff and self-healing ----------------------

// While fit faults are armed, every drift-triggered refit fails — the
// incumbent bank must keep serving, attempts must back off
// exponentially (bounded attempt count), and once the faults clear the
// next refit heals the pipeline.
TEST(StreamPipeline, FaultedRefitKeepsIncumbentThenHeals) {
  bench::MeasurementStream stream(drifting_spec());
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, pipeline_options());
  const tune::BankKey key = stream_key();

  // Phase 1: clean pre-shift stream bootstraps the first bank.
  for (int i = 0; i < 600; ++i) {
    (void)pipeline.push_row(key, stream.next().text);
  }
  const std::uint64_t bootstrap_version = registry.version(key);
  ASSERT_GT(bootstrap_version, 0u);
  ASSERT_EQ(pipeline.stats().refits_published, 1u);

  // Phase 2: the regime shifts while every fit is forced to fail
  // through the whole fallback chain.
  {
    fi::ScopedFaults faults({.fit_failures = {
        {1, 1000}, {2, 1000}, {3, 1000}, {4, 1000}}});
    for (int i = 0; i < 1200; ++i) {
      (void)pipeline.push_row(key, stream.next().text);
    }
  }
  const auto mid = pipeline.stats();
  EXPECT_EQ(mid.drift_detections, 1u);
  EXPECT_GE(mid.refits_failed, 1u);
  EXPECT_EQ(mid.refits_published, 1u);  // still only the bootstrap
  EXPECT_EQ(registry.version(key), bootstrap_version)
      << "a faulted refit must never replace the incumbent";
  EXPECT_GT(mid.backoff_skips, 0u) << "failed refits must back off";
  // Exponential backoff bounds the attempt storm: 1200 faulted rows at
  // backoff 64 -> 128 -> 256 -> ... allow only a handful of attempts.
  EXPECT_LE(mid.refits_failed, 6u);

  // Phase 3: faults cleared — the next due refit publishes and serving
  // moves to the recovered bank.
  for (int i = 0; i < 1200; ++i) {
    (void)pipeline.push_row(key, stream.next().text);
  }
  const auto end = pipeline.stats();
  EXPECT_EQ(end.refits_published, 2u) << "pipeline failed to self-heal";
  EXPECT_NE(registry.version(key), bootstrap_version);
  // Attempt ledger reconciles exactly.
  EXPECT_EQ(end.refits_attempted,
            end.refits_published + end.refits_rejected + end.refits_failed);
}

// A validator that always rejects exercises the registry-level gate
// directly: clean fit, rejected publish, incumbent untouched.
TEST(StreamPipeline, RegistryValidatorRejectionKeepsIncumbent) {
  bench::Dataset ds("stream-reject", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(3);
  for (int i = 0; i < 400; ++i) {
    const int uid = 1 + i % 3;
    const int nodes = 2 << (i % 3);
    const double t = 10.0 + uid * nodes + rng.uniform(0.0, 1.0);
    ds.add({uid, nodes, 2, 4096, t});
  }
  tune::BankRegistry registry;
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};

  const auto first =
      registry.refit_and_publish(key, ds, ds.node_counts(), {});
  ASSERT_TRUE(first.published);
  const std::uint64_t v1 = registry.version(key);

  const auto rejected = registry.refit_and_publish(
      key, ds, ds.node_counts(), {},
      [](const tune::CompiledBank&,
         const std::shared_ptr<const tune::CompiledBank>& incumbent) {
        EXPECT_NE(incumbent, nullptr);
        return std::string("candidate loses to incumbent");
      });
  EXPECT_FALSE(rejected.published);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(rejected.error, "candidate loses to incumbent");
  EXPECT_EQ(registry.version(key), v1);
}

// ---- pipeline: serving continuity under concurrent pump -----------------

// The soak-bench shape at test scale (and the TSan target): one lane
// pumps the drifting stream — including the hot swap — while the other
// lanes serve selections continuously. No selection may ever fail.
TEST(StreamPipeline, ServesConcurrentlyThroughSwaps) {
  support::ScopedThreads scoped(4);
  bench::MeasurementStream stream(drifting_spec());
  tune::BankRegistry registry;
  tune::StreamPipeline pipeline(registry, pipeline_options());
  const tune::BankKey key = stream_key();

  // Bootstrap first so every serving lane finds a bank.
  int warm = 0;
  while (registry.version(key) == 0 && warm < 600) {
    (void)pipeline.push_row(key, stream.next().text);
    ++warm;
  }
  ASSERT_GT(registry.version(key), 0u);

  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> served{0};
  support::parallel_for(4, 1, [&](std::size_t lane) {
    if (lane == 0) {
      for (int i = 0; i < 900; ++i) {
        (void)pipeline.push_row(key, stream.next().text);
      }
      return;
    }
    for (int i = 0; i < 3000; ++i) {
      const bench::Instance inst{2 << (i % 4), (i % 2) ? 4 : 1,
                                 std::uint64_t{64} << (i % 3) * 5};
      const int uid = registry.select_uid_or_default(
          key, inst, sim::MpiLib::kOpenMPI);
      if (uid <= 0) failed.fetch_add(1, std::memory_order_relaxed);
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(served.load(), 3u * 3000u);
  EXPECT_GE(pipeline.stats().refits_published, 1u);
}

}  // namespace
}  // namespace mpicp
