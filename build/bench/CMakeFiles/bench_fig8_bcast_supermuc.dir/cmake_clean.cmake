file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bcast_supermuc.dir/bench_fig8_bcast_supermuc.cpp.o"
  "CMakeFiles/bench_fig8_bcast_supermuc.dir/bench_fig8_bcast_supermuc.cpp.o.d"
  "bench_fig8_bcast_supermuc"
  "bench_fig8_bcast_supermuc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bcast_supermuc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
