// Data-flow tracking for validating collective algorithm semantics.
//
// In tracking mode, every rank owns a store of *blocks* (abstract buffer
// regions: segments, reduction chunks, alltoall slots). Send operations
// snapshot the sender's blocks; receive completions overwrite or combine
// (bitwise OR) the receiver's blocks. After a run, collective-specific
// post-conditions check that the algorithm actually implements the
// operation — e.g. after a broadcast every rank must hold the root's
// token in every segment, after an allreduce every rank must hold the
// contribution bits of *all* ranks in every chunk.
//
// Tracking is optional and off during dataset generation (it would
// dominate runtime); the test suite enables it for sweeps over small and
// medium process counts.
#pragma once

#include <cstdint>
#include <vector>

namespace mpicp::sim {

/// Abstract block content. For reduction-style checks this is a bitset
/// over contributing ranks; for routing-style checks (alltoall, scatter)
/// it is an arbitrary token vector compared for equality.
using Block = std::vector<std::uint64_t>;

/// A bitset block with bit `rank` set.
Block contribution_of(int rank);

/// True iff `b`, interpreted as a rank bitset, contains every bit in
/// [0, p).
bool has_all_contributions(const Block& b, int p);

/// True iff `b` contains exactly bit `rank` (e.g. a broadcast segment
/// that must equal the root's data).
bool is_exactly_contribution(const Block& b, int rank);

/// Bitwise OR of `src` into `dst` (resizing `dst` as needed).
void combine_into(Block& dst, const Block& src);

/// Per-rank block stores for one collective invocation.
class DataStore {
 public:
  DataStore(int num_ranks, int blocks_per_rank);

  int num_ranks() const { return num_ranks_; }
  int blocks_per_rank() const { return blocks_per_rank_; }

  Block& at(int rank, std::uint32_t block);
  const Block& at(int rank, std::uint32_t block) const;

  /// Snapshot blocks [begin, begin+count) of `rank`.
  std::vector<Block> snapshot(int rank, std::uint32_t begin,
                              std::uint32_t count) const;

  /// Write a payload into blocks [begin, begin+count) of `rank`,
  /// combining (OR) when `combine` is set, overwriting otherwise.
  void apply(int rank, std::uint32_t begin, const std::vector<Block>& payload,
             bool combine);

 private:
  int num_ranks_;
  int blocks_per_rank_;
  std::vector<Block> blocks_;  // [rank * blocks_per_rank + b]
};

}  // namespace mpicp::sim
