#include "simnet/machine.hpp"

#include "support/error.hpp"

namespace mpicp::sim {

// Parameter rationale (order-of-magnitude calibration against published
// microbenchmarks of the respective fabrics; see DESIGN.md §2):
//  * Intel OmniPath (100 Gbit/s per rail): ~12.5 GB/s -> G = 8e-5 us/B,
//    MPI ping-pong latency ~1.1 us.
//  * Mellanox QDR InfiniBand (32 Gbit/s): ~4 GB/s -> G = 2.5e-4 us/B,
//    latency ~1.6 us.
//  * Shared-memory copies: 4-10 GB/s per channel depending on CPU
//    generation, latency 0.3-0.6 us.

MachineDesc hydra_machine() {
  MachineDesc m;
  m.name = "Hydra";
  m.max_nodes = 36;
  m.max_ppn = 32;
  m.rails = 2;  // dual-rail, dual-switch OmniPath
  m.mem_channels = 4;
  m.intra = {.latency_us = 0.35,
             .overhead_us = 0.20,
             .gap_per_msg_us = 0.10,
             .gap_per_byte_us = 1.25e-4};  // ~8 GB/s per channel
  m.inter = {.latency_us = 1.10,
             .overhead_us = 0.30,
             .gap_per_msg_us = 0.25,
             .gap_per_byte_us = 8.0e-5};  // ~12.5 GB/s per rail
  m.eager_limit_bytes = 8192;
  m.rendezvous_rtt_us = 2.2;
  m.reduce_us_per_byte = 2.5e-4;  // Skylake-class SIMD reduction
  return m;
}

MachineDesc jupiter_machine() {
  MachineDesc m;
  m.name = "Jupiter";
  m.max_nodes = 35;
  m.max_ppn = 16;
  m.rails = 1;  // single-rail QDR InfiniBand
  m.mem_channels = 2;
  m.intra = {.latency_us = 0.60,
             .overhead_us = 0.35,
             .gap_per_msg_us = 0.18,
             .gap_per_byte_us = 2.5e-4};  // ~4 GB/s (Opteron memory)
  m.inter = {.latency_us = 1.60,
             .overhead_us = 0.45,
             .gap_per_msg_us = 0.40,
             .gap_per_byte_us = 2.5e-4};  // ~4 GB/s QDR
  m.eager_limit_bytes = 12288;
  m.rendezvous_rtt_us = 3.5;
  m.reduce_us_per_byte = 6.0e-4;  // older Opteron cores
  return m;
}

MachineDesc supermucng_machine() {
  MachineDesc m;
  m.name = "SuperMUC-NG";
  m.max_nodes = 48;  // the subset of the full system we model
  m.max_ppn = 48;
  m.rails = 1;  // single-rail OmniPath
  m.mem_channels = 6;
  m.intra = {.latency_us = 0.30,
             .overhead_us = 0.18,
             .gap_per_msg_us = 0.08,
             .gap_per_byte_us = 1.0e-4};  // ~10 GB/s per channel
  m.inter = {.latency_us = 1.00,
             .overhead_us = 0.28,
             .gap_per_msg_us = 0.22,
             .gap_per_byte_us = 8.0e-5};  // ~12.5 GB/s
  m.eager_limit_bytes = 8192;
  m.rendezvous_rtt_us = 2.0;
  m.reduce_us_per_byte = 2.0e-4;
  return m;
}

MachineDesc machine_by_name(const std::string& name) {
  if (name == "Hydra") return hydra_machine();
  if (name == "Jupiter") return jupiter_machine();
  if (name == "SuperMUC-NG") return supermucng_machine();
  MPICP_RAISE_ARG("unknown machine preset '" + name + "'");
}

}  // namespace mpicp::sim
