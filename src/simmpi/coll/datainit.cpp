#include "simmpi/coll/datainit.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

Block alltoall_token(int from, int to) {
  return Block{static_cast<std::uint64_t>(from) + 1,
               static_cast<std::uint64_t>(to) + 1};
}

Block rank_token(int rank) {
  return Block{static_cast<std::uint64_t>(rank) + 1};
}

std::string violation(int rank, int block, const std::string& what) {
  std::ostringstream os;
  os << "rank " << rank << ", block " << block << ": " << what;
  return os.str();
}

}  // namespace

DataStore make_initial_store(Collective coll, int p, int blocks_per_rank,
                             int root) {
  MPICP_SPAN("sim.datainit.make_store");
  DataStore store(p, blocks_per_rank);
  switch (coll) {
    case Collective::kBcast:
      for (int b = 0; b < blocks_per_rank; ++b) {
        store.at(root, b) = contribution_of(root);
      }
      break;
    case Collective::kReduce:
    case Collective::kAllreduce:
      for (int r = 0; r < p; ++r) {
        for (int b = 0; b < blocks_per_rank; ++b) {
          store.at(r, b) = contribution_of(r);
        }
      }
      break;
    case Collective::kAlltoall:
      MPICP_REQUIRE(blocks_per_rank >= 2 * p,
                    "alltoall store needs send and receive regions");
      for (int r = 0; r < p; ++r) {
        for (int j = 0; j < p; ++j) {
          store.at(r, j) = alltoall_token(r, j);
        }
      }
      break;
    case Collective::kAllgather:
      MPICP_REQUIRE(blocks_per_rank >= p, "allgather store needs p blocks");
      for (int r = 0; r < p; ++r) store.at(r, r) = contribution_of(r);
      break;
    case Collective::kScatter:
      MPICP_REQUIRE(blocks_per_rank >= p, "scatter store needs p blocks");
      for (int j = 0; j < p; ++j) {
        store.at(root, j) = rank_token((root + j) % p);
      }
      break;
    case Collective::kGather:
      MPICP_REQUIRE(blocks_per_rank >= p, "gather store needs p blocks");
      for (int r = 0; r < p; ++r) {
        store.at(r, (r - root + p) % p) = rank_token(r);
      }
      break;
    case Collective::kScan:
    case Collective::kReduceScatter:
      for (int r = 0; r < p; ++r) {
        for (int b = 0; b < blocks_per_rank; ++b) {
          store.at(r, b) = contribution_of(r);
        }
      }
      break;
    case Collective::kBarrier:
      break;
  }
  return store;
}

std::string validate_store(Collective coll, const DataStore& store, int p,
                           int root) {
  const int nb = store.blocks_per_rank();
  switch (coll) {
    case Collective::kBcast:
      for (int r = 0; r < p; ++r) {
        for (int b = 0; b < nb; ++b) {
          if (!is_exactly_contribution(store.at(r, b), root)) {
            return violation(r, b, "does not hold the root's data");
          }
        }
      }
      return "";
    case Collective::kReduce:
      for (int b = 0; b < nb; ++b) {
        if (!has_all_contributions(store.at(root, b), p)) {
          return violation(root, b, "root misses contributions");
        }
      }
      return "";
    case Collective::kAllreduce:
      for (int r = 0; r < p; ++r) {
        for (int b = 0; b < nb; ++b) {
          if (!has_all_contributions(store.at(r, b), p)) {
            return violation(r, b, "misses contributions");
          }
        }
      }
      return "";
    case Collective::kAlltoall:
      for (int r = 0; r < p; ++r) {
        for (int j = 0; j < p; ++j) {
          if (store.at(r, p + j) != alltoall_token(j, r)) {
            return violation(r, p + j,
                             "wrong payload (expected block " +
                                 std::to_string(r) + " of rank " +
                                 std::to_string(j) + ")");
          }
        }
      }
      return "";
    case Collective::kAllgather:
      for (int r = 0; r < p; ++r) {
        for (int j = 0; j < p; ++j) {
          if (!is_exactly_contribution(store.at(r, j), j)) {
            return violation(r, j, "does not hold rank j's contribution");
          }
        }
      }
      return "";
    case Collective::kScatter:
      for (int j = 0; j < p; ++j) {
        const int r = (root + j) % p;
        if (store.at(r, j) != rank_token(r)) {
          return violation(r, j, "scatter chunk missing or misrouted");
        }
      }
      return "";
    case Collective::kGather:
      for (int j = 0; j < p; ++j) {
        if (store.at(root, j) != rank_token((root + j) % p)) {
          return violation(root, j, "gather chunk missing or misrouted");
        }
      }
      return "";
    case Collective::kScan:
      for (int r = 0; r < p; ++r) {
        for (int b = 0; b < nb; ++b) {
          const Block& blk = store.at(r, b);
          // Exactly the prefix 0..r: all lower bits set, no higher bit.
          if (!has_all_contributions(blk, r + 1)) {
            return violation(r, b, "scan prefix incomplete");
          }
          for (int hi = r + 1; hi < p; ++hi) {
            const std::size_t w = static_cast<std::size_t>(hi) / 64;
            if (w < blk.size() && (blk[w] >> (hi % 64)) & 1u) {
              return violation(r, b, "scan includes a higher rank");
            }
          }
        }
      }
      return "";
    case Collective::kReduceScatter:
      for (int j = 0; j < p; ++j) {
        if (!has_all_contributions(store.at(j, j), p)) {
          return violation(j, j, "reduced chunk incomplete");
        }
      }
      return "";
    case Collective::kBarrier:
      return "";
  }
  MPICP_RAISE_INTERNAL("unhandled Collective in validate_store");
}

}  // namespace mpicp::sim
