#include "tune/config_writer.hpp"

#include <fstream>

#include "support/error.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace {

constexpr std::uint64_t kInfinity = ~std::uint64_t{0};

}  // namespace

int TuningConfig::uid_for(std::uint64_t msize) const {
  for (const TuningRule& rule : rules) {
    if (msize <= rule.msize_upto) return rule.uid;
  }
  MPICP_REQUIRE(!rules.empty(), "empty tuning configuration");
  return rules.back().uid;
}

TuningConfig build_tuning_config(const Selector& selector, sim::MpiLib lib,
                                 sim::Collective coll, int nodes, int ppn,
                                 const std::vector<std::uint64_t>& msizes) {
  MPICP_SPAN("tune.config.build");
  MPICP_REQUIRE(!msizes.empty(), "need at least one message size");
  TuningConfig config;
  config.lib = lib;
  config.coll = coll;
  config.nodes = nodes;
  config.ppn = ppn;
  config.rules.reserve(msizes.size());
  for (std::size_t i = 0; i < msizes.size(); ++i) {
    // Degradation-aware: a message size where every model prediction is
    // unusable gets the library's own default rule instead of aborting
    // the whole tuning file.
    const int uid =
        selector.select_uid_or_default({nodes, ppn, msizes[i]}, lib, coll);
    // A rule covers messages up to halfway (log scale) to the next
    // queried size; the last rule covers everything beyond.
    std::uint64_t upto = kInfinity;
    if (i + 1 < msizes.size()) {
      upto = msizes[i] +
             (msizes[i + 1] - msizes[i]) / 2;  // midpoint boundary
    }
    if (!config.rules.empty() && config.rules.back().uid == uid) {
      config.rules.back().msize_upto = upto;  // fold identical picks
    } else {
      config.rules.push_back({upto, uid});
    }
  }
  return config;
}

void write_tuning_file(const std::filesystem::path& path,
                       const TuningConfig& config) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  out << "# mpicp collective tuning file\n";
  out << "lib " << to_string(config.lib) << '\n';
  out << "collective " << to_string(config.coll) << '\n';
  out << "nodes " << config.nodes << '\n';
  out << "ppn " << config.ppn << '\n';
  for (const TuningRule& rule : config.rules) {
    const auto& cfg = sim::config_by_uid(config.lib, config.coll, rule.uid);
    out << "rule msize_upto=";
    if (rule.msize_upto == kInfinity) {
      out << "inf";
    } else {
      out << rule.msize_upto;
    }
    out << " uid=" << rule.uid << "  # " << cfg.label() << '\n';
  }
  if (!out) MPICP_RAISE_ERROR("failed writing tuning file " + path.string());
}

TuningConfig read_tuning_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) MPICP_RAISE_PARSE("cannot open tuning file " + path.string());
  TuningConfig config;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = std::string(support::trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto parts = support::split(trimmed, ' ');
    if (parts[0] == "lib") {
      config.lib = sim::mpilib_from_string(parts.at(1));
    } else if (parts[0] == "collective") {
      config.coll = sim::collective_from_string(parts.at(1));
    } else if (parts[0] == "nodes") {
      config.nodes = static_cast<int>(support::parse_int(parts.at(1)));
    } else if (parts[0] == "ppn") {
      config.ppn = static_cast<int>(support::parse_int(parts.at(1)));
    } else if (parts[0] == "rule") {
      TuningRule rule;
      for (const std::string& token : parts) {
        if (support::starts_with(token, "msize_upto=")) {
          const std::string v = token.substr(11);
          rule.msize_upto = v == "inf"
                                ? kInfinity
                                : static_cast<std::uint64_t>(
                                      support::parse_int(v));
        } else if (support::starts_with(token, "uid=")) {
          rule.uid = static_cast<int>(support::parse_int(token.substr(4)));
        }
      }
      MPICP_REQUIRE(rule.uid > 0, "tuning rule without uid");
      // mpicp-lint: allow(no-alloc-in-loop) unbounded parse loop; the
      // rule count is unknown until the file ends.
      config.rules.push_back(rule);
    } else {
      MPICP_RAISE_PARSE("unknown tuning-file directive '" + parts[0] + "'");
    }
  }
  return config;
}

}  // namespace mpicp::tune
