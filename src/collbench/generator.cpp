#include "collbench/generator.hpp"

#include <cstdlib>

#include "simnet/machine.hpp"
#include "support/rng.hpp"

namespace mpicp::bench {

Dataset generate_dataset(const DatasetSpec& spec,
                         const ProgressFn& progress) {
  const sim::MachineDesc machine = sim::machine_by_name(spec.machine);
  const NoiseModel noise(spec.seed);
  const auto& configs = sim::algorithm_configs(spec.lib, spec.coll);

  Dataset ds(spec.name, spec.lib, spec.coll, spec.machine);
  const std::size_t total = spec.nodes.size() * spec.ppns.size() *
                            configs.size() * spec.msizes.size();
  std::size_t done = 0;
  for (const int n : spec.nodes) {
    for (const int ppn : spec.ppns) {
      sim::Network net(machine, n, ppn);
      for (const sim::AlgoConfig& cfg : configs) {
        // One deterministic observation stream per (config, allocation):
        // reproducible regardless of generation order.
        support::Xoshiro256 rng(support::hash_combine(
            {spec.seed, static_cast<std::uint64_t>(cfg.uid),
             static_cast<std::uint64_t>(n),
             static_cast<std::uint64_t>(ppn)}));
        for (const std::uint64_t m : spec.msizes) {
          const RunnerResult res = run_benchmark(
              net, spec.lib, spec.coll, cfg, m, noise, spec.budget, rng);
          for (const double obs : res.observations_us) {
            ds.add({cfg.uid, n, ppn, m, obs});
          }
          ++done;
          if (progress && done % 64 == 0) progress(done, total);
        }
      }
    }
  }
  if (progress) progress(total, total);
  return ds;
}

Dataset load_or_generate(const DatasetSpec& spec,
                         const std::filesystem::path& data_dir,
                         const ProgressFn& progress) {
  const std::filesystem::path path = data_dir / (spec.name + ".csv");
  if (std::filesystem::exists(path)) {
    return Dataset::load_csv(path, spec.name, spec.lib, spec.coll,
                             spec.machine);
  }
  Dataset ds = generate_dataset(spec, progress);
  ds.save_csv(path);
  return ds;
}

std::filesystem::path default_data_dir() {
  if (const char* env = std::getenv("MPICP_DATA_DIR")) return env;
  return "data";
}

}  // namespace mpicp::bench
