// Fixture: per-iteration heap allocation on a hot path (R9).
#include <cstddef>
#include <memory>
#include <vector>

void bad(std::vector<int>& out, std::size_t n) {
  std::vector<int> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));
    auto boxed = std::make_unique<int>(3);
    std::vector<double> local(n, 0.0);
    scratch.push_back(*boxed + static_cast<int>(local.size()));
  }
  std::size_t i = 0;
  while (i < n) scratch.emplace_back(static_cast<int>(++i));
  int* leaked = nullptr;
  do {
    leaked = new int(5);
  } while (leaked == nullptr);
  delete leaked;
}
