#include "tune/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "simmpi/coll/decision.hpp"
#include "simmpi/coll/types.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace metrics = support::metrics;

namespace {

constexpr int kDefaultShards = 8;
constexpr int kMaxShards = 64;

/// Options::shards beats $MPICP_SHARDS beats the default; the result is
/// always in [1, kMaxShards].
int resolve_shards(int requested) {
  int shards = requested;
  if (shards <= 0) {
    if (const char* env = std::getenv("MPICP_SHARDS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        shards = static_cast<int>(std::min<long>(v, kMaxShards));
      }
    }
  }
  if (shards <= 0) shards = kDefaultShards;
  return std::min(shards, kMaxShards);
}

/// FNV-1a over the machine name with the collective mixed in — stable
/// across processes, so a given key always lands on the same shard.
std::uint64_t hash_key(const BankKey& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key.machine) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(key.collective) + 0x9e3779b97f4a7c15ull;
  h *= 1099511628211ull;
  return h;
}

/// Process-wide version source: every publish anywhere in the process
/// gets a distinct version, so memo entries can never alias across
/// swaps — not even between independent registries.
std::uint64_t next_version() {
  static std::atomic<std::uint64_t> counter{0};
  // order: a unique-ticket counter; uniqueness needs atomicity only.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::string to_string(const BankKey& key) {
  return key.machine + "/" + sim::to_string(key.collective);
}

const char* to_string(ServingTier tier) {
  switch (tier) {
    case ServingTier::kNone: return "none";
    case ServingTier::kCompiled: return "compiled";
    case ServingTier::kRules: return "rules";
  }
  MPICP_RAISE_INTERNAL("unhandled ServingTier value");
}

BankRegistry::BankRegistry(Options options)
    : memo_enabled_(options.memo_cache),
      rule_agreement_floor_(options.rule_agreement_floor) {
  const int n = resolve_shards(options.shards);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Bounded setup loop (shard count <= 64), not a serving hot path.
    // mpicp-lint: allow(no-alloc-in-loop)
    auto shard = std::make_unique<Shard>();
    const std::string prefix = "registry.shard" + std::to_string(i) + ".";
    shard->c.lookups = &metrics::counter(prefix + "lookups");
    shard->c.hits = &metrics::counter(prefix + "hits");
    shard->c.memo_hits = &metrics::counter(prefix + "memo_hits");
    shard->c.memo_misses = &metrics::counter(prefix + "memo_misses");
    shard->c.rule_selections = &metrics::counter(prefix + "rule_selections");
    shard->c.swaps = &metrics::counter(prefix + "swaps");
    // order: publishes the empty snapshot map to future reader threads.
    // mpicp-lint: allow(no-alloc-in-loop)
    shard->snapshot.store(std::make_shared<const BankMap>(),
                          std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
  metrics::gauge("registry.shards").set(static_cast<double>(n));
}

int BankRegistry::shards() const {
  return static_cast<int>(shards_.size());
}

std::size_t BankRegistry::num_banks() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    // order: pairs with the release stores in publish()/publish_rules().
    total += shard->snapshot.load(std::memory_order_acquire)->size();
  }
  return total;
}

BankRegistry::Shard& BankRegistry::shard_of(const BankKey& key) const {
  return *shards_[hash_key(key) % shards_.size()];
}

BankRegistry::Entry BankRegistry::find_entry(const BankKey& key) const {
  Shard& shard = shard_of(key);
  // order: independent statistic; readers only need eventual totals.
  shard.lookups.fetch_add(1, std::memory_order_relaxed);
  shard.c.lookups->inc();
  // The RCU read: one atomic snapshot load; the map behind it is
  // immutable, so the find needs no lock and a concurrent publish
  // cannot tear it.
  // order: pairs with the release stores in publish()/publish_rules().
  const std::shared_ptr<const BankMap> snap =
      shard.snapshot.load(std::memory_order_acquire);
  const auto it = snap->find(key);
  if (it == snap->end()) return {};
  // order: independent statistic; readers only need eventual totals.
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.c.hits->inc();
  return it->second;
}

int BankRegistry::select_in_entry(Shard& shard, const Entry& entry,
                                  const bench::Instance& inst) const {
  if (entry.rules != nullptr) {
    // Rule-table fast path: the flat threshold walk is cheaper than the
    // memo lookup it would replace, so it bypasses the memo entirely.
    // order: independent statistic; readers only need eventual totals.
    shard.rule_selections.fetch_add(1, std::memory_order_relaxed);
    shard.c.rule_selections->inc();
    return entry.rules->uid_for(inst);
  }
  if (!memo_enabled_) return entry.bank->select_uid_or_invalid(inst);
  const MemoKey key{entry.version, inst.msize, inst.nodes, inst.ppn};
  {
    const support::MutexLock lock(shard.memo_mu);
    const auto it = shard.memo.find(key);
    if (it != shard.memo.end()) {
      // order: independent statistic; readers only need eventual totals.
      shard.memo_hits.fetch_add(1, std::memory_order_relaxed);
      shard.c.memo_hits->inc();
      return it->second;
    }
  }
  const int uid = entry.bank->select_uid_or_invalid(inst);
  // order: independent statistic; readers only need eventual totals.
  shard.memo_misses.fetch_add(1, std::memory_order_relaxed);
  shard.c.memo_misses->inc();
  if (uid > 0) {
    const support::MutexLock lock(shard.memo_mu);
    shard.memo.emplace(key, uid);
  }
  return uid;
}

std::shared_ptr<const CompiledBank> BankRegistry::lookup(
    const BankKey& key) const {
  MPICP_SPAN("registry.lookup");
  return find_entry(key).bank;
}

std::uint64_t BankRegistry::version(const BankKey& key) const {
  return find_entry(key).version;
}

int BankRegistry::select_uid(const BankKey& key,
                             const bench::Instance& inst) const {
  MPICP_SPAN("registry.lookup");
  const Entry entry = find_entry(key);
  MPICP_REQUIRE(entry.bank != nullptr,
                "no bank registered for " + to_string(key));
  const int uid = select_in_entry(shard_of(key), entry, inst);
  MPICP_REQUIRE(uid > 0,
                "no usable model prediction for the instance (use "
                "select_uid_or_default for graceful degradation)");
  return uid;
}

int BankRegistry::select_uid_or_default(const BankKey& key,
                                        const bench::Instance& inst,
                                        sim::MpiLib lib) const {
  MPICP_SPAN("registry.lookup");
  const Entry entry = find_entry(key);
  if (entry.bank != nullptr) {
    const int uid = select_in_entry(shard_of(key), entry, inst);
    if (uid > 0) return uid;
  }
  // Missing bank or nothing usable: behave like an untuned job launch.
  static metrics::Counter& fallbacks =
      metrics::counter("registry.default_fallbacks");
  fallbacks.inc();
  return sim::library_default_uid(lib, key.collective,
                                  inst.nodes * inst.ppn, inst.msize);
}

std::vector<int> BankRegistry::select_grid(
    const BankKey& key, std::span<const bench::Instance> grid) const {
  MPICP_SPAN("registry.select_grid");
  // Resolve the entry once: a whole grid is answered by one consistent
  // bank version even if a publish lands mid-batch.
  const Entry entry = find_entry(key);
  MPICP_REQUIRE(entry.bank != nullptr,
                "no bank registered for " + to_string(key));
  static metrics::Counter& instances =
      metrics::counter("registry.grid_instances");
  instances.inc(grid.size());
  Shard& shard = shard_of(key);
  std::vector<int> out(grid.size(), -1);
  support::parallel_for(grid.size(), 8, [&](std::size_t i) {
    const int uid = select_in_entry(shard, entry, grid[i]);
    MPICP_REQUIRE(uid > 0,
                  "no usable model prediction for a grid instance (use "
                  "select_uid_or_default for graceful degradation)");
    out[i] = uid;
  });
  return out;
}

std::vector<int> BankRegistry::serve(std::span<const Query> queries) const {
  MPICP_SPAN("registry.serve");
  static metrics::Counter& served =
      metrics::counter("registry.serve.queries");
  served.inc(queries.size());
  std::vector<int> out(queries.size(), -1);
  // Results are slotted by index, so the drain order (and the thread
  // count) cannot change the answer vector.
  support::parallel_for(queries.size(), 64, [&](std::size_t i) {
    out[i] = select_uid(queries[i].key, queries[i].inst);
  });
  return out;
}

std::uint64_t BankRegistry::publish(const BankKey& key,
                                    std::shared_ptr<const CompiledBank> bank) {
  MPICP_SPAN("registry.swap");
  MPICP_REQUIRE(bank != nullptr, "publishing a null bank for " +
                                     to_string(key));
  MPICP_REQUIRE(bank->num_models() > 0,
                "publishing an empty bank for " + to_string(key));
  Shard& shard = shard_of(key);
  const std::uint64_t version = next_version();
  {
    // Writers serialize among themselves; readers never wait — they
    // keep using the snapshot they loaded until the store below.
    const support::MutexLock lock(shard.write_mu);
    // order: the writer's own read; write_mu orders writer-to-writer.
    const std::shared_ptr<const BankMap> old =
        shard.snapshot.load(std::memory_order_acquire);
    auto next = std::make_shared<BankMap>(*old);
    // A fresh Entry has no rules: the incoming bank invalidates any
    // table distilled from the outgoing one.
    (*next)[key] = Entry{std::move(bank), nullptr, version};
    // order: publishes the cloned map; pairs with the acquire loads on
    // every reader path (find_entry, num_banks, shard_stats).
    shard.snapshot.store(std::move(next), std::memory_order_release);
  }
  {
    // Drop the shard memo wholesale: stale versions can never hit again
    // (lookups now resolve the new version), this just bounds memory.
    const support::MutexLock lock(shard.memo_mu);
    shard.memo.clear();
  }
  // order: independent statistic; readers only need eventual totals.
  shard.swaps.fetch_add(1, std::memory_order_relaxed);
  shard.c.swaps->inc();
  static metrics::Counter& swaps = metrics::counter("registry.swaps");
  swaps.inc();
  return version;
}

BankRegistry::RefitOutcome BankRegistry::refit_and_publish(
    const BankKey& key, const bench::Dataset& ds,
    const std::vector<int>& train_nodes, const SelectorOptions& options,
    const RefitValidator& validator) {
  MPICP_SPAN("registry.refit");
  RefitOutcome outcome;
  outcome.version = version(key);
  try {
    Selector selector(options);
    outcome.fit_report = selector.fit(ds, train_nodes);
    auto compiled = std::make_shared<const CompiledBank>(selector.compile());
    if (validator) {
      const std::string verdict = validator(*compiled, lookup(key));
      if (!verdict.empty()) {
        // A clean fit that lost to the incumbent: discard the candidate,
        // keep serving the last good bank.
        outcome.rejected = true;
        outcome.error = verdict;
        metrics::counter("registry.refit_rejected").inc();
        return outcome;
      }
    }
    outcome.version = publish(key, std::move(compiled));
    outcome.published = true;
    metrics::counter("registry.refits").inc();
  } catch (const std::exception& e) {
    // The last good bank keeps serving; the caller decides whether a
    // failed refit is fatal.
    outcome.error = e.what();
    metrics::counter("registry.refit_failures").inc();
  }
  return outcome;
}

std::uint64_t BankRegistry::publish_rules(
    const BankKey& key, std::shared_ptr<const RuleTable> rules,
    std::uint64_t expected_version) {
  MPICP_SPAN("registry.swap");
  MPICP_REQUIRE(rules != nullptr && !rules->empty(),
                "publishing an empty rule table for " + to_string(key));
  Shard& shard = shard_of(key);
  const support::MutexLock lock(shard.write_mu);
  // order: the writer's own read; write_mu orders writer-to-writer.
  const std::shared_ptr<const BankMap> old =
      shard.snapshot.load(std::memory_order_acquire);
  const auto it = old->find(key);
  if (it == old->end()) return 0;
  if (expected_version != 0 && it->second.version != expected_version) {
    // The bank was hot-swapped after the caller distilled: the table
    // describes a bank that is no longer serving. Refuse the attach.
    return 0;
  }
  auto next = std::make_shared<BankMap>(*old);
  Entry& entry = (*next)[key];
  entry.rules = std::move(rules);
  const std::uint64_t version = entry.version;
  // order: publishes the cloned map; pairs with the reader acquires.
  shard.snapshot.store(std::move(next), std::memory_order_release);
  static metrics::Counter& attaches =
      metrics::counter("registry.rule_attaches");
  attaches.inc();
  return version;
}

std::shared_ptr<const RuleTable> BankRegistry::lookup_rules(
    const BankKey& key) const {
  MPICP_SPAN("registry.lookup");
  return find_entry(key).rules;
}

ServingTier BankRegistry::tier(const BankKey& key) const {
  const Entry entry = find_entry(key);
  if (entry.bank == nullptr) return ServingTier::kNone;
  return entry.rules != nullptr ? ServingTier::kRules
                                : ServingTier::kCompiled;
}

BankRegistry::DistillOutcome BankRegistry::distill_and_publish(
    const BankKey& key, std::span<const bench::Instance> grid,
    RuleParams params) {
  MPICP_SPAN("registry.distill");
  DistillOutcome outcome;
  try {
    const Entry entry = find_entry(key);
    if (entry.bank == nullptr) {
      outcome.error = "no bank registered for " + to_string(key);
      metrics::counter("registry.distill_failures").inc();
      return outcome;
    }
    RuleDistillation dist = distill(*entry.bank, grid, params);
    outcome.agreement = dist.agreement;
    outcome.leaves = dist.table.num_leaves();
    if (dist.agreement < rule_agreement_floor_) {
      // Below the fidelity floor: the table would visibly change picks,
      // so the bank keeps serving alone.
      outcome.rejected = true;
      outcome.error = "distillation agreement below floor";
      metrics::counter("registry.distill_rejected").inc();
      return outcome;
    }
    auto table = std::make_shared<const RuleTable>(std::move(dist.table));
    const std::uint64_t version =
        publish_rules(key, std::move(table), entry.version);
    if (version == 0) {
      outcome.error =
          "bank hot-swapped during distillation; table discarded";
      metrics::counter("registry.distill_failures").inc();
      return outcome;
    }
    outcome.published = true;
    outcome.version = version;
    metrics::counter("registry.distills").inc();
  } catch (const std::exception& e) {
    // The bank keeps serving; a failed distillation only costs the fast
    // path.
    outcome.error = e.what();
    metrics::counter("registry.distill_failures").inc();
  }
  return outcome;
}

std::vector<BankRegistry::ShardStats> BankRegistry::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    // order: statistics snapshot; tolerates straddling in-flight
    // selections (counters are independent, eventual totals).
    s.lookups = shard->lookups.load(std::memory_order_relaxed);
    // order: statistics snapshot (see above).
    s.hits = shard->hits.load(std::memory_order_relaxed);
    // order: statistics snapshot (see above).
    s.memo_hits = shard->memo_hits.load(std::memory_order_relaxed);
    // order: statistics snapshot (see above).
    s.memo_misses = shard->memo_misses.load(std::memory_order_relaxed);
    // order: statistics snapshot (see above).
    s.rule_selections =
        shard->rule_selections.load(std::memory_order_relaxed);
    // order: statistics snapshot (see above).
    s.swaps = shard->swaps.load(std::memory_order_relaxed);
    // order: pairs with the release stores in publish()/publish_rules().
    s.banks = shard->snapshot.load(std::memory_order_acquire)->size();
    out.push_back(s);
  }
  return out;
}

}  // namespace mpicp::tune
