// Tests for the rank placement policies (SLURM block vs. cyclic):
// mapping arithmetic, semantic correctness of every algorithm under
// cyclic placement, and the expected performance signatures.
#include <gtest/gtest.h>

#include "simmpi/coll/datainit.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"

namespace mpicp::sim {
namespace {

TEST(Placement, MappingArithmetic) {
  const Comm block(4, 3, Placement::kBlock);
  EXPECT_EQ(block.node_of(0), 0);
  EXPECT_EQ(block.node_of(5), 1);
  EXPECT_EQ(block.local_of(5), 2);
  EXPECT_EQ(block.rank_of(1, 2), 5);
  EXPECT_EQ(block.leader_of_node(2), 6);

  const Comm cyclic(4, 3, Placement::kCyclic);
  EXPECT_EQ(cyclic.node_of(0), 0);
  EXPECT_EQ(cyclic.node_of(5), 1);
  EXPECT_EQ(cyclic.local_of(5), 1);
  EXPECT_EQ(cyclic.rank_of(1, 1), 5);
  EXPECT_EQ(cyclic.leader_of_node(2), 2);

  // rank_of is the inverse of (node_of, local_of) in both placements.
  for (const auto& comm : {block, cyclic}) {
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(comm.rank_of(comm.node_of(r), comm.local_of(r)), r);
    }
  }
}

TEST(Placement, NetworkAndCommAgree) {
  const MachineDesc desc = hydra_machine();
  for (const Placement pl : {Placement::kBlock, Placement::kCyclic}) {
    Network net(desc, 5, 4, pl);
    const Comm comm(5, 4, pl);
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(net.node_of(r), comm.node_of(r));
    }
  }
}

class CyclicSemantics
    : public ::testing::TestWithParam<std::pair<MpiLib, Collective>> {};

TEST_P(CyclicSemantics, EveryUidCorrectUnderCyclicPlacement) {
  const auto [lib, coll] = GetParam();
  const int nodes = 5;
  const int ppn = 3;
  const Comm comm(nodes, ppn, Placement::kCyclic);
  MachineDesc desc = hydra_machine();
  Network net(desc, nodes, ppn, Placement::kCyclic);
  Executor exec(net);
  for (const AlgoConfig& cfg : algorithm_configs(lib, coll)) {
    for (const std::size_t m : {64ull, 40000ull}) {
      BuiltCollective built =
          build_algorithm(lib, coll, cfg, comm, m, 0, true);
      DataStore store =
          make_initial_store(coll, comm.size(), built.blocks_per_rank, 0);
      EXPECT_GT(exec.run(built.programs, &store).makespan_us, 0.0);
      EXPECT_EQ(validate_store(coll, store, comm.size(), 0), "")
          << to_string(lib) << "/" << to_string(coll) << " uid=" << cfg.uid
          << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclicSemantics,
    ::testing::Values(
        std::pair{MpiLib::kOpenMPI, Collective::kBcast},
        std::pair{MpiLib::kOpenMPI, Collective::kAllreduce},
        std::pair{MpiLib::kIntelMPI, Collective::kBcast},
        std::pair{MpiLib::kIntelMPI, Collective::kAllreduce},
        std::pair{MpiLib::kIntelMPI, Collective::kAlltoall}));

TEST(Placement, CyclicHurtsNeighborAlgorithms) {
  // A pipeline chain visits consecutive ranks; under block placement
  // most hops are intra-node, under cyclic placement every hop crosses
  // the fabric — the chain must get slower, noticeably.
  const MachineDesc desc = hydra_machine();
  const auto run_pl = [&](Placement pl) {
    Network net(desc, 6, 8, pl);
    Executor exec(net);
    const Comm comm(6, 8, pl);
    const auto& configs =
        algorithm_configs(MpiLib::kOpenMPI, Collective::kBcast);
    for (const auto& cfg : configs) {
      if (cfg.name == "pipeline" && cfg.seg_bytes == 65536) {
        auto built = build_algorithm(MpiLib::kOpenMPI, Collective::kBcast,
                                     cfg, comm, 1u << 20, 0, false);
        return exec.run(built.programs).makespan_us;
      }
    }
    throw std::runtime_error("config not found");
  };
  const double t_block = run_pl(Placement::kBlock);
  const double t_cyclic = run_pl(Placement::kCyclic);
  EXPECT_GT(t_cyclic, 1.2 * t_block);
}

TEST(Placement, HierarchicalAlgorithmsStayTopologyAwareUnderCyclic) {
  // The two-level allreduce adapts its leader set to the placement, so
  // its inter-node traffic stays one-message-per-node in both modes;
  // its runtime must not blow up under cyclic placement the way
  // placement-oblivious neighbor algorithms do.
  const MachineDesc desc = hydra_machine();
  const auto run_pl = [&](Placement pl, const char* name) {
    Network net(desc, 6, 8, pl);
    Executor exec(net);
    const Comm comm(6, 8, pl);
    for (const auto& cfg :
         algorithm_configs(MpiLib::kIntelMPI, Collective::kAllreduce)) {
      if (cfg.name == name) {
        auto built =
            build_algorithm(MpiLib::kIntelMPI, Collective::kAllreduce, cfg,
                            comm, 1u << 20, 0, false);
        return exec.run(built.programs).makespan_us;
      }
    }
    throw std::runtime_error("config not found");
  };
  const double hier_block = run_pl(Placement::kBlock, "topo_recdbl");
  const double hier_cyclic = run_pl(Placement::kCyclic, "topo_recdbl");
  EXPECT_LT(hier_cyclic, 2.0 * hier_block);
}

}  // namespace
}  // namespace mpicp::sim
