// The paper's algorithm selection strategy (Fig. 3): one regression
// model per algorithm configuration uid, each predicting the running
// time from the instance features (m, n, N); selection evaluates every
// model on an unseen instance and returns the argmin.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "ml/learner.hpp"

namespace mpicp::tune {

/// Instance feature encoding. The paper's features are message size,
/// number of nodes and processes per node; we use log2(m) for the
/// message size (it spans seven decades) and optionally append the
/// derived total process count p = n * ppn (ablation: bench_ablation).
struct FeatureOptions {
  bool include_total_processes = true;
};

std::vector<double> instance_features(const bench::Instance& inst,
                                      const FeatureOptions& opts);

struct SelectorOptions {
  std::string learner = "gam";  ///< ml::make_regressor name
  FeatureOptions features;
};

class Selector {
 public:
  explicit Selector(SelectorOptions options = {});

  /// Fit one model per uid on the dataset rows whose node count is in
  /// `train_nodes` (raw observations, not aggregates — the models see
  /// the measurement noise, as in the paper).
  void fit(const bench::Dataset& ds, const std::vector<int>& train_nodes);

  /// Predicted running time of one configuration on an instance.
  double predicted_time_us(int uid, const bench::Instance& inst) const;

  /// One model-bank query result.
  struct Prediction {
    int uid = 0;
    double time_us = 0.0;
  };

  /// Batched inference: the predicted running time of *every* modeled
  /// configuration on an instance, in ascending uid order. This is the
  /// fan-out half of the paper's argmin selection; the per-uid models
  /// are evaluated in parallel (see support/parallel.hpp).
  std::vector<Prediction> predict_all(const bench::Instance& inst) const;

  /// The argmin over all modeled configurations (the algorithm ID the
  /// framework would load into the MPI library). Ties resolve to the
  /// lowest uid regardless of thread count.
  int select_uid(const bench::Instance& inst) const;

  std::vector<int> uids() const;
  const SelectorOptions& options() const { return options_; }

  /// Persist the fitted model bank (train offline once, load in the job
  /// prolog — the paper's deployment split between the tuning step and
  /// application start).
  void save(const std::filesystem::path& path) const;
  static Selector load(const std::filesystem::path& path);

 private:
  SelectorOptions options_;
  std::map<int, std::unique_ptr<ml::Regressor>> models_;
};

}  // namespace mpicp::tune
