#include "collbench/streamgen.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/str.hpp"

namespace mpicp::bench {

namespace fi = support::faultinject;

MeasurementStream::MeasurementStream(StreamSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  MPICP_REQUIRE(!spec_.uids.empty(), "stream needs at least one uid");
  MPICP_REQUIRE(!spec_.nodes.empty() && !spec_.ppns.empty() &&
                    !spec_.msizes.empty(),
                "stream needs a non-empty instance grid");
  MPICP_REQUIRE(spec_.fault_rate >= 0.0 && spec_.fault_rate <= 1.0,
                "fault rate must be in [0, 1]");
  for (std::size_t i = 1; i < spec_.shifts.size(); ++i) {
    MPICP_REQUIRE(spec_.shifts[i - 1].at_row <= spec_.shifts[i].at_row,
                  "regime shifts must be ascending by at_row");
  }
}

std::uint64_t MeasurementStream::regime_seed_at(std::size_t row) const {
  std::uint64_t seed = spec_.machine_seed;
  for (const RegimeShift& shift : spec_.shifts) {
    if (row < shift.at_row) break;
    seed = shift.machine_seed;
  }
  return seed;
}

double MeasurementStream::base_time_us(int uid,
                                       const Instance& inst) const {
  // An analytic surface with genuine crossovers: each uid trades a
  // latency (log p) term against a bandwidth (m / sqrt(p)) term with
  // uid-dependent weights, so which algorithm wins depends on (m, p) —
  // and the per-regime systematic factor on top moves those frontiers.
  const double p = static_cast<double>(inst.nodes) *
                   static_cast<double>(inst.ppn);
  const double m = static_cast<double>(inst.msize);
  const double u = static_cast<double>(uid);
  const double latency_w = 2.0 + 1.5 * u;
  const double band_w = 0.004 / (1.0 + 0.5 * u);
  return 5.0 + latency_w * std::log2(p + 1.0) + band_w * m / std::sqrt(p) +
         0.08 * u * p;
}

double MeasurementStream::true_time_us(std::size_t row, int uid,
                                       const Instance& inst) const {
  const NoiseModel model(regime_seed_at(row), spec_.noise);
  return model.true_time_us(base_time_us(uid, inst),
                            static_cast<std::uint64_t>(spec_.coll), uid,
                            inst.nodes, inst.ppn, inst.msize);
}

MeasurementStream::Row MeasurementStream::next() {
  Row row;
  row.index = cursor_;

  // Fixed draw order (instance, observation, fault) keeps the stream a
  // pure function of the seed regardless of what the consumer does.
  const int uid = spec_.uids[cursor_ % spec_.uids.size()];
  Instance inst;
  inst.nodes = spec_.nodes[rng_.uniform_int(spec_.nodes.size())];
  inst.ppn = spec_.ppns[rng_.uniform_int(spec_.ppns.size())];
  inst.msize = spec_.msizes[rng_.uniform_int(spec_.msizes.size())];

  const NoiseModel model(regime_seed_at(cursor_), spec_.noise);
  const double truth = model.true_time_us(
      base_time_us(uid, inst), static_cast<std::uint64_t>(spec_.coll), uid,
      inst.nodes, inst.ppn, inst.msize);
  const double observed = model.observe_us(truth, rng_);

  row.text = std::to_string(uid) + "," + std::to_string(inst.nodes) + "," +
             std::to_string(inst.ppn) + "," + std::to_string(inst.msize) +
             "," + support::format_double(observed, 17);

  if (spec_.fault_rate > 0.0 && rng_.uniform() < spec_.fault_rate) {
    row.faulted = true;
    ++faulted_;
    const fi::CsvFault kind = fi::csv_fault_cycle(kind_cursor_++);
    const auto corrupted = fi::corrupt_csv_row(row.text, kind, 4);
    if (corrupted) {
      row.text = *corrupted;
    } else {
      row.text.clear();
      row.dropped = true;
      ++dropped_;
    }
  }

  ++cursor_;
  return row;
}

}  // namespace mpicp::bench
