# Empty dependencies file for mpicp_tune.
# This may be replaced when dependencies are built.
