// Figure 5 — predicted algorithm (library algorithm id) per process
// configuration and message size for each regression learner (KNN, GAM,
// XGBoost); MPI_Bcast, Open MPI (modeled), Hydra.
//
// Paper shape: the learners produce visibly different maps and together
// exercise many distinct algorithms (not just one or two).
#include <iostream>
#include <set>

#include "bench_common.hpp"

int main() {
  using namespace mpicp;
  std::printf("Figure 5: predicted algorithm id per configuration "
              "(#nodes x ppn) and message size;\nMPI_Bcast, Open MPI "
              "(modeled), Hydra (d1)\n\n");
  const bench::Dataset ds = bench::load_dataset_cached("d1");
  const bench::NodeSplit split = bench::node_split(ds.machine());
  const std::vector<int> panel_nodes = {7, 19, 35};
  const auto ppns = ds.ppns();

  for (const std::string learner : {"knn", "gam", "xgboost"}) {
    tune::Selector selector(tune::SelectorOptions{.learner = learner});
    bench::fit_or_warn(selector, ds, split.train_full);

    std::printf("== learner: %s ==\n", learner.c_str());
    std::vector<std::string> header = {"msize [B]"};
    for (const int n : panel_nodes) {
      for (const int ppn : ppns) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%02dx%02d", n, ppn);
        header.emplace_back(buf);
      }
    }
    support::TextTable table(std::move(header));
    std::set<int> used_algs;
    for (const std::uint64_t m : ds.msizes()) {
      std::vector<std::string> row = {std::to_string(m)};
      for (const int n : panel_nodes) {
        for (const int ppn : ppns) {
          const int uid = selector.select_uid({n, ppn, m});
          const auto& cfg =
              sim::config_by_uid(ds.lib(), ds.collective(), uid);
          used_algs.insert(cfg.alg_id);
          row.push_back(std::to_string(cfg.alg_id));
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("distinct algorithms used: %zu\n\n", used_algs.size());
  }
  return 0;
}
