#include "tune/rulegen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace mpicp::tune {

namespace {

/// Majority label and its count.
std::pair<int, std::size_t> majority(
    const std::vector<const LabeledInstance*>& points) {
  std::map<int, std::size_t> counts;
  for (const auto* p : points) ++counts[p->uid];
  std::pair<int, std::size_t> best{0, 0};
  for (const auto& [uid, count] : counts) {
    if (count > best.second) best = {uid, count};
  }
  return best;
}

}  // namespace

double DecisionRules::feature_of(const bench::Instance& inst, int f) {
  switch (f) {
    case 0:
      return std::log2(
          static_cast<double>(std::max<std::uint64_t>(inst.msize, 1)));
    case 1: return static_cast<double>(inst.nodes);
    case 2: return static_cast<double>(inst.ppn);
    default: MPICP_RAISE_INTERNAL("bad rule feature index");
  }
}

DecisionRules DecisionRules::fit(
    const std::vector<LabeledInstance>& points, RuleParams params) {
  MPICP_SPAN("tune.rulegen.fit");
  MPICP_REQUIRE(!points.empty(), "cannot fit rules on an empty grid");
  DecisionRules rules;
  std::vector<const LabeledInstance*> ptrs;
  ptrs.reserve(points.size());
  for (const auto& p : points) ptrs.push_back(&p);
  rules.build(std::move(ptrs), 0, params);
  return rules;
}

int DecisionRules::build(std::vector<const LabeledInstance*> points,
                         int depth, const RuleParams& params) {
  const auto [major_uid, major_count] = majority(points);
  const int node_idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_idx].uid = major_uid;
  if (major_count == points.size() || depth >= params.max_depth ||
      points.size() <
          static_cast<std::size_t>(2 * params.min_points_per_leaf)) {
    return node_idx;
  }

  // Best split = the one minimizing total misclassification against the
  // children's majorities. A child's misclassification never exceeds its
  // share of the parent's, so initializing past the no-split miss means
  // ties with it are still taken (first feature / lowest threshold
  // wins): a split that does not pay off immediately can separate
  // XOR-shaped label regions deeper down, and an impure node only
  // terminates when no candidate split separates anything at all.
  int best_feature = -1;
  double best_threshold = 0.0;
  std::size_t best_miss = std::numeric_limits<std::size_t>::max();
  std::vector<double> sorted;
  for (int f = 0; f < 3; ++f) {
    std::set<double> values;
    for (const auto* p : points) values.insert(feature_of(p->inst, f));
    if (values.size() < 2) continue;
    sorted.assign(values.begin(), values.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double thr = 0.5 * (sorted[i] + sorted[i + 1]);
      std::vector<const LabeledInstance*> left;
      std::vector<const LabeledInstance*> right;
      for (const auto* p : points) {
        (feature_of(p->inst, f) < thr ? left : right).push_back(p);
      }
      if (left.empty() || right.empty()) {
        // Degenerate split: the midpoint of two adjacent representable
        // feature values can round onto one of them, leaving a child
        // with zero points. Recursing on it would never terminate —
        // skip the candidate (and fall through to a leaf if every
        // candidate degenerates).
        continue;
      }
      if (left.size() <
              static_cast<std::size_t>(params.min_points_per_leaf) ||
          right.size() <
              static_cast<std::size_t>(params.min_points_per_leaf)) {
        continue;
      }
      const std::size_t miss = (left.size() - majority(left).second) +
                               (right.size() - majority(right).second);
      if (miss < best_miss) {
        best_miss = miss;
        best_feature = f;
        best_threshold = thr;
      }
    }
  }
  if (best_feature < 0) return node_idx;

  std::vector<const LabeledInstance*> left;
  std::vector<const LabeledInstance*> right;
  for (const auto* p : points) {
    (feature_of(p->inst, best_feature) < best_threshold ? left : right)
        .push_back(p);
  }
  points.clear();
  points.shrink_to_fit();
  nodes_[node_idx].feature = best_feature;
  nodes_[node_idx].threshold = best_threshold;
  const int l = build(std::move(left), depth + 1, params);
  const int r = build(std::move(right), depth + 1, params);
  nodes_[node_idx].left = l;
  nodes_[node_idx].right = r;
  return node_idx;
}

int DecisionRules::uid_for(const bench::Instance& inst) const {
  MPICP_REQUIRE(!nodes_.empty(), "rules not fitted");
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = feature_of(inst, nodes_[cur].feature) < nodes_[cur].threshold
              ? nodes_[cur].left
              : nodes_[cur].right;
  }
  return nodes_[cur].uid;
}

double DecisionRules::agreement(
    const std::vector<LabeledInstance>& points) const {
  MPICP_REQUIRE(!points.empty(), "empty grid");
  std::size_t hits = 0;
  for (const auto& p : points) hits += uid_for(p.inst) == p.uid ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(points.size());
}

int DecisionRules::num_leaves() const {
  int leaves = 0;
  for (const Node& node : nodes_) leaves += node.feature < 0 ? 1 : 0;
  return leaves;
}

void DecisionRules::render(int node, int indent, std::string& out) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const Node& n = nodes_[node];
  if (n.feature < 0) {
    out += pad + "return " + std::to_string(n.uid) + ";\n";
    return;
  }
  std::string cond;
  switch (n.feature) {
    case 0: {
      // Translate the log2 threshold back into the smallest byte count
      // classified right of it, so the emitted integer comparison is
      // exactly equivalent to the tree's double comparison
      // log2(max(msize, 1)) < threshold for every integer msize —
      // including the grid values straddling the threshold, where a
      // nearest-integer rounding of exp2 can land on the wrong side.
      auto bytes = static_cast<std::uint64_t>(
          std::llround(std::exp2(n.threshold)));
      if (bytes < 1) bytes = 1;
      while (bytes > 1 &&
             std::log2(static_cast<double>(bytes - 1)) >= n.threshold) {
        --bytes;
      }
      while (std::log2(static_cast<double>(bytes)) < n.threshold) {
        ++bytes;
      }
      cond = "msize < " + std::to_string(bytes) + "ULL";
      break;
    }
    case 1:
      cond = "nodes < " +
             std::to_string(static_cast<long long>(
                 std::ceil(n.threshold)));
      break;
    default:
      cond = "ppn < " + std::to_string(static_cast<long long>(
                            std::ceil(n.threshold)));
      break;
  }
  out += pad + "if (" + cond + ") {\n";
  render(n.left, indent + 1, out);
  out += pad + "} else {\n";
  render(n.right, indent + 1, out);
  out += pad + "}\n";
}

std::string DecisionRules::to_c_code(
    const std::string& function_name) const {
  MPICP_REQUIRE(!nodes_.empty(), "rules not fitted");
  std::string out;
  out += "/* generated by mpicp::tune::DecisionRules */\n";
  out += "int " + function_name +
         "(unsigned long long msize, int nodes, int ppn) {\n";
  render(0, 1, out);
  out += "}\n";
  return out;
}

}  // namespace mpicp::tune
