file(REMOVE_RECURSE
  "CMakeFiles/explore_algorithms.dir/explore_algorithms.cpp.o"
  "CMakeFiles/explore_algorithms.dir/explore_algorithms.cpp.o.d"
  "explore_algorithms"
  "explore_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
