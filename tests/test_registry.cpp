// Serving-registry tests (tune/registry.hpp): the sharded hot-swap
// layer must be a transparent wrapper — bit-identical to direct
// CompiledBank serving at every thread count — while adding what a
// bank alone cannot: concurrent multi-bank streams, RCU publishes
// under load, and refits that can fail without taking serving down.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "collbench/dataset.hpp"
#include "simmpi/coll/decision.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tune/online.hpp"
#include "tune/registry.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

namespace fi = support::faultinject;

/// Seeded synthetic dataset (same recipe as test_compiled_bank): 3-6
/// algorithms with distinct random cost models over a random grid.
bench::Dataset random_dataset(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  bench::Dataset ds("registry", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  const int num_uids = 3 + static_cast<int>(rng.uniform_int(4));
  const std::vector<int> nodes = {2, 4, 8, 16};
  const std::vector<int> ppns = {1, 1 + static_cast<int>(rng.uniform_int(8))};
  const std::vector<std::uint64_t> msizes = {
      std::uint64_t{1} << rng.uniform_int(8),
      std::uint64_t{1} << (8 + rng.uniform_int(8)),
      std::uint64_t{1} << (16 + rng.uniform_int(6))};
  for (int uid = 1; uid <= num_uids; ++uid) {
    const double a = rng.uniform(1.0, 50.0);
    const double b = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(1e-4, 1e-2);
    for (const int n : nodes) {
      for (const int ppn : ppns) {
        for (const std::uint64_t m : msizes) {
          const double p = static_cast<double>(n) * ppn;
          const double t = a * std::log2(p + 1) + b * p +
                           c * static_cast<double>(m) + 1.0;
          for (int rep = 0; rep < 3; ++rep) {
            ds.add({uid, n, ppn, m, rng.lognormal_median(t, 0.08)});
          }
        }
      }
    }
  }
  return ds;
}

std::vector<bench::Instance> random_instances(std::uint64_t seed,
                                              int count) {
  support::Xoshiro256 rng(seed);
  std::vector<bench::Instance> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back({1 + static_cast<int>(rng.uniform_int(64)),
                   1 + static_cast<int>(rng.uniform_int(16)),
                   std::uint64_t{1} << rng.uniform_int(22)});
  }
  return out;
}

std::shared_ptr<const tune::CompiledBank> compile_bank(
    const bench::Dataset& ds, const char* learner) {
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  EXPECT_GT(selector.fit(ds, ds.node_counts()).uids_total(), 0u);
  return std::make_shared<const tune::CompiledBank>(selector.compile());
}

// ---- bit-identity with direct CompiledBank serving -----------------------

TEST(BankRegistry, SelectionsBitIdenticalToDirectServingAt1And4Threads) {
  const bench::Dataset ds = random_dataset(11);
  const auto bank = compile_bank(ds, "gam");
  const auto instances = random_instances(101, 48);

  for (const bool memo : {true, false}) {
    tune::BankRegistry registry(
        tune::BankRegistry::Options{.shards = 4, .memo_cache = memo});
    const tune::BankKey key{ds.machine(), ds.collective()};
    registry.publish(key, bank);

    for (const int threads : {1, 4}) {
      support::ScopedThreads scoped(threads);
      for (const bench::Instance& inst : instances) {
        EXPECT_EQ(registry.select_uid(key, inst), bank->select_uid(inst))
            << "memo=" << memo << " @" << threads << " threads";
      }
      EXPECT_EQ(registry.select_grid(key, instances),
                bank->select_grid(instances))
          << "memo=" << memo << " @" << threads << " threads";
    }
  }
}

TEST(BankRegistry, MixedStreamServeMatchesPerQuerySelection) {
  const bench::Dataset ds_a = random_dataset(13);
  const bench::Dataset ds_b = random_dataset(29);
  const auto bank_a = compile_bank(ds_a, "gam");
  const auto bank_b = compile_bank(ds_b, "knn");
  const tune::BankKey key_a{"Hydra", sim::Collective::kBcast};
  const tune::BankKey key_b{"Jupiter", sim::Collective::kAllreduce};

  tune::BankRegistry registry;
  registry.publish(key_a, bank_a);
  registry.publish(key_b, bank_b);
  EXPECT_EQ(registry.num_banks(), 2u);

  support::Xoshiro256 rng(7);
  std::vector<tune::BankRegistry::Query> stream;
  for (const bench::Instance& inst : random_instances(103, 200)) {
    stream.push_back({rng.uniform_int(2) == 0 ? key_a : key_b, inst});
  }
  std::vector<int> expected;
  expected.reserve(stream.size());
  for (const auto& q : stream) {
    expected.push_back((q.key == key_a ? bank_a : bank_b)->select_uid(q.inst));
  }
  for (const int threads : {1, 4}) {
    support::ScopedThreads scoped(threads);
    EXPECT_EQ(registry.serve(stream), expected) << threads << " threads";
  }
}

// ---- hot swap semantics ---------------------------------------------------

TEST(BankRegistry, PublishReplacesBankAndBumpsVersion) {
  const auto bank1 = compile_bank(random_dataset(17), "gam");
  const auto bank2 = compile_bank(random_dataset(19), "gam");
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};

  tune::BankRegistry registry;
  EXPECT_EQ(registry.lookup(key), nullptr);
  EXPECT_EQ(registry.version(key), 0u);

  const std::uint64_t v1 = registry.publish(key, bank1);
  EXPECT_EQ(registry.lookup(key), bank1);
  EXPECT_EQ(registry.version(key), v1);

  const std::uint64_t v2 = registry.publish(key, bank2);
  EXPECT_GT(v2, v1);
  EXPECT_EQ(registry.lookup(key), bank2);
  EXPECT_EQ(registry.num_banks(), 1u);
}

TEST(BankRegistry, SwapUnderLoadEveryAnswerIsFromSomePublishedVersion) {
  const bench::Dataset ds1 = random_dataset(23);
  const bench::Dataset ds2 = random_dataset(47);
  const auto bank1 = compile_bank(ds1, "gam");
  const auto bank2 = compile_bank(ds2, "gam");
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  const auto instances = random_instances(107, 400);

  // Linearizability oracle: for every instance, the set of answers the
  // two published versions can give.
  std::vector<std::set<int>> allowed;
  allowed.reserve(instances.size());
  for (const bench::Instance& inst : instances) {
    allowed.push_back({bank1->select_uid(inst), bank2->select_uid(inst)});
  }

  tune::BankRegistry registry;
  registry.publish(key, bank1);
  support::ScopedThreads scoped(4);
  std::vector<int> picked(instances.size(), -1);
  std::atomic<bool> swapped{false};
  support::parallel_for(instances.size(), 16, [&](std::size_t i) {
    // One worker swaps mid-drain; in-flight selections must finish on
    // whichever snapshot they loaded — never a torn mix.
    if (i == instances.size() / 2 &&
        !swapped.exchange(true, std::memory_order_relaxed)) {
      registry.publish(key, bank2);
    }
    picked[i] = registry.select_uid(key, instances[i]);
  });
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_TRUE(allowed[i].count(picked[i]) == 1)
        << "instance " << i << " returned uid " << picked[i]
        << " which no published version selects";
  }
  // After the drain the new bank serves.
  EXPECT_EQ(registry.lookup(key), bank2);
}

// ---- refit and fault fallback ---------------------------------------------

TEST(BankRegistry, RefitPublishesAndFaultedRefitKeepsLastGoodBank) {
  const bench::Dataset ds = random_dataset(31);
  const tune::BankKey key{ds.machine(), ds.collective()};
  tune::BankRegistry registry;

  const auto outcome1 =
      registry.refit_and_publish(key, ds, ds.node_counts());
  ASSERT_TRUE(outcome1.published) << outcome1.error;
  EXPECT_GT(outcome1.version, 0u);
  const auto good_bank = registry.lookup(key);
  ASSERT_NE(good_bank, nullptr);

  // Injected fit failures deep enough to exhaust the whole per-uid
  // fallback chain (configured -> knn -> median) for every uid: the
  // refit must fail, and the last good bank must keep serving.
  fi::Faults faults;
  for (const int uid : ds.uids()) faults.fit_failures[uid] = 1000;
  {
    fi::ScopedFaults scoped(std::move(faults));
    const auto outcome2 =
        registry.refit_and_publish(key, ds, ds.node_counts());
    EXPECT_FALSE(outcome2.published);
    EXPECT_FALSE(outcome2.error.empty());
    EXPECT_EQ(outcome2.version, outcome1.version);
  }
  EXPECT_EQ(registry.lookup(key), good_bank);
  EXPECT_EQ(registry.version(key), outcome1.version);
  const bench::Instance inst{8, 4, 4096};
  EXPECT_EQ(registry.select_uid(key, inst), good_bank->select_uid(inst));
}

TEST(BankRegistry, OnlineObservationsRefitIntoRegistry) {
  const bench::Dataset ds = random_dataset(37);
  tune::OnlineSelector online(
      {.candidate_uids = ds.uids(), .probes_per_algorithm = 3});
  // Replay the dataset's own measurements as online probes.
  for (const auto& rec : ds.records()) {
    online.record({rec.nodes, rec.ppn, rec.msize}, rec.uid, rec.time_us);
  }
  tune::BankRegistry registry;
  const tune::BankKey key{ds.machine(), ds.collective()};
  const auto outcome =
      online.refit_into(registry, key, sim::MpiLib::kOpenMPI);
  ASSERT_TRUE(outcome.published) << outcome.error;
  const auto bank = registry.lookup(key);
  ASSERT_NE(bank, nullptr);
  for (const bench::Instance& inst : ds.instances()) {
    EXPECT_GT(registry.select_uid(key, inst), 0);
  }
}

// ---- contracts and accounting ---------------------------------------------

TEST(BankRegistry, MissingKeyThrowsAndOrDefaultFallsBack) {
  tune::BankRegistry registry;
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  const bench::Instance inst{8, 4, 1024};
  EXPECT_THROW((void)registry.select_uid(key, inst), std::exception);
  // No bank at all: the registry answers what an untuned launch would.
  EXPECT_EQ(registry.select_uid_or_default(key, inst,
                                           sim::MpiLib::kOpenMPI),
            sim::library_default_uid(sim::MpiLib::kOpenMPI,
                                     key.collective,
                                     inst.nodes * inst.ppn, inst.msize));
  EXPECT_THROW(registry.publish(key, nullptr), std::exception);
  EXPECT_THROW(
      registry.publish(key, std::make_shared<const tune::CompiledBank>()),
      std::exception);
}

TEST(BankRegistry, ShardStatsAccountLookupsMemoAndSwaps) {
  const auto bank = compile_bank(random_dataset(41), "gam");
  const tune::BankKey key{"Hydra", sim::Collective::kBcast};
  tune::BankRegistry registry(tune::BankRegistry::Options{.shards = 2});
  EXPECT_EQ(registry.shards(), 2);
  registry.publish(key, bank);

  const bench::Instance inst{8, 4, 1024};
  (void)registry.select_uid(key, inst);  // memo miss
  (void)registry.select_uid(key, inst);  // memo hit
  (void)registry.select_uid(key, inst);  // memo hit

  std::uint64_t lookups = 0, hits = 0, memo_hits = 0, memo_misses = 0,
                swaps = 0;
  for (const auto& shard : registry.shard_stats()) {
    lookups += shard.lookups;
    hits += shard.hits;
    memo_hits += shard.memo_hits;
    memo_misses += shard.memo_misses;
    swaps += shard.swaps;
  }
  EXPECT_EQ(lookups, 3u);
  EXPECT_EQ(hits, 3u);
  EXPECT_EQ(memo_hits, 2u);
  EXPECT_EQ(memo_misses, 1u);
  EXPECT_EQ(swaps, 1u);

  // A publish drops the memo; the same query recomputes, same answer.
  const int before = registry.select_uid(key, inst);
  registry.publish(key, bank);
  EXPECT_EQ(registry.select_uid(key, inst), before);
}

}  // namespace
}  // namespace mpicp
