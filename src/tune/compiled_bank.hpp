// Compiled serving form of a fitted Selector (see DESIGN.md §11).
//
// `Selector::compile()` lowers the per-uid `Regressor` bank into an
// `ml::FlatBank` (contiguous SoA pools, no virtual dispatch, no
// std::map walk) and wraps it with the selection semantics of the
// interpreted path: ascending-uid argmin, unusable predictions
// (non-finite / negative) excluded, ties to the lowest uid, optional
// library-default fallback. Serving is allocation-free per query — the
// feature vector lives on the stack and all per-query state sits in a
// thread-local `ml::FlatScratch` — and `select_grid` batches whole
// instance grids with `parallel_for` over the *instances* (the
// interpreted path parallelizes over uids inside one query instead).
//
// Predictions are bit-identical to the interpreted selector at every
// MPICP_THREADS; only the metric names differ (`compiled.*` prefix) so
// the two serving paths stay distinguishable in the registry.
//
// An optional memoized selection cache keyed on (m, n, N) serves
// repeated queries — e.g. a job prolog asking for the same grid cell —
// without re-evaluating the bank. It is off by default: the golden
// pipeline and the equivalence tests exercise the uncached path.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "ml/flatten.hpp"
#include "support/thread_safety.hpp"
#include "tune/selector.hpp"

namespace mpicp::tune {

class CompiledBank {
 public:
  CompiledBank() = default;

  std::size_t num_models() const { return uids_.size(); }
  const std::vector<int>& uids() const { return uids_; }
  const FeatureOptions& features() const { return features_; }
  const ml::FlatBank& flat() const { return bank_; }

  /// Predict every modeled uid on one instance, ascending uid order,
  /// into a caller-owned buffer of exactly num_models() entries.
  void predict_all_into(const bench::Instance& inst,
                        std::span<Selector::Prediction> out) const;

  /// Allocating convenience wrapper around predict_all_into.
  [[nodiscard]] std::vector<Selector::Prediction> predict_all(
      const bench::Instance& inst) const;

  /// Argmin over the usable predictions; throws when none is usable
  /// (same contract as Selector::select_uid).
  [[nodiscard]] int select_uid(const bench::Instance& inst) const;

  /// Argmin with graceful degradation to the library default decision
  /// (same contract as Selector::select_uid_or_default).
  [[nodiscard]] int select_uid_or_default(const bench::Instance& inst,
                                          sim::MpiLib lib,
                                          sim::Collective coll) const;

  /// Non-throwing argmin primitive: the selected uid, or -1 when the
  /// bank is empty or no prediction is usable. The serving registry
  /// (tune/registry.hpp) builds its fallback policy on this.
  [[nodiscard]] int select_uid_or_invalid(const bench::Instance& inst) const;

  /// Batched selection over a whole instance grid, into a caller-owned
  /// buffer of exactly grid.size() entries. Batches of
  /// ml::FlatBank::kTreeBatch instances are scored together — tree
  /// ensembles walk the blocked layout level-by-level across the whole
  /// batch, so the grid argmin pipelines instead of serializing on one
  /// branchy walk per instance. Bit-identical to per-instance
  /// select_uid. Throws if any instance has no usable prediction.
  /// (With the memo cache enabled, selection degrades to the cached
  /// per-instance path — the memo is the faster tier for repeats.)
  void select_grid_into(std::span<const bench::Instance> grid,
                        std::span<int> out) const;

  /// Allocating convenience wrapper around select_grid_into.
  [[nodiscard]] std::vector<int> select_grid(
      std::span<const bench::Instance> grid) const;

  /// The PR 8 per-instance grid argmin over the pointer-free layout —
  /// the differential reference for the blocked batched kernel (tests
  /// and the layout-comparison bench). Same picks, branchier walks.
  [[nodiscard]] std::vector<int> select_grid_legacy(
      std::span<const bench::Instance> grid) const;

  /// Enable/disable the (m, n, N)-keyed selection memo. Clears the
  /// cache on any transition.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const { return cache_enabled_; }
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  CacheStats cache_stats() const;

  /// Persist / restore the compiled form (text format, exact doubles).
  /// Version 2 (the default) nests the v2 flatbank envelope with the
  /// blocked-layout geometry; version 1 reproduces the PR 5 file format
  /// byte-for-byte. Both versions load — v1 re-lowers the blocked form
  /// with the default geometry.
  void save(const std::filesystem::path& path) const { save(path, 2); }
  void save(const std::filesystem::path& path, int version) const;
  static CompiledBank load(const std::filesystem::path& path);

 private:
  friend class Selector;

  /// Fused predict+argmin on one instance; -1 when no prediction is
  /// usable. Never allocates (thread-local scratch).
  int argmin_uid(const bench::Instance& inst) const;
  /// argmin_uid behind the memo cache (when enabled).
  int argmin_uid_cached(const bench::Instance& inst) const;
  /// Batched fused predict+argmin over up to ml::FlatBank::kTreeBatch
  /// instances; writes one uid (or -1) per instance.
  void argmin_batch(const bench::Instance* insts, std::size_t count,
                    int* out) const;

  FeatureOptions features_;
  std::vector<int> uids_;  ///< ascending; parallel to bank_ models
  ml::FlatBank bank_;

  struct CacheState {
    support::Mutex mu;
    std::map<std::tuple<std::uint64_t, int, int>, int> memo
        MPICP_GUARDED_BY(mu);
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
  };
  bool cache_enabled_ = false;
  std::unique_ptr<CacheState> cache_ = std::make_unique<CacheState>();
};

}  // namespace mpicp::tune
