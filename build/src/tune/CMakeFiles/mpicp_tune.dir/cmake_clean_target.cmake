file(REMOVE_RECURSE
  "libmpicp_tune.a"
)
