// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "collbench/defaults.hpp"
#include "collbench/generator.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "tune/registry.hpp"
#include "tune/selector.hpp"

namespace mpicp::bench {

/// Fit a selector and surface — rather than silently drop — a degraded
/// bank. Benches run on clean generated datasets, so degradation is
/// worth a loud stderr note, but not worth aborting the figure. Not
/// [[nodiscard]]: this helper IS the report consumer; the return is a
/// convenience for callers that also want the details.
// mpicp-lint: allow(nodiscard-report)
inline const tune::FitReport& fit_or_warn(tune::Selector& selector,
                                          const Dataset& ds,
                                          const std::vector<int>& nodes) {
  const tune::FitReport& report = selector.fit(ds, nodes);
  if (report.degraded()) {
    std::fprintf(stderr,
                 "warning: selector fit degraded (%zu/%zu uids clean)\n",
                 report.uids_clean(), report.uids_total());
  }
  return report;
}

/// Load a Table II dataset from the data directory, generating (and
/// caching) it on first use. Generation of the large datasets takes
/// minutes; run examples/generate_datasets ahead of time to avoid it
/// inside a bench.
inline Dataset load_dataset_cached(const std::string& name) {
  const DatasetSpec& spec = dataset_spec(name);
  const auto dir = default_data_dir();
  const auto path = dir / (name + ".csv");
  if (!std::filesystem::exists(path)) {
    std::printf("[%s] cache %s missing — simulating the full benchmark "
                "grid (this can take minutes)...\n",
                name.c_str(), path.string().c_str());
    std::fflush(stdout);
  }
  return load_or_generate(spec, dir);
}

}  // namespace mpicp::bench

namespace mpicp::benchharness {

/// Shared driver of the Figure 4/6/7/8 panels: fit a selector on the
/// machine's full training split, then print, for every (test node, ppn)
/// panel and message size, the running times of the exhaustive best, the
/// library default and the prediction, normalized to the best (the
/// paper's y axis).
inline void print_strategy_comparison(const std::string& dataset_name,
                                      const std::string& learner,
                                      const std::vector<int>& panel_nodes,
                                      const std::vector<int>& panel_ppns) {
  using namespace mpicp;
  const bench::Dataset ds = bench::load_dataset_cached(dataset_name);
  const bench::NodeSplit split = bench::node_split(ds.machine());

  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  fit_or_warn(selector, ds, split.train_full);
  const auto default_logic = bench::make_default_for(ds);

  // Serve the figure grids the way production would: compile the fitted
  // selector and publish it into a registry keyed by (machine,
  // collective). Compiled serving is bit-identical to the interpreted
  // selector, so the panels are unchanged.
  tune::BankRegistry registry;
  const tune::BankKey bank_key{ds.machine(), ds.collective()};
  registry.publish(bank_key,
                   std::make_shared<const tune::CompiledBank>(
                       selector.compile()));

  std::printf("strategies: Exhaustive Search (Best) / Default (%s) / "
              "Prediction (%s)\n\n",
              default_logic->name().c_str(), learner.c_str());
  const std::vector<std::uint64_t> msizes = ds.msizes();
  for (const int n : panel_nodes) {
    for (const int ppn : panel_ppns) {
      std::printf("--- nodes: %d, ppn: %d ---\n", n, ppn);
      support::TextTable table({"msize [B]", "best [us]", "norm best",
                                "norm default", "norm prediction",
                                "best uid", "default uid", "pred uid"});
      std::vector<bench::Instance> grid;
      grid.reserve(msizes.size());
      for (const std::uint64_t m : msizes) grid.push_back({n, ppn, m});
      const std::vector<int> pred_uids =
          registry.select_grid(bank_key, grid);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const bench::Instance& inst = grid[i];
        const auto best = ds.best(inst);
        const int uid_def = default_logic->select_uid(inst);
        const int uid_pred = pred_uids[i];
        const double t_def = ds.time_us(uid_def, inst);
        const double t_pred = ds.time_us(uid_pred, inst);
        table.add_row({std::to_string(inst.msize),
                       support::format_double(best.time_us, 5), "1.000",
                       support::format_double(t_def / best.time_us, 4),
                       support::format_double(t_pred / best.time_us, 4),
                       std::to_string(best.uid), std::to_string(uid_def),
                       std::to_string(uid_pred)});
      }
      std::ostringstream os;
      table.print(os);
      std::fputs(os.str().c_str(), stdout);
      std::printf("\n");
    }
  }
}

}  // namespace mpicp::benchharness
