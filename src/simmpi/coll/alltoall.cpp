#include "simmpi/coll/alltoall.hpp"

#include <algorithm>
#include <vector>

#include "simmpi/coll/pipeline.hpp"
#include "support/trace.hpp"

namespace mpicp::sim {

namespace {

constexpr std::uint16_t kTagLinear = 30;
constexpr std::uint16_t kTagPairwise = 31;
constexpr std::uint16_t kTagBruckBase = 32;

std::uint32_t send_block(int dst) { return static_cast<std::uint32_t>(dst); }
std::uint32_t recv_block(int p, int src) {
  return static_cast<std::uint32_t>(p + src);
}
std::uint32_t stage_block(int p, int idx) {
  return static_cast<std::uint32_t>(2 * p + idx);
}

void emit_self_copy(RankProg& prog, int p, int self, std::size_t bytes) {
  prog.copy(bytes, send_block(self), recv_block(p, self), 1);
}

}  // namespace

BuiltCollective alltoall_linear(const Comm& comm, std::size_t bytes) {
  MPICP_SPAN("sim.alltoall.linear");
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 2 * p;
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    emit_self_copy(prog, p, r, bytes);
    for (int i = 1; i < p; ++i) {
      const int src = (r - i + p) % p;
      prog.irecv(src, kTagLinear, bytes, recv_block(p, src), 1);
    }
    for (int i = 1; i < p; ++i) {
      const int dst = (r + i) % p;
      prog.isend(dst, kTagLinear, bytes, send_block(dst), 1);
    }
    if (p > 1) prog.waitall();
  }
  return out;
}

BuiltCollective alltoall_pairwise(const Comm& comm, std::size_t bytes) {
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 2 * p;
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    emit_self_copy(prog, p, r, bytes);
    for (int k = 1; k < p; ++k) {
      const int dst = (r + k) % p;
      const int src = (r - k + p) % p;
      prog.isend(dst, kTagPairwise, bytes, send_block(dst), 1);
      prog.recv(src, kTagPairwise, bytes, recv_block(p, src), 1);
      prog.waitall();
    }
  }
  return out;
}

BuiltCollective alltoall_linear_sync(const Comm& comm, std::size_t bytes,
                                     int limit) {
  MPICP_REQUIRE(limit >= 1, "linear_sync needs a positive window");
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 2 * p;
  for (int r = 0; r < p; ++r) {
    RankProg prog(out.programs[r], r, p);
    emit_self_copy(prog, p, r, bytes);
    // Window i and p-i pair up: r sends to r+i exactly when r+i receives
    // from (r+i)-i, both in batch floor((i-1)/limit) — no cross-batch
    // waits, hence no deadlock under rendezvous.
    for (int start = 1; start < p; start += limit) {
      const int end = std::min(start + limit, p);
      for (int i = start; i < end; ++i) {
        const int src = (r - i + p) % p;
        prog.irecv(src, kTagLinear, bytes, recv_block(p, src), 1);
      }
      for (int i = start; i < end; ++i) {
        const int dst = (r + i) % p;
        prog.isend(dst, kTagLinear, bytes, send_block(dst), 1);
      }
      prog.waitall();
    }
  }
  return out;
}

BuiltCollective alltoall_bruck(const Comm& comm, std::size_t bytes,
                               int radix, bool tracking) {
  MPICP_REQUIRE(radix >= 2, "bruck radix must be at least 2");
  const int p = comm.size();
  BuiltCollective out;
  out.programs.resize(p);
  out.blocks_per_rank = 3 * p;
  for (int v = 0; v < p; ++v) {
    RankProg prog(out.programs[v], v, p);
    if (p == 1) {
      prog.copy(bytes, send_block(0), recv_block(1, 0), 1);
      continue;
    }
    // Phase 1 — rotation: staging[j] = send[(v - j) mod p], i.e. block j
    // holds the data destined j hops "downward"; every round then moves
    // blocks downward by their digit value, so after all rounds block i
    // holds the data from rank (v + i) destined to v.
    if (tracking) {
      for (int j = 0; j < p; ++j) {
        prog.copy(bytes, send_block((v - j + p) % p), stage_block(p, j), 1);
      }
    } else {
      prog.copy(static_cast<std::uint64_t>(p) * bytes, 0, 0, 0);
    }
    // Phase 2 — digit rounds: for every base-`radix` digit position and
    // digit value j, exchange the staging blocks whose index has that
    // digit with the ranks ±j*m away.
    std::uint16_t tag = kTagBruckBase;
    for (long long m = 1; m < p; m *= radix) {
      for (int j = 1; j < radix; ++j) {
        if (j * m >= p) break;
        std::vector<int> idxs;
        for (int idx = 0; idx < p; ++idx) {
          if ((idx / m) % radix == static_cast<long long>(j)) {
            idxs.push_back(idx);
          }
        }
        if (idxs.empty()) continue;
        const int dst = static_cast<int>((v - j * m % p + p) % p);
        const int src = static_cast<int>((v + j * m) % p);
        if (tracking) {
          // One message per staging block; send snapshots happen before
          // the receives overwrite the same blocks (op order below).
          for (const int idx : idxs) {
            prog.isend(dst, tag, bytes, stage_block(p, idx), 1);
          }
          for (const int idx : idxs) {
            prog.irecv(src, tag, bytes, stage_block(p, idx), 1);
          }
        } else {
          // Packed aggregate: pack, one exchange, unpack.
          const std::uint64_t pack = idxs.size() * bytes;
          prog.copy(pack, 0, 0, 0);
          prog.isend(dst, tag, pack, 0, 0);
          prog.irecv(src, tag, pack, 0, 0);
        }
        prog.waitall();
        if (!tracking) prog.copy(idxs.size() * bytes, 0, 0, 0);
        ++tag;
      }
    }
    // Phase 3 — inverse rotation: recv[s] = staging[(s - v) mod p].
    if (tracking) {
      for (int s = 0; s < p; ++s) {
        prog.copy(bytes, stage_block(p, (s - v + p) % p), recv_block(p, s),
                  1);
      }
    } else {
      prog.copy(static_cast<std::uint64_t>(p) * bytes, 0, 0, 0);
    }
  }
  return out;
}

}  // namespace mpicp::sim
