file(REMOVE_RECURSE
  "CMakeFiles/bench_learner_comparison.dir/bench_learner_comparison.cpp.o"
  "CMakeFiles/bench_learner_comparison.dir/bench_learner_comparison.cpp.o.d"
  "bench_learner_comparison"
  "bench_learner_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learner_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
