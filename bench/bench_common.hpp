// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "collbench/defaults.hpp"
#include "collbench/generator.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "tune/selector.hpp"

namespace mpicp::bench {

/// Fit a selector and surface — rather than silently drop — a degraded
/// bank. Benches run on clean generated datasets, so degradation is
/// worth a loud stderr note, but not worth aborting the figure. Not
/// [[nodiscard]]: this helper IS the report consumer; the return is a
/// convenience for callers that also want the details.
// mpicp-lint: allow(nodiscard-report)
inline const tune::FitReport& fit_or_warn(tune::Selector& selector,
                                          const Dataset& ds,
                                          const std::vector<int>& nodes) {
  const tune::FitReport& report = selector.fit(ds, nodes);
  if (report.degraded()) {
    std::fprintf(stderr,
                 "warning: selector fit degraded (%zu/%zu uids clean)\n",
                 report.uids_clean(), report.uids_total());
  }
  return report;
}

/// Load a Table II dataset from the data directory, generating (and
/// caching) it on first use. Generation of the large datasets takes
/// minutes; run examples/generate_datasets ahead of time to avoid it
/// inside a bench.
inline Dataset load_dataset_cached(const std::string& name) {
  const DatasetSpec& spec = dataset_spec(name);
  const auto dir = default_data_dir();
  const auto path = dir / (name + ".csv");
  if (!std::filesystem::exists(path)) {
    std::printf("[%s] cache %s missing — simulating the full benchmark "
                "grid (this can take minutes)...\n",
                name.c_str(), path.string().c_str());
    std::fflush(stdout);
  }
  return load_or_generate(spec, dir);
}

}  // namespace mpicp::bench

namespace mpicp::benchharness {

/// Shared driver of the Figure 4/6/7/8 panels: fit a selector on the
/// machine's full training split, then print, for every (test node, ppn)
/// panel and message size, the running times of the exhaustive best, the
/// library default and the prediction, normalized to the best (the
/// paper's y axis).
inline void print_strategy_comparison(const std::string& dataset_name,
                                      const std::string& learner,
                                      const std::vector<int>& panel_nodes,
                                      const std::vector<int>& panel_ppns) {
  using namespace mpicp;
  const bench::Dataset ds = bench::load_dataset_cached(dataset_name);
  const bench::NodeSplit split = bench::node_split(ds.machine());

  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  fit_or_warn(selector, ds, split.train_full);
  const auto default_logic = bench::make_default_for(ds);

  std::printf("strategies: Exhaustive Search (Best) / Default (%s) / "
              "Prediction (%s)\n\n",
              default_logic->name().c_str(), learner.c_str());
  for (const int n : panel_nodes) {
    for (const int ppn : panel_ppns) {
      std::printf("--- nodes: %d, ppn: %d ---\n", n, ppn);
      support::TextTable table({"msize [B]", "best [us]", "norm best",
                                "norm default", "norm prediction",
                                "best uid", "default uid", "pred uid"});
      for (const std::uint64_t m : ds.msizes()) {
        const bench::Instance inst{n, ppn, m};
        const auto best = ds.best(inst);
        const int uid_def = default_logic->select_uid(inst);
        const int uid_pred = selector.select_uid(inst);
        const double t_def = ds.time_us(uid_def, inst);
        const double t_pred = ds.time_us(uid_pred, inst);
        table.add_row({std::to_string(m),
                       support::format_double(best.time_us, 5), "1.000",
                       support::format_double(t_def / best.time_us, 4),
                       support::format_double(t_pred / best.time_us, 4),
                       std::to_string(best.uid), std::to_string(uid_def),
                       std::to_string(uid_pred)});
      }
      std::ostringstream os;
      table.print(os);
      std::fputs(os.str().c_str(), stdout);
      std::printf("\n");
    }
  }
}

}  // namespace mpicp::benchharness
