// Minimal dense linear algebra for the regression learners.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpicp::ml {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }

  /// this^T * this (Gram matrix), optionally weighted per row.
  Matrix gram(std::span<const double> weights = {}) const;

  /// this^T * v, optionally weighted per row.
  std::vector<double> transpose_times(
      std::span<const double> v, std::span<const double> weights = {}) const;

  /// this * beta.
  std::vector<double> times(std::span<const double> beta) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve (A + jitter*I) x = b for symmetric positive definite A via
/// Cholesky; A is modified. Throws InternalError if A is not SPD even
/// after escalating jitter.
std::vector<double> cholesky_solve(Matrix a, std::vector<double> b,
                                   double jitter = 1e-10);

}  // namespace mpicp::ml
