// Fixture: clean header — #pragma once first, project include via
// quotes, and a [[nodiscard]] report-returning declaration.
#pragma once

#include <vector>

#include "support/rng.hpp"

struct ScanReport {
  std::vector<int> lines;
};

[[nodiscard]] ScanReport fixture_scan();
