// Machine-readable bench results: every perf harness that tracks a
// trajectory emits a flat JSON report next to its human-readable
// tables, so CI can archive BENCH_*.json artifacts per commit and the
// perf history stays diffable. Schema (EXPERIMENTS.md "Bench JSON
// reports"):
//
//   {"bench": "<name>", "schema": 1,
//    "metrics": {"<key>": <number>, ...}}
//
// Keys are emitted in insertion order; values print with max_digits10
// so a report round-trips exactly.
#pragma once

#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace mpicp::bench {

using JsonMetrics = std::vector<std::pair<std::string, double>>;

inline void json_report(const std::filesystem::path& path,
                        const std::string& bench_name,
                        const JsonMetrics& metrics) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) {
    MPICP_RAISE_ERROR("cannot open " + path.string() + " for writing");
  }
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"bench\": \"" << bench_name << "\",\n  \"schema\": 1,\n"
     << "  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    os << (first ? "\n" : ",\n") << "    \"" << key << "\": " << value;
    first = false;
  }
  os << "\n  }\n}\n";
  if (!os) {
    MPICP_RAISE_ERROR("failed writing bench report " + path.string());
  }
}

}  // namespace mpicp::bench
