// Scenario: auto-tune the collectives of a batch job (§II of the paper).
//
// A user is about to run an application on a known allocation (n nodes x
// ppn processes). Before the job starts, we query the fitted regression
// models for a ladder of message sizes and emit a tuning file the MPI
// library would load — the paper's SLURM-prolog deployment path.
//
// Trained model banks are cached next to the data (--models): the first
// run fits and saves, subsequent runs load in milliseconds — the
// train-once / deploy-per-job split.
//
// Robustness demo: --fault-rate corrupts a copy of the training CSV with
// the seeded fault injector (support/faultinject) before ingest, then
// runs the full tolerant pipeline — quarantined rows, fit fallbacks and
// the final tuning file are all reported instead of the run aborting.
//
// Observability: --metrics-out writes the process metrics registry as
// JSON (rows quarantined, fit fallbacks, predictions served, ...) and
// --trace-out dumps every timing span in Chrome trace format — the
// run's per-stage wall-clock profile is also printed. See README
// "Observability".
//
// Usage:
//   autotune_job [--nodes=27] [--ppn=16] [--dataset=d1]
//                [--learner=gam] [--out=tuning.conf]
//                [--models=<path>] [--refit]
//                [--fault-rate=0.1] [--fault-seed=42]
//                [--metrics-out=metrics.json] [--trace-out=trace.json]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "collbench/generator.hpp"
#include "collbench/specs.hpp"
#include "support/cli.hpp"
#include "support/faultinject.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "tune/config_writer.hpp"
#include "tune/selector.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 27));
  const int ppn = static_cast<int>(cli.get_int("ppn", 16));
  const std::string dataset = cli.get("dataset", "d1");
  const std::string learner = cli.get("learner", "gam");
  const std::string out = cli.get("out", "tuning.conf");
  const std::string metrics_out = cli.get("metrics-out", "");
  const std::string trace_out = cli.get("trace-out", "");
  const double fault_rate = cli.get_double("fault-rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 42));

  const bench::DatasetSpec& spec = bench::dataset_spec(dataset);
  std::printf("loading training data %s (%s/%s on %s) ...\n",
              dataset.c_str(), to_string(spec.lib).c_str(),
              to_string(spec.coll).c_str(), spec.machine.c_str());
  bench::Dataset ds =
      bench::load_or_generate(spec, bench::default_data_dir());

  if (fault_rate > 0.0) {
    // Corrupt a copy of the measurement CSV and re-ingest it through the
    // tolerant path — the production shape of a messy campaign.
    const auto csv_path =
        bench::default_data_dir() / (dataset + ".faulty.csv");
    ds.save_csv(csv_path);
    std::ostringstream clean;
    {
      std::ifstream in(csv_path);
      clean << in.rdbuf();
    }
    support::faultinject::CsvFaultLog log;
    const std::string corrupted = support::faultinject::corrupt_csv(
        clean.str(),
        {.fault_rate = fault_rate, .value_column = 4, .seed = fault_seed},
        &log);
    {
      std::ofstream out_csv(csv_path);
      out_csv << corrupted;
    }
    bench::IngestReport ingest;
    ds = bench::Dataset::load_csv_tolerant(csv_path, spec.name, spec.lib,
                                           spec.coll, spec.machine,
                                           &ingest);
    std::filesystem::remove(csv_path);
    std::printf("injected faults into %zu/%zu rows (%zu dropped):\n",
                log.rows_faulted, log.rows_total, log.rows_dropped);
    std::ostringstream report;
    bench::print_ingest_report(report, ingest);
    std::fputs(report.str().c_str(), stdout);
  }

  const bench::NodeSplit split = bench::node_split(spec.machine);
  const std::filesystem::path model_path = cli.get(
      "models", (bench::default_data_dir() /
                 (dataset + "." + learner + ".models"))
                    .string());
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  // Exact zero: 0.0 is the CLI default, not a computed value.
  // mpicp-lint: allow(no-float-eq)
  if (!cli.get_bool("refit", false) && fault_rate == 0.0 &&
      std::filesystem::exists(model_path)) {
    std::printf("loading trained models from %s ...\n",
                model_path.string().c_str());
    selector = tune::Selector::load(model_path);
  } else {
    if (selector.fit(ds, split.train_full).degraded()) {
      std::printf("model-bank fit degraded:\n");
      std::ostringstream report;
      tune::print_fit_report(report, selector.fit_report());
      std::fputs(report.str().c_str(), stdout);
    }
    // mpicp-lint: allow(no-float-eq) — CLI default, not computed
    if (fault_rate == 0.0) {
      selector.save(model_path);
      std::printf("trained models saved to %s\n",
                  model_path.string().c_str());
    }
  }

  // The paper: querying 10-15 message sizes is enough for a job config.
  const tune::TuningConfig config = tune::build_tuning_config(
      selector, spec.lib, spec.coll, nodes, ppn,
      bench::standard_msizes());
  tune::write_tuning_file(out, config);

  std::printf("tuning file for %dx%d written to %s:\n", nodes, ppn,
              out.c_str());
  for (const tune::TuningRule& rule : config.rules) {
    const auto& cfg = sim::config_by_uid(spec.lib, spec.coll, rule.uid);
    if (rule.msize_upto == ~std::uint64_t{0}) {
      std::printf("  msize >  previous: uid %d (%s)\n", rule.uid,
                  cfg.label().c_str());
    } else {
      std::printf("  msize <= %-9llu: uid %d (%s)\n",
                  static_cast<unsigned long long>(rule.msize_upto),
                  rule.uid, cfg.label().c_str());
    }
  }

  if (!metrics_out.empty()) {
    const auto snapshot = support::metrics::Registry::instance().snapshot();
    std::ofstream os(metrics_out);
    support::metrics::write_json(os, snapshot);
    std::printf("\nmetrics snapshot written to %s:\n", metrics_out.c_str());
    std::ostringstream table;
    support::metrics::print_metrics(table, snapshot);
    std::fputs(table.str().c_str(), stdout);
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    support::trace::write_chrome_trace(os);
    std::printf("\nChrome trace written to %s (load via chrome://tracing); "
                "span profile:\n",
                trace_out.c_str());
    std::ostringstream table;
    support::trace::print_profile(table);
    std::fputs(table.str().c_str(), stdout);
  }
  return 0;
}
