// Tests of the observability layer itself (support/trace +
// support/metrics): span nesting and cross-thread merging, counter
// atomicity under parallel_for, histogram aggregation, exporter
// schemas, and the disabled-mode no-op guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "collbench/dataset.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"
#include "tune/selector.hpp"

namespace mpicp {
namespace {

namespace trace = support::trace;
namespace metrics = support::metrics;

/// Aggregated profile entry for one path, or nullptr.
const trace::ProfileEntry* find_path(
    const std::vector<trace::ProfileEntry>& profile,
    const std::string& path) {
  for (const trace::ProfileEntry& e : profile) {
    if (e.path == path) return &e;
  }
  return nullptr;
}

// ---- spans ----------------------------------------------------------------

TEST(TraceSpans, NestedSpansRecordHierarchicalPaths) {
  const trace::ScopedEnabled on(true);
  trace::reset();
  {
    MPICP_SPAN("outer");
    {
      MPICP_SPAN("inner");
      { MPICP_SPAN("leaf"); }
    }
    { MPICP_SPAN("inner"); }
  }
  const auto profile = trace::profile();
  ASSERT_NE(find_path(profile, "outer"), nullptr);
  ASSERT_NE(find_path(profile, "outer/inner"), nullptr);
  ASSERT_NE(find_path(profile, "outer/inner/leaf"), nullptr);
  EXPECT_EQ(find_path(profile, "outer")->count, 1u);
  EXPECT_EQ(find_path(profile, "outer/inner")->count, 2u);
  EXPECT_EQ(find_path(profile, "outer/inner/leaf")->count, 1u);
  // A parent's wall-clock covers each of its children individually.
  EXPECT_GE(find_path(profile, "outer")->total_ns,
            find_path(profile, "outer/inner")->max_ns);
}

TEST(TraceSpans, SequentialRootsDoNotNest) {
  const trace::ScopedEnabled on(true);
  trace::reset();
  { MPICP_SPAN("first"); }
  { MPICP_SPAN("second"); }
  const auto profile = trace::profile();
  EXPECT_NE(find_path(profile, "first"), nullptr);
  EXPECT_NE(find_path(profile, "second"), nullptr);
  EXPECT_EQ(find_path(profile, "first/second"), nullptr);
}

class TraceThreads : public ::testing::TestWithParam<int> {};

TEST_P(TraceThreads, ParallelSpansMergeUnderCallerPath) {
  const support::ScopedThreads threads(GetParam());
  const trace::ScopedEnabled on(true);
  trace::reset();
  constexpr std::size_t kTasks = 64;
  {
    MPICP_SPAN("stage");
    support::parallel_for(kTasks, 1,
                          [&](std::size_t) { MPICP_SPAN("task"); });
  }
  const auto profile = trace::profile();
  // Pool threads inherit the caller's span path: every task span merges
  // under "stage/task" regardless of which thread ran it, and no
  // orphaned root "task" appears.
  const auto* tasks = find_path(profile, "stage/task");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->count, kTasks);
  EXPECT_EQ(find_path(profile, "task"), nullptr);
  EXPECT_EQ(find_path(profile, "stage")->count, 1u);
}

TEST_P(TraceThreads, FitSpansAggregatePerUid) {
  const support::ScopedThreads threads(GetParam());
  const trace::ScopedEnabled on(true);
  trace::reset();

  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(7);
  for (const int n : {2, 4, 8, 16}) {
    for (const std::uint64_t m : {std::uint64_t{64}, std::uint64_t{4096}}) {
      for (int rep = 0; rep < 3; ++rep) {
        for (const int uid : {1, 2, 3, 4}) {
          ds.add({uid, n, 2, m,
                  rng.lognormal_median(10.0 * uid + 0.01 * m, 0.05)});
        }
      }
    }
  }
  tune::Selector selector(tune::SelectorOptions{.learner = "knn"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 8, 16}).degraded());

  const auto profile = trace::profile();
  const auto* fit = find_path(profile, "selector.fit");
  const auto* uid_fits = find_path(profile, "selector.fit/fit.uid");
  ASSERT_NE(fit, nullptr);
  ASSERT_NE(uid_fits, nullptr);
  EXPECT_EQ(fit->count, 1u);
  EXPECT_EQ(uid_fits->count, 4u);  // one span per uid, any thread count
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TraceThreads,
                         ::testing::Values(1, 4));

TEST(TraceDisabled, DisabledSpansRecordNothing) {
  trace::reset();
  const trace::ScopedEnabled off(false);
  {
    MPICP_SPAN("ghost");
    { MPICP_SPAN("nested-ghost"); }
  }
  EXPECT_TRUE(trace::records().empty());
  EXPECT_TRUE(trace::profile().empty());
  EXPECT_EQ(trace::current_path(), "");
}

TEST(TraceDisabled, ReenablingResumesCleanly) {
  const trace::ScopedEnabled on(true);
  trace::reset();
  {
    const trace::ScopedEnabled off(false);
    MPICP_SPAN("ghost");
  }
  { MPICP_SPAN("real"); }
  const auto profile = trace::profile();
  EXPECT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].path, "real");
}

TEST(TraceExport, ChromeTraceFormat) {
  const trace::ScopedEnabled on(true);
  trace::reset();
  { MPICP_SPAN("chrome.span"); }
  std::ostringstream os;
  trace::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"chrome.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, ProfileTableListsEveryPath) {
  const trace::ScopedEnabled on(true);
  trace::reset();
  {
    MPICP_SPAN("table.outer");
    { MPICP_SPAN("table.inner"); }
  }
  std::ostringstream os;
  trace::print_profile(os);
  EXPECT_NE(os.str().find("table.outer"), std::string::npos);
  EXPECT_NE(os.str().find("table.outer/table.inner"), std::string::npos);
}

// ---- metrics --------------------------------------------------------------

TEST(Metrics, CounterExactUnderParallelIncrements) {
  const support::ScopedThreads threads(4);
  metrics::Counter& c = metrics::counter("test.atomic_counter");
  c.reset();
  constexpr std::size_t kIncrements = 100000;
  support::parallel_for(kIncrements, 64, [&](std::size_t) { c.inc(); });
  EXPECT_EQ(c.value(), kIncrements);
}

TEST(Metrics, HistogramExactUnderParallelObserves) {
  const support::ScopedThreads threads(4);
  metrics::Histogram& h = metrics::histogram("test.atomic_histogram");
  h.reset();
  constexpr std::size_t kObserves = 10000;
  support::parallel_for(kObserves, 64, [&](std::size_t i) {
    h.observe(static_cast<double>(i % 100) + 1.0);
  });
  const auto s = h.summary();
  EXPECT_EQ(s.count, kObserves);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Sum of integers in doubles is exact regardless of addition order.
  EXPECT_DOUBLE_EQ(s.sum, 10000.0 * (0.0 + 99.0) / 2.0 + 10000.0);
  std::uint64_t bucketed = 0;
  double prev_bound = 0.0;
  for (const auto& [le, count] : s.buckets) {
    EXPECT_GT(le, prev_bound);  // ascending bucket bounds
    prev_bound = le;
    bucketed += count;
  }
  EXPECT_EQ(bucketed, s.count);
}

TEST(Metrics, GaugeKeepsLastValue) {
  metrics::Gauge& g = metrics::gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, EmptyHistogramSummaryIsZero) {
  metrics::Histogram& h = metrics::histogram("test.empty_histogram");
  h.reset();
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_TRUE(s.buckets.empty());
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid) {
  metrics::Counter& c = metrics::counter("test.reset_counter");
  c.inc(5);
  metrics::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc(2);  // the pre-reset reference still reaches the live metric
  EXPECT_EQ(metrics::counter("test.reset_counter").value(), 2u);
}

TEST(Metrics, JsonExporterSchema) {
  metrics::Snapshot snap;
  snap.counters["alpha.count"] = 42;
  snap.gauges["beta.level"] = 1.5;
  metrics::Histogram h;
  h.observe(3.0);
  h.observe(10.0);
  snap.histograms["gamma.dist"] = h.summary();

  std::ostringstream os;
  metrics::write_json(os, snap);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha.count\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"beta.level\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  EXPECT_NE(json.find("\"le\": "), std::string::npos);
  // Structural sanity: balanced braces/brackets, no bare non-finite
  // tokens (they would break every JSON consumer).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Metrics, JsonEscapesAndNonFiniteValues) {
  metrics::Snapshot snap;
  snap.gauges["quote\"name"] = std::nan("");
  std::ostringstream os;
  metrics::write_json(os, snap);
  EXPECT_NE(os.str().find("\"quote\\\"name\": null"), std::string::npos);
}

TEST(Metrics, PrintMetricsRendersAllSections) {
  metrics::Snapshot snap;
  snap.counters["c.one"] = 1;
  snap.gauges["g.two"] = 2.0;
  metrics::Histogram h;
  h.observe(4.0);
  snap.histograms["h.three"] = h.summary();
  std::ostringstream os;
  metrics::print_metrics(os, snap);
  EXPECT_NE(os.str().find("c.one"), std::string::npos);
  EXPECT_NE(os.str().find("g.two"), std::string::npos);
  EXPECT_NE(os.str().find("h.three"), std::string::npos);
}

// ---- instrumented pipeline counters ---------------------------------------

class PipelineCounters : public ::testing::TestWithParam<int> {};

TEST_P(PipelineCounters, FitCountersMatchReportAtEveryThreadCount) {
  const support::ScopedThreads threads(GetParam());
  metrics::Registry::instance().reset();

  bench::Dataset ds("synth", sim::MpiLib::kOpenMPI,
                    sim::Collective::kBcast, "Hydra");
  support::Xoshiro256 rng(3);
  for (const int n : {2, 4, 8, 16}) {
    for (const std::uint64_t m : {std::uint64_t{64}, std::uint64_t{4096}}) {
      for (int rep = 0; rep < 3; ++rep) {
        for (const int uid : {1, 2, 3}) {
          ds.add({uid, n, 2, m,
                  rng.lognormal_median(5.0 * uid + 0.02 * m, 0.05)});
        }
      }
    }
  }
  tune::Selector selector(tune::SelectorOptions{.learner = "linear"});
  ASSERT_FALSE(selector.fit(ds, {2, 4, 8, 16}).degraded());
  const int uid = selector.select_uid({6, 2, 4096});
  EXPECT_GT(uid, 0);

  // The registry must mirror the FitReport exactly, and the totals must
  // be identical under serial and parallel execution.
  const tune::FitReport& report = selector.fit_report();
  EXPECT_EQ(metrics::counter("fit.calls").value(), 1u);
  EXPECT_EQ(metrics::counter("fit.uids_total").value(),
            report.uids_total());
  EXPECT_EQ(metrics::counter("fit.uids_clean").value(),
            report.uids_clean());
  EXPECT_EQ(metrics::counter("fit.uids_fallback").value(),
            report.uids_fallback());
  EXPECT_EQ(metrics::counter("fit.uids_unusable").value(),
            report.uids_unusable());
  EXPECT_EQ(metrics::counter("fit.rows_dropped").value(),
            report.rows_dropped());
  EXPECT_EQ(metrics::counter("select.requests").value(), 1u);
  EXPECT_EQ(metrics::counter("predict.calls").value(), 1u);
  EXPECT_EQ(metrics::counter("predict.predictions_served").value(), 3u);
  EXPECT_EQ(metrics::counter("select.argmin_excluded").value(), 0u);
  EXPECT_EQ(metrics::histogram("fit.time_us.linear").count(), 3u);
  EXPECT_EQ(metrics::histogram("fit.fallback_depth").count(), 3u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PipelineCounters,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace mpicp
