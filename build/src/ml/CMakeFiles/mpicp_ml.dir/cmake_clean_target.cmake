file(REMOVE_RECURSE
  "libmpicp_ml.a"
)
