// Figure 7 — comparison of the algorithm selection strategies for
// MPI_Allreduce; Open MPI (modeled), Jupiter; GAM predictor.
//
// Paper shape: the Open MPI default is good here except a mid-size band
// (around 16 KiB) where the prediction wins clearly.
#include "bench_common.hpp"

int main() {
  std::printf(
      "Figure 7: MPI_Allreduce, Open MPI (modeled), Jupiter (d4)\n");
  // Jupiter's held-out node counts (Table III); the paper's 35-node
  // panel is part of the training grid there, so we show 19 and 27.
  mpicp::benchharness::print_strategy_comparison("d4", "gam", {19, 27},
                                                 {1, 8, 16});
  return 0;
}
