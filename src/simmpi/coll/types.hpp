// Shared vocabulary of the collective algorithm layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "simmpi/program.hpp"
#include "simnet/network.hpp"
#include "support/error.hpp"

namespace mpicp::sim {

/// The MPI collectives we model. The paper's evaluation covers Bcast,
/// Allreduce and Alltoall; the others are substrates used as building
/// blocks (and exposed because a downstream user would expect them).
enum class Collective {
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kScatter,
  kGather,
  kBarrier,
  kScan,           ///< inclusive prefix reduction
  kReduceScatter,  ///< reduce + scatter of the result chunks
};

std::string to_string(Collective c);
Collective collective_from_string(const std::string& name);

/// Result of building one collective algorithm instance: the rank
/// programs plus the data-tracking block layout (blocks per rank) the
/// builder used, so validation knows the store shape.
struct BuiltCollective {
  ProgramSet programs;
  int blocks_per_rank = 1;
};

/// Rank mapping of one job allocation. Placement must agree with the
/// Network the programs run on: block (SLURM default, rank r on node
/// r / ppn) or cyclic (rank r on node r mod nodes).
class Comm {
 public:
  Comm(int nodes, int ppn, Placement placement = Placement::kBlock)
      : nodes_(nodes), ppn_(ppn), placement_(placement) {
    MPICP_REQUIRE(nodes >= 1 && ppn >= 1, "empty communicator");
  }

  int size() const { return nodes_ * ppn_; }
  int nodes() const { return nodes_; }
  int ppn() const { return ppn_; }
  Placement placement() const { return placement_; }

  int node_of(int rank) const {
    return placement_ == Placement::kBlock ? rank / ppn_ : rank % nodes_;
  }
  int local_of(int rank) const {
    return placement_ == Placement::kBlock ? rank % ppn_ : rank / nodes_;
  }
  int rank_of(int node, int local) const {
    return placement_ == Placement::kBlock ? node * ppn_ + local
                                           : local * nodes_ + node;
  }
  int leader_of_node(int node) const { return rank_of(node, 0); }
  bool is_leader(int rank) const { return local_of(rank) == 0; }

 private:
  int nodes_;
  int ppn_;
  Placement placement_;
};

/// Segmentation of a message of `total` bytes into pipeline segments.
/// seg_request == 0 (or >= total) means a single unsegmented message.
/// The number of segments is capped so that pathological configurations
/// (tiny segments on huge buffers) stay simulatable; beyond the cap the
/// effective segment grows, which mirrors how real implementations clamp
/// their segment counts.
struct Segmentation {
  std::uint32_t nseg = 1;
  std::size_t seg_bytes = 0;
  std::size_t last_bytes = 0;

  std::size_t bytes_of(std::uint32_t s) const {
    return s + 1 == nseg ? last_bytes : seg_bytes;
  }
};

Segmentation make_segmentation(std::size_t total_bytes,
                               std::size_t seg_request);

/// Upper bound on segments per message (see Segmentation).
inline constexpr std::uint32_t kMaxSegments = 4096;

}  // namespace mpicp::sim
