// Quickstart: simulate MPI collective algorithms and pick the best one.
//
// This walks the three layers of the library in ~60 lines:
//   1. simnet  — describe a machine and a job allocation,
//   2. simmpi  — run collective algorithms on the simulated network,
//   3. tune    — fit per-algorithm runtime models and select the winner.
#include <cstdio>

#include "collbench/generator.hpp"
#include "simmpi/coll/registry.hpp"
#include "simmpi/executor.hpp"
#include "simnet/machine.hpp"
#include "tune/selector.hpp"

int main() {
  using namespace mpicp;

  // 1. A machine model and a job allocation: 8 nodes, 16 processes each.
  const sim::MachineDesc machine = sim::hydra_machine();
  const int nodes = 8;
  const int ppn = 16;
  sim::Network net(machine, nodes, ppn);
  sim::Executor exec(net);
  const sim::Comm comm(nodes, ppn);

  // 2. Run every broadcast algorithm of the modeled Open MPI for 64 KiB.
  std::printf("MPI_Bcast of 64 KiB on %dx%d (%s):\n", nodes, ppn,
              machine.name.c_str());
  const std::uint64_t msize = 65536;
  for (const sim::AlgoConfig& cfg :
       sim::algorithm_configs(sim::MpiLib::kOpenMPI,
                              sim::Collective::kBcast)) {
    if (cfg.seg_bytes != 0 && cfg.seg_bytes != 16384) continue;  // sample
    auto built =
        sim::build_algorithm(sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                             cfg, comm, msize, /*root=*/0, false);
    const double t = exec.run(built.programs).makespan_us;
    std::printf("  uid %2d  %-28s %10.2f us\n", cfg.uid,
                cfg.label().c_str(), t);
  }

  // 3. Benchmark a small grid, fit runtime models, query an unseen
  //    instance (the paper's algorithm selection in miniature).
  bench::DatasetSpec spec = bench::dataset_spec("d1");
  spec.name = "quickstart";
  spec.nodes = {4, 8, 16};
  spec.ppns = {1, 8, 16};
  spec.msizes = {256, 4096, 65536, 1048576};
  spec.budget = {.max_reps = 3, .budget_us = 1e6};
  std::printf("\nbenchmarking a small training grid ...\n");
  const bench::Dataset ds = bench::generate_dataset(spec);

  tune::Selector selector(tune::SelectorOptions{.learner = "gam"});
  const tune::FitReport& fit = selector.fit(ds, {4, 8, 16});
  std::printf("fitted %zu per-algorithm models (%s)\n", fit.uids_total(),
              fit.degraded() ? "degraded — see fit report" : "all clean");

  const bench::Instance unseen{12, 16, 32768};  // not in the grid
  const int uid = selector.select_uid(unseen);
  const auto& cfg =
      sim::config_by_uid(sim::MpiLib::kOpenMPI, sim::Collective::kBcast,
                         uid);
  std::printf("predicted best bcast algorithm for 12x16, 32 KiB: uid %d "
              "(%s), predicted %.2f us\n",
              uid, cfg.label().c_str(),
              selector.predicted_time_us(uid, unseen));
  return 0;
}
