// Tiny token-stream helpers for model serialization. The format is
// line-oriented text: human-inspectable, diff-friendly, and exact
// (doubles round-trip via max_digits10).
#pragma once

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace mpicp::ml::io {

inline void write_tag(std::ostream& os, const std::string& tag) {
  os << tag << '\n';
}

/// Read one whitespace-delimited token and require it to equal `tag`.
inline void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got) || got != tag) {
    throw ParseError("model stream: expected '" + tag + "', got '" + got +
                     "'");
  }
}

template <typename T>
void write_value(std::ostream& os, const T& value) {
  if constexpr (std::is_floating_point_v<T>) {
    os << std::setprecision(std::numeric_limits<T>::max_digits10) << value
       << '\n';
  } else {
    os << value << '\n';
  }
}

template <typename T>
T read_value(std::istream& is) {
  T value{};
  if (!(is >> value)) {
    throw ParseError("model stream: malformed value");
  }
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& values) {
  write_value(os, values.size());
  for (const T& v : values) write_value(os, v);
}

template <typename T>
std::vector<T> read_vector(std::istream& is) {
  const auto n = read_value<std::size_t>(is);
  MPICP_REQUIRE(n < (1u << 28), "model stream: implausible vector size");
  std::vector<T> values(n);
  for (auto& v : values) v = read_value<T>(is);
  return values;
}

}  // namespace mpicp::ml::io
