# Empty dependencies file for mpicp_ml.
# This may be replaced when dependencies are built.
