#include "support/str.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace mpicp::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    MPICP_RAISE_PARSE("cannot parse '" + std::string(s) + "' as double");
  }
  return v;
}

std::int64_t parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    MPICP_RAISE_PARSE("cannot parse '" + std::string(s) + "' as integer");
  }
  return v;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"", "Ki", "Mi", "Gi"};
  int unit = 0;
  std::uint64_t v = bytes;
  while (unit < 3 && v >= 1024 && v % 1024 == 0) {
    v /= 1024;
    ++unit;
  }
  return std::to_string(v) + kUnits[unit];
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace mpicp::support
