// Online algorithm selection (STAR-MPI-style), an extension beyond the
// paper's offline framework: during an application run, the first calls
// of a collective on a given instance probe the candidate algorithms;
// once every candidate has been measured `probes_per_algorithm` times,
// the selector commits to the empirically best one.
//
// The paper (§II, §VI) argues offline regression avoids exactly the
// exploration cost this incurs; bench_online_vs_offline quantifies the
// trade-off.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "collbench/dataset.hpp"
#include "support/thread_safety.hpp"
#include "tune/registry.hpp"

namespace mpicp::tune {

class OnlineSelector {
 public:
  struct Options {
    std::vector<int> candidate_uids;  ///< algorithms to explore
    int probes_per_algorithm = 3;
    /// Bounded memory: at most this many retained observations per
    /// (instance, uid); beyond it the oldest measurement is evicted
    /// (a long-running job keeps the freshest evidence). Must be at
    /// least probes_per_algorithm so convergence stays reachable.
    std::size_t max_observations_per_uid = 256;
  };

  explicit OnlineSelector(Options options);

  /// The uid to use for the next call of this instance. During
  /// exploration this cycles through under-probed candidates; after
  /// convergence it returns the committed winner.
  int next_uid(const bench::Instance& inst);

  /// Feed back the measured duration of a call issued via next_uid.
  void record(const bench::Instance& inst, int uid, double time_us);

  bool converged(const bench::Instance& inst) const;

  /// Total retained observations across all instances and uids — the
  /// quantity Options::max_observations_per_uid bounds (stream callers
  /// assert their memory cap against it).
  std::size_t observation_count() const;

  /// The committed (or currently best) uid for an instance.
  int current_best(const bench::Instance& inst) const;

  /// Everything recorded so far as a Dataset — the bridge from online
  /// exploration to the paper's offline regression pipeline: probe
  /// timings become ordinary measurement rows that Selector::fit can
  /// train on.
  [[nodiscard]] bench::Dataset observations_dataset(
      std::string name, sim::MpiLib lib, sim::Collective coll,
      std::string machine) const;

  /// Refit a selector on the accumulated observations and hot-publish
  /// the compiled bank into `registry` under `key`. Serving is never
  /// taken down: on a failed refit (too few observations, every uid
  /// unusable, injected fit faults) the registry keeps its last good
  /// bank and the outcome carries the error.
  [[nodiscard]] BankRegistry::RefitOutcome refit_into(
      BankRegistry& registry, const BankKey& key, sim::MpiLib lib,
      const SelectorOptions& options = {}) const;

 private:
  struct Cell {
    bench::Instance inst;  ///< the (m, n, N) this cell aggregates
    std::map<int, std::vector<double>> observations;  // uid -> times
    int committed_uid = -1;
  };

  static std::uint64_t key(const bench::Instance& inst);
  Cell& cell(const bench::Instance& inst) MPICP_REQUIRES(mu_);

  /// Validated by the constructor; immutable afterwards.
  Options options_;  // mpicp-lint: allow(lock-discipline)
  /// Serializes probe bookkeeping: concurrent ranks may interleave
  /// next_uid/record on the same selector. refit_into snapshots the
  /// observations under mu_ (via observations_dataset) and fits on the
  /// copy, so the lock never spans a fit.
  mutable support::Mutex mu_;
  std::map<std::uint64_t, Cell> cells_ MPICP_GUARDED_BY(mu_);
};

}  // namespace mpicp::tune
