// Scenario: auto-tune the collectives of a batch job (§II of the paper).
//
// A user is about to run an application on a known allocation (n nodes x
// ppn processes). Before the job starts, we query the fitted regression
// models for a ladder of message sizes and emit a tuning file the MPI
// library would load — the paper's SLURM-prolog deployment path.
//
// Trained model banks are cached next to the data (--models): the first
// run fits and saves, subsequent runs load in milliseconds — the
// train-once / deploy-per-job split.
//
// Usage:
//   autotune_job [--nodes=27] [--ppn=16] [--dataset=d1]
//                [--learner=gam] [--out=tuning.conf]
//                [--models=<path>] [--refit]
#include <cstdio>

#include "collbench/generator.hpp"
#include "collbench/specs.hpp"
#include "support/cli.hpp"
#include "tune/config_writer.hpp"
#include "tune/selector.hpp"

int main(int argc, char** argv) {
  using namespace mpicp;
  const support::CliParser cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 27));
  const int ppn = static_cast<int>(cli.get_int("ppn", 16));
  const std::string dataset = cli.get("dataset", "d1");
  const std::string learner = cli.get("learner", "gam");
  const std::string out = cli.get("out", "tuning.conf");

  const bench::DatasetSpec& spec = bench::dataset_spec(dataset);
  std::printf("loading training data %s (%s/%s on %s) ...\n",
              dataset.c_str(), to_string(spec.lib).c_str(),
              to_string(spec.coll).c_str(), spec.machine.c_str());
  const bench::Dataset ds =
      bench::load_or_generate(spec, bench::default_data_dir());

  const bench::NodeSplit split = bench::node_split(spec.machine);
  const std::filesystem::path model_path = cli.get(
      "models", (bench::default_data_dir() /
                 (dataset + "." + learner + ".models"))
                    .string());
  tune::Selector selector(tune::SelectorOptions{.learner = learner});
  if (!cli.get_bool("refit", false) &&
      std::filesystem::exists(model_path)) {
    std::printf("loading trained models from %s ...\n",
                model_path.string().c_str());
    selector = tune::Selector::load(model_path);
  } else {
    selector.fit(ds, split.train_full);
    selector.save(model_path);
    std::printf("trained models saved to %s\n",
                model_path.string().c_str());
  }

  // The paper: querying 10-15 message sizes is enough for a job config.
  const tune::TuningConfig config = tune::build_tuning_config(
      selector, spec.lib, spec.coll, nodes, ppn,
      bench::standard_msizes());
  tune::write_tuning_file(out, config);

  std::printf("tuning file for %dx%d written to %s:\n", nodes, ppn,
              out.c_str());
  for (const tune::TuningRule& rule : config.rules) {
    const auto& cfg = sim::config_by_uid(spec.lib, spec.coll, rule.uid);
    if (rule.msize_upto == ~std::uint64_t{0}) {
      std::printf("  msize >  previous: uid %d (%s)\n", rule.uid,
                  cfg.label().c_str());
    } else {
      std::printf("  msize <= %-9llu: uid %d (%s)\n",
                  static_cast<unsigned long long>(rule.msize_upto),
                  rule.uid, cfg.label().c_str());
    }
  }
  return 0;
}
