file(REMOVE_RECURSE
  "libmpicp_simmpi.a"
)
