// Generalized additive model (the paper's mgcv-style GAM learner).
//
//   log E[y] = beta_0 + f_1(x_1) + ... + f_d(x_d)
//
// with each f_j a penalized cubic B-spline smoother, Gamma family and
// log link — the configuration the paper uses for running times
// ("Gamma family for positive, real-valued data and the log link").
// Fitting is penalized IRLS; with the log link the Gamma IRLS weights
// are constant, so each iteration is a penalized least-squares solve on
// the working response.
#pragma once

#include <vector>

#include "ml/learner.hpp"
#include "ml/spline.hpp"

namespace mpicp::ml {

struct GamParams {
  int basis_per_feature = 10;  ///< B-spline basis size per smoother
  double lambda = 1.0;         ///< smoothing penalty (fixed; no tuning)
  int max_iters = 50;
  double tol = 1e-8;
};

class GamRegressor final : public Regressor {
 public:
  explicit GamRegressor(GamParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "gam"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  int iterations_used() const { return iterations_; }

  // Introspection for the compiled bank's lowering pass.
  const GamParams& params() const { return params_; }
  const std::vector<BSplineBasis>& bases() const { return bases_; }
  const std::vector<double>& beta() const { return beta_; }

 private:
  Matrix design_row(std::span<const double> x) const;

  GamParams params_;
  std::vector<BSplineBasis> bases_;
  std::vector<double> beta_;
  int iterations_ = 0;
};

}  // namespace mpicp::ml
