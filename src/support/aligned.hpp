// Cache-line-aligned storage for the blocked serving layouts
// (DESIGN.md §16). The blocked tree prefixes are walked every few
// nanoseconds under load; starting each pool on a cache-line boundary
// guarantees a block of N lines touches exactly N lines, never N+1.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace mpicp::support {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator: every allocation starts on a cache-line
/// boundary. Stateless, so any two instances compare equal and
/// containers can exchange storage freely.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// The vector type the blocked layouts store their node pools in.
template <typename T>
using AlignedVec = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace mpicp::support
