// Initial data stores and post-run semantic validation per collective.
//
// Conventions (see datacheck.hpp for the block model):
//  * Bcast:     every block of the root holds the root's contribution
//               bit; afterwards every block of every rank must equal it.
//  * Reduce:    every rank starts with its own bit in every block; the
//               root must end with the full rank mask in every block.
//  * Allreduce: like reduce, but every rank must end with the full mask.
//  * Alltoall:  send block j of rank i holds the token (i -> j); receive
//               block p+j of rank i must end as the token (j -> i).
//  * Allgather: rank i starts with bit i in block i; every rank must end
//               with exactly bit j in every block j.
//  * Scatter /  vrank-indexed rank tokens; see the builder docs in
//    Gather:    smallcoll.hpp.
//  * Barrier:   no data to validate.
#pragma once

#include <string>

#include "simmpi/coll/types.hpp"
#include "simmpi/datacheck.hpp"

namespace mpicp::sim {

/// Build the pre-collective store for `coll` with the given block layout.
DataStore make_initial_store(Collective coll, int p, int blocks_per_rank,
                             int root);

/// Check the post-collective store; returns "" on success, else a
/// human-readable description of the first violation.
std::string validate_store(Collective coll, const DataStore& store, int p,
                           int root);

}  // namespace mpicp::sim
