file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction_latency.dir/bench_prediction_latency.cpp.o"
  "CMakeFiles/bench_prediction_latency.dir/bench_prediction_latency.cpp.o.d"
  "bench_prediction_latency"
  "bench_prediction_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
