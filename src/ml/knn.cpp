#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "ml/io.hpp"
#include "support/error.hpp"

namespace mpicp::ml {

void StandardScaler::fit(const Matrix& x) {
  MPICP_REQUIRE(x.rows() >= 1, "cannot fit scaler on empty data");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (std::size_t f = 0; f < d; ++f) {
    double m = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) m += x(i, f);
    m /= static_cast<double>(x.rows());
    double var = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      var += (x(i, f) - m) * (x(i, f) - m);
    }
    var /= static_cast<double>(x.rows());
    mean_[f] = m;
    inv_std_[f] = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  }
}

std::vector<double> StandardScaler::transform(
    std::span<const double> row) const {
  MPICP_REQUIRE(row.size() == mean_.size(), "scaler dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = (row[f] - mean_[f]) * inv_std_[f];
  }
  return out;
}

void StandardScaler::save(std::ostream& os) const {
  io::write_tag(os, "scaler");
  io::write_vector(os, mean_);
  io::write_vector(os, inv_std_);
}

void StandardScaler::load(std::istream& is) {
  io::expect_tag(is, "scaler");
  mean_ = io::read_vector<double>(is);
  inv_std_ = io::read_vector<double>(is);
}

KnnRegressor::KnnRegressor(KnnParams params) : params_(params) {
  MPICP_REQUIRE(params_.k >= 1, "k must be positive");
}

void KnnRegressor::fit(const Matrix& x, std::span<const double> y) {
  MPICP_REQUIRE(x.rows() == y.size() && !y.empty(),
                "training data shape mismatch");
  targets_.assign(y.begin(), y.end());
  points_ = Matrix(x.rows(), x.cols());
  if (params_.scale_inputs) {
    scaler_.fit(x);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const auto scaled = scaler_.transform(x.row(i));
      std::copy(scaled.begin(), scaled.end(), points_.row(i).begin());
    }
  } else {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      std::copy(x.row(i).begin(), x.row(i).end(), points_.row(i).begin());
    }
  }
  kd_.clear();
  order_.resize(points_.rows());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<int>(i);
  }
  if (params_.use_kdtree) {
    build_kd(0, static_cast<int>(order_.size()), 0);
  }
}

int KnnRegressor::build_kd(int begin, int end, int depth) {
  constexpr int kLeafSize = 16;
  const int node_idx = static_cast<int>(kd_.size());
  kd_.emplace_back();
  if (end - begin <= kLeafSize) {
    kd_[node_idx].begin = begin;
    kd_[node_idx].end = end;
    return node_idx;
  }
  const int axis = depth % static_cast<int>(points_.cols());
  const int mid = (begin + end) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     return points_(a, axis) < points_(b, axis);
                   });
  kd_[node_idx].axis = axis;
  kd_[node_idx].split = points_(order_[mid], axis);
  const int left = build_kd(begin, mid, depth + 1);
  const int right = build_kd(mid, end, depth + 1);
  kd_[node_idx].left = left;
  kd_[node_idx].right = right;
  return node_idx;
}

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return acc;
}

/// Max-heap of (distance, index) capped at k elements.
void heap_offer(std::vector<std::pair<double, int>>& heap, std::size_t k,
                double dist, int idx) {
  if (heap.size() < k) {
    heap.emplace_back(dist, idx);
    std::push_heap(heap.begin(), heap.end());
  } else if (dist < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {dist, idx};
    std::push_heap(heap.begin(), heap.end());
  }
}

}  // namespace

void KnnRegressor::search_kd(
    int node, std::span<const double> q,
    std::vector<std::pair<double, int>>& heap) const {
  const KdNode& n = kd_[node];
  const auto k = static_cast<std::size_t>(params_.k);
  if (n.axis < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      const int p = order_[i];
      heap_offer(heap, k, sq_dist(q, points_.row(p)), p);
    }
    return;
  }
  const double delta = q[n.axis] - n.split;
  const int near = delta < 0.0 ? n.left : n.right;
  const int far = delta < 0.0 ? n.right : n.left;
  search_kd(near, q, heap);
  if (heap.size() < k || delta * delta < heap.front().first) {
    search_kd(far, q, heap);
  }
}

double KnnRegressor::query(std::span<const double> scaled) const {
  std::vector<std::pair<double, int>> heap;
  if (params_.use_kdtree && !kd_.empty()) {
    search_kd(0, scaled, heap);
  } else {
    const auto k = static_cast<std::size_t>(params_.k);
    for (std::size_t i = 0; i < points_.rows(); ++i) {
      heap_offer(heap, k, sq_dist(scaled, points_.row(i)),
                 static_cast<int>(i));
    }
  }
  MPICP_ASSERT(!heap.empty(), "knn query on empty model");
  double acc = 0.0;
  for (const auto& [dist, idx] : heap) acc += targets_[idx];
  return acc / static_cast<double>(heap.size());
}

void KnnRegressor::save(std::ostream& os) const {
  io::write_tag(os, "knn");
  io::write_value(os, params_.k);
  io::write_value(os, params_.scale_inputs ? 1 : 0);
  io::write_value(os, params_.use_kdtree ? 1 : 0);
  scaler_.save(os);
  io::write_value(os, points_.rows());
  io::write_value(os, points_.cols());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    for (std::size_t f = 0; f < points_.cols(); ++f) {
      io::write_value(os, points_(i, f));
    }
  }
  io::write_vector(os, targets_);
}

void KnnRegressor::load(std::istream& is) {
  io::expect_tag(is, "knn");
  params_.k = io::read_value<int>(is);
  params_.scale_inputs = io::read_value<int>(is) != 0;
  params_.use_kdtree = io::read_value<int>(is) != 0;
  scaler_.load(is);
  const auto rows = io::read_value<std::size_t>(is);
  const auto cols = io::read_value<std::size_t>(is);
  MPICP_REQUIRE(rows < (1u << 26) && cols < 1024,
                "implausible knn model size");
  points_ = Matrix(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t f = 0; f < cols; ++f) {
      points_(i, f) = io::read_value<double>(is);
    }
  }
  targets_ = io::read_vector<double>(is);
  MPICP_REQUIRE(targets_.size() == rows, "knn model size mismatch");
  // The kd-tree is deterministic in the points; rebuild instead of
  // serializing it.
  kd_.clear();
  order_.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) order_[i] = static_cast<int>(i);
  if (params_.use_kdtree && rows > 0) {
    build_kd(0, static_cast<int>(rows), 0);
  }
}

double KnnRegressor::predict_one(std::span<const double> x) const {
  MPICP_REQUIRE(!targets_.empty(), "predicting with an unfitted model");
  if (params_.scale_inputs) {
    const auto scaled = scaler_.transform(x);
    return query(scaled);
  }
  return query(x);
}

}  // namespace mpicp::ml
