# Empty compiler generated dependencies file for bench_fig5_algo_map.
# This may be replaced when dependencies are built.
