// Gradient-boosted regression trees (the paper's "XGBoost" learner).
//
// Second-order boosting exactly as in Chen & Guestrin (2016): each round
// fits a histogram tree to the per-sample gradient/hessian of the loss
// at the current prediction. For positive, skewed targets like running
// times the paper uses the Tweedie objective with a log link (Gamma
// "also worked well"); both are provided, plus plain squared error.
// Defaults follow the paper's no-tuning discipline: 200 rounds, the
// library's stock depth/learning-rate/regularization.
#pragma once

#include <memory>

#include "ml/learner.hpp"
#include "ml/tree.hpp"

namespace mpicp::ml {

enum class GbtObjective {
  kSquared,
  kGamma,    ///< gamma deviance, log link
  kTweedie,  ///< tweedie deviance (1 < p < 2), log link
};

struct GbtParams {
  GbtObjective objective = GbtObjective::kTweedie;
  double tweedie_p = 1.5;
  int rounds = 200;
  double learning_rate = 0.1;
  TreeParams tree;
};

class GradientBoostedTrees final : public Regressor {
 public:
  explicit GradientBoostedTrees(GbtParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "xgboost"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Training loss per round (for the monotone-descent property tests).
  const std::vector<double>& training_loss() const { return loss_; }

  /// Gain-based feature importance, normalized to sum 1 (empty before
  /// fitting). The paper observes message size dominating this ranking.
  std::vector<double> feature_importance() const;

  // Introspection for the compiled bank's lowering pass.
  const GbtParams& params() const { return params_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

 private:
  double raw_score(std::span<const double> x) const;

  GbtParams params_;
  int num_features_ = 0;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> loss_;
};

}  // namespace mpicp::ml
