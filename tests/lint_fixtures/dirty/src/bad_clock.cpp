// Fixture: violates no-wall-clock (R3).
#include <chrono>
#include <ctime>

double fixture_clock() {
  const auto now = std::chrono::system_clock::now();
  return static_cast<double>(time(nullptr)) + now.time_since_epoch().count();
}
