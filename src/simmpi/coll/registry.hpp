// Algorithm registry: the uid encoding of (algorithm, parameters).
//
// The paper merges the algorithm *selection* and *configuration*
// problems by assigning a unique identifier u_{j,l} to every combination
// of a library algorithm j and a parameter allocation l (segment size,
// chain count, radix, sync window). This registry enumerates those
// combinations per (MPI library, collective) and builds the simulated
// programs for a given uid.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

/// The two modeled MPI libraries (Open MPI 4.0.2 / Intel MPI 2019
/// analogues — same algorithm families, see DESIGN.md §2).
enum class MpiLib { kOpenMPI, kIntelMPI };

std::string to_string(MpiLib lib);
MpiLib mpilib_from_string(const std::string& name);

/// One benchmarkable algorithm configuration u_{j,l}.
struct AlgoConfig {
  int uid = 0;      ///< 1-based unique id within (lib, collective)
  int alg_id = 0;   ///< the library's algorithm number j
  std::string name; ///< algorithm family name
  std::size_t seg_bytes = 0;  ///< pipeline segment size (0 = unsegmented)
  int param = 0;    ///< chain count / radix / sync window (algorithm use)

  /// Human-readable label, e.g. "chain(seg=16Ki,par=4)".
  std::string label() const;
};

/// All configurations of (lib, collective), ordered by uid (uids are
/// contiguous starting at 1).
const std::vector<AlgoConfig>& algorithm_configs(MpiLib lib, Collective coll);

/// Configuration by uid; throws InvalidArgument for unknown uids.
const AlgoConfig& config_by_uid(MpiLib lib, Collective coll, int uid);

/// Number of distinct library algorithms j (Table II's "#algorithms").
int num_library_algorithms(MpiLib lib, Collective coll);

/// Build the simulated rank programs for one configuration.
/// `tracking` selects exact per-block data-flow (tests) vs. packed
/// aggregate modeling where applicable (dataset generation); see
/// alltoall.hpp.
BuiltCollective build_algorithm(MpiLib lib, Collective coll,
                                const AlgoConfig& cfg, const Comm& comm,
                                std::size_t bytes, int root, bool tracking);

}  // namespace mpicp::sim
