// Cubic B-spline bases and difference penalties (the smoothers inside
// the GAM, in the P-spline formulation of Eilers & Marx).
#pragma once

#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace mpicp::ml {

/// Cubic B-spline basis over [lo, hi] with `num_basis` functions
/// (num_basis >= 4), built on an equidistant knot grid.
class BSplineBasis {
 public:
  BSplineBasis(double lo, double hi, int num_basis);

  int num_basis() const { return num_basis_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Evaluate all basis functions at x (clamped to [lo, hi]).
  std::vector<double> evaluate(double x) const;

  /// Allocation-free evaluation into a caller-owned buffer of exactly
  /// num_basis() doubles — the kernel both the interpreted GAM and the
  /// compiled flat bank share, so their arithmetic is identical.
  void evaluate_into(double x, std::span<double> out) const;

  /// Second-order difference penalty matrix D2' * D2 (num_basis^2).
  Matrix penalty() const;

 private:
  double lo_;
  double hi_;
  double step_;
  int num_basis_;
  std::vector<double> knots_;
};

}  // namespace mpicp::ml
