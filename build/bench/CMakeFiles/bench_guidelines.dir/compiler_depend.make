# Empty compiler generated dependencies file for bench_guidelines.
# This may be replaced when dependencies are built.
