// Flattened (compiled) model bank — the treelite/XGBoost-style lowering
// of the heterogeneous per-uid `Regressor` objects into contiguous
// structure-of-arrays pools:
//
//   - every GBT/RF tree of every model lives in one node array with
//     per-tree root offsets (pointer-free, cache-friendly traversal),
//   - KNN points/targets/kd-nodes are packed row-major with the
//     standard scaler folded into per-model coefficient strips,
//   - GAM / linear / median models reduce to packed coefficient blocks,
//     with bitwise-identical spline bases deduplicated into shared
//     "evaluation slots" so each distinct basis is evaluated once per
//     query instead of once per model.
//
// Serving is allocation-free: all per-query state lives in a
// caller-owned `FlatScratch` that only grows on first use. Predictions
// are bit-identical to the interpreted `Regressor::predict_one` — the
// lowering reorders memory, never arithmetic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <utility>
#include <vector>

#include "ml/learner.hpp"
#include "ml/spline.hpp"

namespace mpicp::ml {

class RegressionTree;
class KnnRegressor;
class GamRegressor;

struct FlatTreeNode {
  int feature = -1;  ///< -1: leaf
  double threshold = 0.0;
  int left = -1;   ///< global node index
  int right = -1;  ///< global node index
  double value = 0.0;
};

struct FlatKdNode {
  int axis = -1;  ///< -1: leaf
  double split = 0.0;
  int left = -1;   ///< global kd index
  int right = -1;  ///< global kd index
  int begin = 0;   ///< leaf: range into the model's order strip
  int end = 0;
};

/// One deduplicated (basis, feature-index) evaluation unit shared by
/// every GAM whose smoother for that feature is bitwise identical.
struct FlatBasisSlot {
  int basis = 0;    ///< index into the basis pool
  int feature = 0;  ///< which query feature it consumes
};

enum class FlatKind : int {
  kTreeEnsemble = 0,
  kKnn = 1,
  kGam = 2,
  kLinear = 3,
  kConstant = 4,
};

/// Per-model metadata: offsets into the shared pools.
struct FlatModel {
  FlatKind kind = FlatKind::kConstant;
  bool exp_link = false;  ///< apply exp() to the raw score
  // Tree ensembles.
  int tree_begin = 0;  ///< range into the tree-root pool
  int tree_end = 0;
  double base_score = 0.0;
  bool mean_over_trees = false;  ///< RF averages, GBT sums
  // KNN.
  int k = 0;
  int points_begin = 0;   ///< element offset into the point pool
  int num_points = 0;
  int point_dim = 0;
  int targets_begin = 0;  ///< row offset into the target pool
  int order_begin = 0;    ///< offset into the kd leaf permutation pool
  int kd_root = -1;       ///< global kd index; -1: brute force
  int scaler_begin = -1;  ///< offset into the scaler pools; -1: unscaled
  // GAM.
  int slot_begin = 0;  ///< range into the per-model slot-index pool
  int num_bases = 0;   ///< one smoother per feature
  int basis_size = 0;
  // Coefficient block (GAM beta / linear beta / constant).
  int coef_begin = 0;
  int coef_len = 0;
};

/// Reusable per-query scratch. Owned by the caller (typically
/// thread_local); every buffer grows to the bank's dimensions on first
/// use and is never reallocated afterwards.
struct FlatScratch {
  std::vector<double> slot_values;  ///< slot-major basis values
  std::vector<std::uint64_t> slot_stamp;
  std::uint64_t query_stamp = 0;
  std::vector<double> scaled;  ///< z-scaled query for KNN models
  std::vector<std::pair<double, int>> heap;
};

class FlatBank {
 public:
  /// Lower one fitted regressor into the pools; returns its model index.
  /// Raises kInvalidArgument for regressor types it cannot compile.
  int add(const Regressor& model);

  std::size_t size() const { return models_.size(); }
  const FlatModel& model(std::size_t i) const { return models_[i]; }
  std::size_t num_basis_slots() const { return slots_.size(); }

  /// Start a new query: bumps the slot memoization stamp and grows the
  /// scratch buffers if needed. Must be called once per query vector
  /// before any predict_one() on it.
  void begin_query(FlatScratch& scratch) const;

  /// Predict with model `i` on the feature vector `x`. Bit-identical to
  /// the interpreted regressor's predict_one. Allocation-free once
  /// `scratch` has warmed up.
  double predict_one(std::size_t i, std::span<const double> x,
                     FlatScratch& scratch) const;

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  void lower_trees(const std::vector<RegressionTree>& trees, FlatModel& m);
  void lower_knn(const KnnRegressor& knn, FlatModel& m);
  void lower_gam(const GamRegressor& gam, FlatModel& m);
  int intern_basis(const BSplineBasis& basis);
  int intern_slot(int basis, int feature);
  std::span<const double> point_row(const FlatModel& m, int p) const {
    return {points_.data() +
                static_cast<std::size_t>(m.points_begin) +
                static_cast<std::size_t>(p) * m.point_dim,
            static_cast<std::size_t>(m.point_dim)};
  }
  void search_kd(const FlatModel& m, int node, std::span<const double> q,
                 std::vector<std::pair<double, int>>& heap) const;

  std::vector<FlatModel> models_;
  std::vector<FlatTreeNode> nodes_;
  std::vector<int> tree_roots_;
  std::vector<double> points_;
  std::vector<double> targets_;
  std::vector<int> order_;
  std::vector<FlatKdNode> kd_;
  std::vector<double> scaler_mean_;
  std::vector<double> scaler_inv_std_;
  std::vector<BSplineBasis> bases_;
  std::vector<FlatBasisSlot> slots_;
  std::vector<int> gam_slots_;  ///< per model-feature: slot index
  std::vector<double> coef_;
  int max_basis_size_ = 0;
  int max_point_dim_ = 0;
  int max_k_ = 0;
};

}  // namespace mpicp::ml
