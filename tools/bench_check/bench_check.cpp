// bench_check: the CI bench-regression gate. Compares one or more
// BENCH_*.json reports (bench/bench_json.hpp schema) against the
// committed bench/baseline.json and fails — exit 1 — only when a
// p99-class latency key regresses by more than the threshold. Every
// other drift (p50, throughput, speedup, neutral counters) is
// advisory: it lands in the comparison report artifact but keeps the
// gate green, so noisy-but-harmless runner variance cannot block a
// merge while tail-latency regressions still can.
//
// Usage:
//   bench_check --baseline bench/baseline.json \
//               --current BENCH_prediction.json [--current ...] \
//               [--threshold 0.25] [--report bench-compare.txt]
//   bench_check --write-baseline bench/baseline.json --current ...
//
// Exit codes: 0 green (possibly with advisories), 1 blocking p99
// regression, 2 usage or parse error.
//
// Like mpicp_lint, this tool depends only on the standard library so
// it builds before (and independently of) the project libraries.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader for the flat bench schema: objects, strings and
// numbers only (arrays/booleans/null never appear in bench reports and
// are rejected loudly rather than mis-parsed).
// ---------------------------------------------------------------------
struct JsonValue {
  enum class Kind { kString, kNumber, kObject };
  Kind kind = Kind::kNumber;
  std::string str;
  double num = 0.0;
  std::map<std::string, JsonValue> obj;  // insertion order irrelevant
};

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') {
      return fail("expected '\"'");
    }
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') return fail("escapes unsupported");
      out->push_back(text[pos++]);
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return fail("expected number");
    pos += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->str);
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      out->kind = JsonValue::Kind::kNumber;
      return parse_number(&out->num);
    }
    return fail("unsupported JSON value (arrays/bool/null not allowed)");
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos >= text.size() || text[pos] != '{') return fail("expected '{'");
    ++pos;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->obj.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

bool read_file(const std::string& path, std::string* out,
               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

// ---------------------------------------------------------------------
// Bench-report model: one report = bench name + flat metric map.
// ---------------------------------------------------------------------
using Metrics = std::map<std::string, double>;

struct BenchReport {
  std::string name;
  Metrics metrics;
};

bool load_bench_report(const std::string& path, BenchReport* out,
                       std::string* error) {
  std::string text;
  if (!read_file(path, &text, error)) return false;
  Parser parser(text);
  JsonValue root;
  if (!parser.parse_object(&root)) {
    *error = path + ": " + parser.error;
    return false;
  }
  const auto bench_it = root.obj.find("bench");
  const auto metrics_it = root.obj.find("metrics");
  if (bench_it == root.obj.end() ||
      bench_it->second.kind != JsonValue::Kind::kString ||
      metrics_it == root.obj.end() ||
      metrics_it->second.kind != JsonValue::Kind::kObject) {
    *error = path + ": not a bench report (need \"bench\" + \"metrics\")";
    return false;
  }
  out->name = bench_it->second.str;
  for (const auto& [key, value] : metrics_it->second.obj) {
    if (value.kind != JsonValue::Kind::kNumber) {
      *error = path + ": metric '" + key + "' is not a number";
      return false;
    }
    out->metrics[key] = value.num;
  }
  return true;
}

// Baseline schema: {"schema": 1, "benches": {"<name>": {"<key>": n}}}.
bool load_baseline(const std::string& path,
                   std::map<std::string, Metrics>* out,
                   std::string* error) {
  std::string text;
  if (!read_file(path, &text, error)) return false;
  Parser parser(text);
  JsonValue root;
  if (!parser.parse_object(&root)) {
    *error = path + ": " + parser.error;
    return false;
  }
  const auto benches_it = root.obj.find("benches");
  if (benches_it == root.obj.end() ||
      benches_it->second.kind != JsonValue::Kind::kObject) {
    *error = path + ": not a baseline (need a \"benches\" object)";
    return false;
  }
  for (const auto& [name, metrics] : benches_it->second.obj) {
    if (metrics.kind != JsonValue::Kind::kObject) {
      *error = path + ": bench '" + name + "' is not an object";
      return false;
    }
    Metrics m;
    for (const auto& [key, value] : metrics.obj) {
      if (value.kind != JsonValue::Kind::kNumber) {
        *error = path + ": '" + name + "." + key + "' is not a number";
        return false;
      }
      m[key] = value.num;
    }
    (*out)[name] = std::move(m);
  }
  return true;
}

bool write_baseline(const std::string& path,
                    const std::map<std::string, Metrics>& benches,
                    std::string* error) {
  std::ofstream os(path);
  if (!os) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"schema\": 1,\n  \"benches\": {";
  bool first_bench = true;
  for (const auto& [name, metrics] : benches) {
    os << (first_bench ? "\n" : ",\n") << "    \"" << name << "\": {";
    bool first_key = true;
    for (const auto& [key, value] : metrics) {
      os << (first_key ? "\n" : ",\n") << "      \"" << key
         << "\": " << value;
      first_key = false;
    }
    os << "\n    }";
    first_bench = false;
  }
  os << "\n  }\n}\n";
  return static_cast<bool>(os);
}

// ---------------------------------------------------------------------
// Comparison semantics. Only p99-class latency keys can block; other
// directional keys (p50, *_us, throughput, speedup) regressing past
// the threshold are advisory; everything else (counters, run shape) is
// informational.
// ---------------------------------------------------------------------
bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

enum class Direction { kLowerBetter, kHigherBetter, kNeutral };

Direction direction_of(const std::string& key) {
  if (contains(key, "speedup") || contains(key, "throughput") ||
      contains(key, "qps")) {
    return Direction::kHigherBetter;
  }
  // "_us" as suffix or infix: p99_us, single_us_interpreted, ...
  if (contains(key, "_us") || contains(key, "latency") ||
      contains(key, "p50") || contains(key, "p99")) {
    return Direction::kLowerBetter;
  }
  return Direction::kNeutral;
}

bool is_blocking_key(const std::string& key) {
  return contains(key, "p99");
}

struct Row {
  std::string bench;
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double change = 0.0;  // relative, + means worse for directional keys
  std::string status;   // "ok" | "improved" | "info" | "ADVISORY" | "BLOCKING"
};

std::string format_pct(double change) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", change * 100.0);
  return buf;
}

std::string format_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void compare_report(const BenchReport& report, const Metrics& baseline,
                    double threshold, std::vector<Row>* rows,
                    int* blocking) {
  for (const auto& [key, current] : report.metrics) {
    Row row{report.name, key, 0.0, current, 0.0, "info"};
    const auto base_it = baseline.find(key);
    if (base_it == baseline.end()) {
      row.status = "info (no baseline key)";
      rows->push_back(row);
      continue;
    }
    row.baseline = base_it->second;
    const Direction dir = direction_of(key);
    if (dir == Direction::kNeutral || row.baseline == 0.0) {
      rows->push_back(row);
      continue;
    }
    const double delta = (current - row.baseline) / row.baseline;
    row.change = dir == Direction::kLowerBetter ? delta : -delta;
    if (row.change <= 0.0) {
      row.status = row.change < 0.0 ? "improved" : "ok";
    } else if (row.change <= threshold) {
      row.status = "ok";
    } else if (is_blocking_key(key)) {
      row.status = "BLOCKING";
      ++*blocking;
    } else {
      row.status = "ADVISORY";
    }
    rows->push_back(row);
  }
}

void print_rows(std::ostream& os, const std::vector<Row>& rows,
                double threshold, int blocking) {
  os << "bench_check: threshold " << format_pct(threshold)
     << " on p99-class keys\n\n";
  os << "bench               key                                   "
     << "baseline      current       worse-by   status\n";
  for (const Row& row : rows) {
    char line[256];
    std::snprintf(line, sizeof line, "%-19s %-37s %-13s %-13s %-10s %s\n",
                  row.bench.c_str(), row.key.c_str(),
                  format_value(row.baseline).c_str(),
                  format_value(row.current).c_str(),
                  format_pct(row.change).c_str(), row.status.c_str());
    os << line;
  }
  os << "\nresult: "
     << (blocking > 0 ? "FAIL (" + std::to_string(blocking) +
                            " blocking p99 regression(s))"
                      : "PASS")
     << "\n";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_check --baseline FILE --current FILE [--current ...]\n"
      "                   [--threshold 0.25] [--report FILE]\n"
      "       bench_check --write-baseline FILE --current FILE [...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string write_path;
  std::string report_path;
  std::vector<std::string> current_paths;
  double threshold = 0.25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (!v) return usage();
      write_path = v;
    } else if (arg == "--current") {
      const char* v = next();
      if (!v) return usage();
      current_paths.push_back(v);
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return usage();
      threshold = std::strtod(v, nullptr);
      if (!(threshold > 0.0)) {
        std::fprintf(stderr, "bench_check: bad threshold '%s'\n", v);
        return 2;
      }
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return usage();
      report_path = v;
    } else {
      std::fprintf(stderr, "bench_check: unknown argument '%s'\n",
                   arg.c_str());
      return usage();
    }
  }
  if (current_paths.empty() ||
      (baseline_path.empty() == write_path.empty())) {
    return usage();
  }

  std::string error;
  std::vector<BenchReport> reports(current_paths.size());
  for (std::size_t i = 0; i < current_paths.size(); ++i) {
    if (!load_bench_report(current_paths[i], &reports[i], &error)) {
      std::fprintf(stderr, "bench_check: %s\n", error.c_str());
      return 2;
    }
  }

  if (!write_path.empty()) {
    std::map<std::string, Metrics> benches;
    for (const BenchReport& report : reports) {
      benches[report.name] = report.metrics;
    }
    if (!write_baseline(write_path, benches, &error)) {
      std::fprintf(stderr, "bench_check: %s\n", error.c_str());
      return 2;
    }
    std::printf("bench_check: wrote baseline for %zu bench(es) to %s\n",
                benches.size(), write_path.c_str());
    return 0;
  }

  std::map<std::string, Metrics> baseline;
  if (!load_baseline(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "bench_check: %s\n", error.c_str());
    return 2;
  }

  int blocking = 0;
  std::vector<Row> rows;
  for (const BenchReport& report : reports) {
    const auto it = baseline.find(report.name);
    if (it == baseline.end()) {
      rows.push_back({report.name, "(entire bench)", 0.0, 0.0, 0.0,
                      "info (no baseline bench)"});
      continue;
    }
    compare_report(report, it->second, threshold, &rows, &blocking);
  }

  std::ostringstream os;
  print_rows(os, rows, threshold, blocking);
  std::fputs(os.str().c_str(), stdout);
  if (!report_path.empty()) {
    std::ofstream rf(report_path);
    rf << os.str();
    if (!rf) {
      std::fprintf(stderr, "bench_check: cannot write report %s\n",
                   report_path.c_str());
      return 2;
    }
  }
  return blocking > 0 ? 1 : 0;
}
