// Figure 8 — comparison of the algorithm selection strategies for
// MPI_Bcast; Open MPI (modeled), SuperMUC-NG; GAM predictor.
//
// Paper shape: default and prediction mostly on par, with isolated
// large-message cells where the prediction selects better algorithms.
#include "bench_common.hpp"

int main() {
  std::printf(
      "Figure 8: MPI_Bcast, Open MPI (modeled), SuperMUC-NG (d8)\n");
  mpicp::benchharness::print_strategy_comparison("d8", "gam", {27, 35},
                                                 {1, 24, 48});
  return 0;
}
