# Empty compiler generated dependencies file for bench_fig6_allreduce_intel.
# This may be replaced when dependencies are built.
