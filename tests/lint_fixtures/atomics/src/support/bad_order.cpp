// Naked weakened orders (two findings: lines 8 and 12).

#include <atomic>

namespace mpicp::support {

int drain(std::atomic<int>& pending) {
  const int n = pending.load(std::memory_order_relaxed);
  pending.store(0, std::memory_order_seq_cst);
  for (int i = 0; i < n; ++i) {
    // A stale comment without the tag does not satisfy the audit.
    pending.fetch_sub(1, std::memory_order::acq_rel);
  }
  return n;
}

}  // namespace mpicp::support
