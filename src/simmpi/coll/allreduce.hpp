// Allreduce algorithm builders.
//
// The Open-MPI-like suite mirrors coll_tuned's allreduce algorithms
// (basic linear, nonoverlapping reduce+bcast, recursive doubling, ring,
// segmented ring, Rabenseifner) plus a segmented tree variant; the
// hierarchical builder provides the topology-aware variants of the
// Intel-MPI-like suite (local reduce to the node leader, leader-level
// allreduce, local broadcast).
#pragma once

#include <cstddef>

#include "simmpi/coll/types.hpp"

namespace mpicp::sim {

/// Flat-tree reduce to rank 0 followed by a flat-tree broadcast.
BuiltCollective allreduce_linear(const Comm& comm, std::size_t bytes);

/// Binomial reduce followed by a binomial broadcast (unsegmented).
BuiltCollective allreduce_nonoverlapping(const Comm& comm,
                                         std::size_t bytes);

BuiltCollective allreduce_recursive_doubling(const Comm& comm,
                                             std::size_t bytes);

/// Ring reduce-scatter + ring allgather over p chunks.
BuiltCollective allreduce_ring(const Comm& comm, std::size_t bytes);

/// Ring allreduce with each chunk pipelined in seg_bytes segments.
BuiltCollective allreduce_segmented_ring(const Comm& comm, std::size_t bytes,
                                         std::size_t seg_bytes);

/// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
/// allgather (non-power-of-two ranks fold in and out).
BuiltCollective allreduce_rabenseifner(const Comm& comm, std::size_t bytes);

/// Segmented tree reduce + tree broadcast over the same tree shape.
enum class AllreduceTreeKind { kBinomial, kBinary, kKnomial };
BuiltCollective allreduce_tree(const Comm& comm, std::size_t bytes,
                               std::size_t seg_bytes, AllreduceTreeKind kind,
                               int radix = 4);

/// Ring reduce-scatter + recursive-doubling allgather hybrid.
BuiltCollective allreduce_reduce_scatter_allgather(const Comm& comm,
                                                   std::size_t bytes);

/// Leader-level algorithm of a hierarchical allreduce.
enum class HierAllreduceInter {
  kRecursiveDoubling,
  kRabenseifner,
  kRing,
  kSegmentedRing,  ///< uses seg_bytes
  kReduceBcast,    ///< binomial reduce + binomial bcast across leaders
};

/// Two-level allreduce: binomial (or flat) reduce to each node leader,
/// leader-level allreduce, binomial (or flat) local broadcast.
BuiltCollective allreduce_hierarchical(const Comm& comm, std::size_t bytes,
                                       std::size_t seg_bytes,
                                       HierAllreduceInter inter,
                                       bool flat_intra = false);

}  // namespace mpicp::sim
