// Fixture: violates header-hygiene (R7) — missing #pragma once, a
// project header via angle brackets, and a duplicate include.
#include <support/rng.hpp>
#include <vector>
#include <vector>

inline int fixture_header() { return 1; }
