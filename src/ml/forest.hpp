// Random forest regression — the learner of the authors' earlier
// PMBS'18 paper, kept as a comparator (the present paper found other
// learners to generalize better on larger dataset collections).
#pragma once

#include <cstdint>

#include "ml/learner.hpp"
#include "ml/tree.hpp"

namespace mpicp::ml {

struct ForestParams {
  int num_trees = 100;
  int max_depth = 12;
  double row_fraction = 1.0;  ///< bootstrap sample size (with replacement)
  bool log_target = true;     ///< fit log(y), predict exp (positive data)
  std::uint64_t seed = 4242;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestParams params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "rf"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  // Introspection for the compiled bank's lowering pass.
  const ForestParams& params() const { return params_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }

 private:
  ForestParams params_;
  std::vector<RegressionTree> trees_;
};

}  // namespace mpicp::ml
